#!/usr/bin/env python3
"""WAL crash-consistency loop: SIGKILL an appender, verify the log.

CI's ``durability-smoke`` job runs this alongside the ``wal_recovery``
soak scenario.  Each round forks a child process that appends known,
index-derived batches to a shared log directory as fast as it can
(``fsync=always``), kills it with ``SIGKILL`` after a few dozen
milliseconds — guaranteeing, over enough rounds, kills that land
mid-``write`` — and then audits what survived:

* every readable record's payload matches exactly what the child must
  have written for that index (content integrity, not just CRC);
* batch indexes form a gap-free prefix ``1..last`` — a kill may tear
  the tail but can never lose an interior record;
* no record fails CRC (a kill cannot flip bits, only truncate);
* reopening the log truncates any torn tail and resumes at the right
  index, so the *next* round's child appends seamlessly after it.

Rounds share one directory, so resume-after-resume and rotation across
incarnations are exercised too.  A JSON report is written for the CI
artifact; exit is non-zero on any violated property.

Usage::

    PYTHONPATH=src python scripts/wal_crashtest.py --rounds 8 \
        --out wal-crashtest.json
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

try:
    from repro.core.objects import SpatialObject
except ModuleNotFoundError:  # running from a checkout without install
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.core.objects import SpatialObject
from repro.durability.recovery import scan_wal
from repro.durability.wal import WriteAheadLog

_BATCH = 3  # objects per appended batch


def _expected_batch(index: int) -> list[SpatialObject]:
    """The batch the child writes for ``index`` — pure function of it."""
    return [
        SpatialObject(
            x=float(index % 97),
            y=float(j),
            weight=1.0 + (index + j) % 5,
            timestamp=float(index),
            oid=index * _BATCH + j,
        )
        for j in range(_BATCH)
    ]


def _child(directory: str) -> None:
    """Append batches forever; the parent SIGKILLs us mid-flight."""
    wal = WriteAheadLog(directory, fsync="always", segment_records=8)
    index = wal.last_index
    while True:
        index += 1
        wal.append_batch(_expected_batch(index), index=index)


def _audit(directory: Path) -> dict[str, object]:
    """Scan + verify one post-kill log state; raise AssertionError on
    any broken crash-consistency property."""
    scan = scan_wal(directory)
    assert not scan.skipped, (
        f"SIGKILL produced CRC-damaged records {scan.skipped}: kills "
        f"must only tear the tail"
    )
    indexes = [index for index, _objects in scan.batches]
    assert indexes == list(range(1, len(indexes) + 1)), (
        f"batch indexes are not a gap-free prefix: {indexes[:20]}..."
    )
    for index, objects in scan.batches:
        assert objects == _expected_batch(index), (
            f"record for index {index} survived with wrong content"
        )
    torn = len(scan.truncated_segments)
    # reopening must truncate the torn tail and resume at the last
    # complete record, ready for the next incarnation
    with WriteAheadLog(directory, fsync="always", segment_records=8) as wal:
        assert wal.torn_tails_truncated == torn
        assert wal.last_index == scan.last_index, (
            f"reopen resumed at index {wal.last_index}, scan says "
            f"{scan.last_index}"
        )
    return {
        "records": len(scan.batches),
        "last_index": scan.last_index,
        "torn_tail": torn > 0,
        "segments": scan.segments,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dir", type=Path, default=None,
                        help="log directory (default: a fresh temp dir)")
    parser.add_argument("--rounds", type=int, default=8,
                        help="kill/audit rounds (default: %(default)s)")
    parser.add_argument("--out", type=Path, default=None,
                        help="write the JSON report here")
    parser.add_argument("--child", action="store_true",
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.child:
        _child(str(args.dir))
        return 0  # pragma: no cover - killed before reaching this

    if args.dir is None:
        import tempfile

        args.dir = Path(tempfile.mkdtemp(prefix="maxrs-wal-crashtest-"))
    args.dir.mkdir(parents=True, exist_ok=True)

    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")

    rounds: list[dict[str, object]] = []
    ok = True
    for i in range(args.rounds):
        size_before = sum(
            p.stat().st_size for p in args.dir.glob("wal-*.seg")
        )
        proc = subprocess.Popen(
            [sys.executable, __file__, "--child", "--dir", str(args.dir)],
            env=env,
        )
        # wait out interpreter startup: kill only once the child has
        # demonstrably appended, so every round audits fresh records
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            size = sum(
                p.stat().st_size for p in args.dir.glob("wal-*.seg")
            )
            if size > size_before:
                break
            if proc.poll() is not None:
                print(f"FAIL: child exited early (rc={proc.returncode})")
                return 1
            time.sleep(0.002)
        # vary the kill point so over the rounds it lands between
        # appends, mid-write, and mid-fsync alike
        time.sleep(0.002 + 0.0113 * (i % 5))
        proc.send_signal(signal.SIGKILL)
        proc.wait()
        try:
            result = _audit(args.dir)
        except AssertionError as exc:
            result = {"error": str(exc)}
            ok = False
        result["round"] = i
        rounds.append(result)
        print(f"round {i}: {result}")
        if not ok:
            break

    grew = [int(r.get("last_index", 0)) for r in rounds]
    report = {
        "rounds": rounds,
        "total_rounds": len(rounds),
        "final_index": grew[-1] if grew else 0,
        "torn_tails": sum(1 for r in rounds if r.get("torn_tail")),
        "ok": ok and bool(grew) and grew[-1] > 0,
    }
    if args.out:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote report to {args.out}")
    if not report["ok"]:
        print("FAIL: crash-consistency property violated")
        return 1
    print(
        f"OK: {len(rounds)} kills, log grew to index "
        f"{report['final_index']}, {report['torn_tails']} torn tails "
        f"truncated, every surviving record verified"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
