#!/usr/bin/env python3
"""CI perf-regression gates.

Two modes:

**Profile mode** (original) — over a ``maxrs-stream profile`` JSON,
asserts the pruning behaviour the paper's §7 evaluation is built on —
the properties a refactor is most likely to degrade silently:

1. aG2 visits strictly fewer cells than G2 (branch-and-bound skips
   work the basic monitor must do);
2. aG2 records a nonzero number of branch-and-bound cell prunings;
3. aG2's mean update time is reported and positive (the workload ran).

Usage::

    maxrs-stream profile --window 2000 --batches 10 --seed 7 --json m.json
    python scripts/perf_gate.py m.json

**Bench mode** — compares a fresh ``maxrs-stream bench`` document
against the committed baseline (``BENCH_PR9.json``) on
``speedup_vs_naive``, per (monitor, dataset, backend) row.  The speedup
is a ratio *within* one run on one machine (against the naive row of
the *same* sweep backend), so absolute host speed cancels out; what
remains is the algorithmic advantage over the naive recompute, which is
exactly what a kernel regression erodes.  The gate fails when any
indexed monitor's speedup falls more than ``--tolerance`` (default 15%)
below the baseline row.  Baseline rows for the ``numpy`` sweep backend
are skipped — not failed — when the current document reports numpy
unavailable, so the without-numpy CI leg stays honest.  The multi-query
``scaling`` ratio is gated the same way, but only when both the
baseline and the current host have at least two CPUs — on one core the
honest ratio is below 1 and carries no signal.  When both aG2 spatial
indexes appear on a dataset in both documents, the *adaptive-index
advantage* — quadtree-aG2 speedup over uniform-grid-aG2 speedup — is
additionally gated against the baseline's advantage at twice the
tolerance (the advantage is a ratio of two independently gated ratios).

Two vector-backend gates ride on the same documents:

* the *columnar advantage* — python-row ``mean_ms`` over numpy-row
  ``mean_ms`` for aG2 on the canonical workloads — is gated against the
  baseline's advantage at twice the tolerance, wherever both documents
  carry both rows;
* the full-profile aG2 ``uniform`` numpy row must clear an *absolute*
  ``speedup_vs_naive`` floor of ``VECTOR_SPEEDUP_FLOOR`` (2x) in
  whichever document carries it — this is the PR-9 acceptance bar, not
  a relative-to-baseline check.

Usage::

    maxrs-stream bench --seed 42 --profile quick --out fresh.json
    python scripts/perf_gate.py --bench fresh.json --baseline BENCH_PR9.json

Exits 0 when every check passes, 1 with a diagnostic otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys

#: monitors whose speedup_vs_naive is gated (naive is the denominator)
GATED_MONITORS = ("g2", "ag2", "ag2_quadtree", "rtree", "topk")

#: datasets where the adaptive-index advantage (quadtree aG2 speedup
#: over uniform-grid aG2 speedup, within one run) is gated against the
#: baseline's advantage — the skewed rows exist for this comparison
ADVANTAGE_DATASETS = ("gaussian", "gauss_static", "gauss_drift", "powerlaw")

#: datasets where the columnar advantage (python-backend mean_ms over
#: numpy-backend mean_ms, within one run) is gated for aG2 — the only
#: workloads that carry numpy rows
VECTOR_DATASETS = ("uniform", "gaussian")

#: absolute speedup_vs_naive floor for the full-profile aG2 uniform
#: numpy row (the PR-9 acceptance bar; not relative to the baseline)
VECTOR_SPEEDUP_FLOOR = 2.0


def check(metrics_path: str) -> list[str]:
    """Profile mode: return failure messages (empty = gate passes)."""
    with open(metrics_path, encoding="utf-8") as fh:
        doc = json.load(fh)

    failures: list[str] = []
    monitors = doc.get("metrics", {})
    for required in ("g2", "ag2"):
        if required not in monitors:
            failures.append(f"profile JSON has no metrics for {required!r}")
    if failures:
        return failures

    g2 = monitors["g2"]["counters"]
    ag2 = monitors["ag2"]["counters"]

    g2_visited = g2.get("cells_visited", 0.0)
    ag2_visited = ag2.get("cells_visited", 0.0)
    if not g2_visited > 0:
        failures.append(
            "g2 visited no cells — workload did not run? "
            f"(measured cells_visited={g2_visited:.0f}, threshold > 0)"
        )
    if not ag2_visited < g2_visited:
        ratio = ag2_visited / g2_visited if g2_visited else float("inf")
        failures.append(
            "branch-and-bound regression: aG2 visited "
            f"{ag2_visited:.0f} cells, G2 visited {g2_visited:.0f} "
            f"(measured aG2/G2 ratio={ratio:.3f}, threshold < 1.000)"
        )

    prunings = ag2.get("cells_pruned", 0.0)
    if not prunings > 0:
        failures.append(
            "pruning regression: aG2 recorded zero cell prunings "
            f"(measured cells_pruned={prunings:.0f}, threshold > 0)"
        )

    timings = doc.get("timings", {})
    ag2_mean = timings.get("ag2", {}).get("mean_ms", 0.0)
    if not ag2_mean > 0:
        failures.append(
            "no aG2 timing recorded — workload did not run? "
            f"(measured mean_ms={ag2_mean:.3f}, threshold > 0)"
        )

    if doc.get("source_exhausted"):
        failures.append(
            "stream exhausted mid-run: "
            f"{doc.get('batches')} of {doc.get('requested_batches')} batches"
        )
    return failures


def _row_index(doc: dict) -> dict:
    """(profile, monitor, dataset, backend) -> row for one document.

    ``backend`` is the sweep compute backend.  Schema-2 documents
    predate the sweep backend and (mis)used the ``backend`` field for
    the spatial index; their rows key as ``python``, which is what they
    actually measured.
    """
    schema = doc.get("schema", 1)
    index: dict = {}
    for profile_name, profile_doc in doc.get("profiles", {}).items():
        for row in profile_doc.get("rows", []):
            backend = row.get("backend", "python") if schema >= 3 else "python"
            key = (profile_name, row["monitor"], row["dataset"], backend)
            index[key] = row
    return index


def _spatial_index_of(doc: dict, row: dict) -> str:
    """The spatial index that produced a row (for diagnostics)."""
    if doc.get("schema", 1) >= 3:
        return row.get("index", "none")
    return row.get("backend", "none")


def _numpy_available(doc: dict) -> bool:
    return bool(doc.get("vector", {}).get("available"))


def check_bench(
    bench_path: str, baseline_path: str, tolerance: float
) -> list[str]:
    """Bench mode: return failure messages (empty = gate passes)."""
    with open(bench_path, encoding="utf-8") as fh:
        current = json.load(fh)
    with open(baseline_path, encoding="utf-8") as fh:
        baseline = json.load(fh)

    failures: list[str] = []
    base_rows = _row_index(baseline)
    cur_rows = _row_index(current)
    cur_has_numpy = _numpy_available(current)
    compared = 0
    for key, base_row in sorted(base_rows.items()):
        profile_name, monitor, dataset, backend = key
        if monitor not in GATED_MONITORS:
            continue
        cur_row = cur_rows.get(key)
        if cur_row is None:
            # the current run may cover a subset of profiles (the CI
            # smoke job runs only `quick`); a missing profile is fine,
            # a missing monitor row within a covered profile is not —
            # except numpy-backend rows on a host without numpy, which
            # the suite rightly could not produce
            if backend == "numpy" and not cur_has_numpy:
                continue
            if any(k[0] == profile_name for k in cur_rows):
                failures.append(
                    f"bench row missing: {monitor} on {dataset} "
                    f"[{backend} backend] ({profile_name} profile)"
                )
            continue
        compared += 1
        base_speedup = base_row["speedup_vs_naive"]
        cur_speedup = cur_row["speedup_vs_naive"]
        floor = base_speedup * (1.0 - tolerance)
        if cur_speedup < floor:
            spatial = _spatial_index_of(current, cur_row)
            failures.append(
                f"kernel throughput regression: {monitor} "
                f"[{backend} backend, {spatial} index] on {dataset} "
                f"({profile_name}) speedup_vs_naive {cur_speedup:.2f}x "
                f"below floor {floor:.2f}x "
                f"(baseline {base_speedup:.2f}x, tolerance {tolerance:.0%})"
            )
    if compared == 0:
        failures.append(
            "bench gate compared zero rows — profile names disagree "
            "between the baseline and the current document?"
        )

    # adaptive-index advantage: quadtree-aG2 speedup over grid-aG2
    # speedup, within one run, compared to the baseline's advantage.
    # The advantage is a ratio of two independently gated ratios, so
    # its tolerance composes both rows' allowances (2x the per-row
    # tolerance) — otherwise +tol on one row and -tol on the other
    # would flake a check that carries no new regression signal.
    for profile_name in current.get("profiles", {}):
        for dataset in ADVANTAGE_DATASETS:
            values = []
            for rows in (base_rows, cur_rows):
                grid = rows.get((profile_name, "ag2", dataset, "python"))
                quad = rows.get(
                    (profile_name, "ag2_quadtree", dataset, "python")
                )
                if grid is None or quad is None:
                    values = []
                    break
                grid_speedup = grid["speedup_vs_naive"]
                quad_speedup = quad["speedup_vs_naive"]
                if not grid_speedup or not quad_speedup:
                    values = []
                    break
                values.append(quad_speedup / grid_speedup)
            if not values:
                continue
            base_adv, cur_adv = values
            floor = base_adv * (1.0 - 2.0 * tolerance)
            if cur_adv < floor:
                failures.append(
                    "adaptive-index advantage regression: "
                    f"ag2_quadtree/ag2 on {dataset} ({profile_name}) "
                    f"advantage {cur_adv:.2f}x below floor {floor:.2f}x "
                    f"(baseline {base_adv:.2f}x, tolerance "
                    f"{2.0 * tolerance:.0%})"
                )

    # columnar advantage: python-row mean over numpy-row mean for aG2,
    # within one run, compared to the baseline's advantage.  Like the
    # adaptive-index advantage this is a ratio of two independently
    # measured rows, so the tolerance composes both rows' allowances.
    # Skipped wherever either document lacks the numpy row (numpy-less
    # host), which the missing-row check above already polices.
    for profile_name in current.get("profiles", {}):
        for dataset in VECTOR_DATASETS:
            values = []
            for rows in (base_rows, cur_rows):
                py = rows.get((profile_name, "ag2", dataset, "python"))
                np_ = rows.get((profile_name, "ag2", dataset, "numpy"))
                if py is None or np_ is None or not np_["mean_ms"]:
                    values = []
                    break
                values.append(py["mean_ms"] / np_["mean_ms"])
            if not values:
                continue
            base_adv, cur_adv = values
            floor = base_adv * (1.0 - 2.0 * tolerance)
            if cur_adv < floor:
                failures.append(
                    "columnar backend advantage regression: "
                    f"ag2 python/numpy mean_ms on {dataset} "
                    f"({profile_name}) advantage {cur_adv:.2f}x below "
                    f"floor {floor:.2f}x (baseline {base_adv:.2f}x, "
                    f"tolerance {2.0 * tolerance:.0%})"
                )

    # PR-9 acceptance bar: the full-profile aG2 uniform numpy row must
    # beat its (numpy) naive baseline by an absolute factor, in
    # whichever document carries the row — gating the committed
    # baseline itself, not just drift against it.
    for label, doc, rows in (
        ("baseline", baseline, base_rows),
        ("current", current, cur_rows),
    ):
        row = rows.get(("full", "ag2", "uniform", "numpy"))
        if row is None:
            continue
        speedup = row["speedup_vs_naive"]
        if speedup < VECTOR_SPEEDUP_FLOOR:
            failures.append(
                f"vector speedup floor violated ({label}): ag2 [numpy "
                f"backend] on uniform (full) speedup_vs_naive "
                f"{speedup:.2f}x below the absolute "
                f"{VECTOR_SPEEDUP_FLOOR:.1f}x floor"
            )

    # multi-query scaling: only meaningful with real parallel hardware
    base_cpus = baseline.get("cpu_count", 1)
    cur_cpus = current.get("cpu_count", 1)
    if base_cpus >= 2 and cur_cpus >= 2:
        for profile_name, profile_doc in current.get("profiles", {}).items():
            mq = profile_doc.get("multi_query")
            base_profile = baseline.get("profiles", {}).get(profile_name, {})
            base_mq = base_profile.get("multi_query")
            if not mq or not base_mq:
                continue
            floor = base_mq["scaling"] * (1.0 - tolerance)
            if mq["scaling"] < floor:
                failures.append(
                    f"multi-query scaling regression ({profile_name}): "
                    f"{mq['scaling']:.2f}x below floor {floor:.2f}x "
                    f"(baseline {base_mq['scaling']:.2f}x on "
                    f"{base_cpus} cpus)"
                )
    return failures


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="perf_gate.py", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "metrics", nargs="?", help="profile-mode metrics JSON"
    )
    parser.add_argument(
        "--bench", metavar="PATH", help="bench-mode: fresh bench JSON"
    )
    parser.add_argument(
        "--baseline", metavar="PATH",
        help="bench-mode: committed baseline JSON (e.g. BENCH_PR9.json)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.15,
        help="allowed relative speedup drop before failing "
        "(default: %(default)s)",
    )
    args = parser.parse_args(argv[1:])

    if args.bench or args.baseline:
        if not (args.bench and args.baseline):
            print(
                "PERF GATE FAIL: bench mode needs both --bench and "
                "--baseline",
                file=sys.stderr,
            )
            return 2
        try:
            failures = check_bench(args.bench, args.baseline, args.tolerance)
        except (OSError, json.JSONDecodeError, KeyError) as exc:
            print(
                f"PERF GATE FAIL: cannot compare bench documents: {exc!r}",
                file=sys.stderr,
            )
            return 1
        label = "bench gate: speedup-vs-naive within tolerance of baseline"
    else:
        if not args.metrics:
            parser.print_usage(sys.stderr)
            return 2
        try:
            failures = check(args.metrics)
        except (OSError, json.JSONDecodeError) as exc:
            print(
                f"PERF GATE FAIL: cannot read {args.metrics}: {exc}",
                file=sys.stderr,
            )
            return 1
        label = "perf gate: aG2 pruning behaviour verified"

    if failures:
        for message in failures:
            print(f"PERF GATE FAIL: {message}", file=sys.stderr)
        return 1
    print(label)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
