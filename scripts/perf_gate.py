#!/usr/bin/env python3
"""CI perf-regression smoke gate over a ``maxrs-stream profile`` JSON.

Asserts the pruning behaviour the paper's §7 evaluation is built on —
the properties a refactor is most likely to degrade silently:

1. aG2 visits strictly fewer cells than G2 (branch-and-bound skips
   work the basic monitor must do);
2. aG2 records a nonzero number of branch-and-bound cell prunings;
3. aG2's mean update time is reported and positive (the workload ran).

Usage::

    maxrs-stream profile --window 2000 --batches 10 --seed 7 --json m.json
    python scripts/perf_gate.py m.json

Exits 0 when every check passes, 1 with a diagnostic otherwise.
"""

from __future__ import annotations

import json
import sys


def check(metrics_path: str) -> list[str]:
    """Return a list of failure messages (empty = gate passes)."""
    with open(metrics_path, encoding="utf-8") as fh:
        doc = json.load(fh)

    failures: list[str] = []
    monitors = doc.get("metrics", {})
    for required in ("g2", "ag2"):
        if required not in monitors:
            failures.append(f"profile JSON has no metrics for {required!r}")
    if failures:
        return failures

    g2 = monitors["g2"]["counters"]
    ag2 = monitors["ag2"]["counters"]

    g2_visited = g2.get("cells_visited", 0.0)
    ag2_visited = ag2.get("cells_visited", 0.0)
    if not g2_visited > 0:
        failures.append(
            "g2 visited no cells — workload did not run? "
            f"(measured cells_visited={g2_visited:.0f}, threshold > 0)"
        )
    if not ag2_visited < g2_visited:
        ratio = ag2_visited / g2_visited if g2_visited else float("inf")
        failures.append(
            "branch-and-bound regression: aG2 visited "
            f"{ag2_visited:.0f} cells, G2 visited {g2_visited:.0f} "
            f"(measured aG2/G2 ratio={ratio:.3f}, threshold < 1.000)"
        )

    prunings = ag2.get("cells_pruned", 0.0)
    if not prunings > 0:
        failures.append(
            "pruning regression: aG2 recorded zero cell prunings "
            f"(measured cells_pruned={prunings:.0f}, threshold > 0)"
        )

    timings = doc.get("timings", {})
    ag2_mean = timings.get("ag2", {}).get("mean_ms", 0.0)
    if not ag2_mean > 0:
        failures.append(
            "no aG2 timing recorded — workload did not run? "
            f"(measured mean_ms={ag2_mean:.3f}, threshold > 0)"
        )

    if doc.get("source_exhausted"):
        failures.append(
            "stream exhausted mid-run: "
            f"{doc.get('batches')} of {doc.get('requested_batches')} batches"
        )
    return failures


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(f"usage: {argv[0]} <metrics.json>", file=sys.stderr)
        return 2
    try:
        failures = check(argv[1])
    except (OSError, json.JSONDecodeError) as exc:
        print(f"PERF GATE FAIL: cannot read {argv[1]}: {exc}", file=sys.stderr)
        return 1
    if failures:
        for message in failures:
            print(f"PERF GATE FAIL: {message}", file=sys.stderr)
        return 1
    print("perf gate: aG2 pruning behaviour verified")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
