#!/usr/bin/env python3
"""Run every committed soak scenario and write one JSON report each.

CI's ``soak-smoke`` job runs the ``smoke`` and ``crash_recovery``
scenarios individually; this script is the local superset — the whole
committed suite in registration order, reports dropped into an output
directory, first failure's verdicts printed, non-zero exit if any
campaign breaches an invariant.

Usage::

    PYTHONPATH=src python scripts/run_soak_suite.py --out soak-reports/
    PYTHONPATH=src python scripts/run_soak_suite.py --seed 1234
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.soak import list_scenarios, run_soak


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("soak-reports"),
        help="directory for per-scenario JSON reports",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="override every scenario's committed seed",
    )
    parser.add_argument(
        "--no-verify-checksum",
        action="store_true",
        help="disable checkpoint checksum verification (the "
        "crash_recovery campaign is expected to fail without it)",
    )
    args = parser.parse_args(argv)

    args.out.mkdir(parents=True, exist_ok=True)
    failed: list[str] = []
    for scenario in list_scenarios():
        report = run_soak(
            scenario,
            seed=args.seed,
            verify_checksum=not args.no_verify_checksum,
        )
        target = args.out / f"soak-{scenario.name}.json"
        target.write_text(json.dumps(report.to_dict(), indent=2) + "\n")
        verdict = "ok" if report.ok else "FAILED"
        print(f"{scenario.name:<16} {verdict:<7} -> {target}")
        if not report.ok:
            failed.append(scenario.name)
            for line in report.failures():
                print(f"  FAIL: {line}")
    if failed:
        print(f"{len(failed)} campaign(s) breached invariants: "
              f"{', '.join(failed)}")
        return 1
    print("all campaigns passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
