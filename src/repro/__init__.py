"""repro — Monitoring MaxRS in spatial data streams.

A pure-Python reproduction of Amagata & Hara, "Monitoring MaxRS in
Spatial Data Streams" (EDBT 2016): continuous (top-k / approximate)
maximizing-range-sum queries over sliding windows, built on the G2 and
aG2 graph-in-grid indexes.

Quickstart::

    from repro import AG2Monitor, CountWindow, SpatialObject

    monitor = AG2Monitor(
        rect_width=1000.0, rect_height=1000.0, window=CountWindow(10_000)
    )
    for batch in stream:          # batches of SpatialObject
        result = monitor.update(batch)
        if result.best is not None:
            x, y = result.best.best_point     # optimal placement centre
"""

from repro.core import (
    AG2Monitor,
    AllMaxRSMonitor,
    ApproxAG2Monitor,
    G2Monitor,
    Interval,
    MaxRSMonitor,
    MaxRSResult,
    MonitorStats,
    NaiveMonitor,
    RTree,
    RTreeMonitor,
    Rect,
    Region,
    SamplingMonitor,
    SpatialObject,
    TopKAG2Monitor,
    UniformGrid,
    WeightedRect,
    plane_sweep_max,
    plane_sweep_topk,
    practical_error,
)
from repro.errors import (
    EmptyWindowError,
    InvalidGeometryError,
    InvalidParameterError,
    InvariantViolationError,
    ReproError,
    WindowOrderError,
)
from repro.engine import MultiQueryGroup, ResultChange, ResultRecorder
from repro.obs import NULL_METRICS, Metrics, MetricsSnapshot
from repro.persist import load_json, restore, save_json, snapshot
from repro.window import CountWindow, SlidingWindow, TimeWindow, WindowUpdate

__version__ = "1.0.0"

__all__ = [
    "AG2Monitor",
    "AllMaxRSMonitor",
    "ApproxAG2Monitor",
    "CountWindow",
    "EmptyWindowError",
    "G2Monitor",
    "Interval",
    "InvalidGeometryError",
    "InvalidParameterError",
    "InvariantViolationError",
    "MaxRSMonitor",
    "MaxRSResult",
    "Metrics",
    "MetricsSnapshot",
    "MonitorStats",
    "MultiQueryGroup",
    "NULL_METRICS",
    "NaiveMonitor",
    "RTree",
    "RTreeMonitor",
    "Rect",
    "Region",
    "ReproError",
    "ResultChange",
    "ResultRecorder",
    "SamplingMonitor",
    "SlidingWindow",
    "SpatialObject",
    "TimeWindow",
    "TopKAG2Monitor",
    "UniformGrid",
    "WeightedRect",
    "WindowOrderError",
    "WindowUpdate",
    "load_json",
    "plane_sweep_max",
    "plane_sweep_topk",
    "practical_error",
    "restore",
    "save_json",
    "snapshot",
    "__version__",
]
