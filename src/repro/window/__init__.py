"""Sliding-window models for spatial data streams (paper §2)."""

from repro.window.base import SlidingWindow, WindowUpdate
from repro.window.count import CountWindow
from repro.window.time import TimeWindow

__all__ = ["SlidingWindow", "WindowUpdate", "CountWindow", "TimeWindow"]
