"""Time-based sliding window: objects generated in the last ``T`` units.

Timestamps must be non-decreasing across pushes — that is what
guarantees expiration in arrival order, the structural property
(Property 3) the graph indexes rely on.  Out-of-order batches raise
:class:`~repro.errors.WindowOrderError` rather than silently corrupting
index state.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Sequence

from repro.core.objects import SpatialObject
from repro.errors import InvalidParameterError, WindowOrderError
from repro.window.base import SlidingWindow, WindowUpdate

__all__ = ["TimeWindow"]


class TimeWindow(SlidingWindow):
    """Sliding window keeping objects with ``timestamp > now - duration``.

    ``now`` advances to the newest timestamp seen (via :meth:`push`) or
    explicitly via :meth:`advance_to` for pure time passage without
    arrivals.
    """

    def __init__(self, duration: float) -> None:
        super().__init__()
        if not duration > 0:
            raise InvalidParameterError(
                f"time window duration must be positive, got {duration}"
            )
        self.duration = duration
        self._items: Deque[SpatialObject] = deque()
        self._now = float("-inf")

    @property
    def now(self) -> float:
        """The latest time the window has been advanced to."""
        return self._now

    def push(self, objects: Sequence[SpatialObject]) -> WindowUpdate:
        """Admit ``objects`` (non-decreasing timestamps) and expire."""
        tick = self._next_tick()
        # guard against self._now even when the window has drained empty:
        # a timestamp before the current window time is a time-travel
        # push whether or not any object is still alive (advance_to
        # already rejects the same regression)
        last = self._now
        for obj in objects:
            if obj.timestamp < last:
                raise WindowOrderError(
                    f"object {obj.oid} has timestamp {obj.timestamp} "
                    f"before window time {last}"
                )
            last = obj.timestamp
        if objects:
            self._now = max(self._now, objects[-1].timestamp)
        # batch members already out of range never become alive: they
        # appear in neither delta list (same convention as CountWindow
        # overflow), so ``expired`` is always a subset of past arrivals.
        admitted = tuple(o for o in objects if self._alive(o))
        self._items.extend(admitted)
        expired = self._expire()
        return self._record(
            WindowUpdate(arrived=admitted, expired=expired, tick=tick)
        )

    def advance_to(self, now: float) -> WindowUpdate:
        """Move time forward without arrivals, expiring stale objects."""
        if now < self._now:
            raise WindowOrderError(
                f"cannot move window time backwards: {now} < {self._now}"
            )
        tick = self._next_tick()
        self._now = now
        return self._record(WindowUpdate(expired=self._expire(), tick=tick))

    def _alive(self, obj: SpatialObject) -> bool:
        return obj.timestamp > self._now - self.duration

    def _expire(self) -> tuple[SpatialObject, ...]:
        cutoff = self._now - self.duration
        expired: list[SpatialObject] = []
        while self._items and self._items[0].timestamp <= cutoff:
            expired.append(self._items.popleft())
        return tuple(expired)

    @property
    def contents(self) -> tuple[SpatialObject, ...]:
        return tuple(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def clear(self) -> None:
        self._items.clear()
        self._now = float("-inf")
