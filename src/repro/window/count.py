"""Count-based sliding window: the most recent ``n`` objects (paper §2).

``m`` new generations expire the ``m`` oldest objects once the window is
full — exactly the model the paper's experiments assume.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Sequence

from repro.core.objects import SpatialObject
from repro.errors import InvalidParameterError
from repro.window.base import SlidingWindow, WindowUpdate

__all__ = ["CountWindow"]


class CountWindow(SlidingWindow):
    """Sliding window holding at most ``capacity`` recent objects."""

    def __init__(self, capacity: int) -> None:
        super().__init__()
        if capacity <= 0:
            raise InvalidParameterError(
                f"count window capacity must be positive, got {capacity}"
            )
        self.capacity = capacity
        self._items: Deque[SpatialObject] = deque()

    def push(self, objects: Sequence[SpatialObject]) -> WindowUpdate:
        """Admit ``objects``; evict the oldest beyond ``capacity``.

        When a single batch exceeds the capacity only its newest
        ``capacity`` objects actually enter the window; the skipped ones
        appear in neither ``arrived`` nor ``expired`` (they were never
        alive).
        """
        tick = self._next_tick()
        if len(objects) > self.capacity:
            # whole previous content expires; only the batch tail enters
            expired = tuple(self._items)
            self._items.clear()
            admitted = tuple(objects[-self.capacity:])
            self._items.extend(admitted)
            return self._record(
                WindowUpdate(arrived=admitted, expired=expired, tick=tick)
            )
        self._items.extend(objects)
        overflow = len(self._items) - self.capacity
        expired_list = [self._items.popleft() for _ in range(max(0, overflow))]
        return self._record(
            WindowUpdate(
                arrived=tuple(objects), expired=tuple(expired_list), tick=tick
            )
        )

    @property
    def contents(self) -> tuple[SpatialObject, ...]:
        return tuple(self._items)

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        return len(self._items) >= self.capacity

    def clear(self) -> None:
        self._items.clear()
