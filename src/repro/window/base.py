"""Sliding-window abstraction (paper §2).

The paper supports both count-based and time-based sliding windows; the
algorithms only ever see the *delta* of a window transition — which
objects arrived and which expired — so the window types share a single
interface: :meth:`SlidingWindow.push` returns a :class:`WindowUpdate`
delta and the indexes consume it.

A crucial structural fact the indexes rely on (Property 3): objects
expire in arrival order.  Both window types preserve this — the count
window by construction, the time window by requiring non-decreasing
timestamps.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

from repro.core.objects import SpatialObject
from repro.obs.metrics import NULL_METRICS, Metrics

__all__ = ["WindowUpdate", "SlidingWindow"]


@dataclass(frozen=True, slots=True)
class WindowUpdate:
    """Delta produced by one window transition.

    Attributes:
        arrived: Objects that entered the window, oldest first.  An
            object that arrives and instantly exceeds the window bound
            (e.g. a batch larger than a count window) appears in
            *neither* list.
        expired: Objects that left the window, oldest first.
        tick: Monotone transition counter of the producing window.
    """

    arrived: tuple[SpatialObject, ...] = ()
    expired: tuple[SpatialObject, ...] = ()
    tick: int = 0

    @property
    def is_noop(self) -> bool:
        return not self.arrived and not self.expired


class SlidingWindow(ABC):
    """Common behaviour of count- and time-based windows."""

    def __init__(self) -> None:
        self._tick = 0
        # per-window observability scope (no-op unless attached); both
        # concrete windows report insertions/evictions through it
        self.metrics: Metrics = NULL_METRICS

    @abstractmethod
    def push(self, objects: Sequence[SpatialObject]) -> WindowUpdate:
        """Admit a batch of newly generated objects; return the delta."""

    @property
    @abstractmethod
    def contents(self) -> tuple[SpatialObject, ...]:
        """Alive objects, oldest first."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of alive objects."""

    @abstractmethod
    def clear(self) -> None:
        """Drop all alive objects and reset derived state (not the tick)."""

    @property
    def tick(self) -> int:
        """Number of transitions performed so far."""
        return self._tick

    def _next_tick(self) -> int:
        self._tick += 1
        return self._tick

    def _record(self, update: WindowUpdate) -> WindowUpdate:
        """Count a transition's insertions/evictions; returns it back so
        ``push`` implementations can ``return self._record(update)``."""
        metrics = self.metrics
        metrics.inc("insertions", len(update.arrived))
        metrics.inc("evictions", len(update.expired))
        metrics.set_gauge("size", len(self))
        return update
