"""Exception hierarchy for the repro library.

Every error raised intentionally by this package derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting genuine bugs (``TypeError`` and friends)
propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidGeometryError(ReproError):
    """A rectangle or region was constructed with inverted or NaN bounds."""


class InvalidParameterError(ReproError):
    """A query, window or index parameter is outside its valid domain."""


class WindowOrderError(ReproError):
    """Objects were pushed into a time-based window out of timestamp order."""


class EmptyWindowError(ReproError):
    """An operation that requires alive objects was invoked on an empty window."""


class InvariantViolationError(ReproError):
    """An internal index invariant check failed.

    Raised only from explicit ``check_invariants()`` calls; production
    paths never pay for the verification.
    """


class SnapshotError(ReproError):
    """A persisted snapshot or checkpoint is unreadable.

    Raised when a snapshot file is truncated, is not valid JSON, is
    missing required fields, or carries an unknown format version —
    recovery code can catch this one class and fall back to an older
    checkpoint (or a cold start) instead of dying on ``KeyError`` /
    ``JSONDecodeError``.
    """


class CheckpointChecksumError(SnapshotError):
    """A checkpoint's stored CRC32 does not match its payload.

    Truncation and invalid JSON are caught by :class:`SnapshotError`
    already; this subclass covers *silent* corruption — bit-rot or a
    partial overwrite that still parses — detected by recomputing the
    payload checksum stored in the envelope.  Recovery code treats it
    like any other :class:`SnapshotError` and falls back to the
    previous rotation.
    """


class QuarantineError(ReproError):
    """A record was rejected at the ingest boundary under ``RAISE`` policy.

    Carries the offending record and the rejection reason so callers
    that opted into fail-fast ingestion see exactly what was refused.
    """

    def __init__(self, reason: str, record: object = None) -> None:
        super().__init__(reason)
        self.reason = reason
        self.record = record


class SourceRetryExhaustedError(ReproError):
    """A transient-failure retry loop ran out of attempts.

    Raised by :class:`~repro.resilience.supervisor.RetryingSource` when
    the wrapped source keeps failing past ``max_retries``; the last
    underlying exception is chained as ``__cause__``.
    """


class UnrecoverableMonitorError(ReproError):
    """A supervised monitor failed and could not be healed.

    Raised by :class:`~repro.resilience.supervisor.MonitorSupervisor`
    when rebuilding from the surviving window also fails, or the heal
    budget (``max_heals``) is exhausted.  The original failure is
    chained as ``__cause__``.
    """


class StreamExhaustedWarning(RuntimeWarning):
    """A stream source ran dry before the requested work completed.

    Emitted (never raised) by :class:`~repro.engine.engine.StreamEngine`
    when ``prime()`` cannot fill the requested count or ``run()``
    executes fewer batches than asked — benchmarks that silently run
    short would otherwise report numbers for a workload that never
    happened.
    """
