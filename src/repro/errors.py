"""Exception hierarchy for the repro library.

Every error raised intentionally by this package derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting genuine bugs (``TypeError`` and friends)
propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidGeometryError(ReproError):
    """A rectangle or region was constructed with inverted or NaN bounds."""


class InvalidParameterError(ReproError):
    """A query, window or index parameter is outside its valid domain."""


class WindowOrderError(ReproError):
    """Objects were pushed into a time-based window out of timestamp order."""


class EmptyWindowError(ReproError):
    """An operation that requires alive objects was invoked on an empty window."""


class InvariantViolationError(ReproError):
    """An internal index invariant check failed.

    Raised only from explicit ``check_invariants()`` calls; production
    paths never pay for the verification.
    """
