"""Exception hierarchy for the repro library.

Every error raised intentionally by this package derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting genuine bugs (``TypeError`` and friends)
propagate.
"""

from __future__ import annotations

import errno as _errno


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidGeometryError(ReproError):
    """A rectangle or region was constructed with inverted or NaN bounds."""


class InvalidParameterError(ReproError):
    """A query, window or index parameter is outside its valid domain."""


class WindowOrderError(ReproError):
    """Objects were pushed into a time-based window out of timestamp order."""


class EmptyWindowError(ReproError):
    """An operation that requires alive objects was invoked on an empty window."""


class InvariantViolationError(ReproError):
    """An internal index invariant check failed.

    Raised only from explicit ``check_invariants()`` calls; production
    paths never pay for the verification.
    """


class SnapshotError(ReproError):
    """A persisted snapshot or checkpoint is unreadable.

    Raised when a snapshot file is truncated, is not valid JSON, is
    missing required fields, or carries an unknown format version —
    recovery code can catch this one class and fall back to an older
    checkpoint (or a cold start) instead of dying on ``KeyError`` /
    ``JSONDecodeError``.
    """


class CheckpointChecksumError(SnapshotError):
    """A checkpoint's stored CRC32 does not match its payload.

    Truncation and invalid JSON are caught by :class:`SnapshotError`
    already; this subclass covers *silent* corruption — bit-rot or a
    partial overwrite that still parses — detected by recomputing the
    payload checksum stored in the envelope.  Recovery code treats it
    like any other :class:`SnapshotError` and falls back to the
    previous rotation.
    """


class DurabilityError(ReproError):
    """Base class for durable-storage failures (WAL, checkpoint media).

    Everything the durability tier raises intentionally derives from
    this class, so recovery orchestration can catch disk-level trouble
    in one clause while index bugs still propagate.
    """


class DurableWriteError(DurabilityError):
    """A durable write (WAL append, checkpoint publish) failed at the OS.

    Wraps the underlying ``OSError`` (chained as ``__cause__``) so
    callers never have to catch a bare ``OSError`` from the durability
    tier; ``errno`` is preserved for dispatching on the cause.
    """

    def __init__(self, message: str, *, errno: int | None = None) -> None:
        super().__init__(message)
        self.errno = errno


class DiskFullError(DurableWriteError):
    """A durable write failed with ``ENOSPC``.

    Distinguished from other :class:`DurableWriteError` causes because
    it is the one a caller can *act* on without operator intervention:
    checkpoint, compact the WAL's covered segments, and retry.
    """


def wrap_os_error(exc: OSError, what: str) -> DurableWriteError:
    """Map an ``OSError`` from a durable write to its typed form.

    ``ENOSPC`` becomes :class:`DiskFullError` (the caller can free
    space by compacting and retry); everything else becomes a plain
    :class:`DurableWriteError`.  Callers re-raise the result with
    ``from exc`` so the original is chained.
    """
    if exc.errno == _errno.ENOSPC:
        return DiskFullError(
            f"{what} failed: no space left on device", errno=exc.errno
        )
    return DurableWriteError(f"{what} failed: {exc}", errno=exc.errno)


class WalError(DurabilityError):
    """Base class for write-ahead-log failures."""


class WalCorruptionError(WalError):
    """A WAL segment is damaged beyond the recovery skip budget.

    Individual bit-flipped records (CRC mismatch) and a torn tail are
    *recoverable* — the scanner skips or truncates them and counts the
    damage — but more skipped records than ``max_skips`` means the log
    itself cannot be trusted, and recovery must stop with this error
    rather than silently replay a hole-ridden history.
    """


class WalSequenceError(WalError):
    """WAL contents and the checkpoint position cannot be reconciled.

    Raised when the replay tail has a hole (a batch newer than the
    checkpoint was lost to corruption or truncation) or when the
    checkpoint claims a position beyond anything the log ever recorded
    — either way the WAL cannot reproduce the uninterrupted run, and a
    typed error beats a silently wrong answer.
    """


class QuarantineError(ReproError):
    """A record was rejected at the ingest boundary under ``RAISE`` policy.

    Carries the offending record and the rejection reason so callers
    that opted into fail-fast ingestion see exactly what was refused.
    """

    def __init__(self, reason: str, record: object = None) -> None:
        super().__init__(reason)
        self.reason = reason
        self.record = record


class SourceRetryExhaustedError(ReproError):
    """A transient-failure retry loop ran out of attempts.

    Raised by :class:`~repro.resilience.supervisor.RetryingSource` when
    the wrapped source keeps failing past ``max_retries``; the last
    underlying exception is chained as ``__cause__``.
    """


class UnrecoverableMonitorError(ReproError):
    """A supervised monitor failed and could not be healed.

    Raised by :class:`~repro.resilience.supervisor.MonitorSupervisor`
    when rebuilding from the surviving window also fails, or the heal
    budget (``max_heals``) is exhausted.  The original failure is
    chained as ``__cause__``.
    """


class StreamExhaustedWarning(RuntimeWarning):
    """A stream source ran dry before the requested work completed.

    Emitted (never raised) by :class:`~repro.engine.engine.StreamEngine`
    when ``prime()`` cannot fill the requested count or ``run()``
    executes fewer batches than asked — benchmarks that silently run
    short would otherwise report numbers for a workload that never
    happened.
    """
