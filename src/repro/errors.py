"""Exception hierarchy for the repro library.

Every error raised intentionally by this package derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting genuine bugs (``TypeError`` and friends)
propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidGeometryError(ReproError):
    """A rectangle or region was constructed with inverted or NaN bounds."""


class InvalidParameterError(ReproError):
    """A query, window or index parameter is outside its valid domain."""


class WindowOrderError(ReproError):
    """Objects were pushed into a time-based window out of timestamp order."""


class EmptyWindowError(ReproError):
    """An operation that requires alive objects was invoked on an empty window."""


class InvariantViolationError(ReproError):
    """An internal index invariant check failed.

    Raised only from explicit ``check_invariants()`` calls; production
    paths never pay for the verification.
    """


class StreamExhaustedWarning(RuntimeWarning):
    """A stream source ran dry before the requested work completed.

    Emitted (never raised) by :class:`~repro.engine.engine.StreamEngine`
    when ``prime()`` cannot fill the requested count or ``run()``
    executes fewer batches than asked — benchmarks that silently run
    short would otherwise report numbers for a workload that never
    happened.
    """
