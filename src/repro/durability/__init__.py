"""Durable ingest journalling: WAL segments, records, and recovery.

The package that removes the "sources are deterministic and
replayable" assumption from the recovery story (see
:mod:`repro.durability.wal` for the architecture overview and
``docs/DURABILITY.md`` for the operator-facing contract).
"""

from __future__ import annotations

from repro.durability.inspect import inspect_wal
from repro.durability.record import (
    FrameScan,
    ScannedRecord,
    decode_payload,
    encode_payload,
    encode_record,
    objects_from_payload,
    objects_to_payload,
    scan_frames,
)
from repro.durability.recovery import (
    DEFAULT_MAX_SKIPS,
    RecoveredTail,
    WalScan,
    describe,
    reconcile,
    scan_wal,
)
from repro.durability.segment import (
    FsyncPolicy,
    list_segments,
    segment_first_seq,
    segment_name,
)
from repro.durability.wal import WriteAheadLog

__all__ = [
    "DEFAULT_MAX_SKIPS",
    "FrameScan",
    "FsyncPolicy",
    "RecoveredTail",
    "ScannedRecord",
    "WalScan",
    "WriteAheadLog",
    "decode_payload",
    "describe",
    "encode_payload",
    "encode_record",
    "inspect_wal",
    "list_segments",
    "objects_from_payload",
    "objects_to_payload",
    "reconcile",
    "scan_frames",
    "scan_wal",
    "segment_first_seq",
    "segment_name",
]
