"""Offline WAL inspection for the ``maxrs-stream wal inspect`` command.

Everything here is read-only and tolerant: a damaged log still
produces a report (the point of inspection is triage), and only
``max_skips`` exhaustion during a *strict* verify raises.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.durability.record import decode_payload, scan_frames
from repro.durability.segment import list_segments
from repro.errors import WalCorruptionError

__all__ = ["inspect_wal"]


def _segment_doc(first_seq: int, path: Path) -> dict[str, Any]:
    with path.open("rb") as fh:
        scan = scan_frames(fh)
        fh.seek(0, 2)
        size = fh.tell()
    records = []
    for record in scan.records:
        entry: dict[str, Any] = {
            "seq": record.seq,
            "offset": record.offset,
            "ok": record.ok,
        }
        if record.ok:
            try:
                document = decode_payload(record.payload)
            except WalCorruptionError:
                entry["ok"] = False
                entry["reason"] = "payload"
            else:
                entry["kind"] = document.get("kind")
                entry["index"] = document.get("index")
                entry["objects"] = len(document.get("objects", []))
        else:
            entry["reason"] = record.reason
        records.append(entry)
    return {
        "segment": path.name,
        "first_seq": first_seq,
        "bytes": size,
        "torn": scan.torn,
        "torn_bytes": size - scan.truncate_at if scan.torn else 0,
        "records": records,
    }


def inspect_wal(directory: str | Path) -> dict[str, Any]:
    """Walk every segment under ``directory`` into a JSON-able report.

    The report's top level carries the verdicts a human (or the CI
    durability-smoke job) wants first: whether every record verified,
    how many were damaged, and whether any tail is torn; per-segment
    detail follows.
    """
    directory = Path(directory)
    segments = [
        _segment_doc(first_seq, path)
        for first_seq, path in list_segments(directory)
    ]
    damaged = sum(
        1
        for segment in segments
        for record in segment["records"]
        if not record["ok"]
    )
    total = sum(len(segment["records"]) for segment in segments)
    return {
        "directory": str(directory),
        "segments": len(segments),
        "records": total,
        "damaged_records": damaged,
        "torn_segments": sum(1 for s in segments if s["torn"]),
        "clean": damaged == 0 and all(not s["torn"] for s in segments),
        "detail": segments,
    }
