"""WAL recovery: scan, damage accounting, and checkpoint reconciliation.

Recovery reads the whole log (oldest surviving segment first) and
classifies every frame:

* complete + CRC-valid — replayable;
* complete + CRC-invalid — a **bit flip**; skipped, up to a budget
  (``max_skips``), beyond which the log is declared untrustworthy
  (:class:`~repro.errors.WalCorruptionError`);
* incomplete tail — **torn** by a crash mid-append; truncated.  Under
  the append-before-apply contract a torn record was never applied to
  any monitor, so truncation loses nothing that needs replaying.

The scan alone only proves *what survived*.  :func:`reconcile` proves
it is *enough*: given the checkpoint's recorded position ``p`` (batches
applied before the snapshot), the replay tail must contain exactly the
batch indexes ``p+1, p+2, ..., last`` with no holes.  A skipped record
whose index is ``<= p`` is harmless — its effects are inside the
checkpoint — but a hole after ``p`` means the WAL cannot reproduce the
uninterrupted run, and recovery stops with a typed
:class:`~repro.errors.WalSequenceError` instead of replaying a gapped
history into a silently wrong answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.core.objects import SpatialObject
from repro.durability.record import (
    decode_payload,
    objects_from_payload,
    scan_frames,
)
from repro.durability.segment import list_segments
from repro.errors import (
    InvalidParameterError,
    WalCorruptionError,
    WalSequenceError,
)

__all__ = ["WalScan", "scan_wal", "reconcile", "RecoveredTail"]

# how many CRC-damaged records a recovery scan tolerates before it
# declares the log untrustworthy; media that flips more than a handful
# of records is failing, not unlucky
DEFAULT_MAX_SKIPS = 4


@dataclass
class WalScan:
    """Everything a full-log scan learned, before reconciliation.

    Attributes:
        batches: ``(index, objects)`` for every readable batch record,
            in log order.
        spills: ``(index, objects, seq)`` for every readable spill
            record, in log order (recovery uses only the newest —
            earlier spills belong to crashes already recovered from).
        last_seq: Highest sequence number seen (0 for an empty log).
        last_index: Highest batch index among readable records.
        skipped: Sequence numbers of CRC-damaged records that were
            skipped.
        skipped_indexes: Batch indexes provably lost to damage —
            inferred from the index gap around each skipped record
            (empty when damaged records were spills or duplicates).
        truncated_segments: Segment paths whose tail was torn.
        segments: Number of segment files scanned.
    """

    batches: list[tuple[int, list[SpatialObject]]] = field(
        default_factory=list
    )
    spills: list[tuple[int, list[SpatialObject], int]] = field(
        default_factory=list
    )
    last_seq: int = 0
    last_index: int = 0
    skipped: list[int] = field(default_factory=list)
    skipped_indexes: list[int] = field(default_factory=list)
    truncated_segments: list[Path] = field(default_factory=list)
    segments: int = 0

    @property
    def latest_spill(
        self,
    ) -> tuple[int, list[SpatialObject], int] | None:
        """The newest spill record, if any crash ever journalled one."""
        return self.spills[-1] if self.spills else None


def scan_wal(
    directory: str | Path, *, max_skips: int = DEFAULT_MAX_SKIPS
) -> WalScan:
    """Read every segment under ``directory`` into a :class:`WalScan`.

    Raises:
        WalCorruptionError: More than ``max_skips`` records failed CRC
            verification — the log is damaged beyond the trust budget.
        InvalidParameterError: ``max_skips`` is negative.
    """
    if max_skips < 0:
        raise InvalidParameterError(
            f"max_skips must be >= 0, got {max_skips}"
        )
    directory = Path(directory)
    result = WalScan()
    batch_indexes_seen: set[int] = set()
    for _first_seq, path in list_segments(directory):
        result.segments += 1
        with path.open("rb") as fh:
            scan = scan_frames(fh)
        if scan.torn:
            result.truncated_segments.append(path)
        for record in scan.records:
            if not record.ok:
                result.skipped.append(record.seq)
                if len(result.skipped) > max_skips:
                    raise WalCorruptionError(
                        f"WAL under {directory} has "
                        f"{len(result.skipped)} CRC-damaged records, "
                        f"more than the skip budget of {max_skips}; "
                        f"refusing to replay an untrustworthy log"
                    )
                continue
            result.last_seq = max(result.last_seq, record.seq)
            document = decode_payload(record.payload)
            index = int(document["index"])
            objects = objects_from_payload(document["objects"])
            kind = document.get("kind")
            if kind == "batch":
                result.batches.append((index, objects))
                batch_indexes_seen.add(index)
                result.last_index = max(result.last_index, index)
            elif kind == "spill":
                result.spills.append((index, objects, record.seq))
                result.last_index = max(result.last_index, index)
            else:
                raise WalCorruptionError(
                    f"WAL record seq={record.seq} has unknown kind "
                    f"{kind!r}"
                )
    # a skipped record's batch index is unrecoverable, but a hole in
    # the otherwise-contiguous batch index sequence pins it down
    if result.batches:
        low = min(batch_indexes_seen)
        high = max(batch_indexes_seen)
        result.skipped_indexes = [
            i for i in range(low, high + 1) if i not in batch_indexes_seen
        ]
    return result


@dataclass(frozen=True)
class RecoveredTail:
    """The reconciled replay plan for one recovery.

    Attributes:
        batches: Batches to replay, in index order — exactly the
            indexes ``position+1 .. last_index``.
        spill: Objects from the newest spill record, to be restored
            into the backpressure queue's pending buffer (empty list
            when no spill applies).
        position: The checkpoint position the tail was reconciled
            against.
        replayed_indexes: Convenience: indexes of ``batches``.
    """

    batches: tuple[tuple[int, list[SpatialObject]], ...]
    spill: list[SpatialObject]
    position: int

    @property
    def replayed_indexes(self) -> tuple[int, ...]:
        return tuple(index for index, _objects in self.batches)


def reconcile(scan: WalScan, position: int) -> RecoveredTail:
    """Check the scanned log can replay from ``position`` and plan it.

    ``position`` is the checkpoint's recorded batch count (0 for a cold
    start).  Damage at or below ``position`` is forgiven — those
    batches live inside the checkpoint.  Past ``position`` the batch
    indexes must be complete and contiguous.

    Raises:
        WalSequenceError: The checkpoint claims a position the log
            never reached, a replay batch was lost to damage, or the
            tail has a hole.
    """
    if position < 0:
        raise InvalidParameterError(
            f"checkpoint position must be >= 0, got {position}"
        )
    if position > scan.last_index:
        raise WalSequenceError(
            f"checkpoint records position {position} but the WAL's "
            f"newest record has index {scan.last_index}: the log and "
            f"checkpoint diverged (wrong directory, or the WAL was "
            f"compacted past its checkpoint)"
        )
    lost = [i for i in scan.skipped_indexes if i > position]
    if lost:
        raise WalSequenceError(
            f"replay tail after position {position} lost batch "
            f"index(es) {lost} to corruption; the WAL cannot "
            f"reproduce the uninterrupted run"
        )
    by_index: dict[int, list[SpatialObject]] = {}
    for index, objects in scan.batches:
        if index > position:
            by_index[index] = objects
    expected = list(range(position + 1, scan.last_index + 1))
    tail: list[tuple[int, list[SpatialObject]]] = []
    for index in expected:
        if index not in by_index:
            # an index can legitimately be absent when the newest
            # record is a spill at last_index with no batch at that
            # index yet — only interior holes are divergence
            if index < scan.last_index or any(
                i > index for i in by_index
            ):
                raise WalSequenceError(
                    f"replay tail is missing batch index {index} "
                    f"(checkpoint position {position}, WAL last index "
                    f"{scan.last_index})"
                )
            continue
        tail.append((index, by_index[index]))
    spill = scan.latest_spill
    spill_objects: list[SpatialObject] = []
    if (
        spill is not None
        and spill[0] >= position
        and spill[2] == scan.last_seq
    ):
        # restore a spill only when it is the log's final readable
        # record: a spill is journalled at the instant of a crash, so
        # anything appended after it means a later incarnation already
        # restored (or re-processed) that buffer — re-queueing it again
        # would duplicate objects.  A spill older than the checkpoint
        # position is equally stale.
        spill_objects = spill[1]
    return RecoveredTail(
        batches=tuple(tail), spill=spill_objects, position=position
    )


def describe(scan: WalScan) -> dict[str, Any]:
    """Plain-data summary of a scan (the ``wal inspect`` payload)."""
    return {
        "segments": scan.segments,
        "records": len(scan.batches) + len(scan.spills),
        "batches": len(scan.batches),
        "spills": len(scan.spills),
        "last_seq": scan.last_seq,
        "last_index": scan.last_index,
        "skipped_records": list(scan.skipped),
        "skipped_indexes": list(scan.skipped_indexes),
        "truncated_segments": [
            str(path) for path in scan.truncated_segments
        ],
    }
