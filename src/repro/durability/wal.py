"""Segmented append-only write-ahead log for admitted arrival batches.

:class:`WriteAheadLog` journals every batch *before* it reaches the
compute tier, so crash recovery becomes *checkpoint + WAL-tail replay
from disk* — zero reads of the original stream source, which is the
only recovery story that holds for live spatial streams (the paper's
setting) where an arrival is gone the moment it is consumed.

Records (see :mod:`repro.durability.record`) carry two numbers:

* ``seq`` — the log's own monotone record counter, CRC-protected in
  the frame header; gap-free for an undamaged log;
* ``index`` — the *batch index* in the payload: the engine's count of
  applied batches, the same coordinate
  :class:`~repro.resilience.checkpoint.CheckpointManager` records as
  its position.  Replay after a checkpoint at position ``p`` feeds
  exactly the batch records with ``index > p``.

Two record kinds share the log: ``batch`` (one applied arrival batch)
and ``spill`` (the backpressure queue's in-flight buffer journalled at
a consumer crash — see :meth:`~repro.overload.backpressure.
BackpressureQueue.spill`).  Record indexes are non-decreasing in append
order, which is what makes retention a directory-level operation:
a segment is fully covered by a checkpoint at ``floor`` as soon as the
*next* segment's first record has ``index <= floor`` (see
:meth:`WriteAheadLog.compact`).

Write failures never surface as bare ``OSError``: ``ENOSPC`` becomes
:class:`~repro.errors.DiskFullError` (actionable — checkpoint, compact,
retry) and anything else :class:`~repro.errors.DurableWriteError`.
A ``fault_hook`` attribute lets the soak injectors simulate exactly
those failures on the append path.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List

from repro.core.objects import SpatialObject
from repro.durability.record import (
    decode_payload,
    encode_payload,
    encode_record,
    iter_frames,
    objects_to_payload,
)
from repro.durability.segment import (
    FsyncPolicy,
    list_segments,
    segment_name,
)
from repro.errors import (
    InvalidParameterError,
    WalError,
    wrap_os_error,
)
from repro.obs.metrics import NULL_METRICS, Metrics

__all__ = ["WriteAheadLog"]


@dataclass
class _Segment:
    first_seq: int
    path: Path
    first_index: int | None  # lazily read for segments found on open


class WriteAheadLog:
    """Durable journal of admitted batches, segmented and compactable.

    Args:
        directory: Where segment files live; created if missing.
            Reopening a directory resumes the log: the newest segment
            is scanned, a torn tail (a crash mid-append) is truncated
            away, and appends continue after the last complete record.
        fsync: Durability policy (see
            :class:`~repro.durability.segment.FsyncPolicy`).  The
            string forms ``"always"`` / ``"batch"`` / ``"os"`` are
            accepted.
        segment_records: Rotate to a fresh segment after this many
            records (bounds both the recovery scan unit and the
            granularity of retention).
        metrics: Scope for the ``wal_*`` counters.

    Attributes:
        fault_hook: Test/soak injection point — when set, called as
            ``fault_hook(op)`` (``op`` is ``"append"`` or ``"fsync"``)
            before the corresponding physical operation; an ``OSError``
            raised by the hook takes the same typed-error path as a
            real disk failure.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        fsync: FsyncPolicy | str = FsyncPolicy.ALWAYS,
        segment_records: int = 256,
        metrics: Metrics = NULL_METRICS,
    ) -> None:
        if segment_records <= 0:
            raise InvalidParameterError(
                f"segment_records must be positive, got {segment_records}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync_policy = FsyncPolicy.coerce(fsync)
        self.segment_records = int(segment_records)
        self.metrics = metrics
        self.fault_hook: Callable[[str], None] | None = None
        self.last_seq = 0  # newest record sequence number on disk
        self.last_index = 0  # newest batch index journalled
        self.appends = 0
        self.fsyncs = 0
        self.torn_tails_truncated = 0
        self.segments_compacted = 0
        self._segments: List[_Segment] = []
        self._fh = None  # open handle on the newest segment
        self._records_in_current = 0
        self._resume()

    # -- opening / resuming --------------------------------------------------

    def _resume(self) -> None:
        """Adopt existing segments; truncate a torn tail on the newest."""
        for first_seq, path in list_segments(self.directory):
            self._segments.append(
                _Segment(first_seq=first_seq, path=path, first_index=None)
            )
        if not self._segments:
            return
        newest = self._segments[-1]
        with newest.path.open("rb") as fh:
            last_seq = newest.first_seq - 1
            last_index = 0
            count = 0
            truncate_at = 0
            for item in iter_frames(fh):
                if isinstance(item, int):
                    truncate_at = item
                    break
                count += 1
                # damaged frames still reserve their sequence number —
                # reusing it after a skip would forge history
                last_seq = max(last_seq, item.seq)
                if item.ok:
                    last_index = max(
                        last_index, int(decode_payload(item.payload)["index"])
                    )
            fh.seek(0, 2)
            size = fh.tell()
        if truncate_at < size:
            with newest.path.open("r+b") as fh:
                fh.truncate(truncate_at)
            self.torn_tails_truncated += 1
            self.metrics.inc("wal_torn_tail_truncations")
        self.last_seq = last_seq
        self.last_index = last_index
        self._records_in_current = count
        if last_index == 0:
            # the newest segment can be empty (a rotation's fresh file,
            # or its only record torn away): walk older segments so the
            # resumed index never regresses into already-used history
            for segment in reversed(self._segments[:-1]):
                found = self._last_index_in(segment)
                if found:
                    self.last_index = found
                    break

    # -- appending -----------------------------------------------------------

    def append_batch(
        self, objects: list[SpatialObject], index: int | None = None
    ) -> int:
        """Journal one arrival batch; returns its record ``seq``.

        ``index`` defaults to ``last_index + 1`` — the engine appends
        batches in apply order, so the default keeps the WAL aligned
        with the checkpoint position without threading a counter
        through every caller.
        """
        if not objects:
            raise InvalidParameterError("cannot journal an empty batch")
        batch_index = self.last_index + 1 if index is None else int(index)
        if batch_index <= self.last_index:
            raise InvalidParameterError(
                f"batch index must advance: {batch_index} after "
                f"{self.last_index}"
            )
        seq = self._append(
            {
                "kind": "batch",
                "index": batch_index,
                "objects": objects_to_payload(objects),
            }
        )
        self.last_index = batch_index
        return seq

    def log_spill(self, objects: list[SpatialObject], index: int) -> int:
        """Journal a consumer-crash spill (possibly empty) at ``index``.

        Spill records are always synced regardless of policy: they are
        written *because* a crash is in progress, and losing them means
        losing the in-flight buffer they preserve.
        """
        if index < 0:
            raise InvalidParameterError(f"spill index must be >= 0, got {index}")
        seq = self._append(
            {
                "kind": "spill",
                "index": int(index),
                "objects": objects_to_payload(objects),
            }
        )
        self._sync_current(force=True)
        return seq

    def _append(self, document: dict) -> int:
        seq = self.last_seq + 1
        frame = encode_record(seq, encode_payload(document))
        fh = self._current_handle()
        try:
            if self.fault_hook is not None:
                self.fault_hook("append")
            fh.write(frame)
            fh.flush()
            if self.fsync_policy is FsyncPolicy.ALWAYS:
                self._fsync(fh)
        except OSError as exc:
            raise wrap_os_error(exc, "WAL append") from exc
        self.last_seq = seq
        self.appends += 1
        self._records_in_current += 1
        self.metrics.inc("wal_appends")
        self.metrics.inc("wal_bytes_written", len(frame))
        self.metrics.set_gauge("wal_last_seq", seq)
        if self._records_in_current >= self.segment_records:
            self._rotate()
        return seq

    def sync(self) -> None:
        """Force buffered appends to stable storage (``BATCH`` policy's
        durability point; a flush-only no-op under ``OS``)."""
        fh = self._fh
        if fh is None:
            return
        try:
            fh.flush()
            if self.fsync_policy is not FsyncPolicy.OS:
                self._fsync(fh)
        except OSError as exc:
            raise wrap_os_error(exc, "WAL sync") from exc

    def _sync_current(self, force: bool = False) -> None:
        fh = self._fh
        if fh is None:
            return
        try:
            fh.flush()
            if force or self.fsync_policy is not FsyncPolicy.OS:
                self._fsync(fh)
        except OSError as exc:
            raise wrap_os_error(exc, "WAL sync") from exc

    def _fsync(self, fh) -> None:
        if self.fault_hook is not None:
            self.fault_hook("fsync")
        os.fsync(fh.fileno())
        self.fsyncs += 1
        self.metrics.inc("wal_fsyncs")

    def _current_handle(self):
        if self._fh is None or self._fh.closed:
            if self._segments:
                segment = self._segments[-1]
                self._fh = segment.path.open("ab")
            else:
                self._open_segment(self.last_seq + 1, self.last_index + 1)
        return self._fh

    def _open_segment(self, first_seq: int, first_index: int) -> None:
        path = self.directory / segment_name(first_seq)
        self._segments.append(
            _Segment(first_seq=first_seq, path=path, first_index=first_index)
        )
        self._fh = path.open("ab")
        self._records_in_current = 0
        self.metrics.inc("wal_segments_created")

    def _rotate(self) -> None:
        """Seal the current segment and start the next one."""
        self._sync_current(force=self.fsync_policy is not FsyncPolicy.OS)
        self._fh.close()
        self._fh = None
        self._open_segment(self.last_seq + 1, self.last_index + 1)

    # -- retention -----------------------------------------------------------

    def compact(self, floor_index: int) -> int:
        """Delete segments fully covered by a checkpoint at ``floor_index``.

        Record indexes are non-decreasing in append order, so a segment
        is provably covered as soon as its successor's first record has
        ``index <= floor_index`` — checked from the successor's first
        frame alone, without reading the candidate.  The newest segment
        is never deleted.  Returns the number of segments removed.

        Call this with the *oldest retained* checkpoint position
        (:attr:`CheckpointManager.retention_floor`), not the newest —
        recovery may fall back through the rotation history, and the
        WAL must still hold the tail for the oldest rotation it can
        land on.
        """
        removed = 0
        while len(self._segments) >= 2:
            successor = self._segments[1]
            if successor.first_index is None:
                successor.first_index = self._read_first_index(successor)
            if (
                successor.first_index is None
                or successor.first_index > floor_index
            ):
                break
            victim = self._segments.pop(0)
            try:
                victim.path.unlink()
            except OSError as exc:  # pragma: no cover - racing cleanup
                raise wrap_os_error(exc, "WAL compaction") from exc
            removed += 1
        if removed:
            self.segments_compacted += removed
            self.metrics.inc("wal_segments_compacted", removed)
        return removed

    def _read_first_index(self, segment: _Segment) -> int | None:
        """Index of a segment's first readable record (None if none)."""
        with segment.path.open("rb") as fh:
            for item in iter_frames(fh):
                if isinstance(item, int):
                    return None
                if item.ok:
                    return int(decode_payload(item.payload)["index"])

    def _last_index_in(self, segment: _Segment) -> int:
        """Highest readable record index in a segment (0 if none)."""
        last = 0
        with segment.path.open("rb") as fh:
            for item in iter_frames(fh):
                if isinstance(item, int):
                    break
                if item.ok:
                    last = max(
                        last, int(decode_payload(item.payload)["index"])
                    )
        return last

    # -- lifecycle -----------------------------------------------------------

    def note_recovered(self, index: int) -> None:
        """Re-align the batch-index counter after a disk recovery."""
        self.last_index = max(self.last_index, int(index))

    @property
    def segments(self) -> list[Path]:
        """Paths of the live segments, oldest first."""
        return [segment.path for segment in self._segments]

    def close(self) -> None:
        """Seal the log (sync + close the open segment handle)."""
        if self._fh is not None and not self._fh.closed:
            try:
                self._sync_current(
                    force=self.fsync_policy is not FsyncPolicy.OS
                )
            except WalError:  # pragma: no cover - best-effort seal
                pass
            self._fh.close()
        self._fh = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
