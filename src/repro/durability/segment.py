"""WAL segment files and the fsync durability policy.

A log is a directory of append-only segment files named by the
sequence number of their first record::

    wal-00000000000000000001.seg
    wal-00000000000000000009.seg
    ...

Naming by first sequence number makes two operations O(1) on the
directory listing alone: finding where to resume appending (the
highest-named segment) and retention (a segment whose *successor*
starts at ``seq <= floor + 1`` is fully covered by a checkpoint at
``floor`` and can be deleted without reading it).

:class:`FsyncPolicy` names the three durability contracts an appender
can buy, from strongest to cheapest:

* ``ALWAYS`` — ``fsync`` after every append.  A record handed back to
  the caller is on disk; a crash can only tear the record *being*
  appended, never lose an acknowledged one.  This is the policy under
  which recovery is exact for non-replayable sources.
* ``BATCH`` — ``fsync`` on an explicit :meth:`~repro.durability.wal.
  WriteAheadLog.sync` (the engine calls it at checkpoint boundaries)
  and on segment rotation/close.  A crash may lose the suffix appended
  since the last sync — bounded, and recovery still truncates to a
  consistent prefix.
* ``OS`` — never ``fsync``; the page cache decides.  Fastest, survives
  *process* crashes (the OS still holds the pages) but not power loss.

All three policies write through the same append path, so torn-tail
truncation and CRC skipping behave identically — only the *loss
window* after a crash differs.
"""

from __future__ import annotations

import enum
import re
from pathlib import Path

from repro.errors import InvalidParameterError

__all__ = ["FsyncPolicy", "segment_name", "segment_first_seq", "list_segments"]

_SEGMENT_RE = re.compile(r"^wal-(\d{20})\.seg$")


class FsyncPolicy(enum.Enum):
    """When appended records are forced to stable storage."""

    ALWAYS = "always"
    BATCH = "batch"
    OS = "os"

    @classmethod
    def coerce(cls, value: "FsyncPolicy | str") -> "FsyncPolicy":
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError:
            choices = ", ".join(p.value for p in cls)
            raise InvalidParameterError(
                f"unknown fsync policy {value!r}; choose one of {choices}"
            ) from None


def segment_name(first_seq: int) -> str:
    """File name of the segment whose first record is ``first_seq``."""
    if first_seq <= 0:
        raise InvalidParameterError(
            f"segment first seq must be positive, got {first_seq}"
        )
    return f"wal-{first_seq:020d}.seg"


def segment_first_seq(path: Path) -> int | None:
    """Parse a segment file name back to its first sequence number."""
    match = _SEGMENT_RE.match(path.name)
    return int(match.group(1)) if match else None


def list_segments(directory: Path) -> list[tuple[int, Path]]:
    """All segment files under ``directory`` as ``(first_seq, path)``,
    ordered by first sequence number.  Non-segment files are ignored —
    the directory may also hold checkpoints and dead-letter journals."""
    found: list[tuple[int, Path]] = []
    for path in directory.iterdir():
        first = segment_first_seq(path)
        if first is not None:
            found.append((first, path))
    found.sort()
    return found
