"""Length-prefixed WAL record framing with per-record CRC32.

One record is one journalled event (an applied arrival batch, or a
crash-time queue spill).  The frame is designed so that a scanner can
recover from exactly the two kinds of damage a crashed appender leaves
behind:

* a **torn tail** — the process died mid-append, so the file ends with
  a partial frame.  The length prefix makes this detectable (fewer
  bytes remain than the header promises), and everything before the
  torn frame is still readable;
* a **bit flip** — post-write media damage inside an otherwise complete
  frame.  The CRC32 covers the sequence number *and* the payload, so
  any flipped bit in either fails verification and the record can be
  skipped without desynchronising the scan (the length prefix still
  frames it correctly as long as the header survived; a damaged header
  is indistinguishable from a torn tail and truncates the scan there).

Frame layout (big-endian)::

    magic   2 bytes   b"WR"
    crc32   4 bytes   CRC32 over seq bytes + payload bytes
    seq     8 bytes   monotone record sequence number
    length  4 bytes   payload byte count
    payload N bytes   canonical JSON (see :func:`encode_payload`)

Payloads are canonical JSON (sorted keys, no whitespace) so a record
byte-identically round-trips through decode + re-encode — the property
the crash-consistency loop in ``scripts/wal_crashtest.py`` pins.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass
from typing import Any, BinaryIO, Iterator

from repro.core.objects import SpatialObject
from repro.errors import WalCorruptionError

__all__ = [
    "HEADER",
    "MAGIC",
    "FrameScan",
    "ScannedRecord",
    "decode_payload",
    "encode_payload",
    "encode_record",
    "iter_frames",
    "objects_from_payload",
    "objects_to_payload",
    "scan_frames",
]

MAGIC = b"WR"
# crc32 (I), seq (Q), payload length (I) — the magic rides in front
HEADER = struct.Struct(">IQI")
_FRAME_OVERHEAD = len(MAGIC) + HEADER.size

# a single arrival batch is at most a few thousand objects; anything
# claiming more than this is a corrupt length field, not a real record
MAX_PAYLOAD = 64 * 1024 * 1024


def _crc(seq: int, payload: bytes) -> int:
    return zlib.crc32(payload, zlib.crc32(seq.to_bytes(8, "big"))) & 0xFFFFFFFF


def encode_record(seq: int, payload: bytes) -> bytes:
    """One complete frame for ``payload`` at sequence number ``seq``."""
    return MAGIC + HEADER.pack(_crc(seq, payload), seq, len(payload)) + payload


def encode_payload(document: dict[str, Any]) -> bytes:
    """Canonical JSON bytes: sorted keys, no whitespace."""
    return json.dumps(
        document, sort_keys=True, separators=(",", ":")
    ).encode()


def decode_payload(payload: bytes) -> dict[str, Any]:
    """Parse a frame payload back into its document.

    Only called on CRC-verified payloads, so a parse failure means the
    *writer* produced garbage — surfaced as corruption, not ignored.
    """
    try:
        document = json.loads(payload.decode())
    except (ValueError, UnicodeDecodeError) as exc:
        raise WalCorruptionError(
            f"CRC-valid WAL payload is not JSON: {exc}"
        ) from exc
    if not isinstance(document, dict):
        raise WalCorruptionError(
            f"WAL payload must be a JSON object, got "
            f"{type(document).__name__}"
        )
    return document


def objects_to_payload(objects: list[SpatialObject]) -> list[list[float]]:
    """Compact positional encoding of a batch: ``[oid, x, y, w, t]``."""
    return [
        [o.oid, o.x, o.y, o.weight, o.timestamp] for o in objects
    ]


def objects_from_payload(rows: list[list[float]]) -> list[SpatialObject]:
    """Rebuild a batch from its positional encoding.

    JSON floats repr-round-trip exactly, so the rebuilt objects compare
    equal field-for-field with the originals — which is what makes WAL
    replay bit-identical to the uninterrupted run.
    """
    return [
        SpatialObject(
            x=float(x),
            y=float(y),
            weight=float(w),
            timestamp=float(t),
            oid=int(oid),
        )
        for oid, x, y, w, t in rows
    ]


@dataclass(frozen=True)
class ScannedRecord:
    """One frame the scanner classified.

    ``ok`` frames carry a verified payload; damaged frames carry the
    reason instead (``"crc"``) and a ``None`` payload.
    """

    seq: int
    offset: int
    payload: bytes | None
    reason: str | None = None

    @property
    def ok(self) -> bool:
        return self.payload is not None


@dataclass(frozen=True)
class FrameScan:
    """Outcome of scanning one segment file.

    Attributes:
        records: Every frame found, valid or CRC-damaged, in file order.
        truncate_at: Byte offset of the first torn frame — the scan
            could not read a complete frame past it.  Equal to the file
            size when the tail is clean.
        torn: True when trailing bytes had to be abandoned.
    """

    records: tuple[ScannedRecord, ...]
    truncate_at: int
    torn: bool


def iter_frames(fh: BinaryIO) -> Iterator[ScannedRecord | int]:
    """Low-level frame walk: yields :class:`ScannedRecord` per complete
    frame, then the truncation offset (an ``int``) exactly once at the
    end — the file size for a clean tail, the torn frame's start
    otherwise."""
    offset = fh.tell()
    while True:
        head = fh.read(_FRAME_OVERHEAD)
        if len(head) < _FRAME_OVERHEAD:
            yield offset
            return
        if head[: len(MAGIC)] != MAGIC:
            # garbage where a frame should start: everything from here
            # on is unframed noise — treat as a torn tail
            yield offset
            return
        crc, seq, length = HEADER.unpack(head[len(MAGIC):])
        if length > MAX_PAYLOAD:
            yield offset
            return
        payload = fh.read(length)
        if len(payload) < length:
            yield offset
            return
        if _crc(seq, payload) != crc:
            yield ScannedRecord(
                seq=seq, offset=offset, payload=None, reason="crc"
            )
        else:
            yield ScannedRecord(seq=seq, offset=offset, payload=payload)
        offset += _FRAME_OVERHEAD + length


def scan_frames(fh: BinaryIO) -> FrameScan:
    """Scan a segment file from its current position to the end."""
    records: list[ScannedRecord] = []
    truncate_at = fh.tell()
    for item in iter_frames(fh):
        if isinstance(item, int):
            truncate_at = item
            break
        records.append(item)
    fh.seek(0, 2)
    return FrameScan(
        records=tuple(records),
        truncate_at=truncate_at,
        torn=truncate_at < fh.tell(),
    )
