"""Dependency-free metrics primitives: counters, gauges, histograms.

The paper's efficiency argument (§7) is carried by *internal* quantities
— cells visited, branch-and-bound prunings, upper-bound recomputations —
not only wall-clock time.  This module provides the substrate that makes
those quantities first-class observables:

* :class:`Counter` — monotone event count (``cells_visited``);
* :class:`Gauge` — last-written level (``window_size``);
* :class:`Histogram` — streaming distribution summary with optional
  fixed buckets (``update_ms``);
* :class:`Metrics` — a registry of the above under named scopes, so one
  engine run owns a tree like ``g2.cells_visited`` /
  ``g2.window.insertions``;
* :data:`NULL_METRICS` — a no-op registry that instrumented code holds
  by default, so a disabled monitor pays one dynamic dispatch per event
  and allocates nothing.

Snapshots are plain-data (:class:`MetricsSnapshot`) with flattened
dotted names, which makes per-batch deltas, JSON export and CSV rows
trivial downstream (see :mod:`repro.obs.export`).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping

from repro.errors import InvalidParameterError

__all__ = [
    "Counter",
    "Ewma",
    "Gauge",
    "Histogram",
    "Metrics",
    "MetricsSnapshot",
    "NullMetrics",
    "NULL_METRICS",
]


class Counter:
    """Monotone event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise InvalidParameterError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        self.value += amount

    def reset(self) -> None:
        self.value = 0.0


class Gauge:
    """Last-written level; unlike a counter it may move both ways."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def reset(self) -> None:
        self.value = 0.0


class Histogram:
    """Streaming distribution summary: count/sum/min/max (+ buckets).

    Memory is O(1) (O(buckets) with buckets): no samples are retained,
    so hot paths can observe every update without growth.  ``buckets``
    are upper bounds of cumulative bins, Prometheus-style; observations
    above the last bound land in the implicit ``+Inf`` bin.
    """

    __slots__ = ("name", "count", "total", "_min", "_max", "bounds", "bins")

    def __init__(
        self, name: str, buckets: Iterable[float] | None = None
    ) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        if buckets is None:
            self.bounds: tuple[float, ...] = ()
            self.bins: list[int] = []
        else:
            bounds = tuple(float(b) for b in buckets)
            if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
                raise InvalidParameterError(
                    f"histogram {name!r} buckets must be strictly increasing"
                )
            self.bounds = bounds
            self.bins = [0] * (len(bounds) + 1)  # last bin = +Inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if self.bounds:
            self.bins[bisect_left(self.bounds, value)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def minimum(self) -> float:
        return self._min if self.count else 0.0

    @property
    def maximum(self) -> float:
        return self._max if self.count else 0.0

    def summary(self) -> dict[str, float]:
        out = {
            "count": float(self.count),
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
        }
        if self.bounds:
            running = 0
            for bound, n in zip(self.bounds, self.bins):
                running += n
                out[f"le_{bound:g}"] = float(running)
            out["le_inf"] = float(self.count)
        return out

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self.bins = [0] * len(self.bins)


class Ewma:
    """Exponentially weighted moving average of an observed series.

    The smoothing primitive behind latency-based control loops (the
    overload :class:`~repro.overload.controller.DeadlineController`
    tracks ``update_ms`` through one of these): ``value`` follows the
    series with weight ``alpha`` on the newest sample, and the first
    sample seeds it directly, so the average is meaningful from the
    first observation on.  Snapshots report it alongside gauges.
    """

    __slots__ = ("name", "alpha", "value", "count")

    def __init__(self, name: str, alpha: float = 0.3) -> None:
        if not (0.0 < alpha <= 1.0):
            raise InvalidParameterError(
                f"ewma {name!r} alpha must be in (0, 1], got {alpha}"
            )
        self.name = name
        self.alpha = float(alpha)
        self.value = 0.0
        self.count = 0

    def observe(self, value: float) -> float:
        if self.count == 0:
            self.value = float(value)
        else:
            self.value += self.alpha * (float(value) - self.value)
        self.count += 1
        return self.value

    def reset(self) -> None:
        self.value = 0.0
        self.count = 0


@dataclass(frozen=True)
class MetricsSnapshot:
    """Point-in-time, plain-data view of a registry (dotted flat names)."""

    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def delta(self, earlier: "MetricsSnapshot") -> "MetricsSnapshot":
        """What happened between ``earlier`` and this snapshot.

        Counters and histogram count/sum subtract; min/max/mean are not
        recoverable from two cumulative summaries and are omitted;
        gauges are levels, so the later value is kept as-is.
        """
        counters = {
            name: value - earlier.counters.get(name, 0.0)
            for name, value in self.counters.items()
        }
        histograms: Dict[str, Dict[str, float]] = {}
        for name, summ in self.histograms.items():
            prev = earlier.histograms.get(name, {})
            histograms[name] = {
                key: summ[key] - prev.get(key, 0.0)
                for key in summ
                if key not in ("min", "max", "mean")
            }
        return MetricsSnapshot(
            counters=counters,
            gauges=dict(self.gauges),
            histograms=histograms,
        )

    def to_dict(self) -> dict[str, object]:
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {k: dict(v) for k, v in self.histograms.items()},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "MetricsSnapshot":
        histograms: Mapping[str, Mapping[str, float]]
        histograms = data.get("histograms", {})  # type: ignore[assignment]
        return cls(
            counters=dict(data.get("counters", {})),  # type: ignore[arg-type]
            gauges=dict(data.get("gauges", {})),  # type: ignore[arg-type]
            histograms={k: dict(v) for k, v in histograms.items()},
        )


class Metrics:
    """Registry of named instruments with named child scopes.

    One registry belongs to one observed component; child scopes nest
    components (``engine → monitor → window``).  Instruments are
    get-or-create by name, so instrumentation sites never need set-up
    code.  Snapshots flatten the tree into dotted names
    (``window.insertions``).
    """

    __slots__ = (
        "namespace",
        "_counters",
        "_gauges",
        "_histograms",
        "_ewmas",
        "_scopes",
    )

    def __init__(self, namespace: str = "") -> None:
        self.namespace = namespace
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._ewmas: Dict[str, Ewma] = {}
        self._scopes: Dict[str, Metrics] = {}

    # -- structure ---------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return True

    def scope(self, name: str) -> "Metrics":
        """Get-or-create the child scope ``name``."""
        child = self._scopes.get(name)
        if child is None:
            child = Metrics(namespace=name)
            self._scopes[name] = child
        return child

    def scopes(self) -> tuple[str, ...]:
        return tuple(self._scopes)

    # -- instruments -------------------------------------------------------

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = Counter(name)
            self._counters[name] = instrument
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = Gauge(name)
            self._gauges[name] = instrument
        return instrument

    def histogram(
        self, name: str, buckets: Iterable[float] | None = None
    ) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = Histogram(name, buckets=buckets)
            self._histograms[name] = instrument
        return instrument

    def ewma(self, name: str, alpha: float = 0.3) -> Ewma:
        instrument = self._ewmas.get(name)
        if instrument is None:
            instrument = Ewma(name, alpha=alpha)
            self._ewmas[name] = instrument
        return instrument

    # -- hot-path conveniences ---------------------------------------------

    def inc(self, name: str, amount: float = 1.0) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # -- lifecycle ---------------------------------------------------------

    def snapshot(self) -> MetricsSnapshot:
        """Flattened cumulative view of this registry and its scopes."""
        counters: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, Dict[str, float]] = {}
        self._collect(counters, gauges, histograms, prefix="")
        return MetricsSnapshot(
            counters=counters, gauges=gauges, histograms=histograms
        )

    def _collect(
        self,
        counters: Dict[str, float],
        gauges: Dict[str, float],
        histograms: Dict[str, Dict[str, float]],
        prefix: str,
    ) -> None:
        for name, c in self._counters.items():
            counters[prefix + name] = c.value
        for name, g in self._gauges.items():
            gauges[prefix + name] = g.value
        # EWMAs snapshot as gauges: a level, not a monotone count
        for name, e in self._ewmas.items():
            gauges[prefix + name] = e.value
        for name, h in self._histograms.items():
            histograms[prefix + name] = h.summary()
        for name, child in self._scopes.items():
            child._collect(counters, gauges, histograms, f"{prefix}{name}.")

    def reset(self) -> None:
        """Zero every instrument, recursively; structure is kept."""
        for c in self._counters.values():
            c.reset()
        for g in self._gauges.values():
            g.reset()
        for h in self._histograms.values():
            h.reset()
        for e in self._ewmas.values():
            e.reset()
        for child in self._scopes.values():
            child.reset()


class _NullInstrument:
    """Shared do-nothing stand-in for any instrument type."""

    __slots__ = ()

    name = "null"
    value = 0.0
    count = 0
    total = 0.0
    mean = 0.0
    minimum = 0.0
    maximum = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def summary(self) -> dict[str, float]:
        return {}

    def reset(self) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics(Metrics):
    """The disabled registry: every operation is a no-op.

    Instrumented code holds :data:`NULL_METRICS` until something
    attaches a real registry, so the disabled cost is a single method
    call per event — no branches at instrumentation sites, no state.
    """

    __slots__ = ()

    @property
    def enabled(self) -> bool:
        return False

    def scope(self, name: str) -> "Metrics":
        return self

    def counter(self, name: str) -> Counter:
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def histogram(
        self, name: str, buckets: Iterable[float] | None = None
    ) -> Histogram:
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def ewma(self, name: str, alpha: float = 0.3) -> Ewma:
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def inc(self, name: str, amount: float = 1.0) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass


#: Module-level singleton every instrumented component defaults to.
NULL_METRICS = NullMetrics()
