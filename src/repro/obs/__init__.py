"""Observability: dependency-free metrics registry + export.

See :mod:`repro.obs.metrics` for the instrument/registry model and
:mod:`repro.obs.export` for the JSON/CSV artefact shapes.
"""

from repro.obs.export import (
    snapshot_rows,
    snapshots_from_dict,
    snapshots_to_dict,
    write_metrics_csv,
    write_metrics_json,
)
from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Ewma,
    Gauge,
    Histogram,
    Metrics,
    MetricsSnapshot,
    NullMetrics,
)

__all__ = [
    "Counter",
    "Ewma",
    "Gauge",
    "Histogram",
    "Metrics",
    "MetricsSnapshot",
    "NullMetrics",
    "NULL_METRICS",
    "snapshot_rows",
    "snapshots_from_dict",
    "snapshots_to_dict",
    "write_metrics_csv",
    "write_metrics_json",
]
