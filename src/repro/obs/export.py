"""Export helpers: metric snapshots → JSON documents / CSV rows.

The CI perf gate and offline analysis both consume the same artefacts:
``snapshots_to_dict`` is the JSON shape, ``snapshot_rows`` the flat
relational shape.  Keeping them here (not in the CLI) lets tests assert
the round-trip without argv plumbing.
"""

from __future__ import annotations

import csv
import json
from typing import IO, Mapping, Sequence

from repro.obs.metrics import MetricsSnapshot

__all__ = [
    "snapshots_to_dict",
    "snapshots_from_dict",
    "snapshot_rows",
    "write_metrics_json",
    "write_metrics_csv",
]


def snapshots_to_dict(
    snapshots: Mapping[str, MetricsSnapshot],
) -> dict[str, dict[str, object]]:
    """JSON-able mapping ``monitor name → snapshot dict``."""
    return {name: snap.to_dict() for name, snap in snapshots.items()}


def snapshots_from_dict(
    data: Mapping[str, Mapping[str, object]],
) -> dict[str, MetricsSnapshot]:
    """Inverse of :func:`snapshots_to_dict`."""
    return {
        name: MetricsSnapshot.from_dict(snap) for name, snap in data.items()
    }


def snapshot_rows(
    snapshots: Mapping[str, MetricsSnapshot],
) -> list[dict[str, object]]:
    """Flat relational rows: one per (monitor, instrument, value).

    Histogram summaries expand to one row per summary statistic
    (``update_ms.count``, ``update_ms.mean``, ...), so the CSV needs no
    nested encoding.
    """
    rows: list[dict[str, object]] = []
    for monitor, snap in snapshots.items():
        for name, value in snap.counters.items():
            rows.append(
                {"monitor": monitor, "kind": "counter",
                 "metric": name, "value": value}
            )
        for name, value in snap.gauges.items():
            rows.append(
                {"monitor": monitor, "kind": "gauge",
                 "metric": name, "value": value}
            )
        for name, summary in snap.histograms.items():
            for stat, value in summary.items():
                rows.append(
                    {"monitor": monitor, "kind": "histogram",
                     "metric": f"{name}.{stat}", "value": value}
                )
    return rows


def write_metrics_json(
    target: str | IO[str], payload: Mapping[str, object]
) -> None:
    """Write any JSON-able metrics payload, sorted and indented."""
    if isinstance(target, str):
        with open(target, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
    else:
        json.dump(payload, target, indent=2, sort_keys=True)
        target.write("\n")


def write_metrics_csv(
    target: str | IO[str],
    snapshots: Mapping[str, MetricsSnapshot],
    fieldnames: Sequence[str] = ("monitor", "kind", "metric", "value"),
) -> None:
    """Write :func:`snapshot_rows` as CSV."""
    rows = snapshot_rows(snapshots)
    if isinstance(target, str):
        with open(target, "w", encoding="utf-8", newline="") as fh:
            _write_csv(fh, rows, fieldnames)
    else:
        _write_csv(target, rows, fieldnames)


def _write_csv(
    fh: IO[str],
    rows: list[dict[str, object]],
    fieldnames: Sequence[str],
) -> None:
    writer = csv.DictWriter(fh, fieldnames=list(fieldnames))
    writer.writeheader()
    writer.writerows(rows)
