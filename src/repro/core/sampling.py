"""Sampling-based approximate MaxRS — the comparator of Tao et al. [25].

The paper's §7.4 explains why the randomised-sampling algorithm of
[25] was *not* benchmarked against the aG2 approximate monitor: its
answer differs run to run, it bounds the error only with high
probability (``1 − 1/n``), and repeating a one-time computation per
batch is exactly the non-incremental pattern Figures 7–9 show to be
slow.  We implement the algorithm in its spirit so the comparison can
actually be made: uniform object sampling, an exact plane sweep on the
sample, and Horvitz–Thompson weight scaling.

This is an *estimator*: the returned region is an exact optimum **of
the sample** and the returned weight is an unbiased estimate of that
region's true weight.  Unlike :class:`~repro.core.ag2.AG2Monitor` with
``epsilon``, there is no deterministic floor — tests and the ablation
benchmark demonstrate both the variance and the monitoring cost.
"""

from __future__ import annotations

import math
import random
from collections import deque
from typing import Deque, Sequence

from repro.core.monitor import MaxRSMonitor
from repro.core.objects import WeightedRect
from repro.core.planesweep import plane_sweep_max
from repro.core.spaces import MaxRSResult, Region
from repro.errors import InvalidParameterError
from repro.window.base import SlidingWindow, WindowUpdate

__all__ = ["sample_maxrs", "suggested_sample_size", "SamplingMonitor"]


def suggested_sample_size(n: int, epsilon: float) -> int:
    """Sample size in the spirit of [25]: ``O(log n / ε²)``, clamped
    to ``[1, n]``.  With this size the relative error of the density
    estimate concentrates below ε with probability ``1 − 1/n`` for the
    regimes the paper considers (dense optima)."""
    if n <= 0:
        return 0
    if not (0.0 < epsilon < 1.0):
        raise InvalidParameterError(
            f"epsilon must be in (0, 1), got {epsilon}"
        )
    size = math.ceil(4.0 * math.log(max(n, 2)) / (epsilon * epsilon))
    return max(1, min(n, size))


def sample_maxrs(
    rects: Sequence[WeightedRect],
    sample_size: int,
    rng: random.Random,
) -> Region | None:
    """One-shot sampled MaxRS.

    Draws ``sample_size`` rectangles without replacement, solves the
    sample exactly, and scales the weight by ``n / sample_size``
    (Horvitz–Thompson).  Returns ``None`` on an empty input.
    """
    n = len(rects)
    if n == 0:
        return None
    if sample_size <= 0:
        raise InvalidParameterError(
            f"sample size must be positive, got {sample_size}"
        )
    if sample_size >= n:
        return plane_sweep_max(rects)
    sample = rng.sample(list(rects), sample_size)
    region = plane_sweep_max(sample)
    if region is None:
        return None
    scale = n / sample_size
    return Region(rect=region.rect, weight=region.weight * scale)


class SamplingMonitor(MaxRSMonitor):
    """Monitoring by repeated one-time sampled computation.

    This is the pattern the paper argues against: every batch triggers
    a fresh sample and a fresh sweep, so there is no incrementality and
    no run-to-run stability.  Exists as the [25] comparator for the
    approximation ablation benchmark.

    Args:
        epsilon: Target error used to derive the sample size.
        seed: Private RNG seed (answers still vary batch to batch
            because each batch draws a fresh sample).
    """

    def __init__(
        self,
        rect_width: float,
        rect_height: float,
        window: SlidingWindow,
        epsilon: float = 0.1,
        seed: int = 0,
    ) -> None:
        super().__init__(rect_width, rect_height, window)
        if not (0.0 < epsilon < 1.0):
            raise InvalidParameterError(
                f"epsilon must be in (0, 1), got {epsilon}"
            )
        self.epsilon = epsilon
        self._rng = random.Random(seed)
        self._alive: Deque[WeightedRect] = deque()

    def _on_delta(self, delta: WindowUpdate) -> None:
        for _ in delta.expired:
            self._alive.popleft()
        for obj in delta.arrived:
            self._alive.append(
                WeightedRect.from_object(obj, self.rect_width, self.rect_height)
            )

    def _compute_result(self, tick: int) -> MaxRSResult:
        # sampling gives no deterministic weight floor (only the
        # probabilistic 1-1/n bound), so the contract says guarantee 0
        rects = list(self._alive)
        if not rects:
            return MaxRSResult(
                tick=tick, window_size=0, mode="sampling", guarantee=0.0
            )
        self.stats.full_sweeps += 1
        size = suggested_sample_size(len(rects), self.epsilon)
        region = sample_maxrs(rects, size, self._rng)
        return MaxRSResult.single(
            region,
            tick=tick,
            window_size=len(rects),
            mode="sampling",
            guarantee=0.0,
        )
