"""G2 — Graph-in-Grid index and the basic monitor (paper §4, Algorithm 1).

The basic solution keeps, per grid cell, the dynamic overlap graph of
Definition 6.  When a batch arrives the new rectangles are mapped to
their cells, edges are added from every older overlapping vertex, and
``Local-Plane-Sweep`` recomputes ``si`` for exactly the vertices whose
edge set changed — everything else is provably unchanged (Property 3),
which is the whole incrementality argument.  The answer is the maximum
``si`` over all vertices (Property 2).

Compared to the paper's pseudocode we add one pure optimisation that
does not change the operation count the paper reasons about: each cell
caches its best vertex, so the global argmax of Algorithm 1 line 7 scans
cells rather than all vertices.  ``si`` values never decrease while a
vertex is alive, so the cache only needs repair when its owner expires.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core import vector
from repro.core.graph import CellGraph, Vertex
from repro.core.grid import CellKey, UniformGrid, default_cell_size
from repro.core.monitor import MaxRSMonitor
from repro.core.objects import WeightedRect, dual_rect
from repro.core.planesweep import local_plane_sweep_cached
from repro.core.spaces import MaxRSResult
from repro.window.base import SlidingWindow, WindowUpdate

__all__ = ["G2Monitor"]


class _G2Cell:
    """A grid cell: its overlap graph plus the cached best vertex."""

    __slots__ = ("graph", "best", "cols")

    def __init__(self) -> None:
        self.graph = CellGraph()
        self.best: Vertex | None = None
        # numpy backend only: columnar mirror of the graph's rectangle
        # coordinates, built lazily once the cell is big enough for the
        # batched overlap test to pay (vector.CONNECT_BATCH_MIN)
        self.cols = None

    def rescan_best(self) -> None:
        best: Vertex | None = None
        for v in self.graph.iter_vertices():
            if (
                best is None
                or v.space.weight > best.space.weight
                or (v.space.weight == best.space.weight and v.seq < best.seq)
            ):
                best = v
        self.best = best

    def offer_best(self, v: Vertex) -> None:
        if self.best is None or v.space.weight > self.best.space.weight:
            self.best = v


class G2Monitor(MaxRSMonitor):
    """Basic incremental monitor using the G2 index (Algorithm 1)."""

    index_backend = "uniform-grid"

    def __init__(
        self,
        rect_width: float,
        rect_height: float,
        window: SlidingWindow,
        cell_size: float | None = None,
        backend: str = "python",
    ) -> None:
        super().__init__(rect_width, rect_height, window, backend=backend)
        if cell_size is None:
            cell_size = default_cell_size(rect_width, rect_height)
        self.grid = UniformGrid(cell_size=cell_size)
        self._cells: Dict[CellKey, _G2Cell] = {}
        self._next_seq = 0
        self._expired_upto = -1

    # -- index maintenance -------------------------------------------------

    def _on_delta(self, delta: WindowUpdate) -> None:
        # Windows expire strictly in arrival order, so the expired batch
        # is exactly the next len(expired) sequence numbers.
        self._expired_upto += len(delta.expired)
        if self.backend == "numpy" and delta.arrived:
            self._on_delta_np(delta)
            return
        metrics = self.metrics
        stats = self.stats
        cells = self._cells
        grid_keys = self.grid.cell_keys
        width = self.rect_width
        height = self.rect_height
        dirty: list[tuple[_G2Cell, Vertex]] = []
        for obj in delta.arrived:
            seq = self._next_seq
            self._next_seq += 1
            wr = dual_rect(obj, width, height)
            for key in grid_keys(wr.rect):
                cell = cells.get(key)
                if cell is None:
                    cell = _G2Cell()
                    cells[key] = cell
                self._purge(cell)
                stats.cells_visited += 1
                metrics.inc("cells_visited")
                stats.overlap_tests += len(cell.graph)
                metrics.inc("overlap_tests", len(cell.graph))
                vertex, touched = cell.graph.connect(wr, seq)
                metrics.inc("edges_touched", len(touched))
                cell.offer_best(vertex)
                dirty.extend((cell, v) for v in touched)
        # Recompute si exactly — once — for every vertex whose N(ri)
        # changed this batch (the dirty flag de-duplicates vertices
        # touched by several arrivals).
        for cell, v in dirty:
            if not v.dirty:
                continue
            v.dirty = False
            v.space = local_plane_sweep_cached(v)
            v.upper = v.space.weight
            stats.local_sweeps += 1
            metrics.inc("local_sweeps")
            cell.offer_best(v)

    def _on_delta_np(self, delta: WindowUpdate) -> None:
        """Cell-major columnar replay of the reference ``_on_delta``.

        Arrivals are routed with batched array ops, then each touched
        cell is processed once: purge, overlap tests (one broadcast for
        big cells, the scalar loop for small ones), best-offer and dirty
        collection.  Per-cell the sequence of graph mutations and
        ``offer_best`` calls is exactly the reference order — grouping
        only reorders work *across* cells, which share no state — so the
        resulting index and answers are byte-identical.
        """
        metrics = self.metrics
        stats = self.stats
        cells = self._cells
        objs = delta.arrived
        wrs, (x1, y1, x2, y2, _ws) = vector.build_weighted_rects(
            objs, self.rect_width, self.rect_height
        )
        i0, i1, j0, j1 = vector.grid_cell_ranges(x1, y1, x2, y2, self.grid)
        deg = ((x1 == x2) | (y1 == y2)).tolist()
        i0l = i0.tolist()
        i1l = i1.tolist()
        j0l = j0.tolist()
        j1l = j1.tolist()
        seq0 = self._next_seq
        self._next_seq = seq0 + len(objs)
        # group mappings per cell in first-touch order; within a cell
        # the pending list is in arrival order (the reference order)
        per_cell: Dict[CellKey, List[Tuple[int, WeightedRect]]] = {}
        get_group = per_cell.get
        for n, wr in enumerate(wrs):
            if deg[n]:
                continue
            seq = seq0 + n
            jlo = j0l[n]
            jhi = j1l[n] + 1
            for i in range(i0l[n], i1l[n] + 1):
                for j in range(jlo, jhi):
                    key = (i, j)
                    group = get_group(key)
                    if group is None:
                        per_cell[key] = group = []
                    group.append((seq, wr))
        dirty: list[tuple[_G2Cell, Vertex]] = []
        extend_dirty = dirty.extend
        batch_min = vector.CONNECT_BATCH_MIN
        for key, pending in per_cell.items():
            cell = cells.get(key)
            if cell is None:
                cell = _G2Cell()
                cells[key] = cell
            self._purge(cell)
            graph = cell.graph
            V = len(graph)
            P = len(pending)
            stats.cells_visited += P
            metrics.inc("cells_visited", P)
            tests = V * P + (P * (P - 1)) // 2
            stats.overlap_tests += tests
            metrics.inc("overlap_tests", tests)
            if cell.cols is None and V * P + P * P < batch_min:
                for seq, wr in pending:
                    vertex, touched = graph.connect(wr, seq)
                    metrics.inc("edges_touched", len(touched))
                    cell.offer_best(vertex)
                    extend_dirty((cell, v) for v in touched)
            else:
                if cell.cols is None:
                    cell.cols = vector.RectColumns.from_graph(graph)
                new_vertices, touched_lists = vector.connect_batch(
                    graph, cell.cols, pending, self._expired_upto
                )
                edges = 0
                for vertex, touched in zip(new_vertices, touched_lists):
                    edges += len(touched)
                    cell.offer_best(vertex)
                    extend_dirty((cell, v) for v in touched)
                metrics.inc("edges_touched", edges)
        backend = self.backend
        for cell, v in dirty:
            if not v.dirty:
                continue
            v.dirty = False
            v.space = local_plane_sweep_cached(v, backend=backend)
            v.upper = v.space.weight
            stats.local_sweeps += 1
            metrics.inc("local_sweeps")
            cell.offer_best(v)

    def _purge(self, cell: _G2Cell) -> None:
        removed = cell.graph.expire_upto(self._expired_upto)
        if removed and cell.best is not None:
            if cell.best.seq <= self._expired_upto:
                cell.rescan_best()

    # -- result -------------------------------------------------------------

    def _compute_result(self, tick: int) -> MaxRSResult:
        best: Vertex | None = None
        for key in list(self._cells):
            cell = self._cells[key]
            self.metrics.inc("cells_scanned")
            self._purge(cell)
            if not cell.graph:
                del self._cells[key]
                continue
            if cell.best is None:
                cell.rescan_best()
            v = cell.best
            assert v is not None
            if (
                best is None
                or v.space.weight > best.space.weight
                or (v.space.weight == best.space.weight and v.seq < best.seq)
            ):
                best = v
        if best is None:
            return MaxRSResult(tick=tick, window_size=len(self.window))
        return MaxRSResult.single(
            best.space, tick=tick, window_size=len(self.window)
        )

    # -- diagnostics ----------------------------------------------------------

    @property
    def cell_count(self) -> int:
        """Number of materialised (non-empty) grid cells."""
        return len(self._cells)

    @property
    def vertex_count(self) -> int:
        """Total vertex copies across all cells (a rectangle mapped to
        c cells contributes c)."""
        return sum(len(cell.graph) for cell in self._cells.values())
