"""Continuous top-k MaxRS monitoring (paper §6.2, Algorithm 6).

The top-k monitor is the branch-and-bound monitor with the pruning
threshold generalised from ``s*.w`` to the *k-th largest* known anchored
space weight.  Spaces are anchored at vertices (Property 1 makes
per-vertex spaces distinct); the answer set ``S*`` is the ``k`` best
anchored spaces, de-duplicated by anchor object across grid cells.

Bookkeeping beyond Algorithm 2 (see DESIGN.md §1 "Top-k semantics"):

* every cell keeps ``top`` — its k best vertices by exact space weight —
  rebuilt whenever the cell is exactly recomputed or loses a listed
  vertex to expiry;
* the global threshold ``ρ`` is the k-th best weight over all cell
  lists (a valid lower bound of the true k-th value, which is all
  pruning soundness requires);
* the branch-and-bound pass visits the cells currently owning ``S*``
  first (Algorithm 6 line 2), then the rest in decreasing ``c.w``
  order, raising ``ρ`` as exact values improve.

Correctness argument: after a pass, every alive vertex either carries
its exact ``si`` or was pruned while its bound was ≤ the then-current
ρ ≤ final ρ; hence any vertex with true ``si`` above the final k-th
recorded weight is exact and ranked, so the reported k weights are the
true top-k (ties broken arbitrarily, as Definition 4 allows).
"""

from __future__ import annotations

import heapq
from typing import Dict

from repro.core.ag2 import AG2Cell, AG2Monitor
from repro.core.graph import Vertex
from repro.core.grid import CellKey
from repro.core.spaces import MaxRSResult, Region
from repro.errors import InvalidParameterError
from repro.window.base import SlidingWindow, WindowUpdate

__all__ = ["TopKAG2Monitor"]

_NEG_INF = float("-inf")

# candidate pool entry: anchor oid -> (vertex, key of the cell it lives in)
_Candidates = Dict[int, tuple[Vertex, CellKey]]


class _TopKCell(AG2Cell):
    """aG2 cell extended with its k best vertices (exact-space order)."""

    __slots__ = ("top",)

    def __init__(self) -> None:
        super().__init__()
        self.top: list[Vertex] = []

    def rebuild_top(self, k: int) -> None:
        self.top = heapq.nlargest(
            k, self.graph.iter_vertices(), key=lambda v: v.space.weight
        )


class TopKAG2Monitor(AG2Monitor):
    """Branch-and-bound continuous top-k MaxRS monitor (Algorithm 6).

    Anchor objects must carry unique ``oid`` values (the default
    auto-assigned identifiers do); the answer is de-duplicated by
    anchor across grid cells.
    """

    def __init__(
        self,
        rect_width: float,
        rect_height: float,
        window: SlidingWindow,
        k: int,
        cell_size: float | None = None,
        backend: str = "python",
    ) -> None:
        if k <= 0:
            raise InvalidParameterError(f"k must be positive, got {k}")
        super().__init__(
            rect_width, rect_height, window,
            cell_size=cell_size, backend=backend,
        )
        self.k = k
        # final ranked answer of the last pass, best first
        self._answer: list[Vertex] = []

    # -- cell plumbing overrides ------------------------------------------------

    def _make_cell(self) -> AG2Cell:
        return _TopKCell()

    def _cell_purged(self, cell: AG2Cell) -> None:
        assert isinstance(cell, _TopKCell)
        alive = [v for v in cell.top if v.seq > self._expired_upto]
        if len(alive) != len(cell.top):
            # a listed vertex expired: the list may now omit one of the
            # cell's k best, so rebuild from the graph
            cell.rebuild_top(self.k)

    # -- Algorithm 6 -----------------------------------------------------------------

    def _on_delta(self, delta: WindowUpdate) -> None:
        self._expired_upto += len(delta.expired)
        self._map_arrivals(delta)
        self._purge_all()
        self._star = None  # top-1 bookkeeping unused in top-k mode
        self._star_cell = None
        if not self._cells:
            self._answer = []
            return
        candidates = self._merge_candidates()
        rho = self._kth_weight(candidates)
        # line 2: refresh the cells currently owning S* members first so
        # the threshold is as honest as possible before pruning starts
        priority = {
            key
            for _v, key in heapq.nlargest(
                self.k,
                candidates.values(),
                key=lambda entry: entry[0].space.weight,
            )
        }
        if not priority:
            priority = {
                max(self._cells, key=lambda key: (self._cells[key].cw, key))
            }
        for key in priority:
            cell = self._cells.get(key)
            if cell is None:
                continue
            self._overlap_computation(cell)
            rho = self._exact_topk(key, rho, candidates)
        # lines 7-8: branch-and-bound over the remaining cells
        order = sorted(
            (key for key in self._cells if key not in priority),
            key=lambda key: -self._cells[key].cw,
        )
        for pos, key in enumerate(order):
            cell = self._cells[key]
            if not cell.cw > rho:
                self.stats.cells_pruned += len(order) - pos
                break
            self._overlap_computation(cell)
            if cell.cw > rho:
                rho = self._exact_topk(key, rho, candidates)
            else:
                self.stats.cells_pruned += 1
        self._answer = self._rank(candidates)

    # -- candidate management ----------------------------------------------------------

    def _merge_candidates(self) -> _Candidates:
        """All cell-list vertices, de-duplicated by anchor object
        (keeping the copy with the larger exact space)."""
        merged: _Candidates = {}
        for key, cell in self._cells.items():
            assert isinstance(cell, _TopKCell)
            for v in cell.top:
                oid = v.wr.oid
                held = merged.get(oid)
                if held is None or v.space.weight > held[0].space.weight:
                    merged[oid] = (v, key)
        return merged

    def _kth_weight(self, candidates: _Candidates) -> float:
        if len(candidates) < self.k:
            return _NEG_INF
        return heapq.nlargest(
            self.k, (v.space.weight for v, _key in candidates.values())
        )[-1]

    def _rank(self, candidates: _Candidates) -> list[Vertex]:
        return [
            v
            for v, _key in heapq.nlargest(
                self.k,
                candidates.values(),
                key=lambda entry: (entry[0].space.weight, -entry[0].seq),
            )
        ]

    # -- exact recomputation ---------------------------------------------------

    def _exact_topk(
        self, key: CellKey, rho: float, candidates: _Candidates
    ) -> float:
        """Algorithm 4 generalised to the k-th-weight threshold: sweep
        every vertex whose bound beats ρ, fold results into the global
        candidate pool, rebuild the cell list, and return the raised ρ."""
        cell = self._cells[key]
        assert isinstance(cell, _TopKCell)
        cw = 0.0
        for v in cell.graph.iter_vertices():
            if v.upper > rho:
                # dirty ⟺ edges appended since the last exact sweep
                if v.dirty:
                    self._sweep_vertex(v)
                oid = v.wr.oid
                held = candidates.get(oid)
                if held is None or v.space.weight > held[0].space.weight:
                    candidates[oid] = (v, key)
            else:
                self.stats.vertices_pruned += 1
            if v.upper > cw:
                cw = v.upper
        cell.cw = cw
        cell.rebuild_top(self.k)
        return max(rho, self._kth_weight(candidates))

    # -- result ----------------------------------------------------------------

    def _compute_result(self, tick: int) -> MaxRSResult:
        regions: list[Region] = [v.space for v in self._answer]
        return MaxRSResult.ranked(
            regions, tick=tick, window_size=len(self.window)
        )
