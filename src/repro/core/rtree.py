"""A classic dynamic R-tree (quadratic split) for the grid-vs-R-tree ablation.

The paper justifies the grid in G2 with one sentence: *"When dataset
updates frequently occur, grid structure is more suitable than complex
structures like R-tree and Quad-tree [4]"* (§4.1).  To reproduce that
design argument rather than take it on faith, this module provides a
textbook main-memory R-tree — Guttman insertion with quadratic split,
condense-and-reinsert deletion, overlap search — and
``repro.core.rtree_monitor`` builds the same incremental graph monitor
on top of it instead of the grid.  The ablation benchmark then shows
where the R-tree's update cost loses to the grid under stream churn.

The tree maps hashable keys to rectangles; duplicate rectangles under
different keys are fine (stream objects can share locations).
"""

from __future__ import annotations

from typing import Hashable, Iterator

from repro.core.geometry import Rect
from repro.errors import InvalidParameterError

__all__ = ["RTree"]


class _Node:
    __slots__ = ("leaf", "entries", "parent")

    def __init__(self, leaf: bool) -> None:
        self.leaf = leaf
        # leaf entries: (rect, key); inner entries: (rect, child node)
        self.entries: list[tuple[Rect, object]] = []
        self.parent: "_Node | None" = None

    def mbr(self) -> Rect:
        rects = [rect for rect, _ in self.entries]
        x1 = min(r.x1 for r in rects)
        y1 = min(r.y1 for r in rects)
        x2 = max(r.x2 for r in rects)
        y2 = max(r.y2 for r in rects)
        return Rect(x1, y1, x2, y2)


def _enlargement(mbr: Rect, rect: Rect) -> float:
    x1 = min(mbr.x1, rect.x1)
    y1 = min(mbr.y1, rect.y1)
    x2 = max(mbr.x2, rect.x2)
    y2 = max(mbr.y2, rect.y2)
    return (x2 - x1) * (y2 - y1) - mbr.area


def _loose_overlap(a: Rect, b: Rect) -> bool:
    # closed-box overlap for tree traversal: never misses a candidate;
    # callers re-check with the strict predicate they need
    return (
        a.x1 <= b.x2 and b.x1 <= a.x2 and a.y1 <= b.y2 and b.y1 <= a.y2
    )


class RTree:
    """Dynamic R-tree over ``(key, rect)`` pairs.

    Args:
        max_entries: Node capacity (Guttman's M); ``min_entries``
            defaults to ``max_entries // 2`` (m).
    """

    def __init__(self, max_entries: int = 8, min_entries: int | None = None) -> None:
        if max_entries < 4:
            raise InvalidParameterError(
                f"max_entries must be >= 4, got {max_entries}"
            )
        self.max_entries = max_entries
        self.min_entries = (
            min_entries if min_entries is not None else max_entries // 2
        )
        if not (1 <= self.min_entries <= self.max_entries // 2):
            raise InvalidParameterError(
                f"min_entries must be in [1, {self.max_entries // 2}], "
                f"got {self.min_entries}"
            )
        self._root = _Node(leaf=True)
        self._size = 0
        #: cumulative nodes popped by search_overlap (diagnostic)
        self.nodes_expanded = 0

    def __len__(self) -> int:
        return self._size

    # -- insertion -----------------------------------------------------------

    def insert(self, key: Hashable, rect: Rect) -> None:
        """Insert an entry; duplicate keys are allowed (delete removes a
        specific (key, rect) pair)."""
        leaf = self._choose_leaf(self._root, rect)
        leaf.entries.append((rect, key))
        self._size += 1
        self._handle_overflow(leaf)

    def _choose_leaf(self, node: _Node, rect: Rect) -> _Node:
        while not node.leaf:
            best = None
            best_cost = float("inf")
            best_area = float("inf")
            for mbr, child in node.entries:
                cost = _enlargement(mbr, rect)
                if cost < best_cost or (
                    cost == best_cost and mbr.area < best_area
                ):
                    best, best_cost, best_area = child, cost, mbr.area
            assert isinstance(best, _Node)
            node = best
        return node

    def _handle_overflow(self, node: _Node) -> None:
        while len(node.entries) > self.max_entries:
            sibling = self._quadratic_split(node)
            parent = node.parent
            if parent is None:
                new_root = _Node(leaf=False)
                for child in (node, sibling):
                    child.parent = new_root
                    new_root.entries.append((child.mbr(), child))
                self._root = new_root
                return
            self._refresh_entry(parent, node)
            sibling.parent = parent
            parent.entries.append((sibling.mbr(), sibling))
            node = parent
        self._adjust_upwards(node)

    def _quadratic_split(self, node: _Node) -> _Node:
        entries = node.entries
        # pick the pair wasting the most area together as seeds
        worst = (0, 1)
        worst_waste = float("-inf")
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                union = entries[i][0].union_bounds(entries[j][0])
                waste = union.area - entries[i][0].area - entries[j][0].area
                if waste > worst_waste:
                    worst_waste = waste
                    worst = (i, j)
        i, j = worst
        group_a = [entries[i]]
        group_b = [entries[j]]
        rest = [e for pos, e in enumerate(entries) if pos not in (i, j)]
        mbr_a = group_a[0][0]
        mbr_b = group_b[0][0]
        for idx, entry in enumerate(rest):
            # force balance when one group must take everything left
            need_a = self.min_entries - len(group_a)
            need_b = self.min_entries - len(group_b)
            remaining = len(rest) - idx
            if need_a >= remaining:
                group_a.append(entry)
                mbr_a = mbr_a.union_bounds(entry[0])
                continue
            if need_b >= remaining:
                group_b.append(entry)
                mbr_b = mbr_b.union_bounds(entry[0])
                continue
            grow_a = _enlargement(mbr_a, entry[0])
            grow_b = _enlargement(mbr_b, entry[0])
            if grow_a < grow_b or (grow_a == grow_b and mbr_a.area <= mbr_b.area):
                group_a.append(entry)
                mbr_a = mbr_a.union_bounds(entry[0])
            else:
                group_b.append(entry)
                mbr_b = mbr_b.union_bounds(entry[0])
        node.entries = group_a
        sibling = _Node(leaf=node.leaf)
        sibling.entries = group_b
        if not sibling.leaf:
            for _, child in sibling.entries:
                assert isinstance(child, _Node)
                child.parent = sibling
        return sibling

    def _refresh_entry(self, parent: _Node, child: _Node) -> None:
        for pos, (_, node) in enumerate(parent.entries):
            if node is child:
                parent.entries[pos] = (child.mbr(), child)
                return
        raise AssertionError("child not found in parent")  # pragma: no cover

    def _adjust_upwards(self, node: _Node) -> None:
        while node.parent is not None:
            self._refresh_entry(node.parent, node)
            node = node.parent

    # -- search --------------------------------------------------------------

    def search_overlap(self, rect: Rect) -> Iterator[Hashable]:
        """Keys of entries whose rectangles *strictly* overlap ``rect``.

        Every node popped during the traversal increments the
        cumulative :attr:`nodes_expanded` diagnostic, which the R-tree
        monitor turns into a per-update metric.
        """
        stack = [self._root]
        while stack:
            node = stack.pop()
            self.nodes_expanded += 1
            if node.leaf:
                for entry_rect, key in node.entries:
                    assert isinstance(entry_rect, Rect)
                    if entry_rect.overlaps(rect):
                        yield key
            else:
                for mbr, child in node.entries:
                    if _loose_overlap(mbr, rect):
                        assert isinstance(child, _Node)
                        stack.append(child)

    # -- deletion --------------------------------------------------------------

    def delete(self, key: Hashable, rect: Rect) -> bool:
        """Remove one entry matching ``(key, rect)``; False if absent."""
        leaf = self._find_leaf(self._root, key, rect)
        if leaf is None:
            return False
        for pos, (entry_rect, entry_key) in enumerate(leaf.entries):
            if entry_key == key and entry_rect == rect:
                del leaf.entries[pos]
                break
        self._size -= 1
        self._condense(leaf)
        # shrink a non-leaf root with a single child
        while not self._root.leaf and len(self._root.entries) == 1:
            only = self._root.entries[0][1]
            assert isinstance(only, _Node)
            only.parent = None
            self._root = only
        return True

    def _find_leaf(self, node: _Node, key: Hashable, rect: Rect) -> _Node | None:
        if node.leaf:
            for entry_rect, entry_key in node.entries:
                if entry_key == key and entry_rect == rect:
                    return node
            return None
        for mbr, child in node.entries:
            if _loose_overlap(mbr, rect):
                assert isinstance(child, _Node)
                found = self._find_leaf(child, key, rect)
                if found is not None:
                    return found
        return None

    def _condense(self, node: _Node) -> None:
        orphans: list[tuple[Rect, object]] = []
        while node.parent is not None:
            parent = node.parent
            if len(node.entries) < self.min_entries:
                for pos, (_, child) in enumerate(parent.entries):
                    if child is node:
                        del parent.entries[pos]
                        break
                orphans.extend(self._collect_leaf_entries(node))
                node = parent
            else:
                self._refresh_entry(parent, node)
                node = parent
        for rect, key in orphans:
            self._size -= 1  # insert() re-increments
            self.insert(key, rect)

    def _collect_leaf_entries(self, node: _Node) -> list[tuple[Rect, object]]:
        if node.leaf:
            return list(node.entries)
        collected: list[tuple[Rect, object]] = []
        for _, child in node.entries:
            assert isinstance(child, _Node)
            collected.extend(self._collect_leaf_entries(child))
        return collected

    # -- diagnostics --------------------------------------------------------------

    def check_invariants(self) -> None:
        """Structural validation (tests only): entry counts, MBR
        containment, parent links."""
        self._check_node(self._root, is_root=True)

    def _check_node(self, node: _Node, is_root: bool = False) -> None:
        count = len(node.entries)
        if not is_root and count < self.min_entries:
            raise AssertionError("underfull node")
        if count > self.max_entries:
            raise AssertionError("overfull node")
        if not node.leaf:
            for mbr, child in node.entries:
                assert isinstance(child, _Node)
                if child.parent is not node:
                    raise AssertionError("broken parent link")
                if child.entries and not mbr.contains_rect(child.mbr()):
                    raise AssertionError("MBR does not contain child")
                self._check_node(child)
