"""AllMaxRS: every space attaining the maximum range sum.

The paper's §5.2 correctness discussion notes that its branch-and-bound
uses strict ``>`` comparisons to *keep* monitoring one optimal space,
and that applications wanting **all** optimal spaces (the AllMaxRS
problem of Choi et al. [9]) just need ``≥`` semantics.  This module
provides that flavour for the one-shot solver and a tie-collecting
monitor built on the exact aG2 monitor.

Ties are compared with an absolute tolerance (floating-point weight
sums are never bit-exact across different sweep orders).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.objects import WeightedRect
from repro.core.planesweep import plane_sweep_topk
from repro.core.spaces import MaxRSResult, Region
from repro.core.topk import TopKAG2Monitor
from repro.errors import InvalidParameterError
from repro.window.base import SlidingWindow

__all__ = ["plane_sweep_all_max", "AllMaxRSMonitor", "DEFAULT_TIE_TOLERANCE"]

DEFAULT_TIE_TOLERANCE = 1e-9


def plane_sweep_all_max(
    rects: Sequence[WeightedRect],
    tolerance: float = DEFAULT_TIE_TOLERANCE,
    limit: int = 64,
) -> list[Region]:
    """All arrangement cells whose weight ties the maximum.

    ``limit`` caps the number of returned ties (identical stacked
    rectangles can tie in arbitrarily many cells); raising it is safe,
    it only bounds memory.
    """
    if tolerance < 0:
        raise InvalidParameterError(
            f"tolerance must be >= 0, got {tolerance}"
        )
    if limit <= 0:
        raise InvalidParameterError(f"limit must be positive, got {limit}")
    candidates = plane_sweep_topk(rects, limit)
    if not candidates:
        return []
    best = candidates[0].weight
    return [r for r in candidates if r.weight >= best - tolerance]


class AllMaxRSMonitor(TopKAG2Monitor):
    """Continuous AllMaxRS: monitor every space tying the maximum.

    Implemented as a top-``limit`` monitor whose answer is filtered to
    the ties of the best weight — exactly the ``≥`` reading of
    Algorithm 2 the paper describes.  ``limit`` bounds how many tied
    spaces are tracked (and therefore reported) per update.
    """

    def __init__(
        self,
        rect_width: float,
        rect_height: float,
        window: SlidingWindow,
        tolerance: float = DEFAULT_TIE_TOLERANCE,
        limit: int = 16,
        cell_size: float | None = None,
    ) -> None:
        if tolerance < 0:
            raise InvalidParameterError(
                f"tolerance must be >= 0, got {tolerance}"
            )
        super().__init__(
            rect_width, rect_height, window, k=limit, cell_size=cell_size
        )
        self.tolerance = tolerance

    def _compute_result(self, tick: int) -> MaxRSResult:
        ranked = super()._compute_result(tick)
        if ranked.is_empty:
            return ranked
        best = ranked.best_weight
        ties = tuple(
            r for r in ranked.regions if r.weight >= best - self.tolerance
        )
        return MaxRSResult(
            regions=ties, tick=ranked.tick, window_size=ranked.window_size
        )
