"""Stream object model and the object→rectangle dual transform.

A :class:`SpatialObject` is the unit delivered by a spatial data stream:
``<x, y, w>`` plus an identifier and a generation timestamp.  The paper's
Definition 2 converts each object into a *weighted rectangle* of the
user-specified query size centred at the object; :class:`WeightedRect`
is that dual representation, carrying the originating object.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Iterable, Sequence

from repro.core.geometry import Rect
from repro.errors import InvalidParameterError

__all__ = [
    "SpatialObject",
    "WeightedRect",
    "dual_rect",
    "to_weighted_rects",
    "object_ids",
]

_AUTO_ID = itertools.count()


@dataclass(frozen=True, slots=True)
class SpatialObject:
    """A weighted spatio-temporal stream object ``o = <x, y, w>``.

    Attributes:
        oid: Unique identifier; auto-assigned from a process-wide counter
            when not supplied.
        x, y: Location where the object was generated.
        weight: Non-negative weight (e.g. traffic volume, player level).
        timestamp: Generation time; used by time-based windows and
            otherwise informational.
    """

    x: float
    y: float
    weight: float = 1.0
    timestamp: float = 0.0
    oid: int = field(default_factory=lambda: next(_AUTO_ID))

    def __post_init__(self) -> None:
        if not (math.isfinite(self.x) and math.isfinite(self.y)):
            raise InvalidParameterError(
                f"object location must be finite, got ({self.x}, {self.y})"
            )
        if not (self.weight >= 0.0):  # also rejects NaN
            raise InvalidParameterError(
                f"object weight must be non-negative, got {self.weight}"
            )

    def to_rect(self, width: float, height: float) -> Rect:
        """The dual rectangle of the query size centred at this object."""
        return Rect.from_center(self.x, self.y, width, height)


@dataclass(frozen=True, slots=True)
class WeightedRect:
    """A query-sized rectangle centred at a stream object (Definition 2).

    ``rect.w`` in the paper is :attr:`weight` here; the rectangle keeps a
    reference to its originating object so results can be traced back to
    the stream.
    """

    rect: Rect
    weight: float
    obj: SpatialObject

    @property
    def oid(self) -> int:
        """Identifier of the originating object."""
        return self.obj.oid

    @classmethod
    def from_object(
        cls, obj: SpatialObject, width: float, height: float
    ) -> "WeightedRect":
        return cls(rect=obj.to_rect(width, height), weight=obj.weight, obj=obj)


@lru_cache(maxsize=65536)
def dual_rect(
    obj: SpatialObject, width: float, height: float
) -> WeightedRect:
    """Cached :meth:`WeightedRect.from_object`.

    Every monitor applies the Definition 2 dual transform to every
    arrival; when several monitors share a stream (multi-query serving)
    the same ``(object, query size)`` pair is transformed once here
    instead of per monitor.  Both argument types are frozen/hashable
    and the result is immutable, so sharing is safe.  Bounded LRU.
    """
    return WeightedRect.from_object(obj, width, height)


def to_weighted_rects(
    objects: Iterable[SpatialObject], width: float, height: float
) -> list[WeightedRect]:
    """Apply the dual transform to a batch of stream objects."""
    if width <= 0 or height <= 0:
        raise InvalidParameterError(
            f"query rectangle size must be positive, got {width} x {height}"
        )
    return [WeightedRect.from_object(o, width, height) for o in objects]


def object_ids(objects: Sequence[SpatialObject]) -> list[int]:
    """Identifiers of a batch, in order — convenience for logging/tests."""
    return [o.oid for o in objects]
