"""Skew-adaptive quadtree index and the quadtree-backed aG2 monitor.

The uniform grid of ``repro.core.grid`` assigns every dual rectangle to
fixed-size cells.  Under heavy spatial skew (the Geolife-style hotspot
workloads) a handful of cells absorb most of the stream: their overlap
graphs grow to hundreds of vertices, every ``OverlapComputation``
re-tests O(k²) pairs and every ``Local-Plane-Sweep`` drags a huge
neighbour list — the committed benchmarks show aG2 collapsing from ~16x
naive on uniform data to ~2x on the gaussian workload.

:class:`QuadtreeIndex` replaces the flat grid with a *forest of lazy
quadtrees*: the plane is tiled by coarse top-level tiles (pure
coordinate arithmetic, exactly like the uniform grid), and any tile may
be recursively split into four quadrants.  The index stores only the
set of split nodes — unsplit tiles are implicit, so the structure costs
nothing where the stream never goes.  Leaves form an exact partition of
the plane (shared edges are computed with identical arithmetic at every
level), which preserves the grid's key guarantee: two overlapping
rectangles always share at least one leaf, so the per-leaf overlap
graphs collectively capture every overlap no matter how the tree is
shaped.

:class:`QuadtreeAG2Monitor` drives the unmodified aG2 branch-and-bound
(heap-ordered cell visits, Rules 1–4, the dual-rect and
clipped-neighbour caches) over quadtree leaves instead of grid cells.
Its split/merge policy is load-adaptive:

* every leaf tracks a *decayed arrival load* — an exponentially decayed
  count of arrivals routed to it (``load ← load·decay^Δt + 1``);
* a leaf **splits** when its occupancy exceeds ``split_occupancy`` (or
  its decayed load exceeds ``split_load`` while holding more than
  ``merge_occupancy`` entries), until the leaf side would drop below
  ``min_leaf_size``;
* four sibling leaves **merge** back when their combined unique
  occupancy falls to ``merge_occupancy`` *and* their combined decayed
  load has cooled below ``merge_load`` — the load condition is the
  hysteresis that stops a still-hot but momentarily expired region from
  thrashing as a hotspot drifts across it.

Split and merge both *demote* the affected entries to the cell's
pending set ``R`` (the paper's lines 1–5 state), with the cell bound
reset to the pending weight sum — a valid Equation (5) bound.  The next
time the branch-and-bound actually visits the leaf, ``OverlapComputation``
rebuilds the per-leaf graph in arrival order, which makes a rebuilt
leaf byte-identical to the cell a uniform grid of that leaf's geometry
would have maintained all along (the hypothesis differentials in
``tests/test_quadtree_property.py`` pin this).  Restructuring therefore
never computes overlap work eagerly; cold leaves pay nothing until
Rule 1 fails to prune them.

Cache invalidation: cell covers are memoised per *top-level tile* keyed
by a tile version counter that bumps on every split/merge beneath the
tile — restructuring one hotspot invalidates only its own subtree's
covers, never the whole domain (see docs/PERFORMANCE.md).
"""

from __future__ import annotations

from typing import Iterable, List, Set, Tuple

from repro.core import vector
from repro.core.ag2 import AG2Cell, AG2Monitor, Tightener
from repro.core.grid import _axis_cells, default_cell_size
from repro.core.objects import WeightedRect, dual_rect
from repro.errors import InvalidParameterError, InvariantViolationError
from repro.window.base import SlidingWindow, WindowUpdate

__all__ = [
    "QuadKey",
    "QuadtreeIndex",
    "QuadAG2Cell",
    "QuadtreeAG2Monitor",
    "default_tile_size",
]

#: quadtree node address: (level, ix, iy) — global integer coordinates
#: at that level; the level-l grid has cells of side tile_size / 2**l.
QuadKey = Tuple[int, int, int]

#: cover-cache entries kept before a wholesale clear; entries are a
#: handful of small tuples each, so this bounds memory at a few MB.
_COVER_CACHE_MAX = 32768


def default_tile_size(rect_width: float, rect_height: float) -> float:
    """Default top-level tile side: four uniform-grid cells across.

    The tile is the *coarsest* resolution the adaptive index can serve;
    8× the larger query side keeps an unsplit tile no worse than a few
    uniform cells while leaving three split levels above the
    query-sized leaf floor.
    """
    return 4.0 * default_cell_size(rect_width, rect_height)


class QuadtreeIndex:
    """A forest of lazily split quadtrees over an unbounded plane.

    Only the set of *split* nodes is stored; any tile (or child of a
    split node) that is not itself split is a leaf.  All geometry is
    derived arithmetic: the cell at ``(level, ix, iy)`` spans
    ``[origin + ix·side, origin + (ix+1)·side]`` with
    ``side = tile_size / 2**level`` — the multiplication form is used
    everywhere so shared edges are bit-identical across levels and the
    leaves partition the plane exactly.
    """

    __slots__ = (
        "tile_size",
        "origin_x",
        "origin_y",
        "min_leaf_size",
        "max_level",
        "_split",
        "_tile_version",
        "_cover_cache",
        "_tile_counts",
        "_tile_uniform",
    )

    def __init__(
        self,
        tile_size: float,
        min_leaf_size: float,
        origin_x: float = 0.0,
        origin_y: float = 0.0,
    ) -> None:
        if not tile_size > 0:
            raise InvalidParameterError(
                f"tile size must be positive, got {tile_size}"
            )
        if not 0 < min_leaf_size <= tile_size:
            raise InvalidParameterError(
                f"min leaf size must be in (0, tile_size], got {min_leaf_size}"
            )
        self.tile_size = float(tile_size)
        self.origin_x = float(origin_x)
        self.origin_y = float(origin_y)
        self.min_leaf_size = float(min_leaf_size)
        # deepest level whose cells are still >= min_leaf_size on a side
        level = 0
        side = self.tile_size
        while side / 2.0 >= self.min_leaf_size:
            side /= 2.0
            level += 1
        self.max_level = level
        self._split: Set[QuadKey] = set()
        self._tile_version: dict[Tuple[int, int], int] = {}
        self._cover_cache: dict[tuple, Tuple[QuadKey, ...]] = {}
        # per-tile split-node count at each level, and the derived
        # "uniformly split to depth d" summary (-1 = mixed depths);
        # a tile whose subtree is a complete 4^d partition resolves
        # covers with grid arithmetic at level d instead of a descent
        self._tile_counts: dict[Tuple[int, int], List[int]] = {}
        self._tile_uniform: dict[Tuple[int, int], int] = {}

    # -- geometry --------------------------------------------------------

    def cell_side(self, level: int) -> float:
        return self.tile_size / (1 << level)

    def cell_bounds(self, key: QuadKey) -> Tuple[float, float, float, float]:
        """``(x1, y1, x2, y2)`` of a node, edge-consistent across levels."""
        level, ix, iy = key
        side = self.tile_size / (1 << level)
        return (
            self.origin_x + ix * side,
            self.origin_y + iy * side,
            self.origin_x + (ix + 1) * side,
            self.origin_y + (iy + 1) * side,
        )

    @staticmethod
    def parent(key: QuadKey) -> QuadKey:
        level, ix, iy = key
        if level == 0:
            raise InvalidParameterError("top-level tiles have no parent")
        return (level - 1, ix >> 1, iy >> 1)

    @staticmethod
    def children(key: QuadKey) -> Tuple[QuadKey, QuadKey, QuadKey, QuadKey]:
        level, ix, iy = key
        cl = level + 1
        cx = ix << 1
        cy = iy << 1
        return (
            (cl, cx, cy),
            (cl, cx + 1, cy),
            (cl, cx, cy + 1),
            (cl, cx + 1, cy + 1),
        )

    # -- structure -------------------------------------------------------

    def is_split(self, key: QuadKey) -> bool:
        return key in self._split

    def can_split(self, key: QuadKey) -> bool:
        return key[0] < self.max_level

    @property
    def split_count(self) -> int:
        """Number of internal (split) nodes — 0 means a flat grid."""
        return len(self._split)

    def split(self, key: QuadKey) -> None:
        """Mark a leaf as split (its four children become leaves)."""
        if key in self._split:
            raise InvalidParameterError(f"node {key} is already split")
        if not self.can_split(key):
            raise InvalidParameterError(
                f"node {key} is at the minimum leaf size"
            )
        self._split.add(key)
        self._bump_tile(key, +1)

    def merge(self, key: QuadKey) -> None:
        """Unsplit a node whose four children are all leaves."""
        if key not in self._split:
            raise InvalidParameterError(f"node {key} is not split")
        if any(child in self._split for child in self.children(key)):
            raise InvalidParameterError(
                f"node {key} has split children; merge bottom-up"
            )
        self._split.remove(key)
        self._bump_tile(key, -1)

    def _bump_tile(self, key: QuadKey, delta: int) -> None:
        level, ix, iy = key
        tile = (ix >> level, iy >> level)
        self._tile_version[tile] = self._tile_version.get(tile, 0) + 1
        counts = self._tile_counts.get(tile)
        if counts is None:
            counts = [0] * self.max_level
            self._tile_counts[tile] = counts
        counts[level] += delta
        # uniform depth: largest d with a complete 4^l split at every
        # level above it and nothing below — covers then reduce to one
        # grid-arithmetic range at level d (the mapping fast path)
        depth = 0
        while depth < self.max_level and counts[depth] == 1 << (2 * depth):
            depth += 1
        if any(counts[level] for level in range(depth, self.max_level)):
            depth = -1
        self._tile_uniform[tile] = depth

    # -- queries ---------------------------------------------------------

    def cell_keys(self, rect) -> Tuple[QuadKey, ...]:
        """Current leaves whose interior intersects the rectangle's.

        Same strict-interior semantics as
        :meth:`repro.core.grid.UniformGrid.cell_keys`: degenerate
        rectangles cover nothing, measure-zero contact does not count.

        A tile that is *uniformly* split to depth ``d`` (hot regions
        settle into complete 4^d partitions) resolves with the same
        float-guarded range arithmetic as the uniform grid, at cell
        side ``tile_size / 2^d`` — no tree walk.  Only tiles with mixed
        leaf depths descend, and those covers are memoised per (tile,
        structure version, rectangle), so a split/merge invalidates
        only its own tile's entries.
        """
        if rect.x1 == rect.x2 or rect.y1 == rect.y2:
            return ()
        rx1 = rect.x1
        ry1 = rect.y1
        rx2 = rect.x2
        ry2 = rect.y2
        ox = self.origin_x
        oy = self.origin_y
        out: List[QuadKey] = []
        split = self._split
        uniform = self._tile_uniform
        tile_size = self.tile_size
        for i in _axis_cells(rx1, rx2, ox, tile_size):
            for j in _axis_cells(ry1, ry2, oy, tile_size):
                if (0, i, j) not in split:
                    out.append((0, i, j))
                    continue
                depth = uniform[(i, j)]
                if depth < 0:
                    out.extend(self._tile_cover((0, i, j), rect))
                    continue
                side = tile_size / (1 << depth)
                xr = _axis_cells(rx1, rx2, ox, side)
                yr = _axis_cells(ry1, ry2, oy, side)
                x_lo = max(xr.start, i << depth)
                x_hi = min(xr.stop, (i + 1) << depth)
                y_lo = max(yr.start, j << depth)
                y_hi = min(yr.stop, (j + 1) << depth)
                for ix in range(x_lo, x_hi):
                    for iy in range(y_lo, y_hi):
                        out.append((depth, ix, iy))
        return tuple(out)

    def _tile_cover(self, tile: QuadKey, rect) -> Tuple[QuadKey, ...]:
        """Leaves of one *split* tile overlapping ``rect`` (cached)."""
        cache_key = (
            tile[1],
            tile[2],
            self._tile_version.get((tile[1], tile[2]), 0),
            rect.x1,
            rect.y1,
            rect.x2,
            rect.y2,
        )
        cache = self._cover_cache
        cached = cache.get(cache_key)
        if cached is not None:
            return cached
        rx1 = rect.x1
        ry1 = rect.y1
        rx2 = rect.x2
        ry2 = rect.y2
        ox = self.origin_x
        oy = self.origin_y
        tile_size = self.tile_size
        split = self._split
        out: List[QuadKey] = []
        stack: List[QuadKey] = [tile]
        while stack:
            node = stack.pop()
            level = node[0] + 1
            side = tile_size / (1 << level)
            for child in self.children(node):
                _, ix, iy = child
                x1 = ox + ix * side
                y1 = oy + iy * side
                if (
                    rx1 < ox + (ix + 1) * side
                    and x1 < rx2
                    and ry1 < oy + (iy + 1) * side
                    and y1 < ry2
                ):
                    if child in split:
                        stack.append(child)
                    else:
                        out.append(child)
        out.sort()
        result = tuple(out)
        if len(cache) >= _COVER_CACHE_MAX:
            cache.clear()
        cache[cache_key] = result
        return result

    def leaves_under(self, key: QuadKey) -> Tuple[QuadKey, ...]:
        """All current leaves in the subtree rooted at ``key``."""
        if key not in self._split:
            return (key,)
        out: List[QuadKey] = []
        stack: List[QuadKey] = [key]
        split = self._split
        while stack:
            node = stack.pop()
            for child in self.children(node):
                if child in split:
                    stack.append(child)
                else:
                    out.append(child)
        out.sort()
        return tuple(out)

    def resolve(self, key: QuadKey) -> Tuple[QuadKey, ...]:
        """Current leaves covering the region a (possibly stale) key
        addressed when it was recorded.

        A key logged before a split resolves *down* to the leaves of
        its subtree; a key logged before a merge resolves *up* to the
        ancestor that is now the leaf; a live key resolves to itself.
        """
        if key in self._split:
            return self.leaves_under(key)
        level, ix, iy = key
        while level > 0:
            up = (level - 1, ix >> 1, iy >> 1)
            if up in self._split:
                return ((level, ix, iy),)
            level, ix, iy = up
        return ((0, ix, iy),)

    def is_leaf(self, key: QuadKey) -> bool:
        """True iff ``key`` addresses a *current* leaf of the forest."""
        return self.resolve(key) == (key,)


class QuadAG2Cell(AG2Cell):
    """An aG2 cell living in a quadtree leaf, plus its load tracker."""

    __slots__ = ("load", "load_tick")

    def __init__(self) -> None:
        super().__init__()
        # exponentially decayed count of arrivals routed here; decayed
        # lazily (load_tick is the update tick of the last touch)
        self.load = 0.0
        self.load_tick = 0


class QuadtreeAG2Monitor(AG2Monitor):
    """aG2 branch-and-bound over skew-adaptive quadtree leaves.

    Drop-in equal-answer replacement for :class:`AG2Monitor` (the
    hypothesis differentials assert equal best weights under arbitrary
    arrival/expiry interleavings); the index adapts its resolution to
    the observed arrival distribution instead of fixing one cell size.

    Args:
        tile_size: Side of the coarse top-level tiles
            (default: :func:`default_tile_size` — 8× the larger query
            side).
        min_leaf_size: Smallest permitted leaf side; splitting stops
            here no matter the load (default: the larger query side, so
            a dual rectangle maps to at most ~4 leaves even at full
            depth).
        split_occupancy: A leaf holding more live entries than this is
            split (default 24).
        merge_occupancy: Sibling leaves whose combined *unique*
            occupancy is at most this merge back (default 8).
        split_load: Decayed-arrival-load level that forces an early
            split of a leaf already holding more than
            ``merge_occupancy`` entries (default ``4 × split_occupancy``).
        merge_load: Combined decayed load below which cooling siblings
            may merge (default 2.0) — the anti-thrash hysteresis.
        load_decay: Per-update decay factor of the arrival load EWMA,
            in (0, 1) (default 0.5).
    """

    index_backend = "quadtree"

    def __init__(
        self,
        rect_width: float,
        rect_height: float,
        window: SlidingWindow,
        tile_size: float | None = None,
        min_leaf_size: float | None = None,
        epsilon: float = 0.0,
        tighten: Tightener | None = None,
        visit_order: str = "bound",
        split_occupancy: int = 24,
        merge_occupancy: int = 8,
        split_load: float | None = None,
        merge_load: float = 2.0,
        load_decay: float = 0.5,
        backend: str = "python",
    ) -> None:
        if tile_size is None:
            tile_size = default_tile_size(rect_width, rect_height)
        if min_leaf_size is None:
            min_leaf_size = min(max(rect_width, rect_height), tile_size)
        super().__init__(
            rect_width,
            rect_height,
            window,
            cell_size=tile_size,
            epsilon=epsilon,
            tighten=tighten,
            visit_order=visit_order,
            backend=backend,
        )
        if split_occupancy <= 0:
            raise InvalidParameterError(
                f"split_occupancy must be positive, got {split_occupancy}"
            )
        if not 0 < merge_occupancy < split_occupancy:
            raise InvalidParameterError(
                "merge_occupancy must be in (0, split_occupancy), got "
                f"{merge_occupancy}"
            )
        if not 0.0 < load_decay < 1.0:
            raise InvalidParameterError(
                f"load_decay must be in (0, 1), got {load_decay}"
            )
        if split_load is None:
            split_load = 4.0 * split_occupancy
        if split_load <= 0 or merge_load < 0:
            raise InvalidParameterError(
                f"load bounds must be positive, got split_load={split_load} "
                f"merge_load={merge_load}"
            )
        self.tree = QuadtreeIndex(tile_size, min_leaf_size)
        self.split_occupancy = int(split_occupancy)
        self.merge_occupancy = int(merge_occupancy)
        self.split_load = float(split_load)
        self.merge_load = float(merge_load)
        self.load_decay = float(load_decay)
        self._tick = 0

    # -- load tracking ---------------------------------------------------

    def _decayed_load(self, cell: QuadAG2Cell) -> float:
        dt = self._tick - cell.load_tick
        if dt <= 0:
            return cell.load
        if dt >= 64:
            return 0.0
        return cell.load * self.load_decay**dt

    def _bump_load(self, cell: QuadAG2Cell) -> None:
        tick = self._tick
        if cell.load_tick != tick:
            cell.load = self._decayed_load(cell)
            cell.load_tick = tick
        cell.load += 1.0

    # -- cell plumbing overrides -----------------------------------------

    def _make_cell(self) -> QuadAG2Cell:
        return QuadAG2Cell()

    def _map_arrivals(self, delta: WindowUpdate) -> None:
        """Route arrivals through the adaptive tree (Equation 5 bounds),
        then run split maintenance on the leaves that received load."""
        self._tick += 1
        if self.backend == "numpy" and delta.arrived:
            self._map_arrivals_np(delta)
            return
        cells = self._cells
        tree_keys = self.tree.cell_keys
        width = self.rect_width
        height = self.rect_height
        log = self._expiry_log.append
        touched: Set[QuadKey] = set()
        for obj in delta.arrived:
            seq = self._next_seq
            self._next_seq += 1
            wr = dual_rect(obj, width, height)
            weight = wr.weight
            for key in tree_keys(wr.rect):
                cell = cells.get(key)
                if cell is None:
                    cell = self._make_cell()
                    cell.rank = self._next_cell_rank
                    self._next_cell_rank += 1
                    cell.load_tick = self._tick
                    cells[key] = cell
                cell.pending.append((seq, wr))
                cell.cw += weight
                self._bump_load(cell)
                log((seq, key))
                touched.add(key)
        for key in sorted(touched):
            self._maybe_split(key)

    def _map_arrivals_np(self, delta: WindowUpdate) -> None:
        """Adaptive-tree columnar mapping: the dual transform and its
        validation run as one batch; routing stays scalar because leaf
        covers depend on the mutable tree shape.  Sequence numbers,
        per-leaf pending order, load bumps and split checks all replay
        the reference order, so the index state is byte-identical."""
        cells = self._cells
        tree_keys = self.tree.cell_keys
        log = self._expiry_log.append
        touched: Set[QuadKey] = set()
        wrs, _arrays = vector.build_weighted_rects(
            delta.arrived, self.rect_width, self.rect_height
        )
        seq0 = self._next_seq
        self._next_seq = seq0 + len(wrs)
        for n, wr in enumerate(wrs):
            seq = seq0 + n
            weight = wr.weight
            for key in tree_keys(wr.rect):
                cell = cells.get(key)
                if cell is None:
                    cell = self._make_cell()
                    cell.rank = self._next_cell_rank
                    self._next_cell_rank += 1
                    cell.load_tick = self._tick
                    cells[key] = cell
                cell.pending.append((seq, wr))
                cell.cw += weight
                self._bump_load(cell)
                log((seq, key))
                touched.add(key)
        for key in sorted(touched):
            self._maybe_split(key)

    def _purge_all(self) -> None:
        """Tree-aware expiry: logged keys may predate splits/merges, so
        each is resolved to the current leaves covering its region
        before purging; cells that shrank or emptied trigger merge
        maintenance on their parents."""
        expired_upto = self._expired_upto
        if self._star is not None and self._star.seq <= expired_upto:
            self._star = None
            self._star_cell = None
        log = self._expiry_log
        if not log or log[0][0] > expired_upto:
            return
        touched: Set[QuadKey] = set()
        add = touched.add
        while log and log[0][0] <= expired_upto:
            add(log.popleft()[1])
        resolve = self.tree.resolve
        leaves: Set[QuadKey] = set()
        for key in touched:
            leaves.update(resolve(key))
        cells = self._cells
        shrunk: List[QuadKey] = []
        for key in leaves:
            cell = cells.get(key)
            if cell is None:
                continue
            removed = cell.graph.expire_upto(expired_upto)
            pending = cell.pending
            while pending and pending[0][0] <= expired_upto:
                pending.popleft()
            if not pending and not cell.graph:
                del cells[key]
                shrunk.append(key)
            elif removed:
                self._cell_purged(cell)
                shrunk.append(key)
        for key in sorted(shrunk):
            self._maybe_merge(key)

    # -- split / merge ---------------------------------------------------

    def _split_trigger(self, cell: QuadAG2Cell) -> bool:
        occupancy = len(cell.graph) + len(cell.pending)
        if occupancy > self.split_occupancy:
            return True
        return (
            occupancy > self.merge_occupancy
            and self._decayed_load(cell) > self.split_load
        )

    def _maybe_split(self, key: QuadKey) -> None:
        """Split ``key`` (and cascade into oversize children) while the
        load policy demands it and the leaf floor permits it."""
        stack = [key]
        can_split = self.tree.can_split
        while stack:
            k = stack.pop()
            cell = self._cells.get(k)
            if cell is None or not can_split(k):
                continue
            if self._split_trigger(cell):
                stack.extend(self._split_cell(k, cell))

    def _split_cell(
        self, key: QuadKey, cell: QuadAG2Cell
    ) -> List[QuadKey]:
        """Replace one leaf by its four quadrants.

        All entries (graph vertices *and* pending rectangles) are
        demoted to the children's pending sets in arrival order; each
        child's bound is the Equation (5) weight sum *clamped by the
        parent's bound* — a child vertex's neighbour set is a subset of
        its parent-cell neighbour set (both endpoints of any child edge
        overlap the child region, hence were connected in the parent),
        so the parent's c.w upper-bounds every child vertex bound and
        min(parent c.w, Σ weights) is still a valid Equation (4)/(5)
        bound.  The clamp is what keeps Rule 1 pruning sharp across
        restructures: a freshly split hotspot does not balloon back to
        loose weight sums.  Children created non-empty are returned for
        cascade checks.
        """
        del self._cells[key]
        tree = self.tree
        tree.split(key)
        entries: List[Tuple[int, WeightedRect]] = [
            (v.seq, v.wr) for v in cell.graph.iter_vertices()
        ]
        entries.extend(cell.pending)
        total = len(entries)
        parent_cw = cell.cw
        load = self._decayed_load(cell)
        tick = self._tick
        created: List[QuadKey] = []
        for child in tree.children(key):
            x1, y1, x2, y2 = tree.cell_bounds(child)
            sub = [
                entry
                for entry in entries
                if (
                    entry[1].rect.x1 < x2
                    and x1 < entry[1].rect.x2
                    and entry[1].rect.y1 < y2
                    and y1 < entry[1].rect.y2
                )
            ]
            if not sub:
                continue
            child_cell = self._make_cell()
            child_cell.rank = self._next_cell_rank
            self._next_cell_rank += 1
            child_cell.pending.extend(sub)
            child_cell.cw = min(parent_cw, sum(wr.weight for _, wr in sub))
            child_cell.load = load * (len(sub) / total) if total else 0.0
            child_cell.load_tick = tick
            self._cells[child] = child_cell
            created.append(child)
        self.metrics.inc("quadtree_splits")
        return created

    def _maybe_merge(self, key: QuadKey) -> None:
        """Merge cooled sibling leaves back into their parent, cascading
        upward while the policy allows."""
        tree = self.tree
        cells = self._cells
        while key[0] > 0:
            parent = tree.parent(key)
            if not tree.is_split(parent):
                # an earlier sibling's cascade already merged this level
                return
            siblings = tree.children(parent)
            if any(tree.is_split(s) for s in siblings):
                return
            merged: dict[int, WeightedRect] = {}
            load = 0.0
            sibling_bounds = 0.0
            for s in siblings:
                cell = cells.get(s)
                if cell is None:
                    continue
                for v in cell.graph.iter_vertices():
                    merged[v.seq] = v.wr
                for seq, wr in cell.pending:
                    merged[seq] = wr
                load += self._decayed_load(cell)
                sibling_bounds += cell.cw
                if len(merged) > self.merge_occupancy:
                    return
            if load > self.merge_load:
                return
            tree.merge(parent)
            for s in siblings:
                cells.pop(s, None)
            if merged:
                parent_cell = self._make_cell()
                parent_cell.rank = self._next_cell_rank
                self._next_cell_rank += 1
                parent_cell.pending.extend(sorted(merged.items()))
                # every parent-cell edge coexists in >= 1 sibling, so a
                # vertex bound in the merged graph is at most the sum of
                # its per-sibling bounds — min(Eq. 5 sum, sum of sibling
                # c.w) stays a valid upper bound
                parent_cell.cw = min(
                    sum(wr.weight for wr in merged.values()), sibling_bounds
                )
                parent_cell.load = load
                parent_cell.load_tick = self._tick
                cells[parent] = parent_cell
            self.metrics.inc("quadtree_merges")
            key = parent

    # -- diagnostics -----------------------------------------------------

    @property
    def leaf_depths(self) -> dict[int, int]:
        """Histogram: tree level → number of materialised leaves."""
        out: dict[int, int] = {}
        for key in self._cells:
            out[key[0]] = out.get(key[0], 0) + 1
        return out

    @property
    def max_depth(self) -> int:
        """Deepest materialised leaf level (0 = no splits anywhere)."""
        return max((key[0] for key in self._cells), default=0)

    def check_invariants(self) -> None:
        """Property 4 checks from the base monitor, plus the structural
        invariants the adaptive index adds:

        * every materialised cell key addresses a current tree leaf;
        * every entry's rectangle strictly overlaps its leaf's bounds;
        * every leaf above the size floor respects the occupancy bound
          (this is the "bounded under skew" guarantee — only leaves at
          ``min_leaf_size`` may exceed it, when the data is so
          concentrated no partition can separate it).
        """
        super().check_invariants()
        tree = self.tree
        for key, cell in self._cells.items():
            if not tree.is_leaf(key):
                raise InvariantViolationError(
                    f"cell key {key} is not a current quadtree leaf"
                )
            x1, y1, x2, y2 = tree.cell_bounds(key)
            occupancy = len(cell.graph) + len(cell.pending)
            if tree.can_split(key) and occupancy > self.split_occupancy:
                raise InvariantViolationError(
                    f"leaf {key} occupancy {occupancy} exceeds bound "
                    f"{self.split_occupancy} above the size floor"
                )
            for wr in self._iter_cell_rects(cell):
                r = wr.rect
                if not (r.x1 < x2 and x1 < r.x2 and r.y1 < y2 and y1 < r.y2):
                    raise InvariantViolationError(
                        f"leaf {key}: rectangle {r} does not overlap "
                        f"leaf bounds ({x1}, {y1}, {x2}, {y2})"
                    )

    @staticmethod
    def _iter_cell_rects(cell: AG2Cell) -> Iterable[WeightedRect]:
        for v in cell.graph.iter_vertices():
            yield v.wr
        for _, wr in cell.pending:
            yield wr
