"""Per-cell dynamic overlap graph (paper Definitions 5 and 6).

Each grid cell maintains a graph over the dual rectangles mapped to it:
vertices are rectangles, and a *directed* edge runs from the older to
the newer of every overlapping pair.  Because edges are held by the
older endpoint, a vertex's neighbour set ``N(ri)`` only ever contains
rectangles newer than ``ri`` — which is exactly why expiration needs no
neighbour maintenance (Property 3): when a vertex dies, nothing else
references it.

The same :class:`Vertex` record serves both indexes.  ``space`` is the
paper's ``si`` — the best space anchored at the vertex, always a valid
space with exactly the recorded weight; ``upper`` is the aG2 bound
``s̄i`` with ``space.weight ≤ true si ≤ upper`` (Property 4's vertex
half).  For G2, which keeps ``si`` exact at all times, ``upper`` simply
mirrors ``space.weight``.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable

from repro.core.objects import WeightedRect
from repro.core.spaces import Region

__all__ = ["Vertex", "CellGraph"]


class Vertex:
    """A dual rectangle living in one cell's graph."""

    __slots__ = (
        "wr", "seq", "neighbors", "space", "upper", "dirty", "swept_degree",
        "clip_items", "clip_upto",
    )

    def __init__(self, wr: WeightedRect, seq: int) -> None:
        self.wr = wr
        self.seq = seq
        # newer overlapping rectangles (out-edges); never contains
        # expired entries because neighbours are strictly newer
        self.neighbors: list[WeightedRect] = []
        # si: best space anchored here, initially the rectangle itself
        self.space = Region(rect=wr.rect, weight=wr.weight, anchor_oid=wr.oid)
        # s̄i: upper bound on the true si (Equation 3 maintenance)
        self.upper = wr.weight
        # set when edges were added since `space` was last recomputed
        self.dirty = False
        # len(neighbors) when `space` was last recomputed exactly; the
        # tail neighbors[swept_degree:] is Algorithm 5's R(ri)
        self.swept_degree = 0
        # local_plane_sweep_cached state: the clipped (Rect, weight)
        # items of neighbors[:clip_upto], valid because neighbour lists
        # are append-only while the vertex is alive.  None until the
        # vertex is first swept, so pruned vertices pay nothing.
        self.clip_items: list[tuple[object, float]] | None = None
        self.clip_upto = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Vertex(seq={self.seq}, oid={self.wr.oid}, "
            f"deg={len(self.neighbors)}, si={self.space.weight:.3f}, "
            f"upper={self.upper:.3f})"
        )


class CellGraph:
    """The dynamic graph of one grid cell, in arrival order.

    Used directly by G2 (vertices only); aG2 wraps it with the pending
    set ``R`` and the cell bound ``c.w`` (see ``repro.core.ag2``).
    """

    __slots__ = ("vertices",)

    def __init__(self) -> None:
        self.vertices: Deque[Vertex] = deque()

    def __len__(self) -> int:
        return len(self.vertices)

    def connect(self, wr: WeightedRect, seq: int) -> tuple[Vertex, list[Vertex]]:
        """Insert a new rectangle, adding edges from every older
        overlapping vertex (Definition 5).

        Returns the new vertex and the list of older vertices that
        gained an edge (whose ``si`` may now be stale).  The caller
        counts the ``len(self.vertices)`` pairwise overlap tests.
        """
        rect = wr.rect
        touched: list[Vertex] = []
        for v in self.vertices:
            if v.wr.rect.overlaps(rect):
                v.neighbors.append(wr)
                v.upper += wr.weight
                v.dirty = True
                touched.append(v)
        vertex = Vertex(wr, seq)
        self.vertices.append(vertex)
        return vertex, touched

    def append_raw(self, vertex: Vertex) -> None:
        """Append an already-wired vertex (aG2's OverlapComputation builds
        edges itself to also maintain bounds)."""
        self.vertices.append(vertex)

    def expire_upto(self, seq: int) -> list[Vertex]:
        """Remove and return all vertices with ``seq`` ≤ the given
        sequence number.  Vertices expire strictly in arrival order, so
        this is a pop-from-the-front loop (Property 3: no other vertex
        needs maintenance)."""
        removed: list[Vertex] = []
        vertices = self.vertices
        while vertices and vertices[0].seq <= seq:
            removed.append(vertices.popleft())
        return removed

    def iter_vertices(self) -> Iterable[Vertex]:
        return iter(self.vertices)
