"""Approximate monitoring MaxRS (paper §6.1).

The approximate monitor *is* the branch-and-bound monitor with both
pruning tests relaxed by ``(1-ε)`` (Pruning Rules 3 and 4); Theorem 1
proves the monitored space ``s`` always satisfies
``s.w ≥ (1-ε) · s*.w``.  :class:`AG2Monitor` already takes ``epsilon``,
so this module only adds the named entry point users reach for and the
error metric the paper's Figure 10 reports.
"""

from __future__ import annotations

from repro.core.ag2 import AG2Monitor
from repro.errors import InvalidParameterError
from repro.window.base import SlidingWindow

__all__ = ["ApproxAG2Monitor", "practical_error"]


class ApproxAG2Monitor(AG2Monitor):
    """Error-guaranteed approximate monitor: ``s.w ≥ (1-ε)·s*.w``.

    Identical to :class:`AG2Monitor` except ``epsilon`` is a required,
    strictly positive argument — reaching for this class documents the
    intent to trade accuracy for update speed.
    """

    def __init__(
        self,
        rect_width: float,
        rect_height: float,
        window: SlidingWindow,
        epsilon: float,
        cell_size: float | None = None,
    ) -> None:
        if not (0.0 < epsilon < 1.0):
            raise InvalidParameterError(
                f"approximate monitoring needs 0 < epsilon < 1, got {epsilon}"
            )
        super().__init__(
            rect_width,
            rect_height,
            window,
            cell_size=cell_size,
            epsilon=epsilon,
        )


def practical_error(approx_weight: float, exact_weight: float) -> float:
    """The paper's practical error rate ``1 - s.w / s*.w`` (§7.4).

    Zero when the window is empty (both weights 0).  Negative values
    are clamped to zero: they can only arise from floating-point noise
    since ``s.w ≤ s*.w`` by definition.
    """
    if exact_weight <= 0.0:
        return 0.0
    return max(0.0, 1.0 - approx_weight / exact_weight)
