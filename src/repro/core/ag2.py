"""aG2 — aggregate G2 index and the branch-and-bound monitor
(paper §5, Algorithms 2–4; §6.1 approximate variant).

aG2 extends every G2 cell with two things: a *pending set* ``R`` of
rectangles mapped to the cell but not yet overlap-checked, and an
upper-bound weight ``c.w`` maintained by Equations (4)–(5).  Vertices
carry the bound ``s̄i`` of Equation (3).  Together they give Property 4

    ``c.w  ≥  s̄i  ≥  si.w``   for every vertex of the cell,

which powers two pruning rules: skip a whole cell when ``c.w`` cannot
beat the monitored answer (Rule 1), and skip a vertex's
``Local-Plane-Sweep`` when ``s̄i`` cannot (Rule 2).  The approximate
monitor of §6.1 is the same algorithm with both tests relaxed by
``(1-ε)`` (Rules 3–4), which Theorem 1 shows keeps the guarantee
``s.w ≥ (1-ε)·s*.w`` at all times.

Implementation notes (see DESIGN.md §5):

* ``OverlapComputation`` re-derives ``c.w`` as the maximum bound over
  *all* cell vertices, not only those touched by pending rectangles —
  the literal pseudocode could under-set ``c.w`` when an untouched
  vertex holds the maximum, and Property 4 must never be violated.
* Candidate cells are visited in decreasing ``c.w`` order, so the
  branch-and-bound loop can stop at the first cell that fails Rule 1.
* Optional Algorithm 5 upper-bound tightening (§5.3) plugs in via the
  ``tighten`` argument; it exists for the Table 5 ablation and is off
  by default, matching the paper's conclusion that it does not pay off.
"""

from __future__ import annotations

import math
from collections import deque
from heapq import heapify, heappop
from typing import Callable, Deque, Dict

from repro.core import vector
from repro.core.graph import CellGraph, Vertex
from repro.core.grid import CellKey, UniformGrid, default_cell_size
from repro.core.monitor import MaxRSMonitor
from repro.core.objects import WeightedRect, dual_rect
from repro.core.planesweep import local_plane_sweep_cached
from repro.core.spaces import MaxRSResult
from repro.errors import InvalidParameterError, InvariantViolationError
from repro.window.base import SlidingWindow, WindowUpdate

__all__ = ["AG2Monitor", "AG2Cell"]

_NEG_INF = float("-inf")

# Signature of an upper-bound tightener (Algorithm 5): given a vertex
# whose bound exceeds the threshold, return a possibly smaller — but
# still valid — upper bound on the true si.
Tightener = Callable[[Vertex, float], float]


class AG2Cell:
    """One aG2 cell: graph + pending set ``R`` + cell bound ``c.w``."""

    __slots__ = ("graph", "pending", "cw", "rank", "cols")

    def __init__(self) -> None:
        self.graph = CellGraph()
        # rectangles mapped here but not yet overlap-checked, in
        # arrival order: (sequence number, rectangle)
        self.pending: Deque[tuple[int, WeightedRect]] = deque()
        self.cw = 0.0
        # creation order within the owning monitor; mirrors the cell
        # dict's insertion order so heap-based candidate ordering
        # breaks c.w ties exactly like a stable sort over the dict did
        self.rank = 0
        # numpy backend only: columnar mirror of the graph's rectangle
        # coordinates (vector.RectColumns), built lazily on first visit
        self.cols = None

    @property
    def is_empty(self) -> bool:
        return not self.graph and not self.pending

    def max_upper(self) -> float:
        return max(
            (v.upper for v in self.graph.iter_vertices()), default=0.0
        )


class AG2Monitor(MaxRSMonitor):
    """Branch-and-bound continuous MaxRS monitor over aG2 (Algorithm 2).

    Args:
        epsilon: User-tolerated error rate ``ε ∈ [0, 1)``.  ``0`` gives
            the exact monitor; ``ε > 0`` gives the §6.1 approximate
            monitor with the guarantee ``s.w ≥ (1-ε)·s*.w``.
        tighten: Optional Algorithm 5 tightener (see
            ``repro.core.upperbound``); ablation only.
        cell_size: Grid resolution; defaults to twice the query size.
    """

    index_backend = "uniform-grid"

    def __init__(
        self,
        rect_width: float,
        rect_height: float,
        window: SlidingWindow,
        cell_size: float | None = None,
        epsilon: float = 0.0,
        tighten: Tightener | None = None,
        visit_order: str = "bound",
        backend: str = "python",
    ) -> None:
        super().__init__(rect_width, rect_height, window, backend=backend)
        if not (0.0 <= epsilon < 1.0):
            raise InvalidParameterError(
                f"epsilon must be in [0, 1), got {epsilon}"
            )
        if visit_order not in ("bound", "arbitrary"):
            raise InvalidParameterError(
                f"visit_order must be 'bound' or 'arbitrary', got {visit_order!r}"
            )
        if cell_size is None:
            cell_size = default_cell_size(rect_width, rect_height)
        self.grid = UniformGrid(cell_size=cell_size)
        self.epsilon = float(epsilon)
        self._tighten = tighten
        # "bound": visit candidate cells in decreasing c.w so the first
        # Rule-1 failure prunes the remainder (our default); "arbitrary":
        # the paper's literal reading — any order, every cell tested.
        self.visit_order = visit_order
        self._cells: Dict[CellKey, AG2Cell] = {}
        self._next_seq = 0
        self._next_cell_rank = 0
        self._expired_upto = -1
        # every (seq, key) mapping made by _map_arrivals, in seq order;
        # purging pops the expired prefix and touches only those cells
        # instead of scanning the whole cell dict per batch
        self._expiry_log: Deque[tuple[int, CellKey]] = deque()
        # the monitored answer: the vertex whose exact space we report
        self._star: Vertex | None = None
        self._star_cell: CellKey | None = None

    # -- Algorithm 2 ---------------------------------------------------------

    def _on_delta(self, delta: WindowUpdate) -> None:
        self._expired_upto += len(delta.expired)
        self._map_arrivals(delta)
        self._purge_all()
        if not self._cells:
            self._star = None
            self._star_cell = None
            return
        # lines 6-10: refresh (or re-seed) the monitored answer first so
        # the pruning threshold is as large as possible
        start_key = self._pick_start_cell()
        self._overlap_computation(self._cells[start_key])
        self._exact_weight_computation(start_key)
        # lines 11-15: branch-and-bound over the remaining cells; in
        # "bound" order the first Rule-1 failure prunes the rest, in
        # "arbitrary" order every cell is tested individually
        if self.visit_order == "bound":
            # a heap beats a full sort here: the typical batch visits a
            # handful of cells before the first Rule-1 failure prunes
            # everything else, so most candidates are never popped.
            # (-cw, rank) pops in the exact order sorted() produced —
            # rank mirrors the cell dict's insertion order.
            heap = [
                (-cell.cw, cell.rank, key)
                for key, cell in self._cells.items()
                if key != start_key
            ]
            heapify(heap)
            while heap:
                neg_cw, _rank, key = heappop(heap)
                cell = self._cells[key]
                if not self._may_beat(cell.cw):
                    pruned = len(heap) + 1
                    self.stats.cells_pruned += pruned
                    self.metrics.inc("cells_pruned", pruned)
                    break
                self._overlap_computation(cell)
                if self._may_beat(cell.cw):
                    self._exact_weight_computation(key)
                else:
                    self.stats.cells_pruned += 1
                    self.metrics.inc("cells_pruned")
            return
        for key in [key for key in self._cells if key != start_key]:
            cell = self._cells[key]
            if not self._may_beat(cell.cw):
                self.stats.cells_pruned += 1
                self.metrics.inc("cells_pruned")
                continue
            self._overlap_computation(cell)
            if self._may_beat(cell.cw):
                self._exact_weight_computation(key)
            else:
                self.stats.cells_pruned += 1
                self.metrics.inc("cells_pruned")

    # -- batch plumbing --------------------------------------------------------

    def _map_arrivals(self, delta: WindowUpdate) -> None:
        """Lines 1-5: route new rectangles to their cells, growing each
        cell bound by the arriving weight (Equation 5)."""
        if self.backend == "numpy" and delta.arrived:
            self._map_arrivals_np(delta)
            return
        cells = self._cells
        grid_keys = self.grid.cell_keys
        width = self.rect_width
        height = self.rect_height
        log = self._expiry_log.append
        for obj in delta.arrived:
            seq = self._next_seq
            self._next_seq += 1
            wr = dual_rect(obj, width, height)
            weight = wr.weight
            for key in grid_keys(wr.rect):
                cell = cells.get(key)
                if cell is None:
                    cell = self._make_cell()
                    cell.rank = self._next_cell_rank
                    self._next_cell_rank += 1
                    cells[key] = cell
                cell.pending.append((seq, wr))
                cell.cw += weight
                log((seq, key))

    def _map_arrivals_np(self, delta: WindowUpdate) -> None:
        """Columnar ``_map_arrivals``: dual transform, validation and
        grid-range computation run as batch array ops; only the per-cell
        routing (dict upkeep, pending/bound/log appends) stays scalar.
        State after the call is byte-identical to the reference loop —
        same sequence numbers, same cell creation order, same
        i-major/j-minor key order per rectangle."""
        objs = delta.arrived
        wrs, (x1, y1, x2, y2, ws) = vector.build_weighted_rects(
            objs, self.rect_width, self.rect_height
        )
        i0, i1, j0, j1 = vector.grid_cell_ranges(x1, y1, x2, y2, self.grid)
        # the reference cell_keys returns an empty cover for degenerate
        # rectangles; mirror that by skipping them (seq still advances)
        deg = ((x1 == x2) | (y1 == y2)).tolist()
        i0l = i0.tolist()
        i1l = i1.tolist()
        j0l = j0.tolist()
        j1l = j1.tolist()
        wl = ws.tolist()
        seq0 = self._next_seq
        self._next_seq = seq0 + len(objs)
        cells = self._cells
        get = cells.get
        log = self._expiry_log.append
        for n, wr in enumerate(wrs):
            if deg[n]:
                continue
            seq = seq0 + n
            weight = wl[n]
            jlo = j0l[n]
            jhi = j1l[n] + 1
            for i in range(i0l[n], i1l[n] + 1):
                for j in range(jlo, jhi):
                    key = (i, j)
                    cell = get(key)
                    if cell is None:
                        cell = self._make_cell()
                        cell.rank = self._next_cell_rank
                        self._next_cell_rank += 1
                        cells[key] = cell
                    cell.pending.append((seq, wr))
                    cell.cw += weight
                    log((seq, key))

    def _make_cell(self) -> AG2Cell:
        """Cell factory; the top-k monitor overrides it to attach the
        per-cell candidate list."""
        return AG2Cell()

    def _purge_all(self) -> None:
        """Expire stale vertices/pending entries from the cells that
        hold them.

        The expiry log records every ``(seq, key)`` mapping in arrival
        order, so the cells owning expired entries are exactly those in
        the log's expired prefix — O(expired × cells-per-rect) per
        batch instead of a scan over every materialised cell.  Purging
        only removes weight, so cell bounds remain valid upper bounds
        without adjustment; empty cells are dropped.
        """
        expired_upto = self._expired_upto
        if self._star is not None and self._star.seq <= expired_upto:
            self._star = None
            self._star_cell = None
        log = self._expiry_log
        if not log or log[0][0] > expired_upto:
            return
        touched: set[CellKey] = set()
        add = touched.add
        while log and log[0][0] <= expired_upto:
            add(log.popleft()[1])
        cells = self._cells
        for key in touched:
            cell = cells.get(key)
            if cell is None:
                continue
            removed = cell.graph.expire_upto(expired_upto)
            pending = cell.pending
            while pending and pending[0][0] <= expired_upto:
                pending.popleft()
            if not pending and not cell.graph:
                del cells[key]
            elif removed:
                self._cell_purged(cell)

    def _cell_purged(self, cell: AG2Cell) -> None:
        """Hook invoked after vertices expired from a surviving cell;
        the top-k monitor repairs its per-cell candidate list here."""

    def _pick_start_cell(self) -> CellKey:
        """The cell holding ``s*``; if it expired, the Equation (6)
        heuristic: the cell with the largest upper bound."""
        if self._star_cell is not None and self._star_cell in self._cells:
            return self._star_cell
        return max(
            (cell.cw, key) for key, cell in self._cells.items()
        )[1]

    def _may_beat(self, bound: float) -> bool:
        """Pruning Rule 1 (ε = 0) / Rule 3 (ε > 0): can a cell with this
        bound contain an answer we are obliged to adopt?"""
        if self._star is None:
            return True
        return (1.0 - self.epsilon) * bound > self._star.space.weight

    # -- Algorithm 3 -------------------------------------------------------------

    def _overlap_computation(self, cell: AG2Cell) -> None:
        """Move pending rectangles into the graph, adding edges from
        older overlapping vertices (Equation 3 grows their bounds), then
        re-derive the cell bound from all vertex bounds (Equation 4)."""
        self.stats.cells_visited += 1
        metrics = self.metrics
        metrics.inc("cells_visited")
        graph = cell.graph
        if cell.pending:
            V = len(graph)
            P = len(cell.pending)
            if self.backend == "numpy" and (
                cell.cols is not None
                or V * P + P * P >= vector.CONNECT_BATCH_MIN
            ):
                # batched connect: one broadcast overlap mask instead of
                # V x P scalar predicate calls; edges are wired in the
                # reference order so vertex bounds accumulate the same
                # float sums.  The test count matches the per-pending
                # loop exactly: pending j sees len(graph) == V + j.
                tests = V * P + (P * (P - 1)) // 2
                self.stats.overlap_tests += tests
                metrics.inc("overlap_tests", tests)
                if cell.cols is None:
                    cell.cols = vector.RectColumns.from_graph(graph)
                _, touched_lists = vector.connect_batch(
                    graph, cell.cols, cell.pending, self._expired_upto
                )
                metrics.inc(
                    "edges_touched", sum(map(len, touched_lists))
                )
            else:
                for seq, wr in cell.pending:
                    self.stats.overlap_tests += len(graph)
                    metrics.inc("overlap_tests", len(graph))
                    _, touched = graph.connect(wr, seq)
                    metrics.inc("edges_touched", len(touched))
            cell.pending.clear()
        cell.cw = cell.max_upper()
        metrics.inc("upper_bound_recomputes")

    # -- Algorithm 4 -------------------------------------------------------------

    def _exact_weight_computation(self, key: CellKey) -> None:
        """Scan the cell's vertices; run ``Local-Plane-Sweep`` for every
        vertex that survives Pruning Rule 2/4, adopting improvements
        into the monitored answer."""
        cell = self._cells[key]
        relax = 1.0 - self.epsilon
        tighten = self._tighten
        metrics = self.metrics
        cw = 0.0
        for v in cell.graph.iter_vertices():
            rho = (
                self._star.space.weight if self._star is not None else _NEG_INF
            )
            if relax * v.upper > rho:
                if tighten is not None and v.upper > v.space.weight:
                    v.upper = tighten(v, rho)
                    metrics.inc("bound_tightenings")
                if relax * v.upper > rho:
                    # sweep only when N(ri) changed since the last exact
                    # computation; otherwise `space` is already the exact
                    # si and re-sweeping would reproduce it verbatim.
                    # `dirty` is set by every edge append and cleared by
                    # every sweep, so it is exactly that condition.
                    if v.dirty:
                        self._sweep_vertex(v)
                    star = self._star
                    if star is None or v.space.weight > star.space.weight:
                        self._star = v
                        self._star_cell = key
                else:
                    self.stats.vertices_pruned += 1
                    metrics.inc("vertices_pruned")
            else:
                self.stats.vertices_pruned += 1
                metrics.inc("vertices_pruned")
            if v.upper > cw:
                cw = v.upper
        cell.cw = cw
        metrics.inc("upper_bound_recomputes")

    def _sweep_vertex(self, v: Vertex) -> None:
        v.space = local_plane_sweep_cached(v, backend=self.backend)
        v.upper = v.space.weight
        v.dirty = False
        v.swept_degree = len(v.neighbors)
        self.stats.local_sweeps += 1
        self.metrics.inc("local_sweeps")

    # -- result --------------------------------------------------------------------

    def _compute_result(self, tick: int) -> MaxRSResult:
        # answers carry their quality contract: exact when ε = 0, a
        # hard (1-ε) weight floor otherwise (Theorem 1)
        mode = "approx" if self.epsilon > 0.0 else "exact"
        guarantee = 1.0 - self.epsilon
        if self._star is None:
            return MaxRSResult(
                tick=tick,
                window_size=len(self.window),
                mode=mode,
                guarantee=guarantee,
            )
        return MaxRSResult.single(
            self._star.space,
            tick=tick,
            window_size=len(self.window),
            mode=mode,
            guarantee=guarantee,
        )

    # -- diagnostics -----------------------------------------------------------------

    @property
    def cell_count(self) -> int:
        return len(self._cells)

    @property
    def vertex_count(self) -> int:
        return sum(len(c.graph) for c in self._cells.values())

    @property
    def pending_count(self) -> int:
        return sum(len(c.pending) for c in self._cells.values())

    def check_invariants(self) -> None:
        """Verify Property 4's checkable half on every cell.

        Raises :class:`InvariantViolationError` on the first violation.
        Intended for tests and debugging; never called on hot paths.
        """
        tol = 1e-6
        for key, cell in self._cells.items():
            if cell.is_empty:
                raise InvariantViolationError(f"empty cell {key} retained")
            top = cell.max_upper()
            if cell.cw < top - tol:
                raise InvariantViolationError(
                    f"cell {key}: c.w={cell.cw} below max vertex bound {top}"
                )
            prev_seq = -1
            for v in cell.graph.iter_vertices():
                if v.seq <= self._expired_upto:
                    raise InvariantViolationError(
                        f"cell {key}: expired vertex seq={v.seq} retained"
                    )
                if v.seq <= prev_seq:
                    raise InvariantViolationError(
                        f"cell {key}: vertices out of arrival order"
                    )
                prev_seq = v.seq
                if v.upper < v.space.weight - tol:
                    raise InvariantViolationError(
                        f"cell {key}: vertex seq={v.seq} bound "
                        f"{v.upper} below exact space {v.space.weight}"
                    )
                if not math.isfinite(v.upper):
                    raise InvariantViolationError(
                        f"cell {key}: non-finite bound on seq={v.seq}"
                    )
