"""Monitor abstraction: the continuous-query surface of the library.

Every algorithm in the paper — the naive recompute baseline, the G2
basic monitor (Algorithm 1), the aG2 branch-and-bound monitor
(Algorithm 2), its approximate variant and the top-k variant — is a
:class:`MaxRSMonitor`: push a batch of newly generated objects, get the
current MaxRS answer back.  The monitor owns its sliding window; callers
that manage their own window can feed deltas through :meth:`apply`.

Monitors also expose :class:`MonitorStats`, cheap counters of the
dominant operations (local sweeps, pairwise overlap tests, cell
visits/prunes).  The paper's efficiency argument is entirely about
avoiding ``Local-Plane-Sweep`` executions; the counters make that
directly observable in tests and benchmarks.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

from repro.core.objects import SpatialObject
from repro.core.spaces import MaxRSResult
from repro.core.vector import resolve_backend
from repro.errors import InvalidParameterError
from repro.obs.metrics import NULL_METRICS, Metrics
from repro.window.base import SlidingWindow, WindowUpdate

__all__ = ["MonitorStats", "MaxRSMonitor"]


@dataclass(slots=True)
class MonitorStats:
    """Operation counters accumulated across a monitor's lifetime."""

    updates: int = 0
    objects_seen: int = 0
    full_sweeps: int = 0
    local_sweeps: int = 0
    overlap_tests: int = 0
    cells_visited: int = 0
    cells_pruned: int = 0
    vertices_pruned: int = 0

    def snapshot(self) -> "MonitorStats":
        """An independent copy, for before/after deltas in tests."""
        return MonitorStats(
            updates=self.updates,
            objects_seen=self.objects_seen,
            full_sweeps=self.full_sweeps,
            local_sweeps=self.local_sweeps,
            overlap_tests=self.overlap_tests,
            cells_visited=self.cells_visited,
            cells_pruned=self.cells_pruned,
            vertices_pruned=self.vertices_pruned,
        )

    def reset(self) -> None:
        self.updates = 0
        self.objects_seen = 0
        self.full_sweeps = 0
        self.local_sweeps = 0
        self.overlap_tests = 0
        self.cells_visited = 0
        self.cells_pruned = 0
        self.vertices_pruned = 0


class MaxRSMonitor(ABC):
    """Base class for continuous MaxRS monitors.

    Args:
        rect_width: Width of the user-specified query rectangle.
        rect_height: Height of the query rectangle.
        window: The sliding window that defines which objects are alive.
            The monitor takes ownership: push batches through
            :meth:`update` rather than mutating the window directly.
        backend: Sweep compute backend, ``"python"`` (the always-available
            reference kernel) or ``"numpy"`` (the columnar fast path of
            ``repro.core.vector``; requires the optional ``[vector]``
            extra).  Both produce byte-identical answers.
    """

    #: which spatial index backs this monitor ("none" for index-free
    #: baselines); benchmark/profile rows carry it so a perf-gate
    #: failure names the offending index, not just the algorithm
    index_backend: str = "none"

    def __init__(
        self,
        rect_width: float,
        rect_height: float,
        window: SlidingWindow,
        backend: str = "python",
    ) -> None:
        if rect_width <= 0 or rect_height <= 0:
            raise InvalidParameterError(
                "query rectangle size must be positive, got "
                f"{rect_width} x {rect_height}"
            )
        #: resolved sweep backend; "numpy" is rejected here (typed
        #: InvalidParameterError) when numpy is not importable
        self.backend = resolve_backend(backend)
        self.rect_width = float(rect_width)
        self.rect_height = float(rect_height)
        self.window = window
        self.stats = MonitorStats()
        # observability attachment point: a no-op registry until an
        # engine (or caller) attaches a real one via attach_metrics()
        self.metrics: Metrics = NULL_METRICS
        self._last_result = MaxRSResult()

    # -- public API ------------------------------------------------------

    def attach_metrics(self, metrics: Metrics) -> None:
        """Attach a metrics scope; the window gets a ``window`` child.

        Instrumented hot paths emit into whatever registry is attached;
        the default :data:`~repro.obs.metrics.NULL_METRICS` makes every
        emission a no-op, so monitors built without observability pay
        essentially nothing.
        """
        self.metrics = metrics
        self.window.metrics = metrics.scope("window")

    def update(self, objects: Sequence[SpatialObject]) -> MaxRSResult:
        """Push a batch of newly generated objects; return the new answer.

        This is the continuous-query step: the window admits the batch
        and expires stale objects, and the monitor incrementally (or for
        the naive baseline, from scratch) refreshes ``s*``.
        """
        delta = self.window.push(objects)
        return self.apply(delta)

    def ingest(self, objects: Sequence[SpatialObject]) -> None:
        """Admit a batch without producing an answer.

        Index state is fully maintained, only the answer derivation is
        skipped — for incremental monitors that derivation is nearly
        free, but for the naive baseline it is the entire O(n log n)
        sweep, so bulk-loading a window (benchmark priming, recovery
        replay) should go through ``ingest``.
        """
        delta = self.window.push(objects)
        self._account(delta)
        self._on_delta(delta)

    def apply(self, delta: WindowUpdate) -> MaxRSResult:
        """Consume an externally produced window delta (advanced use:
        several monitors sharing one window, or time-window
        ``advance_to`` expirations)."""
        self._account(delta)
        self._on_delta(delta)
        self._last_result = self._compute_result(delta.tick)
        return self._last_result

    def _account(self, delta: WindowUpdate) -> None:
        self.stats.updates += 1
        self.stats.objects_seen += len(delta.arrived)
        self.metrics.inc("updates")
        self.metrics.inc("objects_seen", len(delta.arrived))

    @property
    def result(self) -> MaxRSResult:
        """The most recently computed answer."""
        return self._last_result

    # -- algorithm hooks ---------------------------------------------------

    @abstractmethod
    def _on_delta(self, delta: WindowUpdate) -> None:
        """Integrate arrivals/expirations into the monitor's index."""

    @abstractmethod
    def _compute_result(self, tick: int) -> MaxRSResult:
        """Produce the answer for the current window state."""
