"""Plane-sweep MaxRS solvers (the paper's §3 building block).

Implements the optimal O(n log n) in-memory algorithm of Nandy &
Bhattacharya [18] / Imai & Asano [12]: sweep a horizontal line from the
bottom to the top of a set of weighted rectangles while a
:class:`~repro.core.segment_tree.MaxCoverSegmentTree` tracks the total
weight covering each elementary x-interval.  Three entry points:

* :func:`plane_sweep_max` — the classic one-shot MaxRS over a rectangle
  set; this is what the *naive* baseline re-runs from scratch per batch.
* :func:`plane_sweep_topk` — single-sweep top-k: one candidate per
  insertion event (range-max over the inserted rectangle's span),
  de-duplicated by arrangement cell.  Its top-1 equals
  ``plane_sweep_max``; see DESIGN.md §1 for lower-rank semantics.
* :func:`local_plane_sweep` — the paper's ``Local-Plane-Sweep(N(ri) ∪
  {ri})``: neighbours are clipped to the anchor rectangle so the result
  is the best space *on* the anchor, which is how G2/aG2 compute ``si``.

Reported regions are elementary cells of the sweep arrangement: a
sub-rectangle of the (possibly wider) maximal-weight space.  Every
interior point attains the reported weight, which is all MaxRS needs.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, Sequence

from repro.core.geometry import Rect
from repro.core.objects import WeightedRect
from repro.core.segment_tree import MaxCoverSegmentTree
from repro.core.spaces import Region
from repro.errors import InvalidParameterError

__all__ = [
    "plane_sweep_max",
    "plane_sweep_topk",
    "local_plane_sweep",
    "sweep_items_max",
]

_REMOVE = 0
_INSERT = 1


def _prepare(
    items: Sequence[tuple[Rect, float]],
) -> tuple[list[float], list[tuple[float, int, int, int, float]]] | None:
    """Build the slot coordinate array and the y-sorted event list.

    Returns ``None`` when no rectangle has positive area.  Each event is
    ``(y, kind, lo_slot, hi_slot, weight)``; removals sort before
    insertions at equal ``y`` so that every queried strip has positive
    height (strict-interior semantics).
    """
    xs_set: set[float] = set()
    live: list[tuple[Rect, float]] = []
    for rect, w in items:
        if rect.is_degenerate:
            continue
        live.append((rect, w))
        xs_set.add(rect.x1)
        xs_set.add(rect.x2)
    if not live:
        return None
    xs = sorted(xs_set)
    events: list[tuple[float, int, int, int, float]] = []
    for rect, w in live:
        lo = bisect_left(xs, rect.x1)
        hi = bisect_left(xs, rect.x2) - 1
        events.append((rect.y1, _INSERT, lo, hi, w))
        events.append((rect.y2, _REMOVE, lo, hi, w))
    events.sort(key=lambda e: (e[0], e[1]))
    return xs, events


def _iter_y_groups(
    events: list[tuple[float, int, int, int, float]],
    tree: MaxCoverSegmentTree,
) -> Iterable[tuple[float, float, list[tuple[int, int]]]]:
    """Apply events group-by-group; yield ``(y, y_next, inserted_spans)``
    after each group that performed at least one insertion."""
    n = len(events)
    i = 0
    while i < n:
        y = events[i][0]
        inserted: list[tuple[int, int]] = []
        while i < n and events[i][0] == y:
            _, kind, lo, hi, w = events[i]
            if kind == _INSERT:
                tree.add(lo, hi, w)
                inserted.append((lo, hi))
            else:
                tree.add(lo, hi, -w)
            i += 1
        if inserted and i < n:
            yield y, events[i][0], inserted


def sweep_items_max(
    items: Sequence[tuple[Rect, float]],
) -> tuple[float, Rect] | None:
    """Core sweep over ``(rect, weight)`` pairs.

    Returns ``(weight, region_rect)`` of a maximum-weight overlap space,
    or ``None`` when no rectangle has positive area.
    """
    prepared = _prepare(items)
    if prepared is None:
        return None
    xs, events = prepared
    tree = MaxCoverSegmentTree(max(1, len(xs) - 1))
    best_w = float("-inf")
    best: tuple[int, float, float] | None = None
    for y, y_next, _inserted in _iter_y_groups(events, tree):
        value = tree.max_value
        if value > best_w:
            best_w = value
            best = (tree.argmax, y, y_next)
    if best is None:
        return None
    slot, y, y_next = best
    return best_w, Rect(xs[slot], y, xs[slot + 1], y_next)


def plane_sweep_max(rects: Sequence[WeightedRect]) -> Region | None:
    """One-shot exact MaxRS over a set of weighted rectangles.

    The returned region is an arrangement cell attaining the maximum
    range-sum; ``None`` iff ``rects`` contains no positive-area
    rectangle.
    """
    result = sweep_items_max([(wr.rect, wr.weight) for wr in rects])
    if result is None:
        return None
    weight, rect = result
    return Region(rect=rect, weight=weight)


def plane_sweep_topk(rects: Sequence[WeightedRect], k: int) -> list[Region]:
    """Single-sweep top-k MaxRS (the Figure 11 naive baseline).

    At every sweep strip where insertions happened, each inserted
    rectangle contributes the best arrangement cell within its x-span as
    a candidate.  Candidates are de-duplicated by cell identity
    ``(slot, strip)`` and the ``k`` heaviest survive, best first.
    """
    if k <= 0:
        raise InvalidParameterError(f"k must be positive, got {k}")
    prepared = _prepare([(wr.rect, wr.weight) for wr in rects])
    if prepared is None:
        return []
    xs, events = prepared
    tree = MaxCoverSegmentTree(max(1, len(xs) - 1))
    # arrangement cell -> (weight, slot, y, y_next)
    candidates: dict[tuple[int, float], tuple[float, int, float, float]] = {}
    for y, y_next, inserted in _iter_y_groups(events, tree):
        for lo, hi in inserted:
            value, slot = tree.range_max(lo, hi)
            key = (slot, y)
            prev = candidates.get(key)
            if prev is None or value > prev[0]:
                candidates[key] = (value, slot, y, y_next)
    ranked = sorted(candidates.values(), key=lambda c: c[0], reverse=True)
    return [
        Region(rect=Rect(xs[slot], y, xs[slot + 1], y_next), weight=value)
        for value, slot, y, y_next in ranked[:k]
    ]


def local_plane_sweep(
    anchor: WeightedRect, neighbors: Sequence[WeightedRect]
) -> Region:
    """``Local-Plane-Sweep(N(ri) ∪ {ri})`` — best space on the anchor.

    Neighbour rectangles are clipped to the anchor's extent (the space
    ``si`` is by definition a subspace of ``ri``), then a sweep bounded
    to the anchor's y-range finds the heaviest overlap.  With no
    overlapping neighbours the anchor's own extent and weight are
    returned.  The result carries ``anchor_oid`` so graph-based monitors
    can de-duplicate spaces by anchor (Property 1).
    """
    items: list[tuple[Rect, float]] = [(anchor.rect, anchor.weight)]
    for nb in neighbors:
        clipped = nb.rect.clip(anchor.rect)
        if clipped is not None and not clipped.is_degenerate:
            items.append((clipped, nb.weight))
    if len(items) == 1:
        return Region(
            rect=anchor.rect, weight=anchor.weight, anchor_oid=anchor.oid
        )
    result = sweep_items_max(items)
    if result is None:  # anchor degenerate and nothing else: weight only
        return Region(
            rect=anchor.rect, weight=anchor.weight, anchor_oid=anchor.oid
        )
    weight, rect = result
    return Region(rect=rect, weight=weight, anchor_oid=anchor.oid)
