"""Plane-sweep MaxRS solvers (the paper's §3 building block).

Implements the optimal O(n log n) in-memory algorithm of Nandy &
Bhattacharya [18] / Imai & Asano [12]: sweep a horizontal line from the
bottom to the top of a set of weighted rectangles while a
:class:`~repro.core.segment_tree.MaxCoverSegmentTree` tracks the total
weight covering each elementary x-interval.  Entry points:

* :func:`plane_sweep_max` — the classic one-shot MaxRS over a rectangle
  set; this is what the *naive* baseline re-runs from scratch per batch.
* :func:`plane_sweep_topk` — single-sweep top-k: one candidate per
  insertion event (range-max over the inserted rectangle's span),
  de-duplicated by arrangement cell.  Its top-1 equals
  ``plane_sweep_max``; see DESIGN.md §1 for lower-rank semantics.
* :func:`local_plane_sweep` — the paper's ``Local-Plane-Sweep(N(ri) ∪
  {ri})``: neighbours are clipped to the anchor rectangle so the result
  is the best space *on* the anchor, which is how G2/aG2 compute ``si``.
* :func:`local_plane_sweep_cached` — the same sweep driven from a graph
  :class:`~repro.core.graph.Vertex`, reusing the clipped-neighbour
  items computed by earlier sweeps of the same vertex (neighbour lists
  are append-only, so only the tail added since the last sweep needs
  clipping).

Reported regions are elementary cells of the sweep arrangement: a
sub-rectangle of the (possibly wider) maximal-weight space.  Every
interior point attains the reported weight, which is all MaxRS needs.

Hot-path notes (docs/PERFORMANCE.md): events are 6-tuples
``(y, kind, seq, lo_slot, hi_slot, weight)`` sorted *natively* — the
``seq`` component reproduces the stable-sort tie order a ``key=``
lambda used to provide, without calling back into Python per
comparison — and sweeps borrow a pooled segment tree via
:func:`_acquire_tree` / :func:`_release_tree` instead of allocating
three ``O(n)`` lists per sweep.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.core import vector
from repro.core.geometry import Rect
from repro.core.objects import WeightedRect
from repro.core.segment_tree import MaxCoverSegmentTree
from repro.core.spaces import Region
from repro.errors import InvalidParameterError

if TYPE_CHECKING:  # graph imports nothing from here; annotation only
    from repro.core.graph import Vertex

__all__ = [
    "plane_sweep_max",
    "plane_sweep_topk",
    "local_plane_sweep",
    "local_plane_sweep_cached",
    "sweep_items_max",
]

_REMOVE = 0
_INSERT = 1

# Pool of reusable segment trees: a sweep borrows one, resets it to the
# needed slot count (reusing the backing arrays), and returns it.  Kept
# tiny — sweeps never nest more than top-level sweep → local sweep.
_TREE_POOL: list[MaxCoverSegmentTree] = []
_POOL_MAX = 4


def _acquire_tree(size: int) -> MaxCoverSegmentTree:
    if _TREE_POOL:
        tree = _TREE_POOL.pop()
        tree.reset(size)
        return tree
    return MaxCoverSegmentTree(size)


def _release_tree(tree: MaxCoverSegmentTree) -> None:
    if len(_TREE_POOL) < _POOL_MAX:
        _TREE_POOL.append(tree)


def _prepare(
    items: Sequence[tuple[Rect, float]],
) -> tuple[list[float], list[tuple[float, int, int, int, int, float]]] | None:
    """Build the slot coordinate array and the y-sorted event list.

    Returns ``None`` when no rectangle has positive area.  Each event is
    ``(y, kind, seq, lo_slot, hi_slot, weight)``; removals sort before
    insertions at equal ``y`` so that every queried strip has positive
    height (strict-interior semantics), and the per-rectangle ``seq``
    makes the native tuple sort reproduce input order on (y, kind) ties.
    """
    xs_all: list[float] = []
    push_x = xs_all.append
    live: list[tuple[Rect, float]] = []
    push_live = live.append
    for rect, w in items:
        x1 = rect.x1
        x2 = rect.x2
        if x1 == x2 or rect.y1 == rect.y2:  # degenerate: empty interior
            continue
        push_live((rect, w))
        push_x(x1)
        push_x(x2)
    if not live:
        return None
    xs_all.sort()
    xs = [xs_all[0]]
    push_slot = xs.append
    prev = xs_all[0]
    for x in xs_all:
        if x != prev:
            push_slot(x)
            prev = x
    events: list[tuple[float, int, int, int, int, float]] = []
    push_event = events.append
    seq = 0
    for rect, w in live:
        lo = bisect_left(xs, rect.x1)
        hi = bisect_left(xs, rect.x2) - 1
        push_event((rect.y1, _INSERT, seq, lo, hi, w))
        push_event((rect.y2, _REMOVE, seq, lo, hi, w))
        seq += 1
    events.sort()
    return xs, events


def _iter_y_groups(
    events: list[tuple[float, int, int, int, int, float]],
    tree: MaxCoverSegmentTree,
) -> Iterable[tuple[float, float, list[tuple[int, int]]]]:
    """Apply events group-by-group; yield ``(y, y_next, inserted_spans)``
    after each group that performed at least one insertion."""
    n = len(events)
    i = 0
    add = tree.add
    while i < n:
        y = events[i][0]
        inserted: list[tuple[int, int]] = []
        push = inserted.append
        while i < n and events[i][0] == y:
            ev = events[i]
            lo = ev[3]
            hi = ev[4]
            if ev[1]:
                add(lo, hi, ev[5])
                push((lo, hi))
            else:
                add(lo, hi, -ev[5])
            i += 1
        if inserted and i < n:
            yield y, events[i][0], inserted


def sweep_items_max(
    items: Sequence[tuple[Rect, float]],
    backend: str = "python",
) -> tuple[float, Rect] | None:
    """Core sweep over ``(rect, weight)`` pairs.

    Returns ``(weight, region_rect)`` of a maximum-weight overlap space,
    or ``None`` when no rectangle has positive area.  Under the numpy
    ``backend`` the columnar kernel takes over once the input is large
    enough to amortise its setup (``vector.VECTOR_SWEEP_MIN``); answers
    are byte-identical either way.
    """
    if backend == "numpy" and len(items) >= vector.VECTOR_SWEEP_MIN:
        return vector.sweep_items_max_columns(items)
    prepared = _prepare(items)
    if prepared is None:
        return None
    xs, events = prepared
    tree = _acquire_tree(max(1, len(xs) - 1))
    try:
        mx = tree._mx  # root max/arg read per strip; skip property calls
        arg = tree._arg
        best_w = float("-inf")
        best: tuple[int, float, float] | None = None
        for y, y_next, _inserted in _iter_y_groups(events, tree):
            value = mx[1]
            if value > best_w:
                best_w = value
                best = (arg[1], y, y_next)
    finally:
        _release_tree(tree)
    if best is None:
        return None
    slot, y, y_next = best
    return best_w, Rect(xs[slot], y, xs[slot + 1], y_next)


def plane_sweep_max(
    rects: Sequence[WeightedRect], backend: str = "python"
) -> Region | None:
    """One-shot exact MaxRS over a set of weighted rectangles.

    The returned region is an arrangement cell attaining the maximum
    range-sum; ``None`` iff ``rects`` contains no positive-area
    rectangle.
    """
    result = sweep_items_max(
        [(wr.rect, wr.weight) for wr in rects], backend=backend
    )
    if result is None:
        return None
    weight, rect = result
    return Region(rect=rect, weight=weight)


def plane_sweep_topk(
    rects: Sequence[WeightedRect], k: int, backend: str = "python"
) -> list[Region]:
    """Single-sweep top-k MaxRS (the Figure 11 naive baseline).

    At every sweep strip where insertions happened, each inserted
    rectangle contributes the best arrangement cell within its x-span as
    a candidate.  Candidates are de-duplicated by cell identity
    ``(slot, strip)`` and the ``k`` heaviest survive, best first.

    ``backend`` is accepted for API uniformity; the per-strip candidate
    collection needs ``range_max`` interleaved with event application,
    so top-k always runs on the reference kernel (answers are identical
    by definition — there is exactly one kernel).
    """
    del backend  # documented: top-k sweeps always use the reference kernel
    if k <= 0:
        raise InvalidParameterError(f"k must be positive, got {k}")
    prepared = _prepare([(wr.rect, wr.weight) for wr in rects])
    if prepared is None:
        return []
    xs, events = prepared
    tree = _acquire_tree(max(1, len(xs) - 1))
    try:
        range_max = tree.range_max
        # arrangement cell -> (weight, slot, y, y_next)
        candidates: dict[
            tuple[int, float], tuple[float, int, float, float]
        ] = {}
        get = candidates.get
        for y, y_next, inserted in _iter_y_groups(events, tree):
            for lo, hi in inserted:
                value, slot = range_max(lo, hi)
                key = (slot, y)
                prev = get(key)
                if prev is None or value > prev[0]:
                    candidates[key] = (value, slot, y, y_next)
    finally:
        _release_tree(tree)
    ranked = sorted(candidates.values(), key=lambda c: c[0], reverse=True)
    return [
        Region(rect=Rect(xs[slot], y, xs[slot + 1], y_next), weight=value)
        for value, slot, y, y_next in ranked[:k]
    ]


def _clip_items(
    anchor: WeightedRect, neighbors: Sequence[WeightedRect]
) -> list[tuple[Rect, float]]:
    """``[(anchor, w)] + [(nb ∩ anchor, w) ...]`` skipping empty clips."""
    rect = anchor.rect
    ax1 = rect.x1
    ay1 = rect.y1
    ax2 = rect.x2
    ay2 = rect.y2
    items: list[tuple[Rect, float]] = [(rect, anchor.weight)]
    push = items.append
    for nb in neighbors:
        r = nb.rect
        x1 = r.x1 if r.x1 > ax1 else ax1
        y1 = r.y1 if r.y1 > ay1 else ay1
        x2 = r.x2 if r.x2 < ax2 else ax2
        y2 = r.y2 if r.y2 < ay2 else ay2
        if x1 < x2 and y1 < y2:
            push((Rect(x1, y1, x2, y2), nb.weight))
    return items


def _sweep_clipped(
    anchor: WeightedRect,
    items: list[tuple[Rect, float]],
    backend: str = "python",
) -> Region:
    if len(items) == 1:
        return Region(
            rect=anchor.rect, weight=anchor.weight, anchor_oid=anchor.oid
        )
    result = sweep_items_max(items, backend=backend)
    if result is None:  # anchor degenerate and nothing else: weight only
        return Region(
            rect=anchor.rect, weight=anchor.weight, anchor_oid=anchor.oid
        )
    weight, rect = result
    return Region(rect=rect, weight=weight, anchor_oid=anchor.oid)


def local_plane_sweep(
    anchor: WeightedRect,
    neighbors: Sequence[WeightedRect],
    backend: str = "python",
) -> Region:
    """``Local-Plane-Sweep(N(ri) ∪ {ri})`` — best space on the anchor.

    Neighbour rectangles are clipped to the anchor's extent (the space
    ``si`` is by definition a subspace of ``ri``), then a sweep bounded
    to the anchor's y-range finds the heaviest overlap.  With no
    overlapping neighbours the anchor's own extent and weight are
    returned.  The result carries ``anchor_oid`` so graph-based monitors
    can de-duplicate spaces by anchor (Property 1).
    """
    return _sweep_clipped(anchor, _clip_items(anchor, neighbors), backend)


def local_plane_sweep_cached(
    vertex: "Vertex", backend: str = "python"
) -> Region:
    """:func:`local_plane_sweep` over a graph vertex, reusing clips.

    A vertex's neighbour list is append-only while it is alive
    (Property 3: expiry removes whole vertices, never edges), so the
    clipped ``(Rect, weight)`` items of neighbours already processed by
    a previous sweep of the same vertex are still valid.  Only
    ``neighbors[clip_upto:]`` — the arrivals since the last sweep — are
    clipped here; the result is identical to the uncached reference
    (tests assert it item-for-item).
    """
    anchor = vertex.wr
    items = vertex.clip_items
    if items is None:
        items = vertex.clip_items = [(anchor.rect, anchor.weight)]
    neighbors = vertex.neighbors
    start = vertex.clip_upto
    if start < len(neighbors):
        rect = anchor.rect
        ax1 = rect.x1
        ay1 = rect.y1
        ax2 = rect.x2
        ay2 = rect.y2
        push = items.append
        for idx in range(start, len(neighbors)):
            r = neighbors[idx].rect
            x1 = r.x1 if r.x1 > ax1 else ax1
            y1 = r.y1 if r.y1 > ay1 else ay1
            x2 = r.x2 if r.x2 < ax2 else ax2
            y2 = r.y2 if r.y2 < ay2 else ay2
            if x1 < x2 and y1 < y2:
                push((Rect(x1, y1, x2, y2), neighbors[idx].weight))
        vertex.clip_upto = len(neighbors)
    return _sweep_clipped(anchor, items, backend)
