"""Core MaxRS machinery: primitives, solvers, indexes and monitors."""

from repro.core.ag2 import AG2Cell, AG2Monitor
from repro.core.allmax import AllMaxRSMonitor, plane_sweep_all_max
from repro.core.approx import ApproxAG2Monitor, practical_error
from repro.core.g2 import G2Monitor
from repro.core.geometry import Interval, Rect, bounding_box
from repro.core.grid import CellKey, UniformGrid, default_cell_size
from repro.core.monitor import MaxRSMonitor, MonitorStats
from repro.core.naive import NaiveMonitor
from repro.core.objects import SpatialObject, WeightedRect, to_weighted_rects
from repro.core.rtree import RTree
from repro.core.rtree_monitor import RTreeMonitor
from repro.core.planesweep import (
    local_plane_sweep,
    plane_sweep_max,
    plane_sweep_topk,
)
from repro.core.quadtree import (
    QuadtreeAG2Monitor,
    QuadtreeIndex,
    default_tile_size,
)
from repro.core.sampling import (
    SamplingMonitor,
    sample_maxrs,
    suggested_sample_size,
)
from repro.core.segment_tree import MaxCoverSegmentTree
from repro.core.spaces import MaxRSResult, Region
from repro.core.topk import TopKAG2Monitor
from repro.core.upperbound import (
    conditional_tightener,
    make_tightener,
    tighten_upper_bound,
)

__all__ = [
    "AG2Cell",
    "AG2Monitor",
    "AllMaxRSMonitor",
    "ApproxAG2Monitor",
    "CellKey",
    "G2Monitor",
    "Interval",
    "MaxCoverSegmentTree",
    "MaxRSMonitor",
    "MaxRSResult",
    "MonitorStats",
    "NaiveMonitor",
    "QuadtreeAG2Monitor",
    "QuadtreeIndex",
    "RTree",
    "RTreeMonitor",
    "Rect",
    "SamplingMonitor",
    "Region",
    "SpatialObject",
    "TopKAG2Monitor",
    "UniformGrid",
    "WeightedRect",
    "bounding_box",
    "conditional_tightener",
    "default_cell_size",
    "default_tile_size",
    "local_plane_sweep",
    "plane_sweep_all_max",
    "sample_maxrs",
    "suggested_sample_size",
    "make_tightener",
    "plane_sweep_max",
    "plane_sweep_topk",
    "practical_error",
    "tighten_upper_bound",
    "to_weighted_rects",
]
