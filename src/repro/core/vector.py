"""Columnar (struct-of-arrays) sweep backend — the optional numpy fast path.

Every monitor accepts ``backend="python" | "numpy"``.  The default is the
pure-Python reference implementation; ``"numpy"`` routes the batch-shaped
hot paths through this module:

* **batched dual-rect generation** — one vectorised ``centre ± half``
  per batch instead of one :meth:`Rect.from_center` per object
  (:func:`build_weighted_rects`),
* **vectorised grid mapping** — the float-guarded cell-range loops of
  ``repro.core.grid._axis_cells`` run once over the whole batch
  (:func:`grid_cell_ranges`),
* **batched overlap computation** — each cell visit tests its pending
  rectangles against the cell's live vertices with one broadcast
  comparison instead of a Python double loop (:func:`connect_batch`,
  backed by the per-cell :class:`RectColumns` coordinate mirror),
* **columnar plane sweep** — event construction via
  ``np.unique``/``searchsorted``/``lexsort`` replacing the per-tuple
  sort, feeding either the pooled reference segment tree or, when numba
  is importable, the array-backed jitted kernel
  (:func:`sweep_columns_max`, :func:`_sweep_events_array`).

**Bit-identical by construction.**  Only *exact* operations are
vectorised: the dual transform is the same IEEE-754 float64 arithmetic
either way, cell ranges are integer arithmetic with the same float
guards, overlap masks are pure comparisons, and ``np.lexsort`` over the
strict total order ``(y, kind, seq)`` reproduces the native tuple sort.
Float *accumulations* (``vertex.upper += w``, segment-tree node sums)
are replayed in exactly the reference order — never ``np.sum``, whose
pairwise association differs.  The hypothesis differential suite
(tests/test_vector_backend.py) asserts byte-identical answers across
backends under arbitrary interleavings.

numpy is an optional extra (``pip install 'repro[vector]'``); numba an
optional extra on top (``'repro[vector-jit]'``).  Without numpy every
entry point that was asked for the numpy backend raises a typed
:class:`InvalidParameterError` at construction time; nothing in the
default path imports numpy.
"""

from __future__ import annotations

import importlib.metadata
import importlib.util
from typing import TYPE_CHECKING, Sequence

from repro.core.geometry import Rect
from repro.core.objects import SpatialObject, WeightedRect
from repro.core.segment_tree import MaxCoverSegmentTree
from repro.errors import InvalidParameterError

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.core.graph import CellGraph, Vertex

try:  # numpy is deliberately optional (the `vector` extra)
    import numpy as _np
except Exception:  # pragma: no cover - exercised via monkeypatch in tests
    _np = None

#: True when numpy imported; monkeypatched by tests to exercise the
#: degraded (numpy-absent) contract without uninstalling numpy.
HAVE_NUMPY = _np is not None

#: True when numba is *importable* (checked without importing it — the
#: import itself is expensive and deferred to first kernel use).
HAVE_NUMBA = importlib.util.find_spec("numba") is not None

#: Valid values of the monitors' ``backend=`` parameter.
SWEEP_BACKENDS = ("python", "numpy")

#: Minimum item count before a numpy-backend sweep leaves the reference
#: kernel: below this the columnar setup costs more than it saves.
#: Tests lower it to force the vector path onto tiny inputs.
VECTOR_SWEEP_MIN = 96

#: Minimum overlap-problem size (``V*P + P*P`` for V live vertices and P
#: pending rectangles) before a cell visit builds its coordinate mirror
#: and batches the overlap test.  Cells below it run the scalar
#: reference loop — on uniform workloads most cells hold a handful of
#: rectangles and a broadcast over them costs more than it saves.  Once
#: a cell's mirror exists it stays on the batched path to keep the
#: mirror in sync.  Tests lower it to force batching onto tiny cells.
CONNECT_BATCH_MIN = 512

__all__ = [
    "HAVE_NUMPY",
    "HAVE_NUMBA",
    "SWEEP_BACKENDS",
    "VECTOR_SWEEP_MIN",
    "CONNECT_BATCH_MIN",
    "resolve_backend",
    "backend_info",
    "numpy_version",
    "numba_version",
    "build_dual_arrays",
    "build_weighted_rects",
    "grid_cell_ranges",
    "RectColumns",
    "connect_batch",
    "sweep_columns_max",
    "sweep_items_max_columns",
]


# -- backend selection ----------------------------------------------------


def numpy_version() -> str | None:
    """The active numpy version, or None when numpy is unavailable."""
    if not HAVE_NUMPY or _np is None:
        return None
    return str(_np.__version__)


def numba_version() -> str | None:
    """The importable numba version, or None when numba is unavailable."""
    if not HAVE_NUMBA:
        return None
    try:
        return importlib.metadata.version("numba")
    except importlib.metadata.PackageNotFoundError:  # pragma: no cover
        return None


def resolve_backend(backend: str) -> str:
    """Validate a ``backend=`` value, degrading with a typed error.

    Raises :class:`InvalidParameterError` for unknown names and when the
    numpy backend is requested but numpy is not importable — the latter
    names the ``[vector]`` extra so the failure is actionable.
    """
    if backend not in SWEEP_BACKENDS:
        raise InvalidParameterError(
            f"unknown sweep backend {backend!r}; expected one of "
            f"{', '.join(SWEEP_BACKENDS)}"
        )
    if backend == "numpy" and not HAVE_NUMPY:
        raise InvalidParameterError(
            "sweep backend 'numpy' requires the optional numpy dependency; "
            "install it with: pip install 'repro[vector]'"
        )
    return backend


def backend_info(backend: str) -> dict[str, object]:
    """Resolved-backend report for CLI/JSON output.

    ``numpy``/``numba`` carry version strings only when the backend
    actually engages them, so a report names exactly what ran.
    """
    active = backend == "numpy"
    return {
        "backend": backend,
        "numpy": numpy_version() if active else None,
        "numba": numba_version() if active else None,
    }


def _require_numpy():
    if _np is None or not HAVE_NUMPY:  # pragma: no cover - guarded earlier
        raise InvalidParameterError(
            "numpy backend invoked without numpy; install the [vector] extra"
        )
    return _np


# -- batched dual transform ----------------------------------------------


def build_dual_arrays(
    objects: Sequence[SpatialObject], width: float, height: float
) -> tuple:
    """Columnar Definition-2 dual transform: ``(x1, y1, x2, y2, w)``.

    Bit-identical to :meth:`Rect.from_center` per object — the
    ``centre ± size/2`` arithmetic is the same IEEE-754 float64 operation
    scalar or vectorised.  Non-finite results fall back to the scalar
    constructor so the raised error is exactly the reference one.
    """
    np = _require_numpy()
    xs = np.array([o.x for o in objects], dtype=np.float64)
    ys = np.array([o.y for o in objects], dtype=np.float64)
    ws = np.array([o.weight for o in objects], dtype=np.float64)
    hw = width / 2.0
    hh = height / 2.0
    x1 = xs - hw
    y1 = ys - hh
    x2 = xs + hw
    y2 = ys + hh
    if not (
        np.isfinite(x1).all()
        and np.isfinite(y1).all()
        and np.isfinite(x2).all()
        and np.isfinite(y2).all()
    ):
        for o in objects:  # raises the reference InvalidGeometryError
            WeightedRect.from_object(o, width, height)
    return x1, y1, x2, y2, ws


def build_weighted_rects(
    objects: Sequence[SpatialObject], width: float, height: float
) -> tuple[list[WeightedRect], tuple]:
    """Batched :meth:`WeightedRect.from_object` plus the coordinate columns.

    The rectangles are built through ``object.__new__`` with the batch
    already validated (finite bounds, ``x1 <= x2`` by construction), so
    the per-object ``__post_init__`` re-validation is skipped; the
    resulting value objects are indistinguishable from scalar-built ones
    (frozen dataclass equality and hashing are by field values).
    """
    x1, y1, x2, y2, ws = build_dual_arrays(objects, width, height)
    x1l = x1.tolist()
    y1l = y1.tolist()
    x2l = x2.tolist()
    y2l = y2.tolist()
    wl = ws.tolist()
    new = object.__new__
    setattr_ = object.__setattr__
    wrs: list[WeightedRect] = []
    append = wrs.append
    for i, o in enumerate(objects):
        r = new(Rect)
        setattr_(r, "x1", x1l[i])
        setattr_(r, "y1", y1l[i])
        setattr_(r, "x2", x2l[i])
        setattr_(r, "y2", y2l[i])
        wr = new(WeightedRect)
        setattr_(wr, "rect", r)
        setattr_(wr, "weight", wl[i])
        setattr_(wr, "obj", o)
        append(wr)
    return wrs, (x1, y1, x2, y2, ws)


# -- vectorised grid mapping ---------------------------------------------


def _axis_ranges(lo, hi, origin: float, cs: float) -> tuple:
    """Vectorised ``grid._axis_cells``: first/last overlapped cell index.

    Replicates the reference exactly: floor-divide, widen by one, then
    trim with the same float-guard predicates (run as masked batch
    passes until no element moves — each element takes the same number
    of steps it would take in the scalar while-loop).
    """
    np = _np
    q0 = (lo - origin) / cs
    q1 = (hi - origin) / cs
    if not (np.isfinite(q0).all() and np.isfinite(q1).all()):
        from repro.core.grid import _axis_cells

        for a, b in zip(lo.tolist(), hi.tolist()):
            _axis_cells(a, b, origin, cs)  # raises the reference error
    i0 = np.floor(q0).astype(np.int64) - 1
    i1 = np.floor(q1).astype(np.int64) + 1
    while True:
        mask = origin + (i0 + 1) * cs <= lo
        if not mask.any():
            break
        i0[mask] += 1
    while True:
        mask = origin + i1 * cs >= hi
        if not mask.any():
            break
        i1[mask] -= 1
    return i0, i1


def grid_cell_ranges(x1, y1, x2, y2, grid) -> tuple:
    """Inclusive cell-index ranges ``(i0, i1, j0, j1)`` for a batch.

    Callers must skip degenerate rectangles themselves (the reference
    ``cell_keys`` returns an empty cover for them); the ranges computed
    here for degenerate inputs are unspecified.
    """
    cs = grid.cell_size
    i0, i1 = _axis_ranges(x1, x2, grid.origin_x, cs)
    j0, j1 = _axis_ranges(y1, y2, grid.origin_y, cs)
    return i0, i1, j0, j1


# -- columnar rectangle storage ------------------------------------------


class RectColumns:
    """Struct-of-arrays rectangle buffer in arrival order.

    Used two ways: as the naive monitor's alive-window ring (with the
    weight column) and as a cell's coordinate mirror of its graph
    vertices (with the sequence column, for expiry sync).  Entries leave
    only from the front; ``lo``/``hi`` are logical offsets into backing
    arrays that grow geometrically and compact when the dead prefix
    dominates.
    """

    __slots__ = ("x1", "y1", "x2", "y2", "w", "seq", "lo", "hi")

    def __init__(
        self, capacity: int = 64, with_w: bool = False, with_seq: bool = False
    ) -> None:
        np = _require_numpy()
        capacity = max(8, capacity)
        self.x1 = np.empty(capacity, dtype=np.float64)
        self.y1 = np.empty(capacity, dtype=np.float64)
        self.x2 = np.empty(capacity, dtype=np.float64)
        self.y2 = np.empty(capacity, dtype=np.float64)
        self.w = np.empty(capacity, dtype=np.float64) if with_w else None
        self.seq = np.empty(capacity, dtype=np.int64) if with_seq else None
        self.lo = 0
        self.hi = 0

    @classmethod
    def from_graph(cls, graph: "CellGraph") -> "RectColumns":
        """Mirror an existing cell graph (lazy creation on first visit)."""
        cols = cls(capacity=max(8, 2 * len(graph)), with_seq=True)
        for v in graph.iter_vertices():
            r = v.wr.rect
            cols.append(r.x1, r.y1, r.x2, r.y2, seq=v.seq)
        return cols

    def __len__(self) -> int:
        return self.hi - self.lo

    def _arrays(self) -> list:
        out = [self.x1, self.y1, self.x2, self.y2]
        if self.w is not None:
            out.append(self.w)
        if self.seq is not None:
            out.append(self.seq)
        return out

    def _reserve(self, extra: int) -> None:
        np = _np
        cap = self.x1.shape[0]
        lo = self.lo
        hi = self.hi
        live = hi - lo
        if hi + extra <= cap:
            return
        if live + extra <= cap and lo >= cap // 2:
            # compact in place: the dead prefix is at least half the array
            for arr in self._arrays():
                arr[:live] = arr[lo:hi]
        else:
            new_cap = max(cap, 8)
            while new_cap < live + extra:
                new_cap *= 2
            for name in ("x1", "y1", "x2", "y2", "w", "seq"):
                arr = getattr(self, name)
                if arr is None:
                    continue
                grown = np.empty(new_cap, dtype=arr.dtype)
                grown[:live] = arr[lo:hi]
                setattr(self, name, grown)
        self.lo = 0
        self.hi = live

    def append(
        self, x1: float, y1: float, x2: float, y2: float,
        w: float = 0.0, seq: int = 0,
    ) -> None:
        self._reserve(1)
        hi = self.hi
        self.x1[hi] = x1
        self.y1[hi] = y1
        self.x2[hi] = x2
        self.y2[hi] = y2
        if self.w is not None:
            self.w[hi] = w
        if self.seq is not None:
            self.seq[hi] = seq
        self.hi = hi + 1

    def extend(self, x1, y1, x2, y2, w=None, seq=None) -> None:
        """Block-append parallel arrays (or sequences) of coordinates."""
        n = len(x1)
        if n == 0:
            return
        self._reserve(n)
        hi = self.hi
        end = hi + n
        self.x1[hi:end] = x1
        self.y1[hi:end] = y1
        self.x2[hi:end] = x2
        self.y2[hi:end] = y2
        if self.w is not None:
            self.w[hi:end] = w
        if self.seq is not None:
            self.seq[hi:end] = seq
        self.hi = end

    def popleft(self, n: int) -> None:
        """Drop the ``n`` oldest entries (count-window expiry)."""
        self.lo = min(self.lo + n, self.hi)

    def trim_expired(self, expired_upto: int) -> None:
        """Drop entries with ``seq <= expired_upto`` from the front.

        Sequence numbers are strictly increasing in arrival order, so
        the expired prefix is found with one ``searchsorted``.
        """
        lo = self.lo
        hi = self.hi
        if lo == hi or self.seq[lo] > expired_upto:
            return
        cut = int(
            _np.searchsorted(self.seq[lo:hi], expired_upto, side="right")
        )
        self.lo = lo + cut

    def columns(self) -> tuple:
        """Live ``(x1, y1, x2, y2)`` coordinate views, oldest first."""
        lo = self.lo
        hi = self.hi
        return (
            self.x1[lo:hi], self.y1[lo:hi], self.x2[lo:hi], self.y2[lo:hi]
        )

    def sweep_columns(self) -> tuple:
        """Live ``(x1, y1, x2, y2, w)`` views for a full plane sweep."""
        lo = self.lo
        hi = self.hi
        return (
            self.x1[lo:hi],
            self.y1[lo:hi],
            self.x2[lo:hi],
            self.y2[lo:hi],
            self.w[lo:hi],
        )


# -- batched overlap computation -----------------------------------------


def connect_batch(
    graph: "CellGraph",
    cols: RectColumns,
    pending: Sequence[tuple[int, WeightedRect]],
    expired_upto: int,
) -> tuple[list["Vertex"], list[list["Vertex"]]]:
    """Batched ``CellGraph.connect`` over a cell's pending rectangles.

    Byte-identical to the reference per-pending loop: the same edges are
    wired in the same order (older vertices in graph order, then earlier
    pending inserts), so every ``vertex.upper`` accumulates its weights
    in the reference float order.  The overlap predicate runs as one
    broadcast comparison over ``cols`` (the cell's coordinate mirror,
    synced here against expiry) instead of ``V x P`` Python calls.

    Returns ``(new_vertices, touched_lists)`` where ``touched_lists[j]``
    is the list of older vertices that gained an edge from pending ``j``.
    """
    from repro.core.graph import Vertex

    np = _np
    cols.trim_expired(expired_upto)
    V = len(graph)
    if len(cols) != V:  # pragma: no cover - defensive; invariant by design
        raise InvalidParameterError(
            f"cell column mirror out of sync: {len(cols)} != {V} vertices"
        )
    lx1: list[float] = []
    ly1: list[float] = []
    lx2: list[float] = []
    ly2: list[float] = []
    seqs: list[int] = []
    for seq, wr in pending:
        r = wr.rect
        lx1.append(r.x1)
        ly1.append(r.y1)
        lx2.append(r.x2)
        ly2.append(r.y2)
        seqs.append(seq)
    px1 = np.array(lx1, dtype=np.float64)
    py1 = np.array(ly1, dtype=np.float64)
    px2 = np.array(lx2, dtype=np.float64)
    py2 = np.array(ly2, dtype=np.float64)
    vx1, vy1, vx2, vy2 = cols.columns()
    rx1 = np.concatenate((vx1, px1))
    ry1 = np.concatenate((vy1, py1))
    rx2 = np.concatenate((vx2, px2))
    ry2 = np.concatenate((vy2, py2))
    pdeg = (px1 == px2) | (py1 == py2)
    rdeg = (rx1 == rx2) | (ry1 == ry2)
    # strict-interior overlap of every (older-or-earlier row, pending col)
    mask = (
        (rx1[:, None] < px2[None, :])
        & (px1[None, :] < rx2[:, None])
        & (ry1[:, None] < py2[None, :])
        & (py1[None, :] < ry2[:, None])
    )
    mask &= ~rdeg[:, None]
    mask &= ~pdeg[None, :]
    # column-major edge list; keep only rows older than the insert
    # (row V + j is pending j itself and later pendings)
    cj_a, ri_a = np.nonzero(mask.T)
    if cj_a.size:
        keep = ri_a < V + cj_a
        cj = cj_a[keep].tolist()
        ri = ri_a[keep].tolist()
    else:
        cj = []
        ri = []
    allv: list[Vertex] = list(graph.vertices)
    new_vertices: list[Vertex] = []
    touched_lists: list[list[Vertex]] = []
    n_edges = len(cj)
    pos = 0
    for j, (seq, wr) in enumerate(pending):
        weight = wr.weight
        touched: list[Vertex] = []
        tpush = touched.append
        while pos < n_edges and cj[pos] == j:
            v = allv[ri[pos]]
            v.neighbors.append(wr)
            v.upper += weight
            v.dirty = True
            tpush(v)
            pos += 1
        vert = Vertex(wr, seq)
        graph.append_raw(vert)
        allv.append(vert)
        new_vertices.append(vert)
        touched_lists.append(touched)
    cols.extend(px1, py1, px2, py2, seq=seqs)
    return new_vertices, touched_lists


# -- columnar plane sweep ------------------------------------------------

# A tiny private tree pool, mirroring the one in repro.core.planesweep
# (which imports this module; sharing its pool would create a cycle).
_TREE_POOL: list[MaxCoverSegmentTree] = []
_POOL_MAX = 2

_NEG_INF = float("-inf")


def _acquire_tree(size: int) -> MaxCoverSegmentTree:
    if _TREE_POOL:
        tree = _TREE_POOL.pop()
        tree.reset(size)
        return tree
    return MaxCoverSegmentTree(size)


def _release_tree(tree: MaxCoverSegmentTree) -> None:
    if len(_TREE_POOL) < _POOL_MAX:
        _TREE_POOL.append(tree)


def _sweep_events_array(n_slots, ey, ekind, elo, ehi, ew):
    """Array-backed max-cover segment tree driven over sorted events.

    A jittable replica of :class:`MaxCoverSegmentTree` plus the
    ``_iter_y_groups`` strip loop: the node arrays, the three descent
    loops of ``add`` and the reversed-spine pull-up are transcribed
    operation for operation, so every float lands through the same
    sequence of IEEE-754 additions as the reference.  Runs under numba
    ``njit`` when importable; as plain Python over numpy arrays it is
    correct but slower than the list-based tree, so the un-jitted sweep
    routes to the reference kernel instead (this function stays covered
    by the differential tests either way).

    Returns ``(found, best_w, best_slot, best_y, best_y_next)``.
    """
    # _np is referenced directly (not aliased) so numba can resolve the
    # module as a compile-time constant
    cap = 4 * n_slots
    mx = _np.zeros(cap, _np.float64)
    adds = _np.zeros(cap, _np.float64)
    arg = _np.zeros(cap, _np.int64)
    # argmax of every subtree starts at its leftmost slot; propagate the
    # mid-split intervals top-down (children have larger indices)
    na = _np.zeros(cap, _np.int64)
    nb = _np.zeros(cap, _np.int64)
    valid = _np.zeros(cap, _np.bool_)
    valid[1] = True
    nb[1] = n_slots - 1
    for node in range(1, cap):
        if not valid[node]:
            continue
        a = na[node]
        b = nb[node]
        arg[node] = a
        if a != b:
            mid = (a + b) >> 1
            child = node + node
            valid[child] = True
            na[child] = a
            nb[child] = mid
            valid[child + 1] = True
            na[child + 1] = mid + 1
            nb[child + 1] = b
    path = _np.zeros(256, _np.int64)
    found = False
    best_w = -_np.inf
    best_slot = -1
    best_y = 0.0
    best_next = 0.0
    n_ev = ey.shape[0]
    i = 0
    while i < n_ev:
        y = ey[i]
        inserted = False
        while i < n_ev and ey[i] == y:
            lo = elo[i]
            hi = ehi[i]
            if ekind[i] == 1:
                delta = ew[i]
                inserted = True
            else:
                delta = -ew[i]
            # -- inline MaxCoverSegmentTree.add(lo, hi, delta) ----------
            plen = 0
            node = 1
            a = 0
            b = n_slots - 1
            while True:
                if lo <= a and b <= hi:
                    mx[node] += delta
                    adds[node] += delta
                    break
                path[plen] = node
                plen += 1
                mid = (a + b) >> 1
                if hi <= mid:
                    node += node
                    b = mid
                elif lo > mid:
                    node += node + 1
                    a = mid + 1
                else:
                    n2 = node + node
                    a2 = a
                    b2 = mid
                    while lo > a2:
                        path[plen] = n2
                        plen += 1
                        m = (a2 + b2) >> 1
                        n2 += n2
                        if lo > m:
                            n2 += 1
                            a2 = m + 1
                        else:
                            rc = n2 + 1
                            mx[rc] += delta
                            adds[rc] += delta
                            b2 = m
                    mx[n2] += delta
                    adds[n2] += delta
                    n3 = node + node + 1
                    a3 = mid + 1
                    b3 = b
                    while hi < b3:
                        path[plen] = n3
                        plen += 1
                        m = (a3 + b3) >> 1
                        n3 += n3
                        if hi <= m:
                            b3 = m
                        else:
                            mx[n3] += delta
                            adds[n3] += delta
                            n3 += 1
                            a3 = m + 1
                    mx[n3] += delta
                    adds[n3] += delta
                    break
            for p in range(plen - 1, -1, -1):
                node = path[p]
                child = node + node
                lmax = mx[child]
                rmax = mx[child + 1]
                lz = adds[node]
                if lmax >= rmax:  # leftmost tie-break
                    mx[node] = lmax + lz
                    arg[node] = arg[child]
                else:
                    mx[node] = rmax + lz
                    arg[node] = arg[child + 1]
            i += 1
        if inserted and i < n_ev:
            value = mx[1]
            if value > best_w:
                best_w = value
                best_slot = arg[1]
                best_y = y
                best_next = ey[i]
                found = True
    return found, best_w, best_slot, best_y, best_next


# jit compilation state: checked/compiled once, on first vector sweep
_JIT_STATE: dict[str, object] = {"checked": False, "kernel": None}


def _get_jit_kernel():
    """The numba-compiled event kernel, or None when numba is absent."""
    if not _JIT_STATE["checked"]:
        _JIT_STATE["checked"] = True
        if HAVE_NUMBA:
            try:  # pragma: no cover - requires numba in the environment
                from numba import njit

                _JIT_STATE["kernel"] = njit(cache=True, nogil=True)(
                    _sweep_events_array
                )
            except Exception:
                _JIT_STATE["kernel"] = None
    return _JIT_STATE["kernel"]


def _apply_events_listtree(n_slots, ey, ekind, elo, ehi, ew):
    """Reference-kernel event application over pre-sorted columnar events.

    Used when numba is absent: the numpy side still builds and orders
    the events, the pooled list-based tree applies them.  Logic mirrors
    ``planesweep._iter_y_groups`` + the best-strip tracking of
    ``sweep_items_max``.
    """
    tree = _acquire_tree(n_slots)
    try:
        add = tree.add
        mx = tree._mx
        arg = tree._arg
        found = False
        best_w = _NEG_INF
        best_slot = -1
        best_y = 0.0
        best_next = 0.0
        n_ev = len(ey)
        i = 0
        while i < n_ev:
            y = ey[i]
            inserted = False
            while i < n_ev and ey[i] == y:
                if ekind[i] == 1:
                    add(elo[i], ehi[i], ew[i])
                    inserted = True
                else:
                    add(elo[i], ehi[i], -ew[i])
                i += 1
            if inserted and i < n_ev:
                value = mx[1]
                if value > best_w:
                    best_w = value
                    best_slot = arg[1]
                    best_y = y
                    best_next = ey[i]
                    found = True
    finally:
        _release_tree(tree)
    return found, best_w, best_slot, best_y, best_next


def sweep_columns_max(x1, y1, x2, y2, w) -> tuple[float, Rect] | None:
    """Columnar ``sweep_items_max``: one-shot MaxRS over coordinate arrays.

    Event construction is fully vectorised — slot coordinates via
    ``np.unique``, slot indices via ``searchsorted``, event order via
    ``np.lexsort`` over the strict total order ``(y, kind, seq)`` that
    the reference tuple sort uses.  Event application goes through the
    jitted array kernel when numba is importable, else through the
    pooled reference tree; both produce bit-identical answers.
    """
    np = _np
    live = (x1 != x2) & (y1 != y2)
    if not live.all():
        x1 = x1[live]
        y1 = y1[live]
        x2 = x2[live]
        y2 = y2[live]
        w = w[live]
    m = x1.shape[0]
    if m == 0:
        return None
    xs = np.unique(np.concatenate((x1, x2)))
    lo = np.searchsorted(xs, x1)
    hi = np.searchsorted(xs, x2) - 1
    n_slots = max(1, xs.shape[0] - 1)
    ey = np.concatenate((y1, y2))
    ekind = np.concatenate(
        (np.ones(m, dtype=np.int64), np.zeros(m, dtype=np.int64))
    )
    seq = np.arange(m, dtype=np.int64)
    eseq = np.concatenate((seq, seq))
    elo = np.concatenate((lo, lo))
    ehi = np.concatenate((hi, hi))
    ew = np.concatenate((w, w))
    order = np.lexsort((eseq, ekind, ey))
    ey = ey[order]
    ekind = ekind[order]
    elo = elo[order]
    ehi = ehi[order]
    ew = ew[order]
    kernel = _get_jit_kernel()
    if kernel is not None:  # pragma: no cover - requires numba
        found, best_w, best_slot, best_y, best_next = kernel(
            n_slots, ey, ekind, elo, ehi, ew
        )
    else:
        found, best_w, best_slot, best_y, best_next = (
            _apply_events_listtree(
                n_slots,
                ey.tolist(),
                ekind.tolist(),
                elo.tolist(),
                ehi.tolist(),
                ew.tolist(),
            )
        )
    if not found:
        return None
    slot = int(best_slot)
    rect = Rect(
        float(xs[slot]), float(best_y), float(xs[slot + 1]), float(best_next)
    )
    return float(best_w), rect


def sweep_items_max_columns(
    items: Sequence[tuple[Rect, float]],
) -> tuple[float, Rect] | None:
    """Columnar sweep over ``(rect, weight)`` pairs (the planesweep seam)."""
    np = _np
    lx1: list[float] = []
    ly1: list[float] = []
    lx2: list[float] = []
    ly2: list[float] = []
    lw: list[float] = []
    for rect, weight in items:
        lx1.append(rect.x1)
        ly1.append(rect.y1)
        lx2.append(rect.x2)
        ly2.append(rect.y2)
        lw.append(weight)
    return sweep_columns_max(
        np.array(lx1, dtype=np.float64),
        np.array(ly1, dtype=np.float64),
        np.array(lx2, dtype=np.float64),
        np.array(ly2, dtype=np.float64),
        np.array(lw, dtype=np.float64),
    )
