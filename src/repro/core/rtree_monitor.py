"""The grid-vs-R-tree ablation monitor: G2's graph over an R-tree.

Same incremental idea as :class:`~repro.core.g2.G2Monitor` — edges from
older to newer overlapping rectangles, ``Local-Plane-Sweep`` only on
vertices whose neighbour set changed — but neighbour discovery and
expiry go through a dynamic R-tree instead of the grid:

* arrival: one R-tree *search* (fine) plus one R-tree *insert*;
* expiry: one R-tree *delete* each — the condense/reinsert cascade the
  paper's §4.1 sentence is about.  The grid pops a deque instead.

The answer is tracked with a lazy max-heap over anchored spaces so no
full scan is needed per batch.  Exactness is identical to G2 (tests
assert it); only the update cost differs, which is what the ablation
benchmark measures.
"""

from __future__ import annotations

import heapq
from typing import Dict

from repro.core.graph import Vertex
from repro.core.monitor import MaxRSMonitor
from repro.core.objects import dual_rect
from repro.core.planesweep import local_plane_sweep_cached
from repro.core.rtree import RTree
from repro.core.spaces import MaxRSResult
from repro.window.base import SlidingWindow, WindowUpdate

__all__ = ["RTreeMonitor"]


class RTreeMonitor(MaxRSMonitor):
    """Incremental exact MaxRS monitor backed by an R-tree (ablation)."""

    index_backend = "rtree"

    def __init__(
        self,
        rect_width: float,
        rect_height: float,
        window: SlidingWindow,
        max_entries: int = 8,
    ) -> None:
        super().__init__(rect_width, rect_height, window)
        self._tree = RTree(max_entries=max_entries)
        self._vertices: Dict[int, Vertex] = {}  # seq -> vertex
        self._next_seq = 0
        self._expired_upto = -1
        # lazy max-heap of (-weight, seq); stale entries skipped on read
        self._heap: list[tuple[float, int]] = []

    def _on_delta(self, delta: WindowUpdate) -> None:
        # expirations: R-tree deletes (the cost under ablation)
        for _ in delta.expired:
            self._expired_upto += 1
            vertex = self._vertices.pop(self._expired_upto, None)
            if vertex is not None:
                self._tree.delete(vertex.seq, vertex.wr.rect)
        dirty: list[Vertex] = []
        metrics = self.metrics
        stats = self.stats
        vertices = self._vertices
        width = self.rect_width
        height = self.rect_height
        nodes_before = self._tree.nodes_expanded
        for obj in delta.arrived:
            seq = self._next_seq
            self._next_seq += 1
            wr = dual_rect(obj, width, height)
            # neighbour discovery via overlap search (edges old → new)
            for key in self._tree.search_overlap(wr.rect):
                older = vertices[key]  # type: ignore[index]
                older.neighbors.append(wr)
                older.upper += wr.weight
                if not older.dirty:
                    older.dirty = True
                    dirty.append(older)
                stats.overlap_tests += 1
                metrics.inc("overlap_tests")
                metrics.inc("edges_touched")
            vertex = Vertex(wr, seq)
            vertices[seq] = vertex
            self._tree.insert(seq, wr.rect)
            heapq.heappush(self._heap, (-vertex.space.weight, seq))
        metrics.inc(
            "nodes_expanded", self._tree.nodes_expanded - nodes_before
        )
        for vertex in dirty:
            vertex.dirty = False
            vertex.space = local_plane_sweep_cached(vertex)
            vertex.upper = vertex.space.weight
            vertex.swept_degree = len(vertex.neighbors)
            self.stats.local_sweeps += 1
            metrics.inc("local_sweeps")
            metrics.inc("objects_swept", len(vertex.neighbors) + 1)
            heapq.heappush(self._heap, (-vertex.space.weight, vertex.seq))
        # compact the lazy heap once stale entries dominate, keeping
        # memory proportional to the live vertex count on long runs
        if len(self._heap) > 4 * max(16, len(self._vertices)):
            self._heap = [
                (-v.space.weight, seq) for seq, v in self._vertices.items()
            ]
            heapq.heapify(self._heap)

    def _compute_result(self, tick: int) -> MaxRSResult:
        heap = self._heap
        while heap:
            neg_weight, seq = heap[0]
            vertex = self._vertices.get(seq)
            if vertex is None or vertex.space.weight != -neg_weight:
                heapq.heappop(heap)  # expired or superseded entry
                continue
            return MaxRSResult.single(
                vertex.space, tick=tick, window_size=len(self.window)
            )
        return MaxRSResult(tick=tick, window_size=len(self.window))

    # -- diagnostics -----------------------------------------------------------

    @property
    def tree_size(self) -> int:
        return len(self._tree)

    def check_invariants(self) -> None:
        """Structural validation: tree matches the vertex table."""
        self._tree.check_invariants()
        if len(self._tree) != len(self._vertices):
            raise AssertionError(
                f"tree size {len(self._tree)} != vertices {len(self._vertices)}"
            )
