"""Result model: overlap spaces and MaxRS answers.

A :class:`Region` is a maximal-weight overlap space found by a sweep —
the paper's ``s``.  Any interior point of the region is an optimal
placement for the *centre* of the user-specified rectangle.  A
:class:`MaxRSResult` wraps the region(s) a monitor reports after a
window update, together with the update's sequence number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.geometry import Rect

__all__ = ["Region", "MaxRSResult", "region_key"]


@dataclass(frozen=True, slots=True)
class Region:
    """An overlap space with its total covering weight.

    Attributes:
        rect: The spatial extent of the space.  The optimum is attained
            at every interior point.
        weight: Sum of the weights of the rectangles covering the space.
        anchor_oid: Identifier of the space's *anchor* — the oldest
            object whose dual rectangle covers the space — when known
            (graph-based monitors); ``None`` for plain sweeps.
    """

    rect: Rect
    weight: float
    anchor_oid: int | None = None

    @property
    def best_point(self) -> tuple[float, float]:
        """A representative optimal placement (the region's centre)."""
        return self.rect.center

    def same_extent(self, other: "Region") -> bool:
        """True iff both regions denote the same spatial extent."""
        return self.rect == other.rect


def region_key(region: Region) -> tuple[float, float, float, float]:
    """Hashable identity of a region's extent, for cross-cell de-duping."""
    r = region.rect
    return (r.x1, r.y1, r.x2, r.y2)


@dataclass(frozen=True, slots=True)
class MaxRSResult:
    """Answer of one monitor update.

    ``regions`` is ordered best-first; for exact/approximate top-1
    monitors it has length 0 (empty window) or 1, for top-k monitors up
    to ``k`` entries.

    Every answer also carries its *quality contract*, so a consumer can
    tell a degraded answer from an exact one without knowing which
    monitor produced it (the overload degradation ladder switches
    monitors mid-stream):

    * ``mode`` — ``"exact"``, ``"approx"`` (ε-guaranteed branch-and-
      bound) or ``"sampling"`` (probabilistic estimator);
    * ``guarantee`` — the deterministic weight floor as a fraction of
      the true optimum: 1.0 exact, ``1-ε`` approximate, 0.0 for
      sampling (whose ``1-1/n``-probability bound is not a floor);
    * ``stale_for`` — how many updates ago this answer was computed
      (> 0 only when a circuit breaker serves a held answer).
    """

    regions: tuple[Region, ...] = ()
    tick: int = 0
    window_size: int = 0
    mode: str = "exact"
    guarantee: float = 1.0
    stale_for: int = 0

    @property
    def best(self) -> Region | None:
        """The top region, or None when the window holds no objects."""
        return self.regions[0] if self.regions else None

    @property
    def best_weight(self) -> float:
        """Weight of the top region (0.0 when empty)."""
        return self.regions[0].weight if self.regions else 0.0

    @property
    def is_empty(self) -> bool:
        return not self.regions

    @classmethod
    def single(
        cls,
        region: Region | None,
        tick: int = 0,
        window_size: int = 0,
        mode: str = "exact",
        guarantee: float = 1.0,
    ) -> "MaxRSResult":
        regions = (region,) if region is not None else ()
        return cls(
            regions=regions,
            tick=tick,
            window_size=window_size,
            mode=mode,
            guarantee=guarantee,
        )

    @classmethod
    def ranked(
        cls, regions: Sequence[Region], tick: int = 0, window_size: int = 0
    ) -> "MaxRSResult":
        ordered = tuple(
            sorted(regions, key=lambda reg: reg.weight, reverse=True)
        )
        return cls(regions=ordered, tick=tick, window_size=window_size)
