"""Uniform grid used by the G2 / aG2 indexes (paper §4.1).

The paper maps every dual rectangle to *all* grid cells it overlaps, so
any two overlapping rectangles are guaranteed to share at least one
cell — the per-cell graphs then collectively capture every overlap.
Cells are addressed by integer coordinates and materialised lazily
(sparse dict in the indexes), so the grid itself is just coordinate
arithmetic and never stores data.

A small robustness detail: the cell-range computation widens by one cell
whenever floating-point division could have excluded a sliver overlap.
Assigning a rectangle to an extra cell is harmless (a duplicate vertex
copy), missing one would break correctness, so we err wide.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator

from repro.core.geometry import Rect
from repro.errors import InvalidParameterError

__all__ = ["UniformGrid", "CellKey", "default_cell_size"]

CellKey = tuple[int, int]


def _axis_cells(lo: float, hi: float, origin: float, cs: float) -> range:
    i0 = math.floor((lo - origin) / cs)
    i1 = math.floor((hi - origin) / cs)
    # widen against float rounding, then trim by the strict-overlap
    # predicate: cell i spans (origin + i*cs, origin + (i+1)*cs)
    i0 -= 1
    i1 += 1
    while origin + (i0 + 1) * cs <= lo:
        i0 += 1
    while origin + i1 * cs >= hi:
        i1 -= 1
    return range(i0, i1 + 1)


@lru_cache(maxsize=65536)
def _cell_keys_cached(
    cs: float,
    origin_x: float,
    origin_y: float,
    x1: float,
    y1: float,
    x2: float,
    y2: float,
) -> tuple[CellKey, ...]:
    """Materialised cell cover of one rectangle under one grid geometry.

    Module-level and keyed by the grid parameters, so monitors sharing a
    grid geometry (every multi-query group member with the same query
    size) resolve each arrival's cell cover exactly once instead of once
    per ``(arrival × monitor)`` — the float-guarded while-loops above
    are the G2/aG2 mapping hot path.  Bounded LRU; an entry is a handful
    of small tuples.
    """
    return tuple(
        (i, j)
        for i in _axis_cells(x1, x2, origin_x, cs)
        for j in _axis_cells(y1, y2, origin_y, cs)
    )


def default_cell_size(rect_width: float, rect_height: float) -> float:
    """Default grid resolution: twice the larger query-rectangle side.

    The paper fixes the cell size without prescribing it; a cell a
    couple of query sizes wide keeps each rectangle mapped to at most
    ~4 cells while the per-cell population stays small enough for the
    pairwise overlap step.
    """
    return 2.0 * max(rect_width, rect_height)


@dataclass(frozen=True, slots=True)
class UniformGrid:
    """Coordinate arithmetic for a uniform grid of ``cell_size`` squares."""

    cell_size: float
    origin_x: float = 0.0
    origin_y: float = 0.0

    def __post_init__(self) -> None:
        if not self.cell_size > 0:
            raise InvalidParameterError(
                f"grid cell size must be positive, got {self.cell_size}"
            )

    def cell_of_point(self, x: float, y: float) -> CellKey:
        """The cell containing the point (boundary points go right/up)."""
        return (
            math.floor((x - self.origin_x) / self.cell_size),
            math.floor((y - self.origin_y) / self.cell_size),
        )

    def cell_bounds(self, key: CellKey) -> Rect:
        """The spatial extent of a cell."""
        i, j = key
        cs = self.cell_size
        x1 = self.origin_x + i * cs
        y1 = self.origin_y + j * cs
        return Rect(x1, y1, x1 + cs, y1 + cs)

    def _axis_range(self, lo: float, hi: float, origin: float) -> range:
        return _axis_cells(lo, hi, origin, self.cell_size)

    def cell_keys(self, rect: Rect) -> tuple[CellKey, ...]:
        """The cell cover of a rectangle as a (cached) tuple.

        Same semantics as :meth:`cells_overlapping`; this is the form
        the monitors use on their arrival hot path — repeated covers of
        the same rectangle under the same grid geometry (several
        monitors indexing one stream) hit the shared LRU.
        """
        if rect.is_degenerate:
            return ()
        cs = self.cell_size
        # covers far larger than any dual rectangle (a handful of cells
        # each) would pin huge tuples in the LRU — compute those directly
        if ((rect.x2 - rect.x1) / cs + 2.0) * (
            (rect.y2 - rect.y1) / cs + 2.0
        ) > 4096.0:
            return tuple(
                (i, j)
                for i in _axis_cells(rect.x1, rect.x2, self.origin_x, cs)
                for j in _axis_cells(rect.y1, rect.y2, self.origin_y, cs)
            )
        return _cell_keys_cached(
            cs,
            self.origin_x,
            self.origin_y,
            rect.x1,
            rect.y1,
            rect.x2,
            rect.y2,
        )

    def cells_overlapping(self, rect: Rect) -> Iterator[CellKey]:
        """All cells whose interior intersects the rectangle's interior.

        Degenerate rectangles overlap nothing (strict-interior
        convention) and yield no cells.
        """
        return iter(self.cell_keys(rect))

    def cell_count_for(self, rect: Rect) -> int:
        """Number of cells the rectangle maps to (diagnostics)."""
        return len(self.cell_keys(rect))
