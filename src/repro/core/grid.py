"""Uniform grid used by the G2 / aG2 indexes (paper §4.1).

The paper maps every dual rectangle to *all* grid cells it overlaps, so
any two overlapping rectangles are guaranteed to share at least one
cell — the per-cell graphs then collectively capture every overlap.
Cells are addressed by integer coordinates and materialised lazily
(sparse dict in the indexes), so the grid itself is just coordinate
arithmetic and never stores data.

A small robustness detail: the cell-range computation widens by one cell
whenever floating-point division could have excluded a sliver overlap.
Assigning a rectangle to an extra cell is harmless (a duplicate vertex
copy), missing one would break correctness, so we err wide.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

from repro.core.geometry import Rect
from repro.errors import InvalidParameterError

__all__ = ["UniformGrid", "CellKey", "default_cell_size"]

CellKey = tuple[int, int]


def default_cell_size(rect_width: float, rect_height: float) -> float:
    """Default grid resolution: twice the larger query-rectangle side.

    The paper fixes the cell size without prescribing it; a cell a
    couple of query sizes wide keeps each rectangle mapped to at most
    ~4 cells while the per-cell population stays small enough for the
    pairwise overlap step.
    """
    return 2.0 * max(rect_width, rect_height)


@dataclass(frozen=True, slots=True)
class UniformGrid:
    """Coordinate arithmetic for a uniform grid of ``cell_size`` squares."""

    cell_size: float
    origin_x: float = 0.0
    origin_y: float = 0.0

    def __post_init__(self) -> None:
        if not self.cell_size > 0:
            raise InvalidParameterError(
                f"grid cell size must be positive, got {self.cell_size}"
            )

    def cell_of_point(self, x: float, y: float) -> CellKey:
        """The cell containing the point (boundary points go right/up)."""
        return (
            math.floor((x - self.origin_x) / self.cell_size),
            math.floor((y - self.origin_y) / self.cell_size),
        )

    def cell_bounds(self, key: CellKey) -> Rect:
        """The spatial extent of a cell."""
        i, j = key
        cs = self.cell_size
        x1 = self.origin_x + i * cs
        y1 = self.origin_y + j * cs
        return Rect(x1, y1, x1 + cs, y1 + cs)

    def _axis_range(self, lo: float, hi: float, origin: float) -> range:
        cs = self.cell_size
        i0 = math.floor((lo - origin) / cs)
        i1 = math.floor((hi - origin) / cs)
        # widen against float rounding, then trim by the strict-overlap
        # predicate: cell i spans (origin + i*cs, origin + (i+1)*cs)
        i0 -= 1
        i1 += 1
        while origin + (i0 + 1) * cs <= lo:
            i0 += 1
        while origin + i1 * cs >= hi:
            i1 -= 1
        return range(i0, i1 + 1)

    def cells_overlapping(self, rect: Rect) -> Iterator[CellKey]:
        """All cells whose interior intersects the rectangle's interior.

        Degenerate rectangles overlap nothing (strict-interior
        convention) and yield no cells.
        """
        if rect.is_degenerate:
            return
        for i in self._axis_range(rect.x1, rect.x2, self.origin_x):
            for j in self._axis_range(rect.y1, rect.y2, self.origin_y):
                yield (i, j)

    def cell_count_for(self, rect: Rect) -> int:
        """Number of cells the rectangle maps to (diagnostics)."""
        return sum(1 for _ in self.cells_overlapping(rect))
