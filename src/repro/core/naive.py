"""Naive baseline: recompute MaxRS from scratch on every window update.

This is the comparison algorithm of the paper's experiments (§7): the
optimal one-shot plane sweep [12, 18] re-run over the whole window each
time objects are generated.  It is exact and O(n log n) per update —
and, as the paper (and our Figures 7–9, 11) shows, hopeless for
monitoring because it cannot exploit the fact that only a small part of
the window changed.

``k > 1`` uses the single-sweep top-k collection, which the paper notes
costs no extra asymptotic work.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from repro.core.monitor import MaxRSMonitor
from repro.core.objects import WeightedRect
from repro.core.planesweep import plane_sweep_max, plane_sweep_topk
from repro.core.spaces import MaxRSResult
from repro.errors import InvalidParameterError
from repro.window.base import SlidingWindow, WindowUpdate

__all__ = ["NaiveMonitor"]


class NaiveMonitor(MaxRSMonitor):
    """Recompute-from-scratch plane-sweep monitor (exact)."""

    def __init__(
        self,
        rect_width: float,
        rect_height: float,
        window: SlidingWindow,
        k: int = 1,
    ) -> None:
        super().__init__(rect_width, rect_height, window)
        if k <= 0:
            raise InvalidParameterError(f"k must be positive, got {k}")
        self.k = k
        self._alive: Deque[WeightedRect] = deque()

    def _on_delta(self, delta: WindowUpdate) -> None:
        for _ in delta.expired:
            self._alive.popleft()
        for obj in delta.arrived:
            self._alive.append(
                WeightedRect.from_object(obj, self.rect_width, self.rect_height)
            )

    def _compute_result(self, tick: int) -> MaxRSResult:
        rects = list(self._alive)
        if not rects:
            return MaxRSResult(tick=tick, window_size=0)
        self.stats.full_sweeps += 1
        self.metrics.inc("full_sweeps")
        self.metrics.inc("objects_swept", len(rects))
        if self.k == 1:
            region = plane_sweep_max(rects)
            return MaxRSResult.single(
                region, tick=tick, window_size=len(rects)
            )
        regions = plane_sweep_topk(rects, self.k)
        return MaxRSResult.ranked(regions, tick=tick, window_size=len(rects))
