"""Naive baseline: recompute MaxRS from scratch on every window update.

This is the comparison algorithm of the paper's experiments (§7): the
optimal one-shot plane sweep [12, 18] re-run over the whole window each
time objects are generated.  It is exact and O(n log n) per update —
and, as the paper (and our Figures 7–9, 11) shows, hopeless for
monitoring because it cannot exploit the fact that only a small part of
the window changed.

``k > 1`` uses the single-sweep top-k collection, which the paper notes
costs no extra asymptotic work.

Under ``backend="numpy"`` (and ``k == 1``) the monitor keeps the alive
window as a columnar :class:`~repro.core.vector.RectColumns` ring —
arrivals append coordinate blocks, count-window expiry advances the
front offset — and each recompute runs the columnar sweep directly over
the array views, with no per-object ``WeightedRect`` churn at all.
Top-k recomputes always use the reference kernel (see
:func:`~repro.core.planesweep.plane_sweep_topk`).
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from repro.core import vector
from repro.core.monitor import MaxRSMonitor
from repro.core.objects import WeightedRect
from repro.core.planesweep import plane_sweep_max, plane_sweep_topk
from repro.core.spaces import MaxRSResult, Region
from repro.errors import InvalidParameterError
from repro.window.base import SlidingWindow, WindowUpdate

__all__ = ["NaiveMonitor"]


class NaiveMonitor(MaxRSMonitor):
    """Recompute-from-scratch plane-sweep monitor (exact)."""

    def __init__(
        self,
        rect_width: float,
        rect_height: float,
        window: SlidingWindow,
        k: int = 1,
        backend: str = "python",
    ) -> None:
        super().__init__(rect_width, rect_height, window, backend=backend)
        if k <= 0:
            raise InvalidParameterError(f"k must be positive, got {k}")
        self.k = k
        self._alive: Deque[WeightedRect] = deque()
        # columnar alive-window ring; the top-k sweep needs WeightedRect
        # inputs, so only the k == 1 recompute goes columnar
        self._cols: vector.RectColumns | None = (
            vector.RectColumns(with_w=True)
            if self.backend == "numpy" and k == 1
            else None
        )

    def _on_delta(self, delta: WindowUpdate) -> None:
        cols = self._cols
        if cols is not None:
            cols.popleft(len(delta.expired))
            if delta.arrived:
                x1, y1, x2, y2, w = vector.build_dual_arrays(
                    delta.arrived, self.rect_width, self.rect_height
                )
                cols.extend(x1, y1, x2, y2, w=w)
            return
        for _ in delta.expired:
            self._alive.popleft()
        for obj in delta.arrived:
            self._alive.append(
                WeightedRect.from_object(obj, self.rect_width, self.rect_height)
            )

    def _compute_result(self, tick: int) -> MaxRSResult:
        cols = self._cols
        if cols is not None:
            n = len(cols)
            if n == 0:
                return MaxRSResult(tick=tick, window_size=0)
            self.stats.full_sweeps += 1
            self.metrics.inc("full_sweeps")
            self.metrics.inc("objects_swept", n)
            swept = vector.sweep_columns_max(*cols.sweep_columns())
            region = (
                Region(rect=swept[1], weight=swept[0])
                if swept is not None
                else None
            )
            return MaxRSResult.single(region, tick=tick, window_size=n)
        rects = list(self._alive)
        if not rects:
            return MaxRSResult(tick=tick, window_size=0)
        self.stats.full_sweeps += 1
        self.metrics.inc("full_sweeps")
        self.metrics.inc("objects_swept", len(rects))
        if self.k == 1:
            region = plane_sweep_max(rects, backend=self.backend)
            return MaxRSResult.single(
                region, tick=tick, window_size=len(rects)
            )
        regions = plane_sweep_topk(rects, self.k, backend=self.backend)
        return MaxRSResult.ranked(regions, tick=tick, window_size=len(rects))
