"""Geometric primitives: axis-aligned rectangles and 1-D intervals.

The whole MaxRS machinery operates on axis-aligned rectangles in the
plane.  Rectangles are value objects (frozen dataclasses); all overlap
predicates use *strict interior* semantics — two rectangles overlap iff
their intersection has positive area.  Measure-zero contacts (shared
edges or corners) do not count as overlap.  See DESIGN.md §1 for why
this convention is used consistently across the sweep, the indexes and
the brute-force oracle.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import InvalidGeometryError

__all__ = ["Interval", "Rect", "bounding_box"]


@dataclass(frozen=True, slots=True)
class Interval:
    """A closed 1-D interval ``[lo, hi]`` with ``lo <= hi``."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if not (self.lo <= self.hi):  # also rejects NaN
            raise InvalidGeometryError(
                f"interval bounds inverted or NaN: [{self.lo}, {self.hi}]"
            )

    @property
    def length(self) -> float:
        """Length of the interval."""
        return self.hi - self.lo

    @property
    def mid(self) -> float:
        """Midpoint of the interval."""
        return (self.lo + self.hi) / 2.0

    def overlaps(self, other: "Interval") -> bool:
        """True iff the interiors of the two intervals intersect.

        Degenerate intervals have empty interior and overlap nothing.
        """
        return (
            self.lo < other.hi
            and other.lo < self.hi
            and self.lo < self.hi
            and other.lo < other.hi
        )

    def intersection(self, other: "Interval") -> "Interval | None":
        """The overlap of two intervals, or None if interiors are disjoint."""
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo < hi:
            return Interval(lo, hi)
        return None

    def contains(self, x: float) -> bool:
        """True iff ``x`` lies strictly inside the interval."""
        return self.lo < x < self.hi


@dataclass(frozen=True, slots=True)
class Rect:
    """An axis-aligned rectangle ``[x1, x2] × [y1, y2]``.

    Degenerate rectangles (zero width or height) are permitted as value
    objects — they arise transiently from clipping — but they never
    *overlap* anything under the strict-interior convention.
    """

    x1: float
    y1: float
    x2: float
    y2: float

    def __post_init__(self) -> None:
        if not (self.x1 <= self.x2 and self.y1 <= self.y2):
            raise InvalidGeometryError(
                "rect bounds inverted or NaN: "
                f"[{self.x1}, {self.x2}] x [{self.y1}, {self.y2}]"
            )
        if not all(
            math.isfinite(v) for v in (self.x1, self.y1, self.x2, self.y2)
        ):
            raise InvalidGeometryError("rect bounds must be finite")

    # -- constructors -------------------------------------------------

    @classmethod
    def from_center(
        cls, cx: float, cy: float, width: float, height: float
    ) -> "Rect":
        """Rectangle of the given size centred at ``(cx, cy)``.

        This is the dual transform of the paper's Definition 2: a
        weighted object becomes a query-sized rectangle centred at the
        object's location.
        """
        if width < 0 or height < 0:
            raise InvalidGeometryError(
                f"negative rectangle size {width} x {height}"
            )
        hw = width / 2.0
        hh = height / 2.0
        return cls(cx - hw, cy - hh, cx + hw, cy + hh)

    # -- basic measures ------------------------------------------------

    @property
    def width(self) -> float:
        return self.x2 - self.x1

    @property
    def height(self) -> float:
        return self.y2 - self.y1

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> tuple[float, float]:
        return ((self.x1 + self.x2) / 2.0, (self.y1 + self.y2) / 2.0)

    @property
    def x_interval(self) -> Interval:
        return Interval(self.x1, self.x2)

    @property
    def y_interval(self) -> Interval:
        return Interval(self.y1, self.y2)

    @property
    def is_degenerate(self) -> bool:
        """True iff the rectangle has zero area."""
        return self.x1 == self.x2 or self.y1 == self.y2

    # -- predicates ----------------------------------------------------

    def overlaps(self, other: "Rect") -> bool:
        """True iff the *interiors* of the rectangles intersect.

        Degenerate rectangles have empty interior and overlap nothing.
        """
        return (
            self.x1 < other.x2
            and other.x1 < self.x2
            and self.y1 < other.y2
            and other.y1 < self.y2
            and not self.is_degenerate
            and not other.is_degenerate
        )

    def contains_point(self, x: float, y: float) -> bool:
        """True iff ``(x, y)`` lies strictly inside the rectangle."""
        return self.x1 < x < self.x2 and self.y1 < y < self.y2

    def covers_point(self, x: float, y: float) -> bool:
        """True iff ``(x, y)`` lies inside or on the boundary."""
        return self.x1 <= x <= self.x2 and self.y1 <= y <= self.y2

    def contains_rect(self, other: "Rect") -> bool:
        """True iff ``other`` lies entirely within this rectangle."""
        return (
            self.x1 <= other.x1
            and self.y1 <= other.y1
            and other.x2 <= self.x2
            and other.y2 <= self.y2
        )

    # -- combination ---------------------------------------------------

    def intersection(self, other: "Rect") -> "Rect | None":
        """The positive-area overlap region, or None if interiors are disjoint."""
        if not self.overlaps(other):
            return None
        return Rect(
            max(self.x1, other.x1),
            max(self.y1, other.y1),
            min(self.x2, other.x2),
            min(self.y2, other.y2),
        )

    def clip(self, other: "Rect") -> "Rect | None":
        """Alias of :meth:`intersection`; reads better at call sites that
        restrict a neighbour rectangle to an anchor's extent."""
        return self.intersection(other)

    def union_bounds(self, other: "Rect") -> "Rect":
        """The smallest rectangle containing both rectangles."""
        return Rect(
            min(self.x1, other.x1),
            min(self.y1, other.y1),
            max(self.x2, other.x2),
            max(self.y2, other.y2),
        )

    def translate(self, dx: float, dy: float) -> "Rect":
        """The rectangle shifted by ``(dx, dy)``."""
        return Rect(self.x1 + dx, self.y1 + dy, self.x2 + dx, self.y2 + dy)


def bounding_box(rects: Iterable[Rect]) -> Rect:
    """The smallest rectangle containing every rectangle in ``rects``.

    Raises :class:`InvalidGeometryError` when ``rects`` is empty.
    """
    it: Iterator[Rect] = iter(rects)
    try:
        first = next(it)
    except StopIteration:
        raise InvalidGeometryError("bounding_box of an empty collection")
    x1, y1, x2, y2 = first.x1, first.y1, first.x2, first.y2
    for r in it:
        x1 = min(x1, r.x1)
        y1 = min(y1, r.y1)
        x2 = max(x2, r.x2)
        y2 = max(y2, r.y2)
    return Rect(x1, y1, x2, y2)
