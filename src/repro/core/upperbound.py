"""Algorithm 5 — upper-bound tightening (paper §5.3, Table 5 ablation).

Before paying for a ``Local-Plane-Sweep`` on a vertex whose Equation-(3)
bound exceeds the pruning threshold, Algorithm 5 tries to *derive a
smaller but still valid* bound from the geometry of the neighbours
added since the last exact computation (``R(ri)``):

* a new neighbour overlapping the current exact space ``si`` must be
  charged in full (it can extend the known-best space),
* a new neighbour that misses ``si`` can only matter through a space
  built around itself, which is bounded by ``ri.w + r.w`` plus the
  neighbours it overlaps — often far less than charging ``r.w``
  blindly.

The derived ``τ`` is a valid upper bound on the true ``si`` (each step
bounds both the spaces that involve the new neighbour and those that do
not), so plugging it into the branch-and-bound never harms correctness.
The paper's §5.3 analysis — and our Table 5 reproduction — shows it
costs O(|R(ri)|·|N(ri)|), which does not pay for itself; it is shipped
for the ablation and disabled by default.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.core.graph import Vertex
from repro.errors import InvalidParameterError

__all__ = ["tighten_upper_bound", "conditional_tightener", "make_tightener"]


def tighten_upper_bound(v: Vertex, threshold: float) -> float:
    """Algorithm 5: a tightened upper bound on the vertex's true ``si``.

    Processes ``R(ri) = neighbors[swept_degree:]`` incrementally;
    returns early (with the bound computed so far) as soon as the bound
    exceeds ``threshold``, because the caller will have to sweep anyway.
    """
    fresh = v.neighbors[v.swept_degree:]
    if not fresh:
        return v.upper
    tau = v.space.weight
    if tau > threshold:
        return v.upper
    si_rect = v.space.rect
    anchor = v.wr
    all_neighbors = v.neighbors
    for r in fresh:
        if r.rect.overlaps(si_rect):
            # r can extend the known-best space: charge it in full
            tau += r.weight
            if tau > threshold:
                return tau
        else:
            # r only matters via a space around r itself, bounded by
            # the anchor, r, and the neighbours r overlaps
            rho = r.weight + anchor.weight
            for other in all_neighbors:
                if other is r:
                    continue
                if r.rect.overlaps(other.rect):
                    rho += other.weight
            if tau < rho:
                tau = min(tau + r.weight, rho)
                if tau > threshold:
                    return tau
    return tau


def conditional_tightener(v: Vertex, threshold: float) -> float:
    """Algorithm 5 gated by the paper's cost condition.

    Tightening costs O(|R(ri)|·|N(ri)|) while the sweep it hopes to
    avoid costs ~2·|N(ri)|·log₂|N(ri)| operations; run it only when the
    former is smaller (i.e. ``|R(ri)| < 2·log₂|N(ri)|``).
    """
    degree = len(v.neighbors)
    fresh_count = degree - v.swept_degree
    if degree < 2 or fresh_count >= 2.0 * math.log2(degree):
        return v.upper
    return tighten_upper_bound(v, threshold)


def make_tightener(
    mode: str,
) -> Callable[[Vertex, float], float] | None:
    """Factory used by benchmarks: ``"off"`` → None, ``"always"`` →
    Algorithm 5, ``"conditional"`` → Algorithm 5 with the cost gate."""
    if mode == "off":
        return None
    if mode == "always":
        return tighten_upper_bound
    if mode == "conditional":
        return conditional_tightener
    raise InvalidParameterError(
        f"unknown tightener mode {mode!r}; expected off/always/conditional"
    )
