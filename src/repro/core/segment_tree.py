"""Max-cover segment tree — the substrate of the plane-sweep algorithm.

The plane sweep of Nandy & Bhattacharya [18] (the paper's
``Plane-Sweep``) maintains, while a horizontal line moves bottom-to-top,
the total weight covering each elementary x-interval.  This module
provides the required structure: a segment tree over ``n`` elementary
slots supporting

* ``add(lo, hi, delta)`` — add ``delta`` to every slot in ``[lo, hi]``,
* ``max_value`` / ``argmax`` — the best slot overall in O(1),
* ``range_max(lo, hi)`` — the best slot within a slot range,

all in O(log n) with lazy propagation.  Argmax ties resolve to the
leftmost slot, which keeps results deterministic across runs.
"""

from __future__ import annotations

from repro.errors import InvalidParameterError

__all__ = ["MaxCoverSegmentTree"]


class MaxCoverSegmentTree:
    """Segment tree over ``size`` slots with range-add and max/argmax."""

    __slots__ = ("size", "_max", "_arg", "_lazy")

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise InvalidParameterError(
                f"segment tree needs at least one slot, got {size}"
            )
        self.size = size
        cap = 4 * size
        self._max = [0.0] * cap
        # slot index at which the subtree max is attained (leftmost tie)
        self._arg = [0] * cap
        self._lazy = [0.0] * cap
        self._build(1, 0, size - 1)

    # -- construction ---------------------------------------------------

    def _build(self, node: int, lo: int, hi: int) -> None:
        # iterative DFS to set argmax of every subtree to its leftmost slot
        stack = [(node, lo, hi)]
        arg = self._arg
        while stack:
            nd, a, b = stack.pop()
            arg[nd] = a
            if a != b:
                mid = (a + b) // 2
                stack.append((2 * nd, a, mid))
                stack.append((2 * nd + 1, mid + 1, b))

    # -- mutation ---------------------------------------------------------

    def add(self, lo: int, hi: int, delta: float) -> None:
        """Add ``delta`` to every slot in the inclusive range ``[lo, hi]``."""
        if lo < 0 or hi >= self.size or lo > hi:
            raise InvalidParameterError(
                f"slot range [{lo}, {hi}] out of bounds for size {self.size}"
            )
        self._add(1, 0, self.size - 1, lo, hi, delta)

    def _add(
        self, node: int, a: int, b: int, lo: int, hi: int, delta: float
    ) -> None:
        if lo <= a and b <= hi:
            self._max[node] += delta
            self._lazy[node] += delta
            return
        mid = (a + b) // 2
        left = 2 * node
        right = left + 1
        if lo <= mid:
            self._add(left, a, mid, lo, min(hi, mid), delta)
        if hi > mid:
            self._add(right, mid + 1, b, max(lo, mid + 1), hi, delta)
        lazy = self._lazy[node]
        lmax = self._max[left]
        rmax = self._max[right]
        if lmax >= rmax:  # leftmost tie-break
            self._max[node] = lmax + lazy
            self._arg[node] = self._arg[left]
        else:
            self._max[node] = rmax + lazy
            self._arg[node] = self._arg[right]

    # -- queries ----------------------------------------------------------

    @property
    def max_value(self) -> float:
        """The maximum slot value over the whole tree."""
        return self._max[1]

    @property
    def argmax(self) -> int:
        """The leftmost slot attaining :attr:`max_value`."""
        return self._arg[1]

    def range_max(self, lo: int, hi: int) -> tuple[float, int]:
        """``(value, slot)`` of the best slot within ``[lo, hi]``."""
        if lo < 0 or hi >= self.size or lo > hi:
            raise InvalidParameterError(
                f"slot range [{lo}, {hi}] out of bounds for size {self.size}"
            )
        return self._range_max(1, 0, self.size - 1, lo, hi, 0.0)

    def _range_max(
        self, node: int, a: int, b: int, lo: int, hi: int, acc: float
    ) -> tuple[float, int]:
        if lo <= a and b <= hi:
            return (self._max[node] + acc, self._arg[node])
        acc += self._lazy[node]
        mid = (a + b) // 2
        if hi <= mid:
            return self._range_max(2 * node, a, mid, lo, hi, acc)
        if lo > mid:
            return self._range_max(2 * node + 1, mid + 1, b, lo, hi, acc)
        lval, larg = self._range_max(2 * node, a, mid, lo, mid, acc)
        rval, rarg = self._range_max(
            2 * node + 1, mid + 1, b, mid + 1, hi, acc
        )
        if lval >= rval:
            return (lval, larg)
        return (rval, rarg)

    # -- debugging helpers -------------------------------------------------

    def to_list(self) -> list[float]:
        """Materialise all slot values (O(n log n); tests only)."""
        return [self.range_max(i, i)[0] for i in range(self.size)]
