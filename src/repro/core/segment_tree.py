"""Max-cover segment tree — the substrate of the plane-sweep algorithm.

The plane sweep of Nandy & Bhattacharya [18] (the paper's
``Plane-Sweep``) maintains, while a horizontal line moves bottom-to-top,
the total weight covering each elementary x-interval.  This module
provides the required structure: a segment tree over ``n`` elementary
slots supporting

* ``add(lo, hi, delta)`` — add ``delta`` to every slot in ``[lo, hi]``,
* ``max_value`` / ``argmax`` — the best slot overall in O(1),
* ``range_max(lo, hi)`` — the best slot within a slot range,

all in O(log n).  Argmax ties resolve to the leftmost slot, which keeps
results deterministic across runs.

This is the hottest data structure in the repository — every
``Local-Plane-Sweep`` pays one ``add`` per rectangle edge — so the
implementation is tuned for CPython (see docs/PERFORMANCE.md):

* **iterative, not recursive**: ``add`` locates the canonical nodes of
  the range with three descent loops (to the split node, then down each
  border), recording the partially-covered spine, and recomputes the
  spine bottom-up afterwards; ``range_max`` descends with an explicit
  stack.  No Python call frames per tree level.
* **shape-stable**: the node intervals are the classic recursive
  ``mid = (a + b) // 2`` splits.  Keeping this exact shape (rather than
  a padded power-of-two layout) keeps every floating-point sum
  associated the same way as the reference recursive implementation, so
  answers are bit-for-bit reproducible across versions.
* **reusable backing arrays**: :meth:`reset` re-initialises the tree
  for a new sweep without reallocating the three backing lists; the
  plane-sweep module keeps a pool of trees across sweeps.
"""

from __future__ import annotations

from repro.errors import InvalidParameterError

__all__ = ["MaxCoverSegmentTree"]

_NEG_INF = float("-inf")


class MaxCoverSegmentTree:
    """Segment tree over ``size`` slots with range-add and max/argmax.

    For every node ``_mx`` is the subtree max relative to the adds of
    its strict ancestors, ``_arg`` the leftmost slot attaining it, and
    ``_add`` the node's own pending range-add (never pushed down).
    """

    __slots__ = ("size", "_mx", "_arg", "_add")

    def __init__(self, size: int) -> None:
        self._mx: list[float] = []
        self._arg: list[int] = []
        self._add: list[float] = []
        self.reset(size)

    # -- construction ---------------------------------------------------

    def reset(self, size: int) -> None:
        """Re-initialise to ``size`` all-zero slots, reusing the backing
        arrays whenever the required capacity does not grow."""
        if size <= 0:
            raise InvalidParameterError(
                f"segment tree needs at least one slot, got {size}"
            )
        cap = 4 * size
        if cap > len(self._mx):
            self._mx = [0.0] * cap
            self._arg = [0] * cap
            self._add = [0.0] * cap
        else:
            self._mx[:cap] = [0.0] * cap
            self._add[:cap] = [0.0] * cap
        self.size = size
        # set argmax of every subtree to its leftmost slot (the interval
        # start); iterative DFS over the mid-split shape
        arg = self._arg
        stack = [(1, 0, size - 1)]
        pop = stack.pop
        push = stack.append
        while stack:
            nd, a, b = pop()
            arg[nd] = a
            if a != b:
                mid = (a + b) >> 1
                child = nd + nd
                push((child, a, mid))
                push((child + 1, mid + 1, b))

    # -- mutation ---------------------------------------------------------

    def add(self, lo: int, hi: int, delta: float) -> None:
        """Add ``delta`` to every slot in the inclusive range ``[lo, hi]``."""
        if lo < 0 or hi >= self.size or lo > hi:
            raise InvalidParameterError(
                f"slot range [{lo}, {hi}] out of bounds for size {self.size}"
            )
        mx = self._mx
        arg = self._arg
        adds = self._add
        # partially-covered nodes, in descent order; recomputed in
        # reverse (bottom-up) once every canonical node has its delta
        path: list[int] = []
        append = path.append
        node, a, b = 1, 0, self.size - 1
        # descend to the split node (range within one child), applying
        # the delta if a node becomes fully covered on the way
        while True:
            if lo <= a and b <= hi:
                mx[node] += delta
                adds[node] += delta
                break
            append(node)
            mid = (a + b) >> 1
            if hi <= mid:
                node += node
                b = mid
            elif lo > mid:
                node += node + 1
                a = mid + 1
            else:
                # split: walk the left border of [lo, mid] …
                n2 = node + node
                a2, b2 = a, mid
                while lo > a2:
                    append(n2)
                    m = (a2 + b2) >> 1
                    n2 += n2
                    if lo > m:
                        n2 += 1
                        a2 = m + 1
                    else:
                        # right child [m+1, b2] fully covered
                        rc = n2 + 1
                        mx[rc] += delta
                        adds[rc] += delta
                        b2 = m
                mx[n2] += delta
                adds[n2] += delta
                # … and the right border of [mid+1, hi]
                n3 = node + node + 1
                a3, b3 = mid + 1, b
                while hi < b3:
                    append(n3)
                    m = (a3 + b3) >> 1
                    n3 += n3
                    if hi <= m:
                        b3 = m
                    else:
                        # left child [a3, m] fully covered
                        mx[n3] += delta
                        adds[n3] += delta
                        n3 += 1
                        a3 = m + 1
                mx[n3] += delta
                adds[n3] += delta
                break
        # pull the max/arg up along the spine (children of a spine node
        # are final by the time it is recomputed)
        for node in reversed(path):
            child = node + node
            lmax = mx[child]
            rmax = mx[child + 1]
            lz = adds[node]
            if lmax >= rmax:  # leftmost tie-break
                mx[node] = lmax + lz
                arg[node] = arg[child]
            else:
                mx[node] = rmax + lz
                arg[node] = arg[child + 1]

    # -- queries ----------------------------------------------------------

    @property
    def max_value(self) -> float:
        """The maximum slot value over the whole tree."""
        return self._mx[1]

    @property
    def argmax(self) -> int:
        """The leftmost slot attaining :attr:`max_value`."""
        return self._arg[1]

    def peek(self) -> tuple[float, int]:
        """``(max_value, argmax)`` in one call — hot-loop convenience."""
        return self._mx[1], self._arg[1]

    def range_max(self, lo: int, hi: int) -> tuple[float, int]:
        """``(value, slot)`` of the best slot within ``[lo, hi]``."""
        if lo < 0 or hi >= self.size or lo > hi:
            raise InvalidParameterError(
                f"slot range [{lo}, {hi}] out of bounds for size {self.size}"
            )
        mx = self._mx
        arg = self._arg
        adds = self._add
        best = _NEG_INF
        best_arg = lo
        # explicit-stack descent, visiting segments left-to-right so the
        # strict `>` keeps the leftmost slot on ties
        stack = [(1, 0, self.size - 1, 0.0)]
        pop = stack.pop
        push = stack.append
        while stack:
            node, a, b, acc = pop()
            if lo <= a and b <= hi:
                value = mx[node] + acc
                if value > best:
                    best = value
                    best_arg = arg[node]
                continue
            acc += adds[node]
            mid = (a + b) >> 1
            child = node + node
            # push right first so the left segment is processed first
            if hi > mid:
                push((child + 1, mid + 1, b, acc))
            if lo <= mid:
                push((child, a, mid, acc))
        return best, best_arg

    # -- debugging helpers -------------------------------------------------

    def to_list(self) -> list[float]:
        """Materialise all slot values (O(n log n); tests only)."""
        return [self.range_max(i, i)[0] for i in range(self.size)]
