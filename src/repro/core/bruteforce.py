"""Brute-force MaxRS oracles used to differentially test the real solvers.

These oracles are deliberately simple and slow (O(n³) and worse): they
enumerate candidate points at the midpoints of the coordinate
arrangement, where every arrangement cell of the rectangle set is
guaranteed a representative.  Under the library's strict-interior
overlap convention the maximum over those candidates *is* the exact
MaxRS optimum.  Test-only: never used by the monitors.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.objects import WeightedRect
from repro.errors import InvalidParameterError

__all__ = [
    "cover_weight",
    "brute_force_max",
    "brute_force_anchored_best",
    "brute_force_topk_anchored",
]


def cover_weight(rects: Sequence[WeightedRect], x: float, y: float) -> float:
    """Total weight of rectangles strictly containing the point."""
    return sum(
        wr.weight for wr in rects if wr.rect.contains_point(x, y)
    )


def _midpoints(coords: set[float]) -> list[float]:
    ordered = sorted(coords)
    return [
        (a + b) / 2.0 for a, b in zip(ordered, ordered[1:]) if a < b
    ]


def brute_force_max(
    rects: Sequence[WeightedRect],
) -> tuple[float, tuple[float, float]] | None:
    """Exact maximum range sum by exhaustive arrangement-cell sampling.

    Returns ``(weight, (x, y))`` for a point attaining the optimum, or
    ``None`` when no rectangle has positive area.
    """
    live = [wr for wr in rects if not wr.rect.is_degenerate]
    if not live:
        return None
    xs = _midpoints(
        {wr.rect.x1 for wr in live} | {wr.rect.x2 for wr in live}
    )
    ys = _midpoints(
        {wr.rect.y1 for wr in live} | {wr.rect.y2 for wr in live}
    )
    best_w = float("-inf")
    best_pt = (0.0, 0.0)
    for x in xs:
        # pre-filter by x to keep the inner loop tolerable
        column = [wr for wr in live if wr.rect.x1 < x < wr.rect.x2]
        for y in ys:
            w = sum(
                wr.weight for wr in column if wr.rect.y1 < y < wr.rect.y2
            )
            if w > best_w:
                best_w = w
                best_pt = (x, y)
    if best_w == float("-inf"):
        return None
    return best_w, best_pt


def brute_force_anchored_best(
    anchor: WeightedRect, neighbors: Sequence[WeightedRect]
) -> float:
    """Weight of the best space *on* the anchor rectangle.

    Mirrors ``Local-Plane-Sweep``: neighbours are clipped to the anchor,
    candidates sampled inside the anchor only, and the anchor's own
    weight always counts.
    """
    clipped: list[WeightedRect] = []
    for nb in neighbors:
        piece = nb.rect.clip(anchor.rect)
        if piece is not None and not piece.is_degenerate:
            clipped.append(WeightedRect(rect=piece, weight=nb.weight, obj=nb.obj))
    if not clipped:
        return anchor.weight
    xs = _midpoints(
        {anchor.rect.x1, anchor.rect.x2}
        | {wr.rect.x1 for wr in clipped}
        | {wr.rect.x2 for wr in clipped}
    )
    ys = _midpoints(
        {anchor.rect.y1, anchor.rect.y2}
        | {wr.rect.y1 for wr in clipped}
        | {wr.rect.y2 for wr in clipped}
    )
    best = anchor.weight
    for x in xs:
        column = [wr for wr in clipped if wr.rect.x1 < x < wr.rect.x2]
        for y in ys:
            w = anchor.weight + sum(
                wr.weight for wr in column if wr.rect.y1 < y < wr.rect.y2
            )
            if w > best:
                best = w
    return best


def brute_force_topk_anchored(
    rects: Sequence[WeightedRect], k: int
) -> list[tuple[float, int]]:
    """Anchored top-k reference (DESIGN.md §1 semantics).

    ``rects`` must be ordered oldest-first.  For each rectangle acting
    as anchor, the best space covered by the anchor plus *newer*
    overlapping rectangles is computed exhaustively; the ``k`` heaviest
    per-anchor spaces are returned as ``(weight, anchor_oid)`` pairs,
    best first (ties broken by anchor id for determinism).
    """
    if k <= 0:
        raise InvalidParameterError(f"k must be positive, got {k}")
    scored: list[tuple[float, int]] = []
    for i, anchor in enumerate(rects):
        if anchor.rect.is_degenerate:
            continue
        newer = [
            wr
            for wr in rects[i + 1 :]
            if wr.rect.overlaps(anchor.rect)
        ]
        scored.append((brute_force_anchored_best(anchor, newer), anchor.oid))
    scored.sort(key=lambda t: (-t[0], t[1]))
    return scored[:k]
