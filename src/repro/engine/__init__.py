"""Continuous-query engine, multi-query serving, recording, timing."""

from repro.engine.engine import EngineReport, StreamEngine
from repro.engine.multi import MultiQueryGroup
from repro.engine.parallel import ParallelQueryGroup
from repro.engine.recorder import ResultChange, ResultRecorder
from repro.engine.stats import TimingStats

__all__ = [
    "EngineReport",
    "MultiQueryGroup",
    "ParallelQueryGroup",
    "ResultChange",
    "ResultRecorder",
    "StreamEngine",
    "TimingStats",
]
