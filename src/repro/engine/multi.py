"""Multiple continuous MaxRS queries over one stream (paper §8).

The paper's future-work section asks for efficient handling of several
continuous MaxRS queries at the same time — different rectangle sizes,
window lengths, tolerances or k over one physical stream.
:class:`MultiQueryGroup` is the serving layer for that: registered
queries share every arrival batch (objects are materialised once),
each keeps its own window and index, and results come back per query
name.  Queries can be added and removed while the stream is live; a
late-added query can be backfilled from another query's window.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Sequence

from repro.core.monitor import MaxRSMonitor
from repro.core.objects import SpatialObject
from repro.core.spaces import MaxRSResult
from repro.errors import InvalidParameterError
from repro.resilience.guard import IngestGuard

if TYPE_CHECKING:  # overload imports engine modules back; keep runtime lazy
    from repro.overload.backpressure import BackpressureQueue

__all__ = ["MultiQueryGroup"]


class MultiQueryGroup:
    """A named set of monitors fed by one stream.

    Example::

        group = MultiQueryGroup()
        group.add("coarse", AG2Monitor(2000, 2000, CountWindow(50_000)))
        group.add("fine", AG2Monitor(500, 500, CountWindow(50_000)))
        for batch in stream:
            results = group.update(batch)      # {"coarse": ..., "fine": ...}

    A serving deployment fronts the group with an
    :class:`~repro.resilience.guard.IngestGuard` so one corrupt or late
    record cannot take down every registered query: pass ``guard=`` and
    feed raw batches through :meth:`update_guarded`.

    Against *fast* streams rather than dirty ones, pass
    ``backpressure=`` (a
    :class:`~repro.overload.backpressure.BackpressureQueue`) and feed
    arrivals through :meth:`offer`: the queue bounds the standing
    backlog, coalesces drains, and sheds per its policy — a burst slows
    or thins the group's answers instead of growing an unbounded queue
    behind the slowest registered query.
    """

    def __init__(
        self,
        guard: IngestGuard | None = None,
        backpressure: "BackpressureQueue | None" = None,
    ) -> None:
        self._monitors: Dict[str, MaxRSMonitor] = {}
        self.guard = guard
        self.backpressure = backpressure

    # -- registry -----------------------------------------------------------

    def add(self, name: str, monitor: MaxRSMonitor) -> None:
        """Register a query under a unique name."""
        if not name:
            raise InvalidParameterError("query name must be non-empty")
        if name in self._monitors:
            raise InvalidParameterError(f"query {name!r} already registered")
        self._monitors[name] = monitor

    def add_backfilled(
        self, name: str, monitor: MaxRSMonitor, source: str
    ) -> None:
        """Register a query and bulk-load it with the alive objects of
        an existing query — so a freshly added query answers over the
        same history instead of starting cold."""
        donor = self._monitors.get(source)
        if donor is None:
            raise InvalidParameterError(f"unknown source query {source!r}")
        self.add(name, monitor)
        contents = donor.window.contents
        if contents:
            monitor.ingest(list(contents))

    def remove(self, name: str) -> MaxRSMonitor:
        """Unregister and return a query's monitor."""
        monitor = self._monitors.pop(name, None)
        if monitor is None:
            raise InvalidParameterError(f"unknown query {name!r}")
        return monitor

    def __contains__(self, name: str) -> bool:
        return name in self._monitors

    def __len__(self) -> int:
        return len(self._monitors)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._monitors)

    def monitor(self, name: str) -> MaxRSMonitor:
        got = self._monitors.get(name)
        if got is None:
            raise InvalidParameterError(f"unknown query {name!r}")
        return got

    # -- serving -------------------------------------------------------------

    def update(
        self, batch: Sequence[SpatialObject]
    ) -> Dict[str, MaxRSResult]:
        """Push one arrival batch through every registered query."""
        if not self._monitors:
            raise InvalidParameterError(
                "no queries registered; add() one before update()"
            )
        return {
            name: monitor.update(batch)
            for name, monitor in self._monitors.items()
        }

    def update_guarded(
        self, records: Sequence[object]
    ) -> Dict[str, MaxRSResult]:
        """Push one *raw* arrival batch through the ingest guard first.

        Invalid records are handled per the guard's error policy
        (quarantined / skipped / raised) and out-of-order records are
        re-sequenced within its lateness bound, so every registered
        query sees the same clean, ordered batch — possibly empty, in
        which case windows still tick and answers refresh.
        """
        if self.guard is None:
            raise InvalidParameterError(
                "no ingest guard configured; construct the group with "
                "MultiQueryGroup(guard=IngestGuard(...))"
            )
        return self.update(self.guard.filter(records))

    def offer(
        self, batch: Sequence[SpatialObject]
    ) -> Dict[str, MaxRSResult] | None:
        """Offer one arrival batch through the backpressure queue.

        The batch is offered to the queue (which sheds or refuses per
        its policy — under ``BLOCK``, refused objects are dropped from
        *this* offer and counted, since a serving group has no upstream
        to push back on), then one coalesced batch is drained and
        pushed through every query.  Returns the per-query results, or
        ``None`` when the drain came up empty (nothing pending).
        """
        if self.backpressure is None:
            raise InvalidParameterError(
                "no backpressure queue configured; construct the group "
                "with MultiQueryGroup(backpressure=BackpressureQueue(...))"
            )
        self.backpressure.offer_all(batch)
        drained = self.backpressure.take_batch()
        if not drained:
            return None
        return self.update(drained)

    def overload_stats(self) -> Dict[str, object]:
        """Backpressure ledger plus per-query ladder summaries (for
        queries that are :class:`~repro.overload.controller.AdaptiveMonitor`
        shaped); mirrors the ``overload`` field of an
        :class:`~repro.engine.engine.EngineReport`."""
        if self.backpressure is None:
            raise InvalidParameterError(
                "no backpressure queue configured; construct the group "
                "with MultiQueryGroup(backpressure=BackpressureQueue(...))"
            )
        queue = self.backpressure
        return {
            "policy": queue.policy.value,
            "ledger": queue.ledger,
            "ledger_closed": queue.ledger_closed,
            "shed": queue.shed,
            "refused": queue.refused,
            "queue_high_water": queue.high_water,
            "queue_pending": queue.pending,
            "monitors": {
                name: monitor.overload_summary()
                for name, monitor in self._monitors.items()
                if hasattr(monitor, "overload_summary")
            },
        }

    def results(self) -> Dict[str, MaxRSResult]:
        """Most recent answer per query without pushing anything."""
        return {
            name: monitor.result for name, monitor in self._monitors.items()
        }
