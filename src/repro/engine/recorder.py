"""Result recording and hotspot-change detection.

The paper's motivating applications are *reactive*: urban-sensing
operators warn users when the congestion hotspot moves (Example 1.2),
game players replan when the contested area shifts (Example 1.3).
:class:`ResultRecorder` wraps those patterns: it keeps a bounded
history of answers, computes deltas between consecutive answers, and
fires registered callbacks when the monitored region *moves* farther
than a threshold or its weight changes by more than a ratio.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque

from repro.core.spaces import MaxRSResult, Region
from repro.errors import InvalidParameterError

__all__ = ["ResultChange", "ResultRecorder"]


@dataclass(frozen=True, slots=True)
class ResultChange:
    """Delta between two consecutive recorded answers."""

    tick: int
    previous: Region | None
    current: Region | None
    moved_distance: float
    weight_ratio: float

    @property
    def appeared(self) -> bool:
        return self.previous is None and self.current is not None

    @property
    def disappeared(self) -> bool:
        return self.previous is not None and self.current is None


ChangeListener = Callable[[ResultChange], None]


class ResultRecorder:
    """Bounded history of monitor answers with change notifications.

    Args:
        move_threshold: Minimum distance the best placement must move
            (between consecutive answers) to count as a relocation.
        weight_threshold: Minimum relative weight change (e.g. ``0.2``
            = 20%) to count as a change.
        history: Maximum retained answers.
    """

    def __init__(
        self,
        move_threshold: float = 0.0,
        weight_threshold: float = 0.0,
        history: int = 1024,
    ) -> None:
        if move_threshold < 0 or weight_threshold < 0:
            raise InvalidParameterError("thresholds must be non-negative")
        if history <= 0:
            raise InvalidParameterError(f"history must be positive, got {history}")
        self.move_threshold = move_threshold
        self.weight_threshold = weight_threshold
        self._history: Deque[MaxRSResult] = deque(maxlen=history)
        self._listeners: list[ChangeListener] = []
        self._changes = 0

    # -- listeners -----------------------------------------------------------

    def on_change(self, listener: ChangeListener) -> None:
        """Register a callback fired on every significant change."""
        self._listeners.append(listener)

    # -- recording ------------------------------------------------------------

    def record(self, result: MaxRSResult) -> ResultChange | None:
        """Record one answer; return the change if it was significant."""
        previous = self._history[-1].best if self._history else None
        self._history.append(result)
        current = result.best
        change = self._diff(result.tick, previous, current)
        if change is not None:
            self._changes += 1
            for listener in self._listeners:
                listener(change)
        return change

    def _diff(
        self, tick: int, previous: Region | None, current: Region | None
    ) -> ResultChange | None:
        if previous is None and current is None:
            return None
        if previous is None or current is None:
            return ResultChange(
                tick=tick,
                previous=previous,
                current=current,
                moved_distance=math.inf,
                weight_ratio=math.inf,
            )
        px, py = previous.best_point
        cx, cy = current.best_point
        distance = math.hypot(cx - px, cy - py)
        if previous.weight > 0:
            ratio = abs(current.weight - previous.weight) / previous.weight
        else:
            ratio = math.inf if current.weight > 0 else 0.0
        moved = distance > self.move_threshold
        reweighted = ratio > self.weight_threshold
        if not (moved or reweighted):
            return None
        return ResultChange(
            tick=tick,
            previous=previous,
            current=current,
            moved_distance=distance,
            weight_ratio=ratio,
        )

    # -- inspection --------------------------------------------------------------

    @property
    def history(self) -> tuple[MaxRSResult, ...]:
        return tuple(self._history)

    @property
    def change_count(self) -> int:
        return self._changes

    @property
    def latest(self) -> MaxRSResult | None:
        return self._history[-1] if self._history else None

    def weight_series(self) -> list[float]:
        """Best weight per recorded answer (dashboards, tests)."""
        return [result.best_weight for result in self._history]

    def stability(self) -> float:
        """Fraction of recorded updates that did NOT significantly
        change the answer — 1.0 means a perfectly stable hotspot."""
        if not self._history:
            return 1.0
        return 1.0 - self._changes / len(self._history)
