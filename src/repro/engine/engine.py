"""Continuous-query engine: drive monitors from stream sources.

:class:`StreamEngine` reproduces the paper's measurement protocol: fill
the sliding window (untimed priming), then push arrival batches of
``m`` objects and time each ``update`` call.  Several monitors can be
attached to one engine; they all observe identical batches, which is
how the experiments compare naive / G2 / aG2 and how the approximation
benchmark measures the practical error against an exact companion.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator

from repro.core.monitor import MaxRSMonitor
from repro.core.objects import SpatialObject
from repro.core.spaces import MaxRSResult
from repro.engine.stats import TimingStats
from repro.errors import InvalidParameterError
from repro.streams.source import StreamSource

__all__ = ["StreamEngine", "EngineReport"]


@dataclass
class EngineReport:
    """Outcome of one engine run, per attached monitor."""

    batches: int
    batch_size: int
    timings: Dict[str, TimingStats]
    final_results: Dict[str, MaxRSResult]
    # per-batch best weights, recorded when track_weights=True
    weight_history: Dict[str, list[float]] = field(default_factory=dict)

    def mean_ms(self, name: str) -> float:
        return self.timings[name].mean_ms

    def table(self) -> str:
        """A small human-readable summary table."""
        lines = [f"{'monitor':<16}{'mean ms':>10}{'median ms':>12}{'p95 ms':>10}"]
        for name, stats in self.timings.items():
            s = stats.summary()
            lines.append(
                f"{name:<16}{s['mean_ms']:>10.3f}"
                f"{s['median_ms']:>12.3f}{s['p95_ms']:>10.3f}"
            )
        return "\n".join(lines)


class StreamEngine:
    """Drives one or more monitors from a single stream source.

    Args:
        monitors: Mapping name → monitor.  All monitors receive every
            batch, in mapping order.
        source: The object stream (consumed once per engine).
        batch_size: Arrival batch size ``m``.
    """

    def __init__(
        self,
        monitors: Dict[str, MaxRSMonitor],
        source: StreamSource | Iterator[SpatialObject],
        batch_size: int,
    ) -> None:
        if not monitors:
            raise InvalidParameterError("at least one monitor is required")
        if batch_size <= 0:
            raise InvalidParameterError(
                f"batch size must be positive, got {batch_size}"
            )
        self.monitors = dict(monitors)
        self.batch_size = batch_size
        self._iterator = iter(source)

    def _next_batch(self, size: int) -> list[SpatialObject]:
        batch: list[SpatialObject] = []
        for obj in self._iterator:
            batch.append(obj)
            if len(batch) >= size:
                break
        return batch

    def prime(self, count: int) -> None:
        """Push ``count`` objects untimed — fills the window so the
        timed phase measures steady-state update cost, as in §7."""
        if count < 0:
            raise InvalidParameterError(f"prime count must be >= 0, got {count}")
        # larger chunks keep bulk-loading cheap; window state after
        # priming is identical for any chunking of a count window
        chunk = max(self.batch_size, 1000)
        remaining = count
        while remaining > 0:
            batch = self._next_batch(min(chunk, remaining))
            if not batch:
                break
            for monitor in self.monitors.values():
                monitor.ingest(batch)
            remaining -= len(batch)

    def run(
        self, batches: int, track_weights: bool = False
    ) -> EngineReport:
        """Push ``batches`` timed arrival batches through every monitor."""
        if batches <= 0:
            raise InvalidParameterError(
                f"batch count must be positive, got {batches}"
            )
        timings = {name: TimingStats() for name in self.monitors}
        history: Dict[str, list[float]] = (
            {name: [] for name in self.monitors} if track_weights else {}
        )
        final: Dict[str, MaxRSResult] = {}
        executed = 0
        for _ in range(batches):
            batch = self._next_batch(self.batch_size)
            if not batch:
                break
            executed += 1
            for name, monitor in self.monitors.items():
                start = time.perf_counter()
                result = monitor.update(batch)
                timings[name].record(time.perf_counter() - start)
                final[name] = result
                if track_weights:
                    history[name].append(result.best_weight)
        return EngineReport(
            batches=executed,
            batch_size=self.batch_size,
            timings=timings,
            final_results=final,
            weight_history=history,
        )
