"""Continuous-query engine: drive monitors from stream sources.

:class:`StreamEngine` reproduces the paper's measurement protocol: fill
the sliding window (untimed priming), then push arrival batches of
``m`` objects and time each ``update`` call.  Several monitors can be
attached to one engine; they all observe identical batches, which is
how the experiments compare naive / G2 / aG2 and how the approximation
benchmark measures the practical error against an exact companion.

When a :class:`~repro.obs.metrics.Metrics` registry is supplied, each
monitor gets its own named scope (and a ``window`` child scope), the
engine observes per-update latency into an ``update_ms`` histogram, and
:class:`EngineReport` carries cumulative plus per-batch metric
snapshots alongside the timings — the substrate of the ``profile`` CLI
and the CI perf gate.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, Sequence

from repro.core.monitor import MaxRSMonitor
from repro.core.objects import SpatialObject
from repro.core.spaces import MaxRSResult
from repro.engine.stats import TimingStats
from repro.errors import InvalidParameterError, StreamExhaustedWarning
from repro.obs.metrics import Metrics, MetricsSnapshot
from repro.streams.source import StreamSource

if TYPE_CHECKING:  # resilience imports engine back; keep runtime lazy
    from repro.resilience.checkpoint import CheckpointManager

__all__ = ["StreamEngine", "EngineReport"]


@dataclass
class EngineReport:
    """Outcome of one engine run, per attached monitor."""

    batches: int
    batch_size: int
    timings: Dict[str, TimingStats]
    final_results: Dict[str, MaxRSResult]
    # per-batch best weights, recorded when track_weights=True
    weight_history: Dict[str, list[float]] = field(default_factory=dict)
    # batches asked for; batches < requested_batches ⇒ source ran dry
    requested_batches: int = 0
    source_exhausted: bool = False
    # cumulative per-monitor snapshot at end of run (metrics runs only)
    metrics: Dict[str, MetricsSnapshot] = field(default_factory=dict)
    # per-batch snapshot deltas, aligned with the timed batches
    batch_metrics: Dict[str, list[MetricsSnapshot]] = field(
        default_factory=dict
    )

    def mean_ms(self, name: str) -> float:
        return self.timings[name].mean_ms

    def table(self) -> str:
        """A small human-readable summary table."""
        lines = [f"{'monitor':<16}{'mean ms':>10}{'median ms':>12}{'p95 ms':>10}"]
        for name, stats in self.timings.items():
            s = stats.summary()
            lines.append(
                f"{name:<16}{s['mean_ms']:>10.3f}"
                f"{s['median_ms']:>12.3f}{s['p95_ms']:>10.3f}"
            )
        return "\n".join(lines)

    def counter_names(self) -> list[str]:
        """Union of counter names across monitors, sorted."""
        names: set[str] = set()
        for snap in self.metrics.values():
            names.update(snap.counters)
        return sorted(names)

    def metrics_table(self, counters: Sequence[str] | None = None) -> str:
        """Per-monitor counter table (columns = counter names)."""
        if not self.metrics:
            return "(no metrics recorded — run with a Metrics registry)"
        names = list(counters) if counters else self.counter_names()
        widths = [max(len(n), 12) for n in names]
        header = f"{'monitor':<16}" + "".join(
            n.rjust(w + 2) for n, w in zip(names, widths)
        )
        lines = [header]
        for monitor, snap in self.metrics.items():
            cells = "".join(
                f"{snap.counters.get(n, 0.0):>{w + 2}.0f}"
                for n, w in zip(names, widths)
            )
            lines.append(f"{monitor:<16}{cells}")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, object]:
        """JSON-able document: timings summaries + metric snapshots."""
        return {
            "batches": self.batches,
            "requested_batches": self.requested_batches,
            "batch_size": self.batch_size,
            "source_exhausted": self.source_exhausted,
            "timings": {
                name: stats.summary() for name, stats in self.timings.items()
            },
            "metrics": {
                name: snap.to_dict() for name, snap in self.metrics.items()
            },
            "batch_metrics": {
                name: [snap.to_dict() for snap in snaps]
                for name, snaps in self.batch_metrics.items()
            },
        }


class StreamEngine:
    """Drives one or more monitors from a single stream source.

    Args:
        monitors: Mapping name → monitor.  All monitors receive every
            batch, in mapping order.
        source: The object stream (consumed once per engine).
        batch_size: Arrival batch size ``m``.
        metrics: Optional metrics registry.  When given, every monitor
            is attached to ``metrics.scope(name)`` and reports carry
            metric snapshots; when omitted, monitors keep their no-op
            default and the engine adds zero observability overhead.
        checkpoint: Optional
            :class:`~repro.resilience.checkpoint.CheckpointManager`;
            notified after every successfully applied timed batch, so
            periodic checkpoints align with the engine's batch count
            (the position replayed on recovery).

    An :class:`~repro.resilience.guard.IngestGuard` passed as the
    ``source`` is wired in automatically: with metrics enabled it gets
    the ``ingest`` scope, so ``records_quarantined`` / ``late_dropped``
    / ``late_reordered`` and dead-letter depth show up in the report
    next to the per-monitor counters.
    """

    def __init__(
        self,
        monitors: Dict[str, MaxRSMonitor],
        source: StreamSource | Iterator[SpatialObject],
        batch_size: int,
        metrics: Metrics | None = None,
        checkpoint: "CheckpointManager | None" = None,
    ) -> None:
        if not monitors:
            raise InvalidParameterError("at least one monitor is required")
        if batch_size <= 0:
            raise InvalidParameterError(
                f"batch size must be positive, got {batch_size}"
            )
        self.monitors = dict(monitors)
        self.batch_size = batch_size
        self._iterator = iter(source)
        self.metrics = metrics
        self.checkpoint = checkpoint
        self._scopes: Dict[str, Metrics] = {}
        if metrics is not None:
            for name, monitor in self.monitors.items():
                scope = metrics.scope(name)
                monitor.attach_metrics(scope)
                self._scopes[name] = scope
            from repro.resilience.guard import IngestGuard

            if isinstance(source, IngestGuard):
                scope = metrics.scope("ingest")
                source.attach_metrics(scope)
                self._scopes["ingest"] = scope

    def _next_batch(self, size: int) -> list[SpatialObject]:
        batch: list[SpatialObject] = []
        for obj in self._iterator:
            batch.append(obj)
            if len(batch) >= size:
                break
        return batch

    def prime(self, count: int) -> int:
        """Push ``count`` objects untimed — fills the window so the
        timed phase measures steady-state update cost, as in §7.

        Returns the number of objects actually primed; when the source
        runs dry early a :class:`StreamExhaustedWarning` is emitted so
        the short fill cannot pass silently.
        """
        if count < 0:
            raise InvalidParameterError(f"prime count must be >= 0, got {count}")
        # larger chunks keep bulk-loading cheap; window state after
        # priming is identical for any chunking of a count window
        chunk = max(self.batch_size, 1000)
        remaining = count
        while remaining > 0:
            batch = self._next_batch(min(chunk, remaining))
            if not batch:
                warnings.warn(
                    "stream exhausted while priming: got "
                    f"{count - remaining} of {count} objects",
                    StreamExhaustedWarning,
                    stacklevel=2,
                )
                break
            for monitor in self.monitors.values():
                monitor.ingest(batch)
            remaining -= len(batch)
        return count - remaining

    def run(
        self, batches: int, track_weights: bool = False
    ) -> EngineReport:
        """Push ``batches`` timed arrival batches through every monitor.

        A source that runs dry mid-run stops the loop early; the report
        flags it via ``source_exhausted`` (and a
        :class:`StreamExhaustedWarning`) rather than silently returning
        statistics over fewer batches than requested.
        """
        if batches <= 0:
            raise InvalidParameterError(
                f"batch count must be positive, got {batches}"
            )
        timings = {name: TimingStats() for name in self.monitors}
        history: Dict[str, list[float]] = (
            {name: [] for name in self.monitors} if track_weights else {}
        )
        final: Dict[str, MaxRSResult] = {}
        observed = self.metrics is not None
        previous: Dict[str, MetricsSnapshot] = {}
        batch_metrics: Dict[str, list[MetricsSnapshot]] = {}
        if observed:
            previous = {
                name: scope.snapshot() for name, scope in self._scopes.items()
            }
            batch_metrics = {name: [] for name in self.monitors}
        executed = 0
        exhausted = False
        for _ in range(batches):
            batch = self._next_batch(self.batch_size)
            if not batch:
                exhausted = True
                break
            executed += 1
            for name, monitor in self.monitors.items():
                start = time.perf_counter()
                result = monitor.update(batch)
                elapsed = time.perf_counter() - start
                timings[name].record(elapsed)
                final[name] = result
                if track_weights:
                    history[name].append(result.best_weight)
                if observed:
                    scope = self._scopes[name]
                    scope.observe("update_ms", elapsed * 1000.0)
                    snap = scope.snapshot()
                    batch_metrics[name].append(snap.delta(previous[name]))
                    previous[name] = snap
            if self.checkpoint is not None:
                self.checkpoint.note_batch()
        if exhausted:
            warnings.warn(
                f"stream exhausted after {executed} of {batches} batches",
                StreamExhaustedWarning,
                stacklevel=2,
            )
        return EngineReport(
            batches=executed,
            batch_size=self.batch_size,
            timings=timings,
            final_results=final,
            weight_history=history,
            requested_batches=batches,
            source_exhausted=exhausted,
            metrics=(
                {name: scope.snapshot() for name, scope in self._scopes.items()}
                if observed
                else {}
            ),
            batch_metrics=batch_metrics,
        )
