"""Continuous-query engine: drive monitors from stream sources.

:class:`StreamEngine` reproduces the paper's measurement protocol: fill
the sliding window (untimed priming), then push arrival batches of
``m`` objects and time each ``update`` call.  Several monitors can be
attached to one engine; they all observe identical batches, which is
how the experiments compare naive / G2 / aG2 and how the approximation
benchmark measures the practical error against an exact companion.

When a :class:`~repro.obs.metrics.Metrics` registry is supplied, each
monitor gets its own named scope (and a ``window`` child scope), the
engine observes per-update latency into an ``update_ms`` histogram, and
:class:`EngineReport` carries cumulative plus per-batch metric
snapshots alongside the timings — the substrate of the ``profile`` CLI
and the CI perf gate.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Iterator, Sequence

from repro.core.monitor import MaxRSMonitor
from repro.core.objects import SpatialObject
from repro.core.spaces import MaxRSResult
from repro.engine.stats import TimingStats
from repro.errors import (
    DiskFullError,
    InvalidParameterError,
    ReproError,
    StreamExhaustedWarning,
)
from repro.obs.metrics import Metrics, MetricsSnapshot
from repro.streams.source import StreamSource

if TYPE_CHECKING:  # resilience/overload import engine back; keep runtime lazy
    from repro.durability.wal import WriteAheadLog
    from repro.overload.backpressure import BackpressureQueue
    from repro.resilience.checkpoint import CheckpointManager

__all__ = ["StreamEngine", "EngineReport"]


@dataclass
class EngineReport:
    """Outcome of one engine run, per attached monitor."""

    batches: int
    batch_size: int
    timings: Dict[str, TimingStats]
    final_results: Dict[str, MaxRSResult]
    # per-batch best weights, recorded when track_weights=True
    weight_history: Dict[str, list[float]] = field(default_factory=dict)
    # batches asked for; batches < requested_batches ⇒ source ran dry
    requested_batches: int = 0
    source_exhausted: bool = False
    # cumulative per-monitor snapshot at end of run (metrics runs only)
    metrics: Dict[str, MetricsSnapshot] = field(default_factory=dict)
    # per-batch snapshot deltas, aligned with the timed batches
    batch_metrics: Dict[str, list[MetricsSnapshot]] = field(
        default_factory=dict
    )
    # overload runs only: backpressure ledger, shed counts, per-monitor
    # mode-residency timeline and staleness (see run_offered)
    overload: dict[str, object] | None = None

    def _stats(self, name: str) -> TimingStats:
        stats = self.timings.get(name)
        if stats is None:
            attached = ", ".join(sorted(self.timings)) or "<none>"
            raise InvalidParameterError(
                f"unknown monitor {name!r}; report covers: {attached}"
            )
        return stats

    def mean_ms(self, name: str) -> float:
        return self._stats(name).mean_ms

    def p95_ms(self, name: str) -> float:
        return self._stats(name).percentile(95.0) * 1000.0

    def table(self) -> str:
        """A small human-readable summary table."""
        lines = [f"{'monitor':<16}{'mean ms':>10}{'median ms':>12}{'p95 ms':>10}"]
        for name, stats in self.timings.items():
            s = stats.summary()
            lines.append(
                f"{name:<16}{s['mean_ms']:>10.3f}"
                f"{s['median_ms']:>12.3f}{s['p95_ms']:>10.3f}"
            )
        return "\n".join(lines)

    def counter_names(self) -> list[str]:
        """Union of counter names across monitors, sorted."""
        names: set[str] = set()
        for snap in self.metrics.values():
            names.update(snap.counters)
        return sorted(names)

    def metrics_table(self, counters: Sequence[str] | None = None) -> str:
        """Per-monitor counter table (columns = counter names)."""
        if not self.metrics:
            return "(no metrics recorded — run with a Metrics registry)"
        names = list(counters) if counters else self.counter_names()
        widths = [max(len(n), 12) for n in names]
        header = f"{'monitor':<16}" + "".join(
            n.rjust(w + 2) for n, w in zip(names, widths)
        )
        lines = [header]
        for monitor, snap in self.metrics.items():
            cells = "".join(
                f"{snap.counters.get(n, 0.0):>{w + 2}.0f}"
                for n, w in zip(names, widths)
            )
            lines.append(f"{monitor:<16}{cells}")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, object]:
        """JSON-able document: timings summaries + metric snapshots."""
        doc: dict[str, object] = {
            "batches": self.batches,
            "requested_batches": self.requested_batches,
            "batch_size": self.batch_size,
            "source_exhausted": self.source_exhausted,
            "timings": {
                name: stats.summary() for name, stats in self.timings.items()
            },
            "metrics": {
                name: snap.to_dict() for name, snap in self.metrics.items()
            },
            "batch_metrics": {
                name: [snap.to_dict() for snap in snaps]
                for name, snaps in self.batch_metrics.items()
            },
        }
        if self.overload is not None:
            doc["overload"] = self.overload
        return doc


class StreamEngine:
    """Drives one or more monitors from a single stream source.

    Args:
        monitors: Mapping name → monitor.  All monitors receive every
            batch, in mapping order.
        source: The object stream (consumed once per engine).
        batch_size: Arrival batch size ``m``.
        metrics: Optional metrics registry.  When given, every monitor
            is attached to ``metrics.scope(name)`` and reports carry
            metric snapshots; when omitted, monitors keep their no-op
            default and the engine adds zero observability overhead.
        checkpoint: Optional
            :class:`~repro.resilience.checkpoint.CheckpointManager`;
            notified after every successfully applied timed batch, so
            periodic checkpoints align with the engine's batch count
            (the position replayed on recovery).
        backpressure: Optional
            :class:`~repro.overload.backpressure.BackpressureQueue` —
            the pluggable overload policy.  Arrivals offered through
            :meth:`run_offered` pass through it (bounded depth, batch
            coalescing, explicit shedding) and the report carries the
            conservation ledger, shed counts and — for monitors with an
            ``overload_summary()`` (the degradation ladder) — the
            mode-residency timeline and staleness.
        wal: Optional :class:`~repro.durability.wal.WriteAheadLog`.
            Every applied batch is journalled *before* any monitor sees
            it (append-before-apply), so recovery can replay the
            post-checkpoint tail from disk without touching the
            original source.  When a checkpoint manager is also
            attached, each periodic checkpoint is followed by a WAL
            ``sync()`` and a compaction down to the manager's
            ``retention_floor``; a :class:`~repro.errors.DiskFullError`
            on the append path triggers the documented recovery action
            automatically — checkpoint, compact, retry once.

    An :class:`~repro.resilience.guard.IngestGuard` passed as the
    ``source`` is wired in automatically: with metrics enabled it gets
    the ``ingest`` scope, so ``records_quarantined`` / ``late_dropped``
    / ``late_reordered`` and dead-letter depth show up in the report
    next to the per-monitor counters.
    """

    def __init__(
        self,
        monitors: Dict[str, MaxRSMonitor],
        source: StreamSource | Iterator[SpatialObject],
        batch_size: int,
        metrics: Metrics | None = None,
        checkpoint: "CheckpointManager | None" = None,
        backpressure: "BackpressureQueue | None" = None,
        wal: "WriteAheadLog | None" = None,
    ) -> None:
        if not monitors:
            raise InvalidParameterError("at least one monitor is required")
        if batch_size <= 0:
            raise InvalidParameterError(
                f"batch size must be positive, got {batch_size}"
            )
        self.monitors = dict(monitors)
        self.batch_size = batch_size
        self._iterator = iter(source)
        self.metrics = metrics
        self.checkpoint = checkpoint
        self.backpressure = backpressure
        self.wal = wal
        self._scopes: Dict[str, Metrics] = {}
        self._session: "_RunState | None" = None
        self._torn_down = False
        if metrics is not None:
            for name, monitor in self.monitors.items():
                scope = metrics.scope(name)
                monitor.attach_metrics(scope)
                self._scopes[name] = scope
            from repro.resilience.guard import IngestGuard

            if isinstance(source, IngestGuard):
                scope = metrics.scope("ingest")
                source.attach_metrics(scope)
                self._scopes["ingest"] = scope
            if backpressure is not None:
                scope = metrics.scope("backpressure")
                backpressure.metrics = scope
                self._scopes["backpressure"] = scope
            if wal is not None:
                scope = metrics.scope("wal")
                wal.metrics = scope
                self._scopes["wal"] = scope

    def _next_batch(self, size: int) -> list[SpatialObject]:
        batch: list[SpatialObject] = []
        for obj in self._iterator:
            batch.append(obj)
            if len(batch) >= size:
                break
        return batch

    def prime(self, count: int) -> int:
        """Push ``count`` objects untimed — fills the window so the
        timed phase measures steady-state update cost, as in §7.

        Returns the number of objects actually primed; when the source
        runs dry early a :class:`StreamExhaustedWarning` is emitted so
        the short fill cannot pass silently.
        """
        if count < 0:
            raise InvalidParameterError(f"prime count must be >= 0, got {count}")
        # larger chunks keep bulk-loading cheap; window state after
        # priming is identical for any chunking of a count window
        chunk = max(self.batch_size, 1000)
        remaining = count
        while remaining > 0:
            batch = self._next_batch(min(chunk, remaining))
            if not batch:
                warnings.warn(
                    "stream exhausted while priming: got "
                    f"{count - remaining} of {count} objects",
                    StreamExhaustedWarning,
                    stacklevel=2,
                )
                break
            for monitor in self.monitors.values():
                monitor.ingest(batch)
            remaining -= len(batch)
        return count - remaining

    def run(
        self, batches: int, track_weights: bool = False
    ) -> EngineReport:
        """Push ``batches`` timed arrival batches through every monitor.

        A source that runs dry mid-run stops the loop early; the report
        flags it via ``source_exhausted`` (and a
        :class:`StreamExhaustedWarning`) rather than silently returning
        statistics over fewer batches than requested.
        """
        if batches <= 0:
            raise InvalidParameterError(
                f"batch count must be positive, got {batches}"
            )
        state = _RunState(self, track_weights)
        executed = 0
        exhausted = False
        for _ in range(batches):
            batch = self._next_batch(self.batch_size)
            if not batch:
                exhausted = True
                break
            executed += 1
            state.apply(batch)
        if exhausted:
            warnings.warn(
                f"stream exhausted after {executed} of {batches} batches",
                StreamExhaustedWarning,
                stacklevel=2,
            )
        return state.report(
            batches=executed,
            requested_batches=batches,
            source_exhausted=exhausted,
        )

    def run_offered(
        self,
        arrivals: Sequence[int],
        track_weights: bool = False,
        on_batch: (
            "Callable[[int, list[SpatialObject], Dict[str, MaxRSResult]],"
            " None] | None"
        ) = None,
    ) -> EngineReport:
        """Push-mode run through the backpressure queue.

        Each entry of ``arrivals`` is one tick of the arrival process:
        that many objects are pulled from the source and *offered* to
        the :class:`~repro.overload.backpressure.BackpressureQueue`,
        then one coalesced batch (bounded by the queue's ``max_batch``)
        is drained and pushed through every monitor.  When arrivals
        outrun the drain rate the queue absorbs, sheds or refuses per
        its policy — objects refused under ``BLOCK`` wait upstream and
        are re-offered on the next tick, which is what backpressure
        means for a pull-based producer.

        The report's ``overload`` field carries the conservation ledger
        (``offered == processed + shed + refused + pending``), shed
        counts, queue high-water mark, and — for monitors exposing
        ``overload_summary()`` — the mode-residency timeline and
        staleness.

        ``on_batch`` (if given) is called after every applied coalesced
        batch with ``(batch_index, batch, results)`` — the overload
        soak harness uses it for its periodic exact-companion guarantee
        checks.
        """
        if self.backpressure is None:
            raise InvalidParameterError(
                "run_offered needs a BackpressureQueue; construct the "
                "engine with backpressure=BackpressureQueue(...)"
            )
        queue = self.backpressure
        state = _RunState(self, track_weights)
        executed = 0
        exhausted = False
        holdover: list[SpatialObject] = []
        for count in arrivals:
            if count < 0:
                raise InvalidParameterError(
                    f"arrival counts must be >= 0, got {count}"
                )
            fresh = self._next_batch(count) if count > 0 else []
            if count > 0 and len(fresh) < count:
                exhausted = True
            holdover = queue.offer_all(holdover + fresh)
            batch = queue.take_batch()
            if batch:
                executed += 1
                backlog = queue.pending + len(holdover)
                for monitor in self.monitors.values():
                    pressure = getattr(monitor, "note_pressure", None)
                    if pressure is not None:
                        pressure(backlog)
                state.apply(batch)
                if on_batch is not None:
                    on_batch(executed - 1, batch, state.final)
            if exhausted and not holdover and queue.pending == 0:
                break
        if exhausted:
            warnings.warn(
                f"stream exhausted after {executed} coalesced batches",
                StreamExhaustedWarning,
                stacklevel=2,
            )
        overload: dict[str, object] = {
            "policy": queue.policy.value,
            "ledger": queue.ledger,
            "ledger_closed": queue.ledger_closed,
            "shed": queue.shed,
            "refused": queue.refused,
            "queue_high_water": queue.high_water,
            "queue_pending": queue.pending,
            "monitors": {
                name: monitor.overload_summary()
                for name, monitor in self.monitors.items()
                if hasattr(monitor, "overload_summary")
            },
        }
        return state.report(
            batches=executed,
            requested_batches=len(arrivals),
            source_exhausted=exhausted,
            overload=overload,
        )

    # -- externally driven sessions (soak harness) ---------------------------

    def process(
        self, batch: Sequence[SpatialObject]
    ) -> Dict[str, MaxRSResult]:
        """Apply one externally assembled batch to every monitor.

        Unlike :meth:`run` / :meth:`run_offered`, the caller owns the
        upstream (guard, queue, fault injectors) and hands the engine
        fully formed batches one at a time.  Batches accumulate into a
        persistent session — timings, metric deltas and checkpoint
        positions line up exactly as in a pull-mode run — which
        :meth:`collect_report` closes out.
        """
        if self._torn_down:
            raise ReproError(
                "engine has been torn down; restore() monitors before "
                "processing further batches"
            )
        if not batch:
            raise InvalidParameterError("process() needs a non-empty batch")
        if self._session is None:
            self._session = _RunState(self, track_weights=False)
        self._session.apply(list(batch))
        return dict(self._session.final)

    def collect_report(self) -> EngineReport:
        """Close the current :meth:`process` session and report on it."""
        session = self._session
        if session is None:
            raise ReproError("no process() session to report on")
        self._session = None
        return session.report(
            batches=len(session.batch_sizes),
            requested_batches=len(session.batch_sizes),
            source_exhausted=False,
        )

    def teardown(self) -> None:
        """Simulate a compute-tier crash: drop monitors and session.

        Everything downstream of the ingest boundary dies — the
        monitors (and their in-memory indexes) are discarded and the
        open session is abandoned.  The attached checkpoint manager
        and any upstream state (guard, queue) survive, exactly as a
        separate ingest process would across a worker crash.  The
        engine refuses further :meth:`process` calls until
        :meth:`restore` rebinds monitors.
        """
        self._session = None
        self.monitors = {}
        self._torn_down = True

    def restore(self, monitors: Dict[str, MaxRSMonitor]) -> None:
        """Rebind recovered monitors after :meth:`teardown`.

        Metrics scopes are re-attached under the same names, so
        counters accumulate across the crash — the observable record
        of the run includes both incarnations.
        """
        if not monitors:
            raise InvalidParameterError("at least one monitor is required")
        self.monitors = dict(monitors)
        if self.metrics is not None:
            for name, monitor in self.monitors.items():
                scope = self.metrics.scope(name)
                monitor.attach_metrics(scope)
                self._scopes[name] = scope
        self._torn_down = False


class _RunState:
    """Shared per-batch bookkeeping of the pull and push run loops:
    timings, weight history, metric snapshot deltas, checkpoints."""

    def __init__(self, engine: StreamEngine, track_weights: bool) -> None:
        self.engine = engine
        self.track_weights = track_weights
        self.timings = {name: TimingStats() for name in engine.monitors}
        self.history: Dict[str, list[float]] = (
            {name: [] for name in engine.monitors} if track_weights else {}
        )
        self.final: Dict[str, MaxRSResult] = {}
        self.observed = engine.metrics is not None
        self.previous: Dict[str, MetricsSnapshot] = {}
        self.batch_metrics: Dict[str, list[MetricsSnapshot]] = {}
        self.batch_sizes: list[int] = []
        if self.observed:
            self.previous = {
                name: scope.snapshot()
                for name, scope in engine._scopes.items()
            }
            self.batch_metrics = {name: [] for name in engine.monitors}

    def apply(self, batch: list[SpatialObject]) -> None:
        engine = self.engine
        if engine.wal is not None:
            self._journal(batch)
        self.batch_sizes.append(len(batch))
        for name, monitor in engine.monitors.items():
            start = time.perf_counter()
            result = monitor.update(batch)
            elapsed = time.perf_counter() - start
            self.timings[name].record(elapsed)
            self.final[name] = result
            if self.track_weights:
                self.history[name].append(result.best_weight)
            if self.observed:
                scope = engine._scopes[name]
                scope.observe("update_ms", elapsed * 1000.0)
                snap = scope.snapshot()
                self.batch_metrics[name].append(snap.delta(self.previous[name]))
                self.previous[name] = snap
        if engine.checkpoint is not None:
            wrote = engine.checkpoint.note_batch()
            if wrote and engine.wal is not None:
                # the checkpoint is durable; seal the WAL up to here and
                # drop segments no retained checkpoint can still need
                engine.wal.sync()
                engine.wal.compact(engine.checkpoint.retention_floor)

    def _journal(self, batch: list[SpatialObject]) -> None:
        """Append-before-apply: the batch is on disk before any monitor
        mutates, so a crash anywhere in the update leaves a replayable
        record.  ``ENOSPC`` runs the documented recovery action inline:
        take a checkpoint, compact the segments it covers, retry once.
        """
        engine = self.engine
        try:
            engine.wal.append_batch(batch)
        except DiskFullError:
            if engine.checkpoint is None:
                raise
            engine.checkpoint.checkpoint()
            engine.wal.compact(engine.checkpoint.retention_floor)
            engine.wal.metrics.inc("wal_enospc_recoveries")
            engine.wal.append_batch(batch)

    def report(
        self,
        batches: int,
        requested_batches: int,
        source_exhausted: bool,
        overload: dict[str, object] | None = None,
    ) -> EngineReport:
        engine = self.engine
        return EngineReport(
            batches=batches,
            batch_size=engine.batch_size,
            timings=self.timings,
            final_results=self.final,
            weight_history=self.history,
            requested_batches=requested_batches,
            source_exhausted=source_exhausted,
            metrics=(
                {
                    name: scope.snapshot()
                    for name, scope in engine._scopes.items()
                }
                if self.observed
                else {}
            ),
            batch_metrics=self.batch_metrics,
            overload=overload,
        )
