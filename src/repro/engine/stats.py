"""Timing statistics for monitor updates.

The paper's headline metric is the *average computation time to update
s\\** per arrival batch (§7.1 "Evaluation"); :class:`TimingStats`
accumulates per-update wall-clock samples and derives the summary
statistics the benchmark harness prints.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import EmptyWindowError

__all__ = ["TimingStats"]


@dataclass
class TimingStats:
    """Accumulator of per-update durations (seconds)."""

    samples: list[float] = field(default_factory=list)

    def record(self, seconds: float) -> None:
        self.samples.append(seconds)

    def __len__(self) -> int:
        return len(self.samples)

    def _require_samples(self) -> None:
        if not self.samples:
            raise EmptyWindowError("no timing samples recorded")

    @property
    def total(self) -> float:
        return sum(self.samples)

    @property
    def mean(self) -> float:
        self._require_samples()
        return self.total / len(self.samples)

    @property
    def mean_ms(self) -> float:
        return self.mean * 1000.0

    @property
    def median(self) -> float:
        self._require_samples()
        ordered = sorted(self.samples)
        n = len(ordered)
        mid = n // 2
        if n % 2:
            return ordered[mid]
        return (ordered[mid - 1] + ordered[mid]) / 2.0

    @property
    def minimum(self) -> float:
        self._require_samples()
        return min(self.samples)

    @property
    def maximum(self) -> float:
        self._require_samples()
        return max(self.samples)

    @property
    def stdev(self) -> float:
        self._require_samples()
        n = len(self.samples)
        if n < 2:
            return 0.0
        mu = self.mean
        var = sum((s - mu) ** 2 for s in self.samples) / (n - 1)
        return math.sqrt(var)

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile, ``p`` in [0, 100]."""
        self._require_samples()
        if not (0.0 <= p <= 100.0):
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return ordered[0]
        rank = (p / 100.0) * (len(ordered) - 1)
        lo = math.floor(rank)
        hi = math.ceil(rank)
        if lo == hi:
            return ordered[lo]
        frac = rank - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    def summary(self) -> dict[str, float]:
        """All headline statistics in milliseconds."""
        return {
            "updates": float(len(self.samples)),
            "mean_ms": self.mean * 1000.0,
            "median_ms": self.median * 1000.0,
            "p95_ms": self.percentile(95.0) * 1000.0,
            "min_ms": self.minimum * 1000.0,
            "max_ms": self.maximum * 1000.0,
            "total_ms": self.total * 1000.0,
        }
