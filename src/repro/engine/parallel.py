"""Parallel multi-query serving across worker processes (paper §8).

:class:`ParallelQueryGroup` exposes the same registry/serving API as
:class:`~repro.engine.multi.MultiQueryGroup` but shards the registered
queries across persistent worker processes, so independent per-query
index maintenance — the dominant cost of multi-query serving — runs
concurrently on multiple cores.  Queries stay *whole*: a monitor's
index lives entirely inside one worker, and a batch update is one
round-trip per shard, not per query.

Design notes:

* **one single-process executor per shard** — worker death is isolated
  to one shard, and a single worker per pool makes the within-shard
  operation order deterministic (FIFO).
* **deterministic merge** — per-shard result dicts are merged in query
  registration order, so ``update`` returns byte-identical result
  sequences to ``MultiQueryGroup`` over the same stream regardless of
  shard scheduling.
* **supervisor-style recovery** — the group keeps, per shard, a pickled
  snapshot of the shard's monitors plus the replay log of batches since
  that snapshot.  When a worker dies (``BrokenProcessPool``), the shard
  executor is respawned, the snapshot restored, the log replayed, and
  the interrupted operation retried — callers never observe the crash.
* **in-process fallback** — ``workers=0`` (or anything falsy) serves
  every query inline with no processes at all: with a single registered
  query there is nothing to parallelise, and the process round-trip
  would be pure overhead, so a 1-query deployment should prefer the
  fallback (or plain ``MultiQueryGroup``).

The scaling win requires actual cores: on a single-CPU host the shards
time-share and the pickling round-trips make this *slower* than
``MultiQueryGroup`` — see docs/PERFORMANCE.md for measured numbers.
"""

from __future__ import annotations

import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Sequence

from repro.core.monitor import MaxRSMonitor
from repro.core.objects import SpatialObject
from repro.core.spaces import MaxRSResult
from repro.errors import InvalidParameterError, UnrecoverableMonitorError
from repro.resilience.guard import IngestGuard

__all__ = ["ParallelQueryGroup"]


# -- worker-side state and entry points -------------------------------------
#
# Each worker process holds the monitors of exactly one shard in this
# module-global registry.  Entry points must be module-level functions
# (picklable by reference); every call returns plain picklable data.

_WORKER_MONITORS: Dict[str, MaxRSMonitor] = {}


def _w_add(name: str, monitor_bytes: bytes) -> None:
    _WORKER_MONITORS[name] = pickle.loads(monitor_bytes)


def _w_remove(name: str) -> bytes:
    return pickle.dumps(_WORKER_MONITORS.pop(name))


def _w_update(batch: Sequence[SpatialObject]) -> Dict[str, MaxRSResult]:
    return {
        name: monitor.update(batch)
        for name, monitor in _WORKER_MONITORS.items()
    }


def _w_results() -> Dict[str, MaxRSResult]:
    return {
        name: monitor.result for name, monitor in _WORKER_MONITORS.items()
    }


def _w_contents(name: str) -> List[SpatialObject]:
    return list(_WORKER_MONITORS[name].window.contents)


def _w_snapshot() -> bytes:
    return pickle.dumps(_WORKER_MONITORS)


def _w_restore(snapshot: bytes) -> None:
    _WORKER_MONITORS.clear()
    _WORKER_MONITORS.update(pickle.loads(snapshot))


def _w_kill() -> None:  # pragma: no cover - exits the worker process
    import os

    os._exit(1)


class _Shard:
    """One worker process plus the state needed to rebuild it."""

    __slots__ = (
        "executor",
        "names",
        "snapshot",
        "replay",
        "respawns",
        "consecutive",
        "gave_up",
    )

    def __init__(self) -> None:
        self.executor = ProcessPoolExecutor(max_workers=1)
        self.names: List[str] = []
        # pickled monitor registry as of the last checkpoint, and the
        # batches pushed since — together they reconstruct the shard
        self.snapshot: bytes = pickle.dumps({})
        self.replay: List[Sequence[SpatialObject]] = []
        self.respawns = 0  # lifetime worker respawns
        self.consecutive = 0  # respawns since the last successful call
        self.gave_up = False  # respawn budget exhausted, shard is dead


class ParallelQueryGroup:
    """A named set of monitors sharded across worker processes.

    Drop-in for :class:`~repro.engine.multi.MultiQueryGroup`::

        group = ParallelQueryGroup(workers=2)
        group.add("coarse", AG2Monitor(2000, 2000, CountWindow(50_000)))
        group.add("fine", AG2Monitor(500, 500, CountWindow(50_000)))
        for batch in stream:
            results = group.update(batch)      # {"coarse": ..., "fine": ...}
        group.close()

    Args:
        workers: Number of shard processes.  ``0`` serves in-process
            with no worker processes (the documented 1-query fallback).
        snapshot_every: Checkpoint each shard after this many updates;
            bounds both the replay log kept per shard and the work
            re-done when a worker is recovered.
        guard: Optional ingest guard for :meth:`update_guarded`.
        max_respawns: Consecutive worker respawns a shard may burn
            before the group declares it dead — a worker that dies
            again during every recovery (poisoned state, OOM loop)
            must not respawn forever.  The shard's next operation
            raises :class:`~repro.errors.UnrecoverableMonitorError`
            and ``gave_up`` is surfaced in :meth:`stats`.  A
            successful call resets the consecutive count.
        backoff_base / backoff: Sleep ``backoff_base * backoff**(n-1)``
            seconds before the ``n``-th consecutive respawn (the first
            is immediate) — repeated deaths should not hot-loop the
            fork+restore+replay cycle.
        sleep: Injectable sleep for tests (defaults to ``time.sleep``).
    """

    def __init__(
        self,
        workers: int = 2,
        snapshot_every: int = 16,
        guard: IngestGuard | None = None,
        *,
        max_respawns: int = 5,
        backoff_base: float = 0.05,
        backoff: float = 2.0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if workers < 0:
            raise InvalidParameterError(
                f"workers must be non-negative, got {workers}"
            )
        if snapshot_every <= 0:
            raise InvalidParameterError(
                f"snapshot_every must be positive, got {snapshot_every}"
            )
        if max_respawns <= 0:
            raise InvalidParameterError(
                f"max_respawns must be positive, got {max_respawns}"
            )
        if backoff_base < 0 or backoff < 1.0:
            raise InvalidParameterError(
                "need backoff_base >= 0 and backoff >= 1, got "
                f"base={backoff_base}, factor={backoff}"
            )
        self.workers = workers
        self.snapshot_every = snapshot_every
        self.guard = guard
        self.max_respawns = int(max_respawns)
        self.backoff_base = float(backoff_base)
        self.backoff = float(backoff)
        self._sleep = sleep
        self._order: List[str] = []
        self._shard_of: Dict[str, int] = {}
        self._shards: Dict[int, _Shard] = {}  # materialised lazily
        # in-process fallback registry (workers == 0)
        self._local: Dict[str, MaxRSMonitor] = {}
        self.recoveries = 0

    # -- shard plumbing -----------------------------------------------------

    @property
    def _inline(self) -> bool:
        return self.workers == 0

    def _pick_shard(self) -> int:
        """Least-loaded shard, lowest index on ties — deterministic."""
        loads = [
            (len(self._shards[i].names) if i in self._shards else 0, i)
            for i in range(self.workers)
        ]
        return min(loads)[1]

    def _shard(self, index: int) -> _Shard:
        shard = self._shards.get(index)
        if shard is None:
            shard = _Shard()
            self._shards[index] = shard
        return shard

    def _call(self, shard: _Shard, fn, *args):
        """Run one entry point on a shard, recovering a dead worker.

        Repeated deaths keep respawning (with backoff) until the
        shard's consecutive-respawn budget runs out, at which point
        :class:`UnrecoverableMonitorError` is raised instead of
        looping forever.
        """
        while True:
            try:
                result = shard.executor.submit(fn, *args).result()
            except BrokenProcessPool:
                self._recover(shard)
                continue
            shard.consecutive = 0
            return result

    def _recover(self, shard: _Shard) -> None:
        """Respawn a shard's worker and rebuild its monitors from the
        last snapshot plus the replayed batches since.

        A death *during* recovery (restore/replay) propagates as
        ``BrokenProcessPool`` back to the calling retry loop, which
        re-enters here — each pass burns one unit of the consecutive
        budget and backs off exponentially.
        """
        if shard.gave_up or shard.consecutive >= self.max_respawns:
            shard.gave_up = True
            raise UnrecoverableMonitorError(
                f"shard worker for {shard.names} died "
                f"{shard.consecutive} consecutive times "
                f"(max_respawns={self.max_respawns}); giving up"
            )
        if shard.consecutive > 0:
            self._sleep(
                self.backoff_base * self.backoff ** (shard.consecutive - 1)
            )
        shard.consecutive += 1
        shard.respawns += 1
        self.recoveries += 1
        shard.executor.shutdown(wait=False, cancel_futures=True)
        shard.executor = ProcessPoolExecutor(max_workers=1)
        shard.executor.submit(_w_restore, shard.snapshot).result()
        for batch in shard.replay:
            shard.executor.submit(_w_update, batch).result()

    def _checkpoint(self, shard: _Shard) -> None:
        shard.snapshot = self._call(shard, _w_snapshot)
        shard.replay.clear()

    # -- registry -----------------------------------------------------------

    def add(self, name: str, monitor: MaxRSMonitor) -> None:
        """Register a query under a unique name."""
        if not name:
            raise InvalidParameterError("query name must be non-empty")
        if name in self._shard_of or name in self._local:
            raise InvalidParameterError(f"query {name!r} already registered")
        if self._inline:
            self._local[name] = monitor
            self._order.append(name)
            return
        index = self._pick_shard()
        shard = self._shard(index)
        self._call(shard, _w_add, name, pickle.dumps(monitor))
        shard.names.append(name)
        self._shard_of[name] = index
        self._order.append(name)
        # registry changes invalidate the old snapshot's name set
        self._checkpoint(shard)

    def add_backfilled(
        self, name: str, monitor: MaxRSMonitor, source: str
    ) -> None:
        """Register a query bulk-loaded with the alive objects of an
        existing query (which may live on any shard)."""
        if self._inline:
            donor = self._local.get(source)
            if donor is None:
                raise InvalidParameterError(f"unknown source query {source!r}")
            contents = list(donor.window.contents)
        else:
            donor_index = self._shard_of.get(source)
            if donor_index is None:
                raise InvalidParameterError(f"unknown source query {source!r}")
            contents = self._call(
                self._shards[donor_index], _w_contents, source
            )
        if contents:
            monitor.ingest(contents)
        self.add(name, monitor)

    def remove(self, name: str) -> MaxRSMonitor:
        """Unregister and return a query's monitor."""
        if self._inline:
            monitor = self._local.pop(name, None)
            if monitor is None:
                raise InvalidParameterError(f"unknown query {name!r}")
            self._order.remove(name)
            return monitor
        index = self._shard_of.pop(name, None)
        if index is None:
            raise InvalidParameterError(f"unknown query {name!r}")
        shard = self._shards[index]
        monitor = pickle.loads(self._call(shard, _w_remove, name))
        shard.names.remove(name)
        self._order.remove(name)
        self._checkpoint(shard)
        return monitor

    def __contains__(self, name: str) -> bool:
        return name in self._shard_of or name in self._local

    def __len__(self) -> int:
        return len(self._order)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._order)

    # -- serving -------------------------------------------------------------

    def update(
        self, batch: Sequence[SpatialObject]
    ) -> Dict[str, MaxRSResult]:
        """Push one arrival batch through every registered query.

        Shard updates run concurrently; the returned dict is merged in
        registration order, independent of shard completion order.
        """
        if not self._order:
            raise InvalidParameterError(
                "no queries registered; add() one before update()"
            )
        if self._inline:
            return {
                name: self._local[name].update(batch) for name in self._order
            }
        batch = list(batch)
        live = [s for s in self._shards.values() if s.names]
        pending = []
        for shard in live:
            try:
                pending.append((shard, shard.executor.submit(_w_update, batch)))
            except BrokenProcessPool:
                pending.append((shard, None))
        merged: Dict[str, MaxRSResult] = {}
        for shard, future in pending:
            try:
                if future is None:
                    raise BrokenProcessPool("worker died before submit")
                part = future.result()
                shard.consecutive = 0
            except BrokenProcessPool:
                self._recover(shard)
                part = self._call(shard, _w_update, batch)
            merged.update(part)
        for shard in live:
            shard.replay.append(batch)
            if len(shard.replay) >= self.snapshot_every:
                self._checkpoint(shard)
        return {name: merged[name] for name in self._order}

    def update_guarded(
        self, records: Sequence[object]
    ) -> Dict[str, MaxRSResult]:
        """Filter one raw batch through the ingest guard, then update."""
        if self.guard is None:
            raise InvalidParameterError(
                "no ingest guard configured; construct the group with "
                "ParallelQueryGroup(guard=IngestGuard(...))"
            )
        return self.update(self.guard.filter(records))

    def results(self) -> Dict[str, MaxRSResult]:
        """Most recent answer per query without pushing anything."""
        if self._inline:
            return {name: self._local[name].result for name in self._order}
        merged: Dict[str, MaxRSResult] = {}
        for shard in self._shards.values():
            if shard.names:
                merged.update(self._call(shard, _w_results))
        return {name: merged[name] for name in self._order}

    def stats(self) -> Dict[str, object]:
        """Plain-data health report: lifetime recoveries plus per-shard
        respawn counts, consecutive-failure streaks and give-ups."""
        shards = [
            {
                "index": index,
                "queries": list(shard.names),
                "respawns": shard.respawns,
                "consecutive_failures": shard.consecutive,
                "gave_up": shard.gave_up,
            }
            for index, shard in sorted(self._shards.items())
        ]
        return {
            "workers": self.workers,
            "recoveries": self.recoveries,
            "respawn_count": sum(s.respawns for s in self._shards.values()),
            "gave_up": any(s.gave_up for s in self._shards.values()),
            "shards": shards,
        }

    # -- lifecycle -----------------------------------------------------------

    def kill_worker(self, index: int = 0) -> None:
        """Terminate one shard's worker process (chaos/testing hook).

        The next operation touching the shard observes the broken pool
        and recovers transparently; :attr:`recoveries` counts how often
        that happened.
        """
        shard = self._shards.get(index)
        if shard is None:
            raise InvalidParameterError(f"no materialised shard {index}")
        try:
            shard.executor.submit(_w_kill).result()
        except BrokenProcessPool:
            pass

    def close(self) -> None:
        """Shut down all worker processes."""
        for shard in self._shards.values():
            shard.executor.shutdown(wait=False, cancel_futures=True)
        self._shards.clear()

    def __enter__(self) -> "ParallelQueryGroup":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
