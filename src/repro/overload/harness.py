"""Overload soak harness: burst a degradation ladder and verify it.

:func:`run_overload` assembles the full overload pipeline —

    dataset stream → BackpressureQueue → StreamEngine
                                       → AdaptiveMonitor (exact → aG2(ε) → sampling)

— drives it with a seeded :class:`LoadGenerator` arrival profile
(square wave by default: calm traffic punctuated by multi-x bursts),
then closes the loop with four independent checks:

* **latency**: p95 per-update latency stays within the budget the
  ladder was asked to defend;
* **guarantees**: every ``verify_every``-th answer with a deterministic
  floor is re-checked against a fresh exact plane sweep over the live
  window — ``best_weight >= guarantee * exact_weight`` must hold;
* **accounting**: the backpressure conservation ledger closes exactly
  (``offered == processed + shed + refused + pending``);
* **recovery**: once the burst passes, the ladder must walk back down
  to the exact rung.

The latency budget is auto-calibrated when not given: a handful of
exact warm-up batches at the base rate measure this machine's exact
update cost, and the budget is a multiple of that — so the soak tests
the *control loop*, not the host's absolute speed.  The CLI subcommand
``maxrs-stream overload`` and the CI overload smoke job are thin
wrappers over this function; the report is plain data so the soak can
also be asserted in tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

from repro.core.objects import SpatialObject, to_weighted_rects
from repro.core.planesweep import plane_sweep_max
from repro.core.spaces import MaxRSResult
from repro.datasets import make_stream
from repro.engine.engine import EngineReport, StreamEngine
from repro.errors import InvalidParameterError
from repro.obs.metrics import Metrics
from repro.overload.backpressure import BackpressureQueue, ShedPolicy
from repro.overload.breaker import CircuitBreaker
from repro.overload.controller import AdaptiveMonitor, DeadlineController
from repro.soak.report import ReportBase
from repro.window import CountWindow

__all__ = ["LoadGenerator", "OverloadReport", "run_overload"]

_WEIGHT_TOL = 1e-6
_MONITOR = "ladder"


class LoadGenerator:
    """Seeded arrival-rate profile for overload soaks.

    Produces one arrival count per tick.  Patterns:

    * ``square`` — each period opens with ``burst_ticks`` ticks at
      ``base_rate * burst_factor``, then stays calm at ``base_rate``
      (the classic flash-crowd shape; the calm tail is what lets the
      ladder demonstrate recovery);
    * ``ramp`` — a triangle wave climbing linearly from ``base_rate``
      to the burst rate over the first half of each period and back
      down over the second (gradual pressure, exercises the hysteresis
      staircase rather than panic);
    * ``spike`` — a single tick at the burst rate per period, calm
      otherwise (tests that one catastrophic batch cannot wedge the
      ladder).

    Counts carry multiplicative seeded jitter (``±jitter``), so soaks
    are reproducible per seed yet not metronomic.
    """

    PATTERNS = ("square", "ramp", "spike")

    def __init__(
        self,
        base_rate: int,
        *,
        pattern: str = "square",
        burst_factor: float = 10.0,
        period: int = 80,
        burst_ticks: int = 15,
        jitter: float = 0.1,
        seed: int = 0,
    ) -> None:
        if base_rate <= 0:
            raise InvalidParameterError(
                f"base rate must be positive, got {base_rate}"
            )
        if pattern not in self.PATTERNS:
            raise InvalidParameterError(
                f"unknown load pattern {pattern!r}; choose from "
                f"{', '.join(self.PATTERNS)}"
            )
        if burst_factor < 1.0:
            raise InvalidParameterError(
                f"burst factor must be >= 1, got {burst_factor}"
            )
        if period <= 0:
            raise InvalidParameterError(f"period must be positive, got {period}")
        if not (0 < burst_ticks <= period):
            raise InvalidParameterError(
                f"need 0 < burst_ticks <= period, got {burst_ticks} / {period}"
            )
        if not (0.0 <= jitter < 1.0):
            raise InvalidParameterError(
                f"jitter must be in [0, 1), got {jitter}"
            )
        self.base_rate = int(base_rate)
        self.pattern = pattern
        self.burst_factor = float(burst_factor)
        self.period = int(period)
        self.burst_ticks = int(burst_ticks)
        self.jitter = float(jitter)
        self.seed = seed

    def _shape(self, tick: int) -> float:
        """Noise-free rate at ``tick`` (the pattern itself)."""
        phase = tick % self.period
        base = float(self.base_rate)
        peak = base * self.burst_factor
        if self.pattern == "square":
            return peak if phase < self.burst_ticks else base
        if self.pattern == "spike":
            return peak if phase == 0 else base
        # ramp: triangle — up over the first half-period, down over the rest
        half = self.period / 2.0
        frac = phase / half if phase < half else (self.period - phase) / half
        return base + (peak - base) * frac

    def arrivals(self, ticks: int) -> List[int]:
        """The arrival counts for ``ticks`` ticks (one list per call,
        jittered by a private RNG seeded from ``seed`` — repeatable)."""
        if ticks <= 0:
            raise InvalidParameterError(
                f"tick count must be positive, got {ticks}"
            )
        rng = random.Random(self.seed)
        counts = []
        for tick in range(ticks):
            rate = self._shape(tick)
            if self.jitter:
                rate *= rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)
            counts.append(max(1, round(rate)))
        return counts


@dataclass
class OverloadReport(ReportBase):
    """Everything an overload soak observed, plus the four verdicts."""

    engine_report: EngineReport
    budget_ms: float
    calibrated: bool
    mean_ms: float
    p95_ms: float
    # backpressure accounting
    ledger: Dict[str, int]
    ledger_closed: bool
    shed: int
    refused: int
    queue_high_water: int
    queue_pending: int
    # ladder trajectory
    final_mode: str
    final_guarantee: float
    transitions: List[Dict[str, object]]
    residency: Dict[str, int]
    stale_served: int
    breaker_trips: int
    rebuilds: int
    # exact-companion guarantee checks
    guarantee_checks: int
    guarantee_failures: int
    guarantee_details: List[Dict[str, object]] = field(default_factory=list)

    @property
    def within_budget(self) -> bool:
        """p95 update latency stayed inside the defended budget."""
        return self.p95_ms <= self.budget_ms

    @property
    def recovered(self) -> bool:
        """The ladder walked back to the exact rung after the bursts."""
        return self.final_mode == AdaptiveMonitor.EXACT

    @property
    def guarantees_verified(self) -> bool:
        """Every checked degraded answer honoured its ``(1-ε)`` floor."""
        return self.guarantee_checks > 0 and self.guarantee_failures == 0

    @property
    def ok(self) -> bool:
        return (
            self.within_budget
            and self.ledger_closed
            and self.recovered
            and self.guarantees_verified
        )

    def failures(self) -> list[str]:
        lines = []
        if not self.within_budget:
            lines.append(
                f"p95 update latency {self.p95_ms:.3f} ms exceeded the "
                f"{self.budget_ms:.3f} ms budget"
            )
        if not self.ledger_closed:
            lines.append(f"conservation ledger did not close: {self.ledger}")
        if not self.recovered:
            lines.append(
                f"ladder finished at {self.final_mode!r}, never recovered "
                "to exact"
            )
        if not self.guarantees_verified:
            lines.append(
                f"{self.guarantee_failures} of {self.guarantee_checks} "
                "guarantee checks failed (or none ran)"
            )
        return lines

    def _pairs(self) -> list[tuple[str, object]]:
        return [
            ("coalesced batches", self.engine_report.batches),
            ("arrival ticks", self.engine_report.requested_batches),
            ("budget ms", f"{self.budget_ms:.3f}"),
            ("budget calibrated", self.calibrated),
            ("mean update ms", f"{self.mean_ms:.3f}"),
            ("p95 update ms", f"{self.p95_ms:.3f}"),
            ("objects offered", self.ledger.get("offered", 0)),
            ("objects processed", self.ledger.get("processed", 0)),
            ("objects shed", self.shed),
            ("objects refused", self.refused),
            ("queue high water", self.queue_high_water),
            ("queue pending", self.queue_pending),
            ("ladder transitions", len(self.transitions)),
            ("final mode", self.final_mode),
            ("final guarantee", f"{self.final_guarantee:.3f}"),
            ("stale served", self.stale_served),
            ("breaker trips", self.breaker_trips),
            ("index rebuilds", self.rebuilds),
            ("guarantee checks", self.guarantee_checks),
            ("guarantee failures", self.guarantee_failures),
            ("p95 within budget", self.within_budget),
            ("ledger closed", self.ledger_closed),
            ("recovered to exact", self.recovered),
            ("guarantees verified", self.guarantees_verified),
        ]

    def _extra(self) -> dict[str, Any]:
        return {
            "ledger": dict(self.ledger),
            "residency": dict(self.residency),
            "transitions": [dict(t) for t in self.transitions],
            "guarantee_details": [dict(d) for d in self.guarantee_details],
            "engine": self.engine_report.to_dict(),
        }


def exact_weight_over(
    contents: Sequence[SpatialObject], side: float
) -> float:
    """Exact plane-sweep MaxRS weight over a window's contents."""
    if not contents:
        return 0.0
    region = plane_sweep_max(to_weighted_rects(contents, side, side))
    return 0.0 if region is None else region.weight


def run_overload(
    dataset: str = "synthetic",
    *,
    window: int = 2000,
    rate: int = 50,
    ticks: int = 160,
    pattern: str = "square",
    burst_factor: float = 10.0,
    period: int = 80,
    burst_ticks: int = 15,
    jitter: float = 0.1,
    side: float = 1000.0,
    domain: float = 140_000.0,
    seed: int = 11,
    budget_ms: float | None = None,
    budget_factor: float = 3.0,
    calibration_batches: int = 8,
    capacity: int | None = None,
    max_batch: int | None = None,
    shed_policy: ShedPolicy | str = ShedPolicy.SHED_OLDEST,
    epsilons: Sequence[float] = (0.2, 0.4),
    sampling_epsilon: float = 0.5,
    cell_size: float | None = None,
    verify_every: int = 10,
    panic_factor: float = 1.6,
) -> OverloadReport:
    """Run the full overload pipeline and verify the outcome.

    Defaults shape a two-burst square-wave soak: ``ticks = 2 * period``
    gives two flash crowds with a calm tail long enough for the ladder
    to recover to exact.  ``capacity`` defaults to ``20 * rate`` (the
    queue absorbs a burst without shedding at moderate factors) and
    ``max_batch`` to ``8 * rate`` (coalesced drains clear a backlog in
    a few updates).

    When ``budget_ms`` is ``None`` it is calibrated on this machine:
    ``calibration_batches`` exact updates at the base rate are timed
    (untimed phase — they do not appear in the soak's report) and the
    budget is ``budget_factor`` × their mean.  A burst batch is then
    several budgets worth of exact work, which is exactly the regime
    the ladder exists for.
    """
    if ticks <= 0:
        raise InvalidParameterError(f"tick count must be positive, got {ticks}")
    if verify_every < 0:
        raise InvalidParameterError(
            f"verify_every must be >= 0, got {verify_every}"
        )
    if budget_ms is None and calibration_batches <= 0:
        raise InvalidParameterError(
            "budget auto-calibration needs calibration_batches > 0 "
            "(or pass an explicit budget_ms)"
        )
    if capacity is None:
        capacity = 20 * rate
    if max_batch is None:
        max_batch = 8 * rate

    stream = make_stream(dataset, domain=domain, seed=seed)
    metrics = Metrics("overload")
    # a placeholder budget during calibration: every sample lands far
    # below the low watermark, so the controller only sees headroom.
    # The soak's controller is tuned for decisiveness — one EWMA breach
    # escalates (each over-budget update is a p95 sample we cannot take
    # back), while the EWMA itself (alpha 0.5) still rides out a single
    # calm-phase latency spike.  The cheap-side defaults (deescalate
    # after 3 clears, min residency 5) keep recovery deliberate, and
    # the dead band between the watermarks keeps the ladder parked on a
    # cheap rung for as long as the burst actually lasts.
    controller = DeadlineController(
        budget_ms if budget_ms is not None else 1e9,
        alpha=0.5,
        high_fraction=0.85,
        escalate_after=1,
        panic_factor=panic_factor,
    )
    adaptive = AdaptiveMonitor(
        side,
        side,
        lambda: CountWindow(window),
        epsilon_schedule=epsilons,
        sampling_epsilon=sampling_epsilon,
        cell_size=cell_size,
        seed=seed,
        controller=controller,
        breaker=CircuitBreaker(),
    )
    queue = BackpressureQueue(
        capacity, policy=shed_policy, max_batch=max_batch
    )
    engine = StreamEngine(
        {_MONITOR: adaptive},
        stream,
        batch_size=rate,
        metrics=metrics,
        backpressure=queue,
    )
    engine.prime(window)

    calibrated = budget_ms is None
    if calibrated:
        # two discarded batches warm caches and branch predictors, then
        # the budget anchors to the p75 of the measured batches: a
        # short calibration that catches the host on a fast (or slow)
        # moment must not hand the soak a budget the steady state
        # cannot live inside
        engine.run(2)
        warmup = engine.run(calibration_batches)
        anchor_ms = warmup.timings[_MONITOR].percentile(75.0) * 1000.0
        controller.set_budget(max(budget_factor * anchor_ms, 0.05))

    checks: Dict[str, Any] = {"performed": 0, "failures": 0, "details": []}

    def verify(index: int, batch: list, results: Dict[str, MaxRSResult]) -> None:
        if verify_every == 0 or (index + 1) % verify_every != 0:
            return
        result = results[_MONITOR]
        # stale answers describe an older window; sampling answers
        # carry no deterministic floor — neither has a claim to check
        if result.stale_for > 0 or result.guarantee <= 0.0:
            return
        exact = exact_weight_over(list(adaptive.window.contents), side)
        checks["performed"] += 1
        floor = result.guarantee * exact - _WEIGHT_TOL * max(1.0, abs(exact))
        if result.best_weight < floor:
            checks["failures"] += 1
            checks["details"].append(
                {
                    "batch": index,
                    "mode": result.mode,
                    "guarantee": result.guarantee,
                    "answer_weight": result.best_weight,
                    "exact_weight": exact,
                }
            )

    generator = LoadGenerator(
        rate,
        pattern=pattern,
        burst_factor=burst_factor,
        period=period,
        burst_ticks=burst_ticks,
        jitter=jitter,
        seed=seed + 1,
    )
    report = engine.run_offered(generator.arrivals(ticks), on_batch=verify)

    summary = adaptive.overload_summary()
    overload = report.overload or {}
    return OverloadReport(
        engine_report=report,
        budget_ms=controller.budget_ms,
        calibrated=calibrated,
        mean_ms=report.mean_ms(_MONITOR),
        p95_ms=report.p95_ms(_MONITOR),
        ledger=dict(overload.get("ledger", {})),
        ledger_closed=bool(overload.get("ledger_closed", False)),
        shed=int(overload.get("shed", 0)),
        refused=int(overload.get("refused", 0)),
        queue_high_water=int(overload.get("queue_high_water", 0)),
        queue_pending=int(overload.get("queue_pending", 0)),
        final_mode=str(summary["mode"]),
        final_guarantee=float(summary["guarantee"]),
        transitions=list(adaptive.transitions),
        residency=dict(adaptive.residency),
        stale_served=adaptive.stale_residency,
        breaker_trips=adaptive.breaker.trips,
        rebuilds=adaptive.rebuilds,
        guarantee_checks=checks["performed"],
        guarantee_failures=checks["failures"],
        guarantee_details=checks["details"],
    )
