"""Circuit breaker: serve stale answers instead of melting down.

The degradation ladder handles *sustained* overload by trading accuracy
for speed.  The breaker handles the pathological tail beyond it — a
monitor that keeps blowing its deadline even at the cheapest rung, or
one that the :class:`~repro.resilience.supervisor.MonitorSupervisor`
keeps healing (repeated index rebuilds are a symptom, not a fix).

Classic three-state machine, measured in *updates* rather than
wall-clock (the library is single-threaded and batch-driven):

* **CLOSED** — normal operation.  ``trip_after`` consecutive
  over-deadline updates, or ``heal_trip_after`` supervisor heals since
  the last close, trip it OPEN.
* **OPEN** — the caller should *not* run the monitor; it serves the
  last known-good result with a staleness tick instead.  After
  ``cooldown`` skipped updates the breaker moves to HALF_OPEN.
* **HALF_OPEN** — exactly one probe update is allowed through.  Within
  deadline → CLOSED (counters reset); over → OPEN again, cooldown
  restarted.
"""

from __future__ import annotations

import enum

from repro.errors import InvalidParameterError
from repro.obs.metrics import NULL_METRICS, Metrics

__all__ = ["BreakerState", "CircuitBreaker"]


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Per-monitor closed/open/half-open protection.

    Args:
        trip_after: Consecutive over-deadline updates that trip the
            breaker open.
        cooldown: Updates to skip (serving stale) before probing.
        heal_trip_after: Supervisor heals since the last close that
            trip the breaker (0 disables heal-tripping).
        metrics: Optional scope; emits ``breaker_trips`` /
            ``breaker_probes`` / ``breaker_closes`` counters and the
            ``breaker_state`` gauge (0 closed, 1 half-open, 2 open).
    """

    _STATE_GAUGE = {
        BreakerState.CLOSED: 0.0,
        BreakerState.HALF_OPEN: 1.0,
        BreakerState.OPEN: 2.0,
    }

    def __init__(
        self,
        trip_after: int = 5,
        cooldown: int = 10,
        heal_trip_after: int = 2,
        metrics: Metrics = NULL_METRICS,
    ) -> None:
        if trip_after <= 0:
            raise InvalidParameterError(
                f"trip_after must be positive, got {trip_after}"
            )
        if cooldown <= 0:
            raise InvalidParameterError(
                f"cooldown must be positive, got {cooldown}"
            )
        if heal_trip_after < 0:
            raise InvalidParameterError(
                f"heal_trip_after must be >= 0, got {heal_trip_after}"
            )
        self.trip_after = int(trip_after)
        self.cooldown = int(cooldown)
        self.heal_trip_after = int(heal_trip_after)
        self.metrics = metrics
        self.state = BreakerState.CLOSED
        self.trips = 0
        self.stale_served = 0
        self._consecutive_breaches = 0
        self._heals = 0
        self._cooldown_left = 0

    # -- caller protocol ----------------------------------------------------

    def allow_update(self) -> bool:
        """Ask before each update: run the monitor, or serve stale?

        OPEN decrements the cooldown and refuses; when the cooldown
        expires the breaker turns HALF_OPEN and admits one probe.
        """
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            self._cooldown_left -= 1
            if self._cooldown_left <= 0:
                self.state = BreakerState.HALF_OPEN
                self.metrics.inc("breaker_probes")
                self._emit_state()
                return True
            self.stale_served += 1
            self.metrics.inc("stale_served")
            return False
        # HALF_OPEN with no verdict yet: keep admitting the probe
        return True

    def record_update(self, over_deadline: bool) -> None:
        """Report the outcome of an admitted update."""
        if self.state is BreakerState.HALF_OPEN:
            if over_deadline:
                self._trip("probe_failed")
            else:
                self._close()
            return
        if over_deadline:
            self._consecutive_breaches += 1
            if self._consecutive_breaches >= self.trip_after:
                self._trip("consecutive_deadline_breaches")
        else:
            self._consecutive_breaches = 0

    def note_heal(self, cause: BaseException | None = None) -> None:
        """A supervisor healed the monitor; repeated heals trip us."""
        if self.heal_trip_after <= 0:
            return
        self._heals += 1
        self.metrics.inc("heals_observed")
        if (
            self.state is BreakerState.CLOSED
            and self._heals >= self.heal_trip_after
        ):
            self._trip("supervisor_heals")

    # -- transitions --------------------------------------------------------

    def _trip(self, reason: str) -> None:
        self.state = BreakerState.OPEN
        self.trips += 1
        self._cooldown_left = self.cooldown
        self._consecutive_breaches = 0
        self.metrics.inc("breaker_trips")
        self.metrics.inc(f"breaker_trips_{reason}")
        self._emit_state()

    def _close(self) -> None:
        self.state = BreakerState.CLOSED
        self._consecutive_breaches = 0
        self._heals = 0
        self.metrics.inc("breaker_closes")
        self._emit_state()

    def _emit_state(self) -> None:
        self.metrics.set_gauge("breaker_state", self._STATE_GAUGE[self.state])
