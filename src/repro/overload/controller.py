"""Deadline controller and the ε-guaranteed degradation ladder.

The paper supplies the safety valve for overload: the approximate
monitor (Pruning Rules 3–4) answers with a hard ``(1-ε)`` weight
guarantee at a fraction of the exact cost, and the sampling comparator
of [25] is cheaper still (with only a probabilistic bound).  The ladder
arranges them by cost:

    exact aG2 (ε=0)  →  approx aG2 (ε₁ < ε₂ < … < εₖ)  →  sampling

:class:`DeadlineController` decides *when* to move: it tracks the
per-update latency EWMA — the same measurement the engine's
``update_ms`` histogram records — against a user latency budget, with
hysteresis (separate high/low watermarks, consecutive-sample counters,
a minimum residency before stepping back down) so one slow batch does
not cause mode flapping.  A single catastrophic sample (``panic_factor``
× budget) jumps straight to the cheapest rung: during a 10× burst, one
over-budget update is information enough, and p95 latency cannot afford
an escalation staircase.

:class:`AdaptiveMonitor` is the monitor-shaped wrapper that walks the
ladder.  Implementation notes:

* The aG2 rungs are *one* ``AG2Monitor`` whose ``epsilon`` is dialed.
  This is sound: Theorem 1's argument is per-update — after any update
  performed with tolerance ε, every un-adopted space was pruned against
  ``(1-ε)``, so the answer satisfies the ``(1-ε)`` floor for the ε *in
  effect during that update*, regardless of history.  Transitions
  between aG2 rungs are therefore free.
* The sampling rung's window is kept warm on every update (its
  maintenance is O(batch)); entering sampling is free, and leaving it
  rebuilds the aG2 index from the surviving window contents — the same
  recovery pattern :class:`~repro.resilience.supervisor.MonitorSupervisor`
  uses to heal.
* Every answer carries its contract in the result (``mode``,
  ``guarantee``, ``stale_for``), so downstream consumers can tell what
  they got without knowing the ladder exists.
"""

from __future__ import annotations

import enum
import time
from dataclasses import replace
from typing import Callable, Dict, List, Sequence

from repro.core.ag2 import AG2Monitor
from repro.core.monitor import MaxRSMonitor
from repro.core.naive import NaiveMonitor
from repro.core.objects import SpatialObject
from repro.core.sampling import SamplingMonitor
from repro.core.spaces import MaxRSResult
from repro.errors import InvalidParameterError
from repro.obs.metrics import NULL_METRICS, Ewma, Metrics
from repro.overload.breaker import BreakerState, CircuitBreaker
from repro.resilience.supervisor import MonitorSupervisor
from repro.window.base import SlidingWindow

__all__ = ["AdaptiveMonitor", "DeadlineController", "LadderDecision"]


class LadderDecision(enum.Enum):
    """What the controller wants done after one latency observation."""

    HOLD = "hold"
    ESCALATE = "escalate"  # one rung cheaper
    DEESCALATE = "deescalate"  # one rung more accurate
    PANIC = "panic"  # jump to the cheapest rung now


class DeadlineController:
    """Hysteresis controller: latency EWMA vs. a latency budget.

    Args:
        budget_ms: Per-update latency budget the ladder must defend.
        alpha: EWMA smoothing weight on the newest sample.
        high_fraction: Escalation watermark — pressure builds while
            ``ewma > high_fraction * budget``.
        low_fraction: De-escalation watermark — headroom builds while
            ``ewma < low_fraction * budget``.  Must be strictly below
            ``high_fraction``; the dead band between them is the
            hysteresis that prevents flapping.
        escalate_after: Consecutive over-watermark observations needed
            to escalate.
        deescalate_after: Consecutive under-watermark observations
            needed to de-escalate.
        min_residency: Observations a mode must serve before the
            controller will step *down* (escalation is never delayed —
            overload will not wait).
        panic_factor: A single sample above ``panic_factor * budget``
            returns :attr:`LadderDecision.PANIC`.  Panic is also
            returned when an escalation falls due while the triggering
            sample itself exceeds the full budget — an overloaded rung
            should be abandoned for the cheapest one, not the next one.
        metrics: Optional scope; mirrors the EWMA into the
            ``latency_ewma_ms`` gauge.
    """

    def __init__(
        self,
        budget_ms: float,
        *,
        alpha: float = 0.4,
        high_fraction: float = 0.9,
        low_fraction: float = 0.5,
        escalate_after: int = 2,
        deescalate_after: int = 3,
        min_residency: int = 5,
        panic_factor: float = 3.0,
        metrics: Metrics = NULL_METRICS,
    ) -> None:
        if budget_ms <= 0:
            raise InvalidParameterError(
                f"latency budget must be positive, got {budget_ms}"
            )
        if not (0.0 < low_fraction < high_fraction <= 1.0):
            raise InvalidParameterError(
                "need 0 < low_fraction < high_fraction <= 1, got "
                f"low={low_fraction}, high={high_fraction}"
            )
        if escalate_after <= 0 or deescalate_after <= 0:
            raise InvalidParameterError(
                "escalate_after and deescalate_after must be positive"
            )
        if min_residency < 0:
            raise InvalidParameterError(
                f"min_residency must be >= 0, got {min_residency}"
            )
        if panic_factor <= 1.0:
            raise InvalidParameterError(
                f"panic_factor must exceed 1, got {panic_factor}"
            )
        self.budget_ms = float(budget_ms)
        self.high_fraction = float(high_fraction)
        self.low_fraction = float(low_fraction)
        self.escalate_after = int(escalate_after)
        self.deescalate_after = int(deescalate_after)
        self.min_residency = int(min_residency)
        self.panic_factor = float(panic_factor)
        self.metrics = metrics
        self.ewma = Ewma("latency_ewma_ms", alpha=alpha)
        self._breaches = 0
        self._clears = 0
        self._residency = 0

    @property
    def latency_ewma_ms(self) -> float:
        return self.ewma.value

    def set_budget(self, budget_ms: float) -> None:
        """Re-target the budget (e.g. after auto-calibration)."""
        if budget_ms <= 0:
            raise InvalidParameterError(
                f"latency budget must be positive, got {budget_ms}"
            )
        self.budget_ms = float(budget_ms)

    def observe(self, elapsed_ms: float) -> LadderDecision:
        """Feed one per-update latency sample; get a ladder decision."""
        value = self.ewma.observe(elapsed_ms)
        self.metrics.set_gauge("latency_ewma_ms", value)
        self._residency += 1
        if elapsed_ms > self.panic_factor * self.budget_ms:
            return LadderDecision.PANIC
        if value > self.high_fraction * self.budget_ms:
            self._breaches += 1
            self._clears = 0
            if self._breaches >= self.escalate_after:
                # severity-aware: if escalation is due while the raw
                # sample is already past the *full* budget (not just
                # the watermark), single-rung steps would spend one
                # over-budget p95 sample per rung — jump to the
                # cheapest rung instead.  Gradual pressure (EWMA over
                # the watermark, samples still inside the budget)
                # keeps the one-rung staircase.
                if elapsed_ms > self.budget_ms:
                    return LadderDecision.PANIC
                return LadderDecision.ESCALATE
        elif value < self.low_fraction * self.budget_ms:
            self._clears += 1
            self._breaches = 0
            if (
                self._clears >= self.deescalate_after
                and self._residency >= self.min_residency
            ):
                return LadderDecision.DEESCALATE
        else:  # dead band: hysteresis — consecutive runs restart
            self._breaches = 0
            self._clears = 0
        return LadderDecision.HOLD

    def note_transition(self) -> None:
        """The ladder moved; restart counters for the new mode."""
        self._breaches = 0
        self._clears = 0
        self._residency = 0


class AdaptiveMonitor:
    """Monitor-shaped degradation ladder under a latency budget.

    Drop-in wherever the library consumes a :class:`MaxRSMonitor`
    structurally (``StreamEngine``, ``MultiQueryGroup``): it exposes
    ``update`` / ``ingest`` / ``result`` / ``window`` /
    ``attach_metrics``.  Internally it serves from the cheapest rung
    that currently meets the latency budget and annotates every answer
    with the guarantee of the rung that produced it.

    Args:
        rect_width / rect_height: Query rectangle.
        window_factory: Zero-argument factory producing *fresh* sliding
            windows of the query's configuration (each rung monitor
            owns one; they observe identical pushes).
        budget_ms: Per-update latency budget.
        epsilon_schedule: Strictly increasing tolerances of the
            approximate rungs, each in (0, 1).
        sampling_epsilon: Target error used to size the sampling rung's
            samples.  The default is deliberately coarse: the bottom
            rung exists to shed load, and ``O(log n / ε²)`` sample
            sizes only beat the exact sweep when ε is large.
        cell_size: Grid resolution forwarded to the aG2 rungs.
        seed: Seed of the sampling rung's private RNG.
        controller: Latency controller; built from ``budget_ms`` with
            defaults when omitted.
        breaker: Circuit breaker; built with defaults when omitted.
        probe_every / max_heals: When ``probe_every > 0`` the aG2 rungs
            run supervised (:class:`MonitorSupervisor`) with periodic
            invariant probes, and every heal feeds the breaker.
        latency_model: Optional ``(rung, batch_size) -> ms`` callable.
            When given, the controller is steered by *modeled* latency
            samples instead of wall-clock measurements — the soak
            harness uses this to make ladder trajectories (and hence
            whole soak reports) bit-identical across runs and hosts.
            Production serving leaves it ``None``.
    """

    SAMPLING = "sampling"
    EXACT = "exact"

    def __init__(
        self,
        rect_width: float,
        rect_height: float,
        window_factory: Callable[[], SlidingWindow],
        *,
        budget_ms: float = 50.0,
        epsilon_schedule: Sequence[float] = (0.1, 0.2, 0.4),
        sampling_epsilon: float = 0.5,
        cell_size: float | None = None,
        seed: int = 0,
        controller: DeadlineController | None = None,
        breaker: CircuitBreaker | None = None,
        probe_every: int = 0,
        max_heals: int | None = None,
        latency_model: Callable[[int, int], float] | None = None,
    ) -> None:
        schedule = tuple(float(e) for e in epsilon_schedule)
        if not schedule:
            raise InvalidParameterError(
                "epsilon_schedule needs at least one tolerance"
            )
        for eps in schedule:
            if not (0.0 < eps < 1.0):
                raise InvalidParameterError(
                    "approximate monitoring needs 0 < epsilon < 1, "
                    f"got {eps} in schedule {schedule}"
                )
        if list(schedule) != sorted(set(schedule)):
            raise InvalidParameterError(
                f"epsilon_schedule must be strictly increasing, got {schedule}"
            )
        self.rect_width = float(rect_width)
        self.rect_height = float(rect_height)
        self._window_factory = window_factory
        self.epsilon_schedule = schedule
        self.controller = controller or DeadlineController(budget_ms)
        self.breaker = breaker or CircuitBreaker()
        self.probe_every = int(probe_every)
        self.max_heals = max_heals
        self.latency_model = latency_model
        self._cell_size = cell_size
        # rung 0 = exact, rungs 1..k = approx(εᵢ), rung k+1 = sampling
        self.mode_names: tuple[str, ...] = (
            (self.EXACT,)
            + tuple(f"approx({eps:g})" for eps in schedule)
            + (self.SAMPLING,)
        )
        self._rung = 0
        self._ag2_stale = False
        self._metrics_base: Metrics = NULL_METRICS
        self.metrics: Metrics = NULL_METRICS
        self._ag2 = self._make_ag2(0.0)
        self._sampler = SamplingMonitor(
            rect_width,
            rect_height,
            window_factory(),
            epsilon=sampling_epsilon,
            seed=seed,
        )
        self._last = MaxRSResult()
        self._stale_for = 0
        self._updates = 0
        self._backlog = 0
        self.deescalations_deferred = 0
        self.rebuilds = 0
        self.transitions: List[Dict[str, object]] = []
        self.residency: Dict[str, int] = {name: 0 for name in self.mode_names}
        self.stale_residency = 0

    # -- rung bookkeeping ----------------------------------------------------

    @property
    def sampling_rung(self) -> int:
        return len(self.epsilon_schedule) + 1

    @property
    def rung(self) -> int:
        return self._rung

    @property
    def mode(self) -> str:
        return self.mode_names[self._rung]

    @property
    def guarantee(self) -> float:
        """Deterministic weight floor of the current rung."""
        if self._rung == 0:
            return 1.0
        if self._rung == self.sampling_rung:
            return 0.0
        return 1.0 - self.epsilon_schedule[self._rung - 1]

    def _rung_epsilon(self, rung: int) -> float:
        return 0.0 if rung == 0 else self.epsilon_schedule[rung - 1]

    # -- monitor construction ------------------------------------------------

    def _make_ag2(self, epsilon: float) -> MaxRSMonitor:
        monitor: MaxRSMonitor = AG2Monitor(
            self.rect_width,
            self.rect_height,
            self._window_factory(),
            cell_size=self._cell_size,
            epsilon=epsilon,
        )
        if self.probe_every > 0:
            monitor = MonitorSupervisor(  # type: ignore[assignment]
                monitor,
                probe_every=self.probe_every,
                max_heals=self.max_heals,
                on_heal=self.breaker.note_heal,
            )
        if self._metrics_base is not NULL_METRICS:
            monitor.attach_metrics(self._metrics_base)
        return monitor

    def _ag2_core(self) -> AG2Monitor:
        inner = self._ag2
        if isinstance(inner, MonitorSupervisor):
            inner = inner.monitor
        return inner  # type: ignore[return-value]

    # -- monitor surface -----------------------------------------------------

    @property
    def window(self) -> SlidingWindow:
        """The authoritative window: the sampling rung's, which stays
        warm in every mode (the aG2 window goes stale during sampling
        residency and breaker-open stretches)."""
        return self._sampler.window

    @property
    def result(self) -> MaxRSResult:
        return self._last

    @property
    def stats(self):
        if self._rung == self.sampling_rung:
            return self._sampler.stats
        return self._ag2.stats

    def attach_metrics(self, metrics: Metrics) -> None:
        """Engine attachment point.  The live aG2 gets the scope itself
        (so ``cells_pruned`` etc. land where profiles expect them), the
        sampling rung a ``sampler`` child, the ladder/controller/breaker
        an ``overload`` child."""
        self._metrics_base = metrics
        self._ag2.attach_metrics(metrics)
        self._sampler.attach_metrics(metrics.scope("sampler"))
        self.metrics = metrics.scope("overload")
        self.controller.metrics = self.metrics
        self.breaker.metrics = self.metrics
        self.metrics.set_gauge("ladder_rung", self._rung)

    def checkpoint_target(self) -> MaxRSMonitor:
        """The ladder's persistable view, for :mod:`repro.persist`.

        The ladder itself is not a snapshot kind, but its state *is*
        its authoritative window (the index is derived); a NaiveMonitor
        over that same window captures exactly the configuration +
        window contents a checkpoint needs, and restores cheaply
        (naive ingest is a window push, no sweep).
        """
        return NaiveMonitor(
            self.rect_width, self.rect_height, self._sampler.window
        )

    def check_invariants(self) -> None:
        if self._rung != self.sampling_rung and not self._ag2_stale:
            probe = getattr(self._ag2, "check_invariants", None)
            if probe is not None:
                probe()

    # -- serving -------------------------------------------------------------

    def note_pressure(self, backlog: int) -> None:
        """Upstream pressure signal (the engine reports the queue depth
        left after each drain).  Recovery is deferred while a backlog
        exists: stepping up to a pricier rung mid-drain just re-creates
        the overload that built the backlog, and the rebuild that
        re-entry from sampling costs is wasted.

        A drained queue is also the moment to pay outstanding recovery
        debt: a pending aG2 rebuild runs here, in the slack between
        batches, rather than inside the next timed update.
        """
        self._backlog = max(0, int(backlog))
        if (
            self._backlog == 0
            and self._ag2_stale
            and self._rung != self.sampling_rung
            and self.breaker.state is BreakerState.CLOSED
        ):
            self._rebuild_ag2(self._rung_epsilon(self._rung))

    def ingest(self, objects: Sequence[SpatialObject]) -> None:
        """Bulk-load (priming, backfill) every warm rung."""
        if self._rung != self.sampling_rung and not self._ag2_stale:
            self._ag2.ingest(objects)
        self._sampler.ingest(objects)

    def update(self, objects: Sequence[SpatialObject]) -> MaxRSResult:
        """Push one arrival batch through the current rung.

        The update is timed internally (the same quantity the engine's
        ``update_ms`` histogram observes), the latency sample drives the
        controller and breaker, and the answer carries the producing
        rung's contract.
        """
        self._updates += 1
        if not self.breaker.allow_update():
            return self._serve_stale(objects)
        if self._rung != self.sampling_rung and self._ag2_stale:
            # rebuild before the clock starts: a full-window re-ingest is
            # recovery cost, not steady-state cost, and timing it would
            # hand the controller a spurious panic sample
            self._rebuild_ag2(self._rung_epsilon(self._rung))
        serving_rung = self._rung
        start = time.perf_counter()
        if self._rung == self.sampling_rung:
            result = self._sampler.update(objects)
        else:
            result = self._ag2.update(objects)
            self._sampler.ingest(objects)
        if self.latency_model is not None:
            elapsed_ms = float(self.latency_model(serving_rung, len(objects)))
        else:
            elapsed_ms = (time.perf_counter() - start) * 1000.0
        self._stale_for = 0
        self._last = result
        self.residency[self.mode] += 1
        self._steer(elapsed_ms)
        return result

    def _serve_stale(self, objects: Sequence[SpatialObject]) -> MaxRSResult:
        """Breaker open: keep the cheap window warm, hold the answer."""
        self._sampler.ingest(objects)
        if self._rung != self.sampling_rung:
            self._ag2_stale = True
        self._stale_for += 1
        self.stale_residency += 1
        self._last = replace(self._last, stale_for=self._stale_for)
        return self._last

    def _steer(self, elapsed_ms: float) -> None:
        """Feed one latency sample to breaker + controller, apply moves."""
        over_budget = elapsed_ms > self.controller.budget_ms
        self.breaker.record_update(over_budget)
        if (
            self.breaker.state is BreakerState.OPEN
            and self._rung != self.sampling_rung
        ):
            # open means even probing is rationed — park at the
            # cheapest rung so the eventual probe is the cheap one
            self._transition(self.sampling_rung, "breaker_trip")
            return
        decision = self.controller.observe(elapsed_ms)
        if decision is LadderDecision.PANIC:
            if self._rung != self.sampling_rung:
                self._transition(self.sampling_rung, "panic")
        elif decision is LadderDecision.ESCALATE:
            if self._rung < self.sampling_rung:
                self._transition(self._rung + 1, "deadline_pressure")
        elif decision is LadderDecision.DEESCALATE:
            if self._backlog > 0:
                # headroom is real but the queue is still draining —
                # hold the cheap rung until the backlog is gone (the
                # controller's clear-counter stays primed, so recovery
                # begins on the first clear sample afterwards)
                self.deescalations_deferred += 1
                self.metrics.inc("deescalations_deferred")
            elif self._rung > 0:
                self._transition(self._rung - 1, "headroom")

    # -- transitions ---------------------------------------------------------

    def _transition(self, rung: int, reason: str) -> None:
        from_mode = self.mode
        if rung == self._rung:
            return
        if rung == self.sampling_rung:
            # the sampler's window is warm; the aG2 index stops being
            # maintained from here on
            self._ag2_stale = True
        elif not self._ag2_stale:
            # aG2 → aG2: dialing ε is free (Theorem 1 is per-update)
            self._ag2_core().epsilon = self._rung_epsilon(rung)
        # else: leaving sampling with a stale index — the rebuild is
        # deferred to the next idle moment (note_pressure with an empty
        # queue) or, failing that, the top of the next update
        direction = "degrade" if rung > self._rung else "recover"
        self._rung = rung
        self.controller.note_transition()
        self.transitions.append(
            {
                "update": self._updates,
                "from": from_mode,
                "to": self.mode,
                "reason": reason,
            }
        )
        self.metrics.inc("ladder_transitions")
        self.metrics.inc(f"ladder_{direction}")
        self.metrics.set_gauge("ladder_rung", rung)

    def _rebuild_ag2(self, epsilon: float) -> None:
        """Re-enter an aG2 rung: rebuild the index from the warm window."""
        self._ag2 = self._make_ag2(epsilon)
        survivors = list(self._sampler.window.contents)
        if survivors:
            self._ag2.ingest(survivors)
        self._ag2_stale = False
        self.rebuilds += 1
        self.metrics.inc("ladder_rebuilds")

    # -- reporting -----------------------------------------------------------

    def overload_summary(self) -> Dict[str, object]:
        """Plain-data ladder report for engine reports and the CLI."""
        return {
            "mode": self.mode,
            "rung": self._rung,
            "guarantee": self.guarantee,
            "budget_ms": self.controller.budget_ms,
            "latency_ewma_ms": self.controller.latency_ewma_ms,
            "transitions": [dict(t) for t in self.transitions],
            "residency": dict(self.residency),
            "stale_served": self.stale_residency,
            "breaker_state": self.breaker.state.value,
            "breaker_trips": self.breaker.trips,
            "rebuilds": self.rebuilds,
            "deescalations_deferred": self.deescalations_deferred,
        }
