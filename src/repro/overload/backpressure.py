"""Bounded arrival buffer with shed policies and a conservation ledger.

:class:`BackpressureQueue` sits between a stream source and the
monitors.  Arrivals are *offered* to the queue; the engine *takes*
coalesced batches out of it at whatever pace the monitors sustain.
When arrivals outrun the drain rate the queue fills, and the configured
:class:`ShedPolicy` decides what gives:

* ``BLOCK`` — nothing is dropped; excess offers are *refused* and stay
  upstream (the producer waits).  Queue depth stays bounded, arrival
  latency grows.
* ``SHED_OLDEST`` — the oldest *pending* object is dropped to make
  room.  Freshness-biased: right for monitoring, where a stale object
  is about to expire from the window anyway.
* ``SHED_NEWEST`` — the incoming object is dropped.  Keeps the oldest
  backlog intact (at-most-once admission order preserved).

Every object is accounted for exactly once, mirroring the dead-letter
accounting of :mod:`repro.resilience`:

    ``offered == processed + shed + refused + pending``

which :attr:`BackpressureQueue.ledger_closed` verifies and the overload
soak harness asserts at end of run.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque, Dict, Iterable, Sequence

from repro.core.objects import SpatialObject
from repro.errors import InvalidParameterError
from repro.obs.metrics import NULL_METRICS, Metrics

__all__ = ["BackpressureQueue", "ShedPolicy"]


class ShedPolicy(enum.Enum):
    """What a full queue does with the overflow."""

    BLOCK = "block"
    SHED_OLDEST = "shed_oldest"
    SHED_NEWEST = "shed_newest"

    @classmethod
    def coerce(cls, value: "ShedPolicy | str") -> "ShedPolicy":
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower().replace("-", "_"))
        except ValueError:
            choices = ", ".join(p.value for p in cls)
            raise InvalidParameterError(
                f"unknown shed policy {value!r}; choose one of {choices}"
            ) from None


class BackpressureQueue:
    """Bounded FIFO arrival buffer with coalescing batch drains.

    Args:
        capacity: Maximum number of buffered objects.
        policy: What happens to overflow (see :class:`ShedPolicy`).
        max_batch: Coalescing limit — :meth:`take_batch` never returns
            more than this many objects, so a deep backlog drains as a
            few large (but bounded) batches instead of one giant one.
        metrics: Optional scope; emits the ``queue_depth`` gauge and
            ``shed_objects`` / ``refused_objects`` / ``coalesced_batches``
            counters.
    """

    def __init__(
        self,
        capacity: int,
        policy: ShedPolicy | str = ShedPolicy.SHED_OLDEST,
        max_batch: int | None = None,
        metrics: Metrics = NULL_METRICS,
    ) -> None:
        if capacity <= 0:
            raise InvalidParameterError(
                f"queue capacity must be positive, got {capacity}"
            )
        if max_batch is not None and max_batch <= 0:
            raise InvalidParameterError(
                f"max_batch must be positive, got {max_batch}"
            )
        self.capacity = int(capacity)
        self.policy = ShedPolicy.coerce(policy)
        self.max_batch = int(max_batch) if max_batch is not None else None
        self.metrics = metrics
        self._items: Deque[SpatialObject] = deque()
        # conservation ledger
        self.offered = 0
        self.processed = 0
        self.shed_oldest = 0
        self.shed_newest = 0
        self.refused = 0
        self.spilled = 0  # pending objects lost to a crash (spill())
        self.high_water = 0  # deepest the queue ever got

    # -- state ---------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Objects buffered and not yet taken."""
        return len(self._items)

    @property
    def shed(self) -> int:
        """Objects dropped by either shedding policy."""
        return self.shed_oldest + self.shed_newest

    @property
    def ledger(self) -> Dict[str, int]:
        """The conservation ledger as plain data."""
        return {
            "offered": self.offered,
            "processed": self.processed,
            "shed_oldest": self.shed_oldest,
            "shed_newest": self.shed_newest,
            "refused": self.refused,
            "spilled": self.spilled,
            "pending": self.pending,
            "high_water": self.high_water,
        }

    @property
    def ledger_closed(self) -> bool:
        """True iff no object is unaccounted for."""
        return self.offered == (
            self.processed
            + self.shed
            + self.refused
            + self.spilled
            + self.pending
        )

    # -- producer side -------------------------------------------------------

    def offer(self, obj: SpatialObject) -> bool:
        """Offer one object; return False iff it was refused (``BLOCK``).

        Under the shedding policies the offer always succeeds — either
        the object enters the queue or a shed makes room / absorbs it —
        and the shed is counted in the ledger.
        """
        self.offered += 1
        if len(self._items) >= self.capacity:
            if self.policy is ShedPolicy.BLOCK:
                self.refused += 1
                self.metrics.inc("refused_objects")
                return False
            if self.policy is ShedPolicy.SHED_OLDEST:
                self._items.popleft()
                self.shed_oldest += 1
                self.metrics.inc("shed_objects")
            else:  # SHED_NEWEST: the incoming object is the casualty
                self.shed_newest += 1
                self.metrics.inc("shed_objects")
                self.metrics.set_gauge("queue_depth", len(self._items))
                return True
        self._items.append(obj)
        if len(self._items) > self.high_water:
            self.high_water = len(self._items)
        self.metrics.set_gauge("queue_depth", len(self._items))
        return True

    def offer_all(
        self, objects: Iterable[SpatialObject]
    ) -> list[SpatialObject]:
        """Offer many objects; return the ones *refused* (``BLOCK`` only).

        The caller owns refused objects — under BLOCK they never entered
        the queue and should be re-offered once depth recedes.
        """
        back: list[SpatialObject] = []
        for obj in objects:
            if not self.offer(obj):
                back.append(obj)
        return back

    # -- consumer side -------------------------------------------------------

    def take_batch(self, max_size: int | None = None) -> list[SpatialObject]:
        """Drain up to ``max_size`` (default: the queue's ``max_batch``)
        objects as one coalesced arrival batch, oldest first."""
        limit = max_size if max_size is not None else self.max_batch
        if limit is not None and limit <= 0:
            raise InvalidParameterError(
                f"batch limit must be positive, got {limit}"
            )
        items = self._items
        if limit is None or limit >= len(items):
            batch = list(items)
            items.clear()
        else:
            batch = [items.popleft() for _ in range(limit)]
        self.processed += len(batch)
        if len(batch) > 0:
            self.metrics.inc("coalesced_batches")
            self.metrics.inc("processed_objects", len(batch))
        self.metrics.set_gauge("queue_depth", len(items))
        return batch

    def spill(self, wal=None) -> int:
        """Drop everything pending, keeping the ledger closed.

        Models a crash of the consumer tier taking its in-flight buffer
        with it: the lost objects move from ``pending`` to ``spilled``
        — an explicit ledger bucket, not a silent leak — and the count
        is returned.  The queue itself (counters, capacity, policy)
        keeps serving.

        When a :class:`~repro.durability.wal.WriteAheadLog` is passed,
        the buffer is journalled (a ``spill`` record at the WAL's
        current batch index, force-synced) before being dropped — the
        crash loses nothing, and recovery re-queues the spilled objects
        via :meth:`restore_spilled`.  An *empty* spill is journalled
        too: the record marks which crash is newest, so recovery never
        restores a stale buffer from an earlier incident.
        """
        lost = len(self._items)
        if wal is not None:
            wal.log_spill(list(self._items), index=wal.last_index)
        if lost:
            self._items.clear()
            self.spilled += lost
            self.metrics.inc("spilled_objects", lost)
            self.metrics.set_gauge("queue_depth", 0)
        return lost

    def restore_spilled(self, objects: Sequence[SpatialObject]) -> int:
        """Re-queue objects recovered from a journalled spill.

        The inverse bookkeeping of :meth:`spill`: the objects move from
        ``spilled`` back to ``pending`` without touching ``offered`` —
        they were already offered (and admitted) once, so re-offering
        them would double-count and break :attr:`ledger_closed`.  Only
        as many objects as the ``spilled`` bucket holds can be
        restored; more means the WAL and this queue disagree about
        history, which is a caller bug.
        """
        count = len(objects)
        if count == 0:
            return 0
        if count > self.spilled:
            raise InvalidParameterError(
                f"cannot restore {count} spilled objects; ledger only "
                f"records {self.spilled} as spilled"
            )
        self._items.extend(objects)
        self.spilled -= count
        self.metrics.inc("restored_spilled_objects", count)
        self.metrics.set_gauge("queue_depth", len(self._items))
        if len(self._items) > self.high_water:
            self.high_water = len(self._items)
        return count

    def drain(self, batch_size: int) -> Iterable[Sequence[SpatialObject]]:
        """Yield coalesced batches until the queue is empty."""
        while self._items:
            yield self.take_batch(batch_size)
