"""Overload protection: backpressure, load shedding, graceful degradation.

PR 2 (``repro.resilience``) hardened the pipeline against *dirty*
streams; this package protects it against *fast* ones — the regime of
the paper's generation-rate experiment (Fig. 8), where arrival rate
outruns the monitor's update latency and queues diverge.  Four pieces
compose into an overload story with explicit, conserved accounting:

* :class:`~repro.overload.backpressure.BackpressureQueue` — a bounded
  arrival buffer at the engine boundary with batch coalescing and an
  explicit shed policy (``BLOCK`` / ``SHED_OLDEST`` / ``SHED_NEWEST``);
  every object is tracked in a conservation ledger
  (``offered == processed + shed + refused + pending``).
* :class:`~repro.overload.controller.DeadlineController` — hysteresis
  controller over the per-update latency EWMA (the same measurement the
  ``update_ms`` histogram records) against a user latency budget.
* :class:`~repro.overload.controller.AdaptiveMonitor` — the
  ε-guaranteed degradation ladder the controller walks: exact
  ``AG2Monitor`` → approximate monitoring with escalating ε →
  ``SamplingMonitor`` as last resort, and back down when headroom
  returns.  Every answer carries its current guarantee in the result.
* :class:`~repro.overload.breaker.CircuitBreaker` — closed/open/half-
  open protection around a monitor; while open the last known-good
  answer is served with a staleness tick.

:func:`~repro.overload.harness.run_overload` is the seeded soak harness
behind the ``maxrs-stream overload`` CLI subcommand and the CI
``overload-smoke`` job.  See ``docs/OVERLOAD.md``.
"""

from repro.overload.backpressure import BackpressureQueue, ShedPolicy
from repro.overload.breaker import BreakerState, CircuitBreaker
from repro.overload.controller import (
    AdaptiveMonitor,
    DeadlineController,
    LadderDecision,
)
from repro.overload.harness import LoadGenerator, OverloadReport, run_overload

__all__ = [
    "AdaptiveMonitor",
    "BackpressureQueue",
    "BreakerState",
    "CircuitBreaker",
    "DeadlineController",
    "LadderDecision",
    "LoadGenerator",
    "OverloadReport",
    "ShedPolicy",
    "run_overload",
]
