"""Fault injectors the chaos/overload harnesses lack.

Three families:

* :class:`ClockSkewSource` — clock-skew / watermark-regression bursts:
  periodically rewrites a run of timestamps *backwards*, as a producer
  with a skewed clock would, forcing the reorder buffer to absorb (or
  late-drop) the regressed records while its watermark stays monotone.
* :func:`corrupt_checkpoint` — damages a checkpoint file on disk the
  two ways the recovery path must survive: a *torn* write (truncated
  bytes, caught by the JSON layer) and a *bit flip* (payload altered,
  envelope still valid JSON — only the CRC32 content checksum can
  catch it).
* :func:`corrupt_wal` + :class:`NonReplayableSource` — the durability
  campaign's tools: damage a write-ahead log the ways a crash or
  failing media would (a tail torn mid-record, a kill mid-append, a
  bit flip under a now-stale CRC), and wrap a stream so any attempt to
  re-read it during recovery is counted — and a re-*iteration* refused
  outright — which is how the ``wal_recovery`` scenario proves its
  recovery path performed zero source reads.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Iterable, Iterator

from repro.core.objects import SpatialObject
from repro.errors import InvalidParameterError, ReproError

__all__ = [
    "ClockSkewSource",
    "NonReplayableSource",
    "corrupt_checkpoint",
    "corrupt_wal",
    "CORRUPTION_MODES",
    "WAL_CORRUPTION_MODES",
]

CORRUPTION_MODES = ("torn", "bitflip")
WAL_CORRUPTION_MODES = ("torn_tail", "partial_append", "bitflip")


class ClockSkewSource:
    """Wrap a record stream, periodically regressing timestamps.

    Every ``period`` records, the next ``burst`` valid objects are
    re-stamped ``skew`` time units into the past.  Non-``SpatialObject``
    payloads (e.g. records already corrupted by an upstream
    :class:`~repro.resilience.chaos.FaultInjectingSource`) pass through
    untouched but still advance the position counter, so the skew
    schedule is deterministic for a fixed upstream sequence.

    Args:
        source: Upstream records (objects or raw payloads).
        skew: How far back (in timestamp units) skewed stamps regress.
        period: Distance between burst starts, in records.
        burst: Number of consecutive records skewed per burst.
    """

    def __init__(
        self,
        source: Iterable[object],
        *,
        skew: float,
        period: int,
        burst: int = 1,
    ) -> None:
        if skew <= 0:
            raise InvalidParameterError(f"skew must be positive, got {skew}")
        if period <= 0:
            raise InvalidParameterError(
                f"period must be positive, got {period}"
            )
        if not 0 < burst <= period:
            raise InvalidParameterError(
                f"need 0 < burst <= period, got {burst} / {period}"
            )
        self._source = source
        self.skew = float(skew)
        self.period = int(period)
        self.burst = int(burst)
        self.skewed = 0
        self._position = 0

    def __iter__(self) -> Iterator[object]:
        for record in self._source:
            in_burst = self._position % self.period < self.burst
            self._position += 1
            if in_burst and isinstance(record, SpatialObject):
                self.skewed += 1
                yield dataclasses.replace(
                    record, timestamp=record.timestamp - self.skew
                )
            else:
                yield record


def corrupt_checkpoint(path: str | Path, mode: str) -> None:
    """Damage a checkpoint file in place (soak/testing hook).

    * ``"torn"`` — truncate the file to ~60% of its bytes, simulating
      a write torn by power loss on a filesystem without atomic
      rename (or post-write media damage).  The JSON no longer parses,
      so even checksum-less loading detects it.
    * ``"bitflip"`` — silently perturb the payload (the *newest*
      object's weight — the oldest would be evicted during tail replay
      before any check could see it — or the batch index when the
      window was empty) without touching the stored ``crc32``.  The
      file still parses and restores; only checksum verification can
      tell it is wrong.
    """
    file = Path(path)
    if not file.exists():
        raise InvalidParameterError(f"no checkpoint to corrupt at {file}")
    if mode == "torn":
        data = file.read_bytes()
        file.write_bytes(data[: max(1, (len(data) * 3) // 5)])
        return
    if mode == "bitflip":
        document = json.loads(file.read_text())
        objects = document.get("state", {}).get("objects", [])
        if objects:
            objects[-1]["weight"] = float(objects[-1]["weight"]) + 1.0
        else:
            document["batch_index"] = int(document.get("batch_index", 0)) + 1
        file.write_text(json.dumps(document))
        return
    raise InvalidParameterError(
        f"unknown corruption mode {mode!r}; choose from "
        f"{', '.join(CORRUPTION_MODES)}"
    )


def corrupt_wal(directory: str | Path, mode: str) -> None:
    """Damage a write-ahead log on disk (soak/testing hook).

    * ``"torn_tail"`` — truncate the newest segment mid-way through its
      final frame: post-crash media damage of the tail.  The final
      record at a harness crash is the queue's spill record, so the
      injury recovery must absorb is *losing the spill* — the spilled
      objects stay in the ledger's ``spilled`` bucket instead of being
      restored, exactly the pre-WAL behaviour.
    * ``"partial_append"`` — append the first half of a plausible frame
      to the newest segment: the appender was killed mid-``write``.
      Under append-before-apply the torn record was never applied, so
      recovery truncates it away losing nothing.
    * ``"bitflip"`` — flip one payload byte of the *first* record of the
      *oldest* segment without touching its CRC (bit-rot with a stale
      checksum).  That record's batch is covered by any later
      checkpoint, so recovery must skip it and still replay an exact
      tail.

    All three target the log *between* incarnations — corrupt after the
    old ``WriteAheadLog`` is closed and before the recovery one opens.
    """
    from repro.durability.record import MAGIC
    from repro.durability.segment import list_segments

    segments = list_segments(Path(directory))
    if not segments:
        raise InvalidParameterError(f"no WAL segments under {directory}")
    if mode == "torn_tail":
        # the newest segment can be an empty fresh rotation — tear the
        # newest one that actually holds bytes
        candidates = [p for _seq, p in segments if p.stat().st_size > 0]
        if not candidates:
            raise InvalidParameterError(
                f"no non-empty WAL segment under {directory} to tear"
            )
        path = candidates[-1]
        data = path.read_bytes()
        # chop into the last frame: enough to lose its CRC'd payload
        # tail but keep earlier frames intact
        path.write_bytes(data[: max(1, len(data) - 7)])
        return
    if mode == "partial_append":
        path = segments[-1][1]
        with path.open("ab") as fh:
            fh.write(MAGIC + b"\x00\x01\x02\x03\x04")
        return
    if mode == "bitflip":
        path = segments[0][1]
        data = bytearray(path.read_bytes())
        # frame layout: 2B magic + 16B header, payload follows — flip a
        # byte safely inside the first record's payload
        target = len(MAGIC) + 16 + 4
        if target >= len(data):
            raise InvalidParameterError(
                f"segment {path} too small to bit-flip"
            )
        data[target] ^= 0x20
        path.write_bytes(bytes(data))
        return
    raise InvalidParameterError(
        f"unknown WAL corruption mode {mode!r}; choose from "
        f"{', '.join(WAL_CORRUPTION_MODES)}"
    )


class NonReplayableSource:
    """A stream that can be consumed exactly once, with read accounting.

    Models the paper's live-stream setting: an arrival is gone the
    moment it is consumed.  Iterating a second time raises
    :class:`~repro.errors.ReproError`, and every object handed out
    increments :attr:`reads` — so a recovery path that touches the
    source at all is caught either by the counter (same iterator) or
    by the refusal (fresh iteration), never silently forgiven.
    """

    def __init__(self, source: Iterable[object]) -> None:
        self._iterator = iter(source)
        self.reads = 0
        self._consumed = False

    def __iter__(self) -> Iterator[object]:
        if self._consumed:
            raise ReproError(
                "source is not replayable: it has already been iterated "
                "once and its records are gone"
            )
        self._consumed = True
        return self._generate()

    def _generate(self) -> Iterator[object]:
        for record in self._iterator:
            self.reads += 1
            yield record
