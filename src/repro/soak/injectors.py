"""Fault injectors the chaos/overload harnesses lack.

Two families:

* :class:`ClockSkewSource` — clock-skew / watermark-regression bursts:
  periodically rewrites a run of timestamps *backwards*, as a producer
  with a skewed clock would, forcing the reorder buffer to absorb (or
  late-drop) the regressed records while its watermark stays monotone.
* :func:`corrupt_checkpoint` — damages a checkpoint file on disk the
  two ways the recovery path must survive: a *torn* write (truncated
  bytes, caught by the JSON layer) and a *bit flip* (payload altered,
  envelope still valid JSON — only the CRC32 content checksum can
  catch it).
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Iterable, Iterator

from repro.core.objects import SpatialObject
from repro.errors import InvalidParameterError

__all__ = ["ClockSkewSource", "corrupt_checkpoint", "CORRUPTION_MODES"]

CORRUPTION_MODES = ("torn", "bitflip")


class ClockSkewSource:
    """Wrap a record stream, periodically regressing timestamps.

    Every ``period`` records, the next ``burst`` valid objects are
    re-stamped ``skew`` time units into the past.  Non-``SpatialObject``
    payloads (e.g. records already corrupted by an upstream
    :class:`~repro.resilience.chaos.FaultInjectingSource`) pass through
    untouched but still advance the position counter, so the skew
    schedule is deterministic for a fixed upstream sequence.

    Args:
        source: Upstream records (objects or raw payloads).
        skew: How far back (in timestamp units) skewed stamps regress.
        period: Distance between burst starts, in records.
        burst: Number of consecutive records skewed per burst.
    """

    def __init__(
        self,
        source: Iterable[object],
        *,
        skew: float,
        period: int,
        burst: int = 1,
    ) -> None:
        if skew <= 0:
            raise InvalidParameterError(f"skew must be positive, got {skew}")
        if period <= 0:
            raise InvalidParameterError(
                f"period must be positive, got {period}"
            )
        if not 0 < burst <= period:
            raise InvalidParameterError(
                f"need 0 < burst <= period, got {burst} / {period}"
            )
        self._source = source
        self.skew = float(skew)
        self.period = int(period)
        self.burst = int(burst)
        self.skewed = 0
        self._position = 0

    def __iter__(self) -> Iterator[object]:
        for record in self._source:
            in_burst = self._position % self.period < self.burst
            self._position += 1
            if in_burst and isinstance(record, SpatialObject):
                self.skewed += 1
                yield dataclasses.replace(
                    record, timestamp=record.timestamp - self.skew
                )
            else:
                yield record


def corrupt_checkpoint(path: str | Path, mode: str) -> None:
    """Damage a checkpoint file in place (soak/testing hook).

    * ``"torn"`` — truncate the file to ~60% of its bytes, simulating
      a write torn by power loss on a filesystem without atomic
      rename (or post-write media damage).  The JSON no longer parses,
      so even checksum-less loading detects it.
    * ``"bitflip"`` — silently perturb the payload (the *newest*
      object's weight — the oldest would be evicted during tail replay
      before any check could see it — or the batch index when the
      window was empty) without touching the stored ``crc32``.  The
      file still parses and restores; only checksum verification can
      tell it is wrong.
    """
    file = Path(path)
    if not file.exists():
        raise InvalidParameterError(f"no checkpoint to corrupt at {file}")
    if mode == "torn":
        data = file.read_bytes()
        file.write_bytes(data[: max(1, (len(data) * 3) // 5)])
        return
    if mode == "bitflip":
        document = json.loads(file.read_text())
        objects = document.get("state", {}).get("objects", [])
        if objects:
            objects[-1]["weight"] = float(objects[-1]["weight"]) + 1.0
        else:
            document["batch_index"] = int(document.get("batch_index", 0)) + 1
        file.write_text(json.dumps(document))
        return
    raise InvalidParameterError(
        f"unknown corruption mode {mode!r}; choose from "
        f"{', '.join(CORRUPTION_MODES)}"
    )
