"""Declarative soak scenarios: phased fault campaigns as plain data.

A :class:`Scenario` is a seeded, fully deterministic schedule: global
stack configuration (dataset, window, rates, checkpoint cadence,
degradation-ladder shape) plus an ordered tuple of :class:`Phase`
entries.  Each phase binds a load shape (the
:class:`~repro.overload.harness.LoadGenerator` parameters), a fault mix
(the :class:`~repro.resilience.chaos.FaultInjectingSource`
probabilities), clock-skew bursts, an optional mid-phase crash (with
optional checkpoint corruption the recovery must survive), worker-kill
schedules, and whether exact re-convergence is asserted at phase end.

The committed suite lives in :data:`SCENARIOS`; ``maxrs-stream soak
--list`` renders it.  Scenarios are cheap values — tests freely build
custom ones with ``dataclasses.replace``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.errors import InvalidParameterError
from repro.soak.injectors import CORRUPTION_MODES, WAL_CORRUPTION_MODES

__all__ = [
    "Phase",
    "Scenario",
    "SCENARIOS",
    "get_scenario",
    "list_scenarios",
]


@dataclass(frozen=True)
class Phase:
    """One stage of a soak campaign.

    Args:
        name: Unique label within the scenario (used in reports).
        kind: Informational classification (``clean`` / ``dirty`` /
            ``late_burst`` / ``overload`` / ``crash`` / ``recovery`` /
            ``worker_churn``) — reports group by it; the mechanics are
            entirely determined by the other fields.
        ticks: Arrival ticks in this phase.
        rate_factor: Multiplier on the scenario's base rate.
        pattern / burst_factor / period / burst_ticks / jitter: Load
            shape, as in :class:`~repro.overload.harness.LoadGenerator`.
            ``period``/``burst_ticks`` default to the phase length
            (a flat phase when ``burst_factor`` is 1).
        p_drop / p_duplicate / p_corrupt / p_delay / max_delay: Fault
            mix, as in :class:`~repro.resilience.chaos.FaultInjectingSource`.
        skew_every / skew_burst / skew_amount: Clock-skew bursts —
            every ``skew_every`` records, ``skew_burst`` consecutive
            timestamps regress by ``skew_amount`` (0 disables).
        crash_at: Tick (within this phase) at which the compute tier is
            torn down and recovered from the latest checkpoint before
            the tick's arrivals are processed.
        corrupt: Damage the latest checkpoint file (``torn`` /
            ``bitflip``) right before that recovery — the fallback path
            must skip to the previous rotation.
        wal_corrupt: WAL damage modes (``torn_tail`` /
            ``partial_append`` / ``bitflip``, see
            :func:`~repro.soak.injectors.corrupt_wal`) applied to the
            log between the crash and the recovery — replay must
            truncate / skip around them and still re-converge exactly
            (needs ``Scenario.wal`` and a ``crash_at``).
        enospc_at: Tick at which a one-shot ``ENOSPC`` fault is armed
            on the WAL append path; the engine's inline recovery
            (checkpoint, compact, retry) must absorb it without losing
            a batch (needs ``Scenario.wal``).
        worker_kills: ``(tick, shard)`` pairs: kill that shard's worker
            process at that tick (needs ``Scenario.workers > 0``).
        verify_convergence: Assert exact re-convergence (window contents
            and answer against the exact companion) at phase end.
    """

    name: str
    kind: str = "clean"
    ticks: int = 10
    rate_factor: float = 1.0
    pattern: str = "square"
    burst_factor: float = 1.0
    period: int | None = None
    burst_ticks: int | None = None
    jitter: float = 0.1
    p_drop: float = 0.0
    p_duplicate: float = 0.0
    p_corrupt: float = 0.0
    p_delay: float = 0.0
    max_delay: int = 3
    skew_every: int = 0
    skew_burst: int = 1
    skew_amount: float = 0.0
    crash_at: int | None = None
    corrupt: str | None = None
    wal_corrupt: Tuple[str, ...] = ()
    enospc_at: int | None = None
    worker_kills: Tuple[Tuple[int, int], ...] = ()
    verify_convergence: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise InvalidParameterError("phase name must be non-empty")
        if self.ticks <= 0:
            raise InvalidParameterError(
                f"phase {self.name!r}: ticks must be positive, got "
                f"{self.ticks}"
            )
        if self.rate_factor <= 0:
            raise InvalidParameterError(
                f"phase {self.name!r}: rate_factor must be positive"
            )
        for label, p in (
            ("p_drop", self.p_drop),
            ("p_duplicate", self.p_duplicate),
            ("p_corrupt", self.p_corrupt),
            ("p_delay", self.p_delay),
        ):
            if not 0.0 <= p < 1.0:
                raise InvalidParameterError(
                    f"phase {self.name!r}: {label} must be in [0, 1), got {p}"
                )
        if self.skew_every < 0 or (self.skew_every and self.skew_amount <= 0):
            raise InvalidParameterError(
                f"phase {self.name!r}: skew needs skew_every > 0 and "
                "skew_amount > 0"
            )
        if self.crash_at is not None and not 0 <= self.crash_at < self.ticks:
            raise InvalidParameterError(
                f"phase {self.name!r}: crash_at {self.crash_at} outside "
                f"[0, {self.ticks})"
            )
        if self.corrupt is not None:
            if self.crash_at is None:
                raise InvalidParameterError(
                    f"phase {self.name!r}: corrupt={self.corrupt!r} needs "
                    "a crash_at to recover from"
                )
            if self.corrupt not in CORRUPTION_MODES:
                raise InvalidParameterError(
                    f"phase {self.name!r}: unknown corruption mode "
                    f"{self.corrupt!r}; choose from "
                    f"{', '.join(CORRUPTION_MODES)}"
                )
        if self.wal_corrupt:
            if self.crash_at is None:
                raise InvalidParameterError(
                    f"phase {self.name!r}: wal_corrupt needs a crash_at "
                    "to recover from"
                )
            for mode in self.wal_corrupt:
                if mode not in WAL_CORRUPTION_MODES:
                    raise InvalidParameterError(
                        f"phase {self.name!r}: unknown WAL corruption "
                        f"mode {mode!r}; choose from "
                        f"{', '.join(WAL_CORRUPTION_MODES)}"
                    )
        if self.enospc_at is not None and not 0 <= self.enospc_at < self.ticks:
            raise InvalidParameterError(
                f"phase {self.name!r}: enospc_at {self.enospc_at} outside "
                f"[0, {self.ticks})"
            )
        for tick, shard in self.worker_kills:
            if not 0 <= tick < self.ticks or shard < 0:
                raise InvalidParameterError(
                    f"phase {self.name!r}: worker kill ({tick}, {shard}) "
                    "outside the phase"
                )

    @property
    def has_faults(self) -> bool:
        return (
            self.p_drop > 0
            or self.p_duplicate > 0
            or self.p_corrupt > 0
            or self.p_delay > 0
        )


@dataclass(frozen=True)
class Scenario:
    """A complete deterministic soak campaign.

    Global knobs configure the composed stack once; the phases then
    drive it.  ``unit_ms`` / ``budget_factor`` parameterise the
    *modeled* latency fed to the deadline controller
    (``cost = unit_ms × batch × rung_discount``, budget =
    ``unit_ms × rate × budget_factor``), which is what makes ladder
    trajectories — and therefore entire soak reports — bit-identical
    across runs and hosts.
    """

    name: str
    description: str
    phases: Tuple[Phase, ...]
    seed: int = 7
    dataset: str = "synthetic"
    domain: float = 80_000.0
    window: int = 500
    rate: int = 40
    side: float = 1000.0
    max_lateness: float = 8.0
    epsilons: Tuple[float, ...] = (0.2, 0.4)
    sampling_epsilon: float = 0.5
    probe_every: int = 25
    checkpoint_every: int = 10
    checkpoint_keep: int = 2
    stride: int = 5
    capacity_factor: int = 6
    max_batch_factor: int = 6
    shed_policy: str = "shed_oldest"
    unit_ms: float = 0.05
    budget_factor: float = 3.0
    workers: int = 0
    churn_queries: int = 4
    snapshot_every: int = 6
    # durability tier: journal admitted batches to a write-ahead log so
    # crash recovery replays from disk instead of re-reading the source
    wal: bool = False
    wal_fsync: str = "always"
    wal_segment_records: int = 64
    # when False the stream is wrapped in a NonReplayableSource: any
    # recovery-path read is counted and re-iteration refused (needs wal)
    source_replayable: bool = True

    def __post_init__(self) -> None:
        if not self.phases:
            raise InvalidParameterError(
                f"scenario {self.name!r} needs at least one phase"
            )
        names = [p.name for p in self.phases]
        if len(set(names)) != len(names):
            raise InvalidParameterError(
                f"scenario {self.name!r}: phase names must be unique"
            )
        if self.window <= 0 or self.rate <= 0:
            raise InvalidParameterError(
                f"scenario {self.name!r}: window and rate must be positive"
            )
        if self.stride < 0:
            raise InvalidParameterError(
                f"scenario {self.name!r}: stride must be >= 0"
            )
        if self.workers < 0:
            raise InvalidParameterError(
                f"scenario {self.name!r}: workers must be >= 0"
            )
        if self.workers == 0 and any(p.worker_kills for p in self.phases):
            raise InvalidParameterError(
                f"scenario {self.name!r}: worker_kills need workers > 0"
            )
        if not self.wal:
            if not self.source_replayable:
                raise InvalidParameterError(
                    f"scenario {self.name!r}: a non-replayable source "
                    "needs wal=True — there is nowhere else to recover "
                    "from"
                )
            needy = [
                p.name
                for p in self.phases
                if p.wal_corrupt or p.enospc_at is not None
            ]
            if needy:
                raise InvalidParameterError(
                    f"scenario {self.name!r}: phases {needy} use WAL "
                    "faults but wal=False"
                )
        if self.wal_segment_records <= 0:
            raise InvalidParameterError(
                f"scenario {self.name!r}: wal_segment_records must be "
                "positive"
            )

    @property
    def capacity(self) -> int:
        return self.capacity_factor * self.rate

    @property
    def max_batch(self) -> int:
        return self.max_batch_factor * self.rate

    @property
    def budget_ms(self) -> float:
        return self.unit_ms * self.rate * self.budget_factor

    @property
    def total_ticks(self) -> int:
        return sum(p.ticks for p in self.phases)


def _smoke() -> Scenario:
    return Scenario(
        name="smoke",
        description=(
            "Short clean → dirty → late-burst campaign with an exact "
            "re-convergence check at the end; the CI canary."
        ),
        window=400,
        rate=40,
        checkpoint_every=10,
        phases=(
            Phase(name="warm", kind="clean", ticks=15),
            Phase(
                name="dirty",
                kind="dirty",
                ticks=20,
                p_drop=0.02,
                p_duplicate=0.02,
                p_corrupt=0.03,
                p_delay=0.05,
            ),
            Phase(
                name="late_burst",
                kind="late_burst",
                ticks=10,
                p_delay=0.10,
                skew_every=50,
                skew_burst=3,
                skew_amount=20.0,
            ),
            Phase(
                name="settle",
                kind="recovery",
                ticks=15,
                verify_convergence=True,
            ),
        ),
    )


def _dirty_overload() -> Scenario:
    return Scenario(
        name="dirty_overload",
        description=(
            "Dirty data, then an 8x overload spike that forces the "
            "degradation ladder and the shed ledger, then a calm tail "
            "that must recover to exact."
        ),
        window=600,
        rate=40,
        checkpoint_every=12,
        stride=4,
        phases=(
            Phase(name="warm", kind="clean", ticks=10),
            Phase(
                name="dirty",
                kind="dirty",
                ticks=15,
                p_drop=0.02,
                p_duplicate=0.03,
                p_corrupt=0.03,
                p_delay=0.06,
            ),
            Phase(
                name="spike",
                kind="overload",
                ticks=12,
                burst_factor=8.0,
                p_corrupt=0.02,
            ),
            Phase(
                name="calm",
                kind="recovery",
                ticks=35,
                verify_convergence=True,
            ),
        ),
    )


def _crash_recovery() -> Scenario:
    return Scenario(
        name="crash_recovery",
        description=(
            "Three crash-restart cycles: a plain teardown, a bit-flipped "
            "checkpoint (checksum must catch it and fall back), and a "
            "torn checkpoint — each recovery must re-converge exactly."
        ),
        window=500,
        rate=40,
        checkpoint_every=8,
        checkpoint_keep=2,
        # drains smaller than capacity: a burst leaves a cross-tick
        # backlog, so the mid-burst crash has in-flight objects to spill
        max_batch_factor=3,
        phases=(
            Phase(name="warm", kind="clean", ticks=12),
            Phase(
                name="dirty",
                kind="dirty",
                ticks=12,
                p_duplicate=0.02,
                p_corrupt=0.03,
                p_delay=0.05,
            ),
            Phase(
                name="crash_plain",
                kind="crash",
                ticks=10,
                crash_at=0,
                verify_convergence=True,
            ),
            Phase(
                name="dirty_again",
                kind="dirty",
                ticks=10,
                p_corrupt=0.02,
                p_delay=0.04,
            ),
            Phase(
                name="crash_bitflip",
                kind="crash",
                ticks=10,
                crash_at=0,
                corrupt="bitflip",
                verify_convergence=True,
            ),
            Phase(
                name="crash_torn",
                kind="crash",
                ticks=18,
                burst_factor=8.0,
                period=18,
                burst_ticks=4,
                crash_at=2,  # mid-burst: the queue has a backlog to spill
                corrupt="torn",
                verify_convergence=True,
            ),
        ),
    )


def _worker_churn() -> Scenario:
    return Scenario(
        name="worker_churn",
        description=(
            "Parallel query group under repeated worker kills — "
            "including a double kill of the same shard — checked "
            "against an inline twin."
        ),
        window=300,
        rate=30,
        checkpoint_every=10,
        workers=2,
        churn_queries=4,
        snapshot_every=6,
        phases=(
            Phase(name="warm", kind="clean", ticks=8),
            Phase(
                name="churn",
                kind="worker_churn",
                ticks=12,
                worker_kills=((2, 0), (3, 0), (6, 1), (9, 0)),
            ),
            Phase(
                name="settle",
                kind="recovery",
                ticks=8,
                verify_convergence=True,
            ),
        ),
    )


def _wal_recovery() -> Scenario:
    return Scenario(
        name="wal_recovery",
        description=(
            "Crash recovery with a source explicitly marked "
            "non-replayable: every admitted batch is journalled to the "
            "WAL, a mid-burst crash tears the log tail and bit-flips an "
            "old record, an ENOSPC burst hits the append path — and "
            "every recovery must re-converge exactly from checkpoint + "
            "WAL tail with zero reads of the original source."
        ),
        window=500,
        rate=40,
        checkpoint_every=8,
        checkpoint_keep=2,
        # drains smaller than capacity: a burst leaves a cross-tick
        # backlog, so the mid-burst crash has in-flight objects to spill
        max_batch_factor=3,
        wal=True,
        wal_fsync="always",
        wal_segment_records=16,
        source_replayable=False,
        phases=(
            Phase(name="warm", kind="clean", ticks=12),
            Phase(
                name="dirty",
                kind="dirty",
                ticks=12,
                p_duplicate=0.02,
                p_corrupt=0.03,
                p_delay=0.05,
            ),
            Phase(
                name="crash_torn_flip",
                kind="crash",
                ticks=18,
                burst_factor=8.0,
                period=18,
                burst_ticks=4,
                crash_at=2,  # mid-burst: the queue has a backlog to spill
                wal_corrupt=("torn_tail", "bitflip"),
                verify_convergence=True,
            ),
            Phase(
                name="crash_killed_mid_append",
                kind="crash",
                ticks=10,
                # burst from tick 0 so the crash at tick 2 finds a
                # backlog in flight: the spill record survives (only a
                # half-written frame follows it) and must be restored
                burst_factor=6.0,
                period=10,
                burst_ticks=3,
                crash_at=2,
                wal_corrupt=("partial_append",),
                verify_convergence=True,
            ),
            Phase(
                name="enospc",
                kind="dirty",
                ticks=10,
                enospc_at=3,
            ),
            Phase(
                name="settle",
                kind="recovery",
                ticks=10,
                verify_convergence=True,
            ),
        ),
    )


SCENARIOS: Dict[str, Callable[[], Scenario]] = {
    "smoke": _smoke,
    "dirty_overload": _dirty_overload,
    "crash_recovery": _crash_recovery,
    "worker_churn": _worker_churn,
    "wal_recovery": _wal_recovery,
}


def list_scenarios() -> list[Scenario]:
    """The committed suite, registration order."""
    return [factory() for factory in SCENARIOS.values()]


def get_scenario(name: str) -> Scenario:
    factory = SCENARIOS.get(name)
    if factory is None:
        raise InvalidParameterError(
            f"unknown scenario {name!r}; available: "
            f"{', '.join(SCENARIOS)}"
        )
    return factory()
