"""Cross-layer invariant checking for soak campaigns.

The chaos and overload harnesses each verify their own layer's
accounting; :class:`InvariantMonitor` closes the loop across the whole
composed stack, every tick:

* **global conservation** — every record offered to the ingest guard is
  admitted, quarantined, skipped, late-dropped or parked in the reorder
  buffer; every admitted object is processed, shed, spilled (crash),
  pending in the queue or held upstream — nothing vanishes between
  layers;
* **queue ledger closure** — the backpressure queue's own ledger;
* **watermark monotonicity** — the reorder watermark never regresses,
  across batches, phases, crashes and recoveries;
* **epsilon guarantees** — every ``stride``-th applied batch, a
  degraded answer with a deterministic floor is re-checked against a
  fresh exact plane sweep (the exact-companion spot check);
* **exact re-convergence** — after a recovery (and at the end of any
  ``verify_convergence`` phase) the monitor's window must equal the
  reference window object-for-object and its answer must equal the
  exact sweep.

Violations are collected (not raised): a soak keeps driving the stack
after a breach so one bug cannot mask later ones; the report's exit
code carries the verdict.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from repro.overload.backpressure import BackpressureQueue
from repro.overload.harness import exact_weight_over
from repro.resilience.guard import IngestGuard

if TYPE_CHECKING:
    from repro.core.spaces import MaxRSResult
    from repro.overload.controller import AdaptiveMonitor
    from repro.window.base import SlidingWindow

__all__ = ["InvariantMonitor"]

_WEIGHT_TOL = 1e-6


class InvariantMonitor:
    """Accumulates cross-layer invariant checks and their violations."""

    def __init__(
        self,
        *,
        guard: IngestGuard,
        queue: BackpressureQueue,
        side: float,
        stride: int = 0,
        weight_tol: float = _WEIGHT_TOL,
    ) -> None:
        self.guard = guard
        self.queue = queue
        self.side = float(side)
        self.stride = int(stride)
        self.weight_tol = float(weight_tol)
        self.violations: List[Dict[str, object]] = []
        self.ledger_checks = 0
        self.watermark_checks = 0
        self.guarantee_checks = 0
        self.convergence_checks = 0
        self._applied = 0
        self._last_watermark = float("-inf")

    @property
    def ok(self) -> bool:
        return not self.violations

    def _violate(self, phase: str, kind: str, detail: str) -> None:
        self.violations.append(
            {"phase": phase, "kind": kind, "detail": detail}
        )

    # -- per-tick checks ---------------------------------------------------

    def check_tick(self, phase: str, holdover: int) -> None:
        """Conservation + watermark, checked on every arrival tick."""
        self.ledger_checks += 1
        guard, queue = self.guard, self.queue
        ingest_total = (
            guard.admitted
            + guard.quarantined
            + guard.skipped
            + guard.late_dropped
            + guard.reorder.pending
        )
        if guard.offered != ingest_total:
            self._violate(
                phase,
                "ingest_conservation",
                f"offered {guard.offered} != admitted {guard.admitted} + "
                f"quarantined {guard.quarantined} + skipped {guard.skipped} "
                f"+ late_dropped {guard.late_dropped} + reorder_pending "
                f"{guard.reorder.pending}",
            )
        downstream = (
            queue.processed
            + queue.shed
            + queue.spilled
            + queue.pending
            + holdover
        )
        if guard.admitted != downstream:
            self._violate(
                phase,
                "global_conservation",
                f"admitted {guard.admitted} != processed {queue.processed} "
                f"+ shed {queue.shed} + spilled {queue.spilled} + pending "
                f"{queue.pending} + holdover {holdover}",
            )
        if not queue.ledger_closed:
            self._violate(
                phase, "queue_ledger", f"queue ledger open: {queue.ledger}"
            )
        self.watermark_checks += 1
        watermark = guard.reorder.watermark
        if watermark < self._last_watermark:
            self._violate(
                phase,
                "watermark_regression",
                f"watermark regressed {self._last_watermark} -> {watermark}",
            )
        self._last_watermark = max(self._last_watermark, watermark)

    # -- per-batch checks --------------------------------------------------

    def note_batch(self, phase: str, monitor: "AdaptiveMonitor") -> None:
        """Count one applied batch; spot-check guarantees at the stride."""
        self._applied += 1
        if self.stride and self._applied % self.stride == 0:
            self._check_guarantee(phase, monitor)

    def _check_guarantee(self, phase: str, monitor: "AdaptiveMonitor") -> None:
        result: "MaxRSResult" = monitor.result
        # stale answers describe an older window; sampling answers carry
        # no deterministic floor — neither has a claim to check
        if result.stale_for > 0 or result.guarantee <= 0.0:
            return
        self.guarantee_checks += 1
        exact = exact_weight_over(list(monitor.window.contents), self.side)
        floor = result.guarantee * exact - self.weight_tol * max(
            1.0, abs(exact)
        )
        if result.best_weight < floor:
            self._violate(
                phase,
                "guarantee_floor",
                f"answer {result.best_weight:.6f} below "
                f"{result.guarantee:g} * exact {exact:.6f} "
                f"({result.mode})",
            )

    # -- convergence -------------------------------------------------------

    def check_convergence(
        self,
        phase: str,
        monitor: "AdaptiveMonitor",
        reference: "SlidingWindow",
        *,
        where: str,
        require_exact_mode: bool = True,
    ) -> None:
        """Window contents (and, in exact mode, the answer) must match
        the reference window fed with every applied batch."""
        self.convergence_checks += 1
        got = [
            (o.oid, o.x, o.y, o.weight, o.timestamp)
            for o in monitor.window.contents
        ]
        want = [
            (o.oid, o.x, o.y, o.weight, o.timestamp)
            for o in reference.contents
        ]
        if got != want:
            first = next(
                (i for i, (g, w) in enumerate(zip(got, want)) if g != w),
                min(len(got), len(want)),
            )
            self._violate(
                phase,
                "convergence_contents",
                f"{where}: window diverged from reference "
                f"({len(got)} vs {len(want)} objects, first difference "
                f"at position {first})",
            )
            return
        if not require_exact_mode:
            return
        if monitor.mode != monitor.EXACT:
            self._violate(
                phase,
                "convergence_mode",
                f"{where}: ladder still at {monitor.mode!r}, not exact",
            )
            return
        exact = exact_weight_over(list(reference.contents), self.side)
        answer = monitor.result.best_weight
        if abs(answer - exact) > self.weight_tol * max(1.0, abs(exact)):
            self._violate(
                phase,
                "convergence_answer",
                f"{where}: exact-mode answer {answer:.6f} != exact "
                f"companion {exact:.6f}",
            )

    def check_group(
        self, phase: str, results: Dict[str, "MaxRSResult"],
        twin_results: Dict[str, "MaxRSResult"],
    ) -> None:
        """Sharded worker answers must equal the inline twin's."""
        self.convergence_checks += 1
        for name, twin in twin_results.items():
            got = results.get(name)
            if got is None:
                self._violate(
                    phase, "group_convergence", f"query {name!r} missing"
                )
                continue
            tol = self.weight_tol * max(1.0, abs(twin.best_weight))
            if abs(got.best_weight - twin.best_weight) > tol:
                self._violate(
                    phase,
                    "group_convergence",
                    f"query {name!r}: sharded {got.best_weight:.6f} != "
                    f"inline {twin.best_weight:.6f}",
                )
