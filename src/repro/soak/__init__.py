"""End-to-end soak subsystem: phased fault campaigns with recovery.

Lazy exports (PEP 562): the chaos and overload harnesses import
:mod:`repro.soak.report` for the shared report protocol, while
:mod:`repro.soak.harness` imports them back — eager re-exports here
would close that cycle at import time.
"""

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.soak.harness import SoakReport, run_soak
    from repro.soak.injectors import (
        CORRUPTION_MODES,
        WAL_CORRUPTION_MODES,
        ClockSkewSource,
        NonReplayableSource,
        corrupt_checkpoint,
        corrupt_wal,
    )
    from repro.soak.invariants import InvariantMonitor
    from repro.soak.report import ReportBase
    from repro.soak.scenario import (
        SCENARIOS,
        Phase,
        Scenario,
        get_scenario,
        list_scenarios,
    )

__all__ = [
    "CORRUPTION_MODES",
    "WAL_CORRUPTION_MODES",
    "ClockSkewSource",
    "InvariantMonitor",
    "NonReplayableSource",
    "Phase",
    "ReportBase",
    "SCENARIOS",
    "Scenario",
    "SoakReport",
    "corrupt_checkpoint",
    "corrupt_wal",
    "get_scenario",
    "list_scenarios",
    "run_soak",
]

_HOMES = {
    "CORRUPTION_MODES": "repro.soak.injectors",
    "WAL_CORRUPTION_MODES": "repro.soak.injectors",
    "ClockSkewSource": "repro.soak.injectors",
    "NonReplayableSource": "repro.soak.injectors",
    "corrupt_checkpoint": "repro.soak.injectors",
    "corrupt_wal": "repro.soak.injectors",
    "InvariantMonitor": "repro.soak.invariants",
    "ReportBase": "repro.soak.report",
    "Phase": "repro.soak.scenario",
    "Scenario": "repro.soak.scenario",
    "SCENARIOS": "repro.soak.scenario",
    "get_scenario": "repro.soak.scenario",
    "list_scenarios": "repro.soak.scenario",
    "SoakReport": "repro.soak.harness",
    "run_soak": "repro.soak.harness",
}


def __getattr__(name: str):
    home = _HOMES.get(name)
    if home is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(home), name)


def __dir__() -> list:
    return sorted(__all__)
