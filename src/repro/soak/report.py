"""Shared report protocol for the soak / chaos / overload harnesses.

Each harness ends with a report object; the CLI renders it as a
``(quantity, value)`` table, serialises it to JSON and gates the exit
code on it.  :class:`ReportBase` fixes that protocol in one place so
all three render and gate identically:

* ``rows()`` — the table, built from the subclass's ``_pairs()``;
* ``to_dict()`` — the JSON document: snake_cased row keys plus the
  subclass's ``_extra()`` payload;
* ``ok`` — the overall verdict (subclass property);
* ``failures()`` — human-readable one-liners for every failed
  verdict, which the CLI prints as ``FAIL: ...`` lines before exiting
  non-zero.
"""

from __future__ import annotations

from typing import Any, List, Tuple

__all__ = ["ReportBase"]


class ReportBase:
    """Mixin giving a harness report the common render/gate surface.

    Subclasses implement ``_pairs()`` (ordered ``(quantity, value)``
    tuples; quantities are space-separated words), the ``ok`` property,
    and ``failures()``; ``_extra()`` optionally adds structured fields
    to the JSON document that have no tabular shape.
    """

    def _pairs(self) -> List[Tuple[str, object]]:
        raise NotImplementedError

    def _extra(self) -> dict[str, Any]:
        return {}

    @property
    def ok(self) -> bool:
        raise NotImplementedError

    def failures(self) -> list[str]:
        """One line per failed verdict; empty iff ``ok``."""
        raise NotImplementedError

    def rows(self) -> list[dict[str, object]]:
        """(quantity, value) rows for the CLI table."""
        return [{"quantity": k, "value": v} for k, v in self._pairs()]

    def to_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {
            k.replace(" ", "_"): v for k, v in self._pairs()
        }
        doc.update(self._extra())
        return doc
