"""End-to-end soak harness: phased fault campaigns over the full stack.

:func:`run_soak` composes every production layer this library ships —

    dataset stream → FaultInjectingSource → ClockSkewSource
        → IngestGuard (+ ReorderBuffer, DeadLetterQueue)
        → BackpressureQueue
        → StreamEngine → AdaptiveMonitor (deadline ladder + breaker)
        → CheckpointManager
    (optionally alongside a ParallelQueryGroup and its inline twin)

— and drives it through a :class:`~repro.soak.scenario.Scenario`'s
phases: clean traffic, dirty data, late/skew bursts, overload spikes,
mid-run compute-tier crashes recovered from (possibly corrupted)
checkpoints, and worker-process kills.  An
:class:`~repro.soak.invariants.InvariantMonitor` closes the loop every
tick: global conservation across all layers, watermark monotonicity,
epsilon-guarantee spot checks against an exact companion, and exact
re-convergence after every recovery.

Everything is deterministic for a fixed seed: arrivals, fault rolls,
skew schedules, crash points, *and the ladder trajectory* — the
deadline controller is fed a modeled latency (``unit_ms × batch ×
rung_discount``) instead of wall-clock, so two runs of the same
scenario produce byte-identical reports.  The ``maxrs-stream soak``
CLI and the CI soak-smoke job are thin wrappers over this function.
"""

from __future__ import annotations

import errno
import itertools
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.core.ag2 import AG2Monitor
from repro.core.objects import SpatialObject
from repro.datasets import make_stream
from repro.durability.recovery import reconcile, scan_wal
from repro.durability.wal import WriteAheadLog
from repro.engine.engine import StreamEngine
from repro.engine.parallel import ParallelQueryGroup
from repro.errors import InvalidParameterError, SnapshotError
from repro.obs.metrics import Metrics
from repro.overload.backpressure import BackpressureQueue
from repro.overload.breaker import CircuitBreaker
from repro.overload.controller import AdaptiveMonitor, DeadlineController
from repro.resilience.chaos import FaultInjectingSource
from repro.resilience.checkpoint import CheckpointManager
from repro.resilience.guard import ErrorPolicy, IngestGuard
from repro.soak.injectors import (
    ClockSkewSource,
    NonReplayableSource,
    corrupt_checkpoint,
    corrupt_wal,
)
from repro.soak.invariants import InvariantMonitor
from repro.soak.report import ReportBase
from repro.soak.scenario import Phase, Scenario, get_scenario
from repro.overload.harness import LoadGenerator
from repro.window import CountWindow

__all__ = ["SoakReport", "run_soak"]

_MONITOR = "ladder"
_MAX_FAILURE_LINES = 20


@dataclass
class SoakReport(ReportBase):
    """Everything one soak campaign observed, plus its verdict.

    Deliberately free of wall-clock quantities and object ids: two runs
    of the same scenario and seed must serialise identically
    (``to_dict() == to_dict()``), which is itself asserted in tests.
    """

    scenario: str
    seed: int
    verify_checksum: bool
    ticks: int
    batches: int
    # ingest accounting
    offered: int
    admitted: int
    quarantined: int
    skipped: int
    late_dropped: int
    late_reordered: int
    reorder_pending: int
    # queue accounting
    processed: int
    shed: int
    refused_offers: int
    spilled: int
    queue_pending: int
    holdover: int
    # injected faults
    drops: int
    duplicates: int
    corrupt_payloads: int
    delayed: int
    skewed: int
    # crash / recovery
    crashes: int
    recoveries: int
    cold_starts: int
    replayed_batches: int
    checkpoints_written: int
    checkpoint_fallbacks: int
    checksum_failures: int
    # ladder trajectory (accumulated across incarnations)
    ladder_transitions: int
    final_mode: str
    breaker_trips: int
    rebuilds: int
    stale_served: int
    # worker churn
    worker_kills: int
    worker_respawns: int
    worker_gave_up: bool
    # invariant coverage
    ledger_checks: int
    watermark_checks: int
    guarantee_checks: int
    convergence_checks: int
    # durability (WAL) campaign — all zero/defaults for WAL-less runs
    wal_enabled: bool = False
    source_replayable: bool = True
    wal_appends: int = 0
    wal_fsyncs: int = 0
    wal_replayed_batches: int = 0
    wal_truncated_tails: int = 0
    wal_skipped_records: int = 0
    wal_segments_compacted: int = 0
    wal_spill_restored: int = 0
    enospc_injected: int = 0
    enospc_recovered: int = 0
    recovery_source_reads: int = 0
    violations: List[Dict[str, object]] = field(default_factory=list)
    phases: List[Dict[str, object]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True iff no cross-layer invariant was breached."""
        return not self.violations

    def failures(self) -> list[str]:
        lines = [
            f"{v['kind']} in phase {v['phase']!r}: {v['detail']}"
            for v in self.violations[:_MAX_FAILURE_LINES]
        ]
        hidden = len(self.violations) - _MAX_FAILURE_LINES
        if hidden > 0:
            lines.append(f"... and {hidden} more violations")
        return lines

    def _pairs(self) -> List[Tuple[str, object]]:
        return [
            ("scenario", self.scenario),
            ("seed", self.seed),
            ("checksum verified", self.verify_checksum),
            ("arrival ticks", self.ticks),
            ("applied batches", self.batches),
            ("records offered", self.offered),
            ("records admitted", self.admitted),
            ("records quarantined", self.quarantined),
            ("records skipped", self.skipped),
            ("late dropped", self.late_dropped),
            ("late reordered", self.late_reordered),
            ("reorder pending", self.reorder_pending),
            ("objects processed", self.processed),
            ("objects shed", self.shed),
            ("refused offers", self.refused_offers),
            ("objects spilled", self.spilled),
            ("queue pending", self.queue_pending),
            ("holdover", self.holdover),
            ("injected drops", self.drops),
            ("injected duplicates", self.duplicates),
            ("injected corrupt", self.corrupt_payloads),
            ("injected delays", self.delayed),
            ("injected skews", self.skewed),
            ("crashes", self.crashes),
            ("recoveries", self.recoveries),
            ("cold starts", self.cold_starts),
            ("replayed batches", self.replayed_batches),
            ("checkpoints written", self.checkpoints_written),
            ("checkpoint fallbacks", self.checkpoint_fallbacks),
            ("checksum failures", self.checksum_failures),
            ("ladder transitions", self.ladder_transitions),
            ("final mode", self.final_mode),
            ("breaker trips", self.breaker_trips),
            ("index rebuilds", self.rebuilds),
            ("stale served", self.stale_served),
            ("worker kills", self.worker_kills),
            ("worker respawns", self.worker_respawns),
            ("worker gave up", self.worker_gave_up),
            ("ledger checks", self.ledger_checks),
            ("watermark checks", self.watermark_checks),
            ("guarantee checks", self.guarantee_checks),
            ("convergence checks", self.convergence_checks),
            ("wal enabled", self.wal_enabled),
            ("source replayable", self.source_replayable),
            ("wal appends", self.wal_appends),
            ("wal fsyncs", self.wal_fsyncs),
            ("wal replayed batches", self.wal_replayed_batches),
            ("wal truncated tails", self.wal_truncated_tails),
            ("wal skipped records", self.wal_skipped_records),
            ("wal segments compacted", self.wal_segments_compacted),
            ("wal spill restored", self.wal_spill_restored),
            ("enospc injected", self.enospc_injected),
            ("enospc recovered", self.enospc_recovered),
            ("recovery source reads", self.recovery_source_reads),
            ("violations", len(self.violations)),
            ("soak passed", self.ok),
        ]

    def _extra(self) -> dict[str, object]:
        return {
            "violation_details": [dict(v) for v in self.violations],
            "phase_breakdown": [dict(p) for p in self.phases],
        }


class _SoakRun:
    """One scenario execution: the composed stack plus its bookkeeping."""

    def __init__(
        self,
        scenario: Scenario,
        seed: int,
        verify_checksum: bool,
        checkpoint_dir: Path,
        wal_dir: Path | None = None,
    ) -> None:
        scn = self.scenario = scenario
        self.seed = seed
        self.verify_checksum = verify_checksum
        self.ckpt_path = checkpoint_dir / f"{scn.name}.ckpt.json"
        self.metrics = Metrics("soak")
        self.ckpt_scope = self.metrics.scope("checkpoint")

        stream = make_stream(scn.dataset, domain=scn.domain, seed=seed)
        self.source: NonReplayableSource | None = None
        if not scn.source_replayable:
            # once wrapped, any source touch during recovery is counted
            # and a re-iteration refused — zero-source-read recovery is
            # asserted, not assumed
            self.source = NonReplayableSource(stream)
            stream = self.source
        self.base = iter(stream)
        self.wal: WriteAheadLog | None = None
        self.wal_dir: Path | None = None
        if scn.wal:
            self.wal_dir = (
                wal_dir
                if wal_dir is not None
                else checkpoint_dir / f"{scn.name}.wal"
            )
            self.wal = WriteAheadLog(
                self.wal_dir,
                fsync=scn.wal_fsync,
                segment_records=scn.wal_segment_records,
            )
        self.guard = IngestGuard(
            policy=ErrorPolicy.QUARANTINE,
            max_lateness=scn.max_lateness,
            dlq_capacity=4096,
        )
        self.queue = BackpressureQueue(
            scn.capacity, policy=scn.shed_policy, max_batch=scn.max_batch
        )
        # rung cost factors for the modeled latency: exact work is the
        # unit, each approximation rung is proportionally cheaper, and
        # sampling is an order of magnitude cheaper — the shape (not
        # the absolute numbers) is what the controller steers on
        discounts = [1.0] + [
            1.0 / (i + 2) for i in range(len(scn.epsilons))
        ] + [0.1]
        unit = scn.unit_ms

        def latency_model(rung: int, batch: int) -> float:
            return unit * batch * discounts[min(rung, len(discounts) - 1)]

        self._latency_model = latency_model
        self.adaptive = self._make_adaptive()
        self.manager = CheckpointManager(
            self.adaptive,
            self.ckpt_path,
            every=scn.checkpoint_every,
            keep=scn.checkpoint_keep,
            metrics=self.ckpt_scope,
        )
        self.engine = StreamEngine(
            {_MONITOR: self.adaptive},
            iter(()),  # externally driven: the engine never pulls
            batch_size=scn.rate,
            metrics=self.metrics,
            checkpoint=self.manager,
            wal=self.wal,
        )
        self.invariants = InvariantMonitor(
            guard=self.guard,
            queue=self.queue,
            side=scn.side,
            stride=scn.stride,
        )
        self.reference = CountWindow(scn.window)
        self.applied: List[List[SpatialObject]] = []
        self.holdover: List[SpatialObject] = []
        self.group: ParallelQueryGroup | None = None
        self.twin: ParallelQueryGroup | None = None
        # accumulated across monitor incarnations (crash replaces the
        # AdaptiveMonitor, which would otherwise reset its counters)
        self.transitions = 0
        self.breaker_trips = 0
        self.rebuilds = 0
        self.stale_served = 0
        self.ticks = 0
        self.crashes = 0
        self.recoveries = 0
        self.cold_starts = 0
        self.replayed = 0
        self.kills = 0
        # WAL counters banked across log incarnations (each crash
        # closes the log; the reopened instance restarts its counters)
        self.wal_appends = 0
        self.wal_fsyncs = 0
        self.wal_truncated = 0
        self.wal_skipped = 0
        self.wal_compacted = 0
        self.wal_replayed = 0
        self.spill_restored = 0
        self.enospc_injected = 0
        self.recovery_source_reads = 0
        self.tallies = {
            "drops": 0,
            "duplicates": 0,
            "corrupted": 0,
            "delayed": 0,
            "skewed": 0,
        }
        self.phase_stats: List[Dict[str, object]] = []

    # -- stack assembly ------------------------------------------------------

    def _make_adaptive(self) -> AdaptiveMonitor:
        scn = self.scenario
        controller = DeadlineController(
            scn.budget_ms,
            alpha=0.5,
            high_fraction=0.85,
            escalate_after=1,
            deescalate_after=2,
            min_residency=3,
            panic_factor=1.6,
        )
        return AdaptiveMonitor(
            scn.side,
            scn.side,
            lambda: CountWindow(scn.window),
            epsilon_schedule=scn.epsilons,
            sampling_epsilon=scn.sampling_epsilon,
            seed=self.seed,
            controller=controller,
            breaker=CircuitBreaker(),
            probe_every=scn.probe_every,
            latency_model=self._latency_model,
        )

    def _prime(self) -> None:
        scn = self.scenario
        prime = self.prime = list(itertools.islice(self.base, scn.window))
        self.adaptive.ingest(prime)
        self.reference.push(prime)
        if self.wal is not None:
            # a prime checkpoint at position 0 makes even the worst
            # recovery (every later checkpoint unreadable) source-free:
            # the fallback ladder bottoms out here, never at the stream
            self.manager.checkpoint()
        if scn.workers > 0:
            self.group = ParallelQueryGroup(
                workers=scn.workers, snapshot_every=scn.snapshot_every
            )
            self.twin = ParallelQueryGroup(workers=0)
            for registry in (self.group, self.twin):
                for i in range(scn.churn_queries):
                    side = scn.side * (0.6 + 0.2 * i)
                    monitor = AG2Monitor(side, side, CountWindow(scn.window))
                    monitor.ingest(prime)
                    registry.add(f"q{i}", monitor)

    def _phase_source(self, phase: Phase, index: int):
        """The (possibly fault-wrapped) record iterator for one phase.

        Wrappers abandoned at phase end may hold delayed records; those
        never reach the ingest guard, so the conservation ledger —
        which starts at the guard — is unaffected, and the loss is
        deterministic per seed.
        """
        feed: object = self.base
        chaos: FaultInjectingSource | None = None
        skew: ClockSkewSource | None = None
        if phase.has_faults:
            chaos = FaultInjectingSource(
                feed,
                seed=self.seed + 101 * (index + 1),
                p_drop=phase.p_drop,
                p_duplicate=phase.p_duplicate,
                p_corrupt=phase.p_corrupt,
                p_delay=phase.p_delay,
                max_delay=phase.max_delay,
            )
            feed = chaos
        if phase.skew_every:
            skew = ClockSkewSource(
                feed,
                skew=phase.skew_amount,
                period=phase.skew_every,
                burst=phase.skew_burst,
            )
            feed = skew
        return iter(feed) if feed is not self.base else self.base, chaos, skew

    # -- the drive loop ------------------------------------------------------

    def _apply_batch(self, phase_name: str, batch: List[SpatialObject]) -> int:
        self.adaptive.note_pressure(self.queue.pending + len(self.holdover))
        self.engine.process(batch)
        self.applied.append(batch)
        self.reference.push(batch)
        if self.group is not None and self.twin is not None:
            self.group.update(batch)
            self.twin.update(batch)
        self.invariants.note_batch(phase_name, self.adaptive)
        return 1

    def _run_phase(self, phase: Phase, index: int) -> None:
        scn = self.scenario
        pull, chaos, skew = self._phase_source(phase, index)
        period = phase.period or phase.ticks
        generator = LoadGenerator(
            max(1, round(scn.rate * phase.rate_factor)),
            pattern=phase.pattern,
            burst_factor=phase.burst_factor,
            period=period,
            burst_ticks=phase.burst_ticks or period,
            jitter=phase.jitter,
            seed=self.seed + 7 * index + 3,
        )
        arrivals = generator.arrivals(phase.ticks)
        offered_before = self.guard.offered
        batches = 0
        for tick, count in enumerate(arrivals):
            if phase.crash_at == tick:
                self._crash_and_recover(phase)
            if phase.enospc_at == tick and self.wal is not None:
                self._arm_enospc()
            for kill_tick, shard in phase.worker_kills:
                if kill_tick == tick and self.group is not None:
                    self.group.kill_worker(shard)
                    self.kills += 1
            raw = list(itertools.islice(pull, count))
            released = self.guard.filter(raw)
            self.holdover = self.queue.offer_all(self.holdover + released)
            batch = self.queue.take_batch()
            if batch:
                batches += self._apply_batch(phase.name, batch)
            self.invariants.check_tick(phase.name, len(self.holdover))
            self.ticks += 1
        if chaos is not None:
            self.tallies["drops"] += chaos.drops
            self.tallies["duplicates"] += chaos.duplicates
            self.tallies["corrupted"] += chaos.corrupted
            self.tallies["delayed"] += chaos.delayed
        if skew is not None:
            self.tallies["skewed"] += skew.skewed
        if self.group is not None and self.twin is not None:
            self.invariants.check_group(
                phase.name, self.group.results(), self.twin.results()
            )
        if phase.verify_convergence:
            self.invariants.check_convergence(
                phase.name,
                self.adaptive,
                self.reference,
                where="phase end",
            )
        self.phase_stats.append(
            {
                "name": phase.name,
                "kind": phase.kind,
                "ticks": phase.ticks,
                "batches": batches,
                "offered": self.guard.offered - offered_before,
            }
        )

    def _arm_enospc(self) -> None:
        """One-shot ENOSPC on the next WAL append.

        The engine's journal path must absorb it inline: checkpoint,
        compact to the new retention floor, retry the append — counted
        by the ``wal_enospc_recoveries`` metric the report exposes.
        """
        wal = self.wal
        assert wal is not None

        def hook(op: str) -> None:
            if op == "append":
                wal.fault_hook = None
                self.enospc_injected += 1
                raise OSError(errno.ENOSPC, "No space left on device")

        wal.fault_hook = hook

    def _crash_and_recover(self, phase: Phase) -> None:
        """Tear the compute tier down mid-run, then restore it from the
        newest readable checkpoint and replay the tail."""
        self.crashes += 1
        self._bank_ladder(self.adaptive)
        self.engine.teardown()
        if self.wal is not None:
            self._recover_from_wal(phase)
            return
        self.queue.spill()  # the consumer's in-flight buffer dies with it
        if phase.corrupt is not None and self.ckpt_path.exists():
            corrupt_checkpoint(self.ckpt_path, phase.corrupt)
        contents: List[SpatialObject] = []
        position = 0
        try:
            snapshot, position = CheckpointManager.recover(
                self.ckpt_path,
                metrics=self.ckpt_scope,
                verify_checksum=self.verify_checksum,
            )
            contents = list(snapshot.window.contents)
            self.recoveries += 1
        except (SnapshotError, InvalidParameterError):
            # nothing readable on disk: cold start — re-run the untimed
            # priming (the stream is deterministic) and replay every
            # applied batch from the beginning
            contents = self.prime
            self.cold_starts += 1
        self.adaptive = self._make_adaptive()
        if contents:
            self.adaptive.ingest(contents)
        for batch in self.applied[position:]:
            self.adaptive.update(batch)
        self.replayed += len(self.applied) - position
        self.manager.resume(self.adaptive, len(self.applied))
        self.engine.restore({_MONITOR: self.adaptive})
        self.invariants.check_convergence(
            phase.name,
            self.adaptive,
            self.reference,
            where="post-recovery replay",
            require_exact_mode=False,
        )

    def _recover_from_wal(self, phase: Phase) -> None:
        """Crash + recovery with the log: checkpoint + WAL-tail replay,
        never a source read.

        The in-flight buffer is journalled before it dies, the log is
        damaged as the phase dictates (between incarnations, as real
        corruption lands), and the rebuilt monitor is fed only from
        disk: checkpointed window contents, then the reconciled batch
        tail, then the spill back into the queue.  A non-replayable
        source makes any deviation from that contract a violation.
        """
        scn = self.scenario
        wal = self.wal
        assert wal is not None and self.wal_dir is not None
        self.queue.spill(wal=wal)  # journalled, then dies with the tier
        self._bank_wal(wal)
        wal.close()
        if phase.corrupt is not None and self.ckpt_path.exists():
            corrupt_checkpoint(self.ckpt_path, phase.corrupt)
        for mode in phase.wal_corrupt:
            corrupt_wal(self.wal_dir, mode)
        reads_before = self.source.reads if self.source is not None else 0
        contents: List[SpatialObject] = []
        position = 0
        try:
            snapshot, position = CheckpointManager.recover(
                self.ckpt_path,
                metrics=self.ckpt_scope,
                verify_checksum=self.verify_checksum,
            )
            contents = list(snapshot.window.contents)
            self.recoveries += 1
        except (SnapshotError, InvalidParameterError):
            # even this bottom rung reads no source: the primed window
            # was retained in memory and the prime checkpoint exists on
            # disk precisely so position 0 is always reachable
            contents = self.prime
            self.cold_starts += 1
        # reopen first (truncating any torn tail on disk), then scan the
        # now-consistent log and reconcile it against the checkpoint
        self.wal = WriteAheadLog(
            self.wal_dir,
            fsync=scn.wal_fsync,
            segment_records=scn.wal_segment_records,
        )
        self.wal.metrics = self.metrics.scope("wal")
        scan = scan_wal(self.wal_dir)
        tail = reconcile(scan, position)
        self.wal_skipped += len(scan.skipped)
        self.adaptive = self._make_adaptive()
        if contents:
            self.adaptive.ingest(contents)
        for _index, objects in tail.batches:
            self.adaptive.update(objects)
        self.replayed += len(tail.batches)
        self.wal_replayed += len(tail.batches)
        self.wal.note_recovered(scan.last_index)
        self.engine.wal = self.wal
        self.spill_restored += self.queue.restore_spilled(tail.spill)
        if scan.last_index != len(self.applied):
            self.invariants._violate(
                phase.name,
                "wal_replay_divergence",
                f"WAL last index {scan.last_index} disagrees with the "
                f"{len(self.applied)} batches actually applied",
            )
        self.manager.resume(self.adaptive, len(self.applied))
        self.engine.restore({_MONITOR: self.adaptive})
        if self.source is not None:
            delta = self.source.reads - reads_before
            if delta:
                self.recovery_source_reads += delta
                self.invariants._violate(
                    phase.name,
                    "source_read_during_recovery",
                    f"recovery consumed {delta} records from a "
                    f"non-replayable source",
                )
        self.invariants.check_convergence(
            phase.name,
            self.adaptive,
            self.reference,
            where="post-recovery WAL replay",
            require_exact_mode=False,
        )

    def _bank_wal(self, wal: WriteAheadLog) -> None:
        self.wal_appends += wal.appends
        self.wal_fsyncs += wal.fsyncs
        self.wal_truncated += wal.torn_tails_truncated
        self.wal_compacted += wal.segments_compacted

    def _bank_ladder(self, monitor: AdaptiveMonitor) -> None:
        self.transitions += len(monitor.transitions)
        self.breaker_trips += monitor.breaker.trips
        self.rebuilds += monitor.rebuilds
        self.stale_served += monitor.stale_residency

    def _drain_tail(self) -> None:
        """Flush the reorder buffer and drain the queue to empty, so the
        final accounting has nothing in flight."""
        self.holdover = self.holdover + self.guard.flush()
        while True:
            self.holdover = self.queue.offer_all(self.holdover)
            batch = self.queue.take_batch()
            if not batch:
                break
            self._apply_batch("drain", batch)
            self.invariants.check_tick("drain", len(self.holdover))

    # -- entry ---------------------------------------------------------------

    def execute(self) -> SoakReport:
        try:
            self._prime()
            for index, phase in enumerate(self.scenario.phases):
                self._run_phase(phase, index)
            self._drain_tail()
            self.invariants.check_tick("final", len(self.holdover))
            self.invariants.check_convergence(
                "final",
                self.adaptive,
                self.reference,
                where="end of campaign",
                require_exact_mode=False,
            )
            self._bank_ladder(self.adaptive)
            if self.wal is not None:
                self._bank_wal(self.wal)
            return self._report()
        finally:
            if self.wal is not None:
                self.wal.close()
            if self.group is not None:
                self.group.close()
            if self.twin is not None:
                self.twin.close()

    def _report(self) -> SoakReport:
        guard, queue, inv = self.guard, self.queue, self.invariants
        counter = self.ckpt_scope.counter
        if self.group is not None:
            stats = self.group.stats()
            respawns = int(stats["respawn_count"])
            gave_up = bool(stats["gave_up"])
        else:
            respawns, gave_up = 0, False
        return SoakReport(
            scenario=self.scenario.name,
            seed=self.seed,
            verify_checksum=self.verify_checksum,
            ticks=self.ticks,
            batches=len(self.applied),
            offered=guard.offered,
            admitted=guard.admitted,
            quarantined=guard.quarantined,
            skipped=guard.skipped,
            late_dropped=guard.late_dropped,
            late_reordered=guard.reorder.reordered,
            reorder_pending=guard.reorder.pending,
            processed=queue.processed,
            shed=queue.shed,
            refused_offers=queue.refused,
            spilled=queue.spilled,
            queue_pending=queue.pending,
            holdover=len(self.holdover),
            drops=self.tallies["drops"],
            duplicates=self.tallies["duplicates"],
            corrupt_payloads=self.tallies["corrupted"],
            delayed=self.tallies["delayed"],
            skewed=self.tallies["skewed"],
            crashes=self.crashes,
            recoveries=self.recoveries,
            cold_starts=self.cold_starts,
            replayed_batches=self.replayed,
            checkpoints_written=self.manager.checkpoints_written,
            checkpoint_fallbacks=int(counter("checkpoint_fallbacks").value),
            checksum_failures=int(
                counter("checkpoint_checksum_failures").value
            ),
            ladder_transitions=self.transitions,
            final_mode=self.adaptive.mode,
            breaker_trips=self.breaker_trips,
            rebuilds=self.rebuilds,
            stale_served=self.stale_served,
            worker_kills=self.kills,
            worker_respawns=respawns,
            worker_gave_up=gave_up,
            ledger_checks=inv.ledger_checks,
            watermark_checks=inv.watermark_checks,
            guarantee_checks=inv.guarantee_checks,
            convergence_checks=inv.convergence_checks,
            wal_enabled=self.wal is not None,
            source_replayable=self.scenario.source_replayable,
            wal_appends=self.wal_appends,
            wal_fsyncs=self.wal_fsyncs,
            wal_replayed_batches=self.wal_replayed,
            wal_truncated_tails=self.wal_truncated,
            wal_skipped_records=self.wal_skipped,
            wal_segments_compacted=self.wal_compacted,
            wal_spill_restored=self.spill_restored,
            enospc_injected=self.enospc_injected,
            enospc_recovered=int(
                self.metrics.scope("wal")
                .counter("wal_enospc_recoveries")
                .value
            ),
            recovery_source_reads=self.recovery_source_reads,
            violations=list(inv.violations),
            phases=self.phase_stats,
        )


def run_soak(
    scenario: Scenario | str,
    *,
    seed: int | None = None,
    verify_checksum: bool = True,
    checkpoint_dir: str | Path | None = None,
    wal_dir: str | Path | None = None,
) -> SoakReport:
    """Run one soak scenario end to end and report on it.

    Args:
        scenario: A :class:`~repro.soak.scenario.Scenario`, or the name
            of a committed one (``smoke``, ``dirty_overload``,
            ``crash_recovery``, ``worker_churn``, ``wal_recovery``).
        seed: Overrides the scenario's seed (same scenario + same seed
            ⇒ identical report).
        verify_checksum: Forwarded to checkpoint recovery.  Disabling it
            makes silent checkpoint corruption (the ``bitflip`` mode)
            restore bad state — which the re-convergence invariant then
            catches, failing the run; with it on, recovery falls back to
            the previous rotation and the run passes.
        checkpoint_dir: Where checkpoint files live; a temporary
            directory (removed afterwards) when omitted.
        wal_dir: Where WAL segments live, for scenarios with the log
            enabled (ignored otherwise); defaults to a
            ``<scenario>.wal`` directory beside the checkpoints.
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    resolved_seed = scenario.seed if seed is None else int(seed)
    log_dir = Path(wal_dir) if wal_dir is not None else None
    if checkpoint_dir is not None:
        workdir = Path(checkpoint_dir)
        workdir.mkdir(parents=True, exist_ok=True)
        return _SoakRun(
            scenario, resolved_seed, verify_checksum, workdir, log_dir
        ).execute()
    with tempfile.TemporaryDirectory(prefix="maxrs-soak-") as tmp:
        return _SoakRun(
            scenario, resolved_seed, verify_checksum, Path(tmp), log_dir
        ).execute()
