"""Evaluation workloads: the paper's four datasets (or stand-ins)."""

from repro.datasets.profiles import DATASET_NAMES
from repro.datasets.registry import (
    available_datasets,
    make_stream,
    register_dataset,
)

__all__ = [
    "DATASET_NAMES",
    "available_datasets",
    "make_stream",
    "register_dataset",
]
