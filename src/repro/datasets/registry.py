"""Dataset registry: name → stream factory.

The four names mirror the paper's §7.1 evaluation datasets; see
``repro.datasets.profiles`` for what each stand-in reproduces and
DESIGN.md §3 for the substitution rationale.  Custom workloads can be
registered at runtime (e.g. a :class:`~repro.streams.replay.CsvStream`
over the real T-Drive corpus).
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.datasets import profiles
from repro.errors import InvalidParameterError
from repro.streams.source import StreamSource

__all__ = ["available_datasets", "make_stream", "register_dataset"]

StreamFactory = Callable[..., StreamSource]

_REGISTRY: Dict[str, StreamFactory] = {
    "synthetic": profiles.make_synthetic,
    "tdrive_like": profiles.make_tdrive_like,
    "geolife_like": profiles.make_geolife_like,
    "roma_like": profiles.make_roma_like,
    "hotspot_static": profiles.make_hotspot_static,
    "hotspot_drift": profiles.make_hotspot_drift,
    "powerlaw_cities": profiles.make_powerlaw_cities,
}


def available_datasets() -> tuple[str, ...]:
    """Registered dataset names, registration order."""
    return tuple(_REGISTRY)


def register_dataset(name: str, factory: StreamFactory) -> None:
    """Register (or replace) a named stream factory.

    The factory must accept ``domain`` and keyword arguments ``seed``
    and ``weight_max``, matching the built-in profiles.
    """
    if not name:
        raise InvalidParameterError("dataset name must be non-empty")
    _REGISTRY[name] = factory


def make_stream(
    name: str,
    domain: float = 140_000.0,
    seed: int = 0,
    weight_max: float = 1000.0,
) -> StreamSource:
    """Instantiate a registered dataset.

    The default domain of 140,000 matches the paper's default overlap
    density at the scaled-down benchmark window (DESIGN.md §3).
    """
    factory = _REGISTRY.get(name)
    if factory is None:
        raise InvalidParameterError(
            f"unknown dataset {name!r}; available: {', '.join(_REGISTRY)}"
        )
    return factory(domain, seed=seed, weight_max=weight_max)
