"""Workload profiles standing in for the paper's evaluation datasets.

Each profile instantiates a generator whose *spatial skew* reproduces
the corresponding corpus' behaviour in the paper's figures (DESIGN.md
§3): uniform Synthetic is the easiest workload, the Geolife stand-in —
a few very tight campus-like hotspots — is by far the hardest, with the
taxi-fleet T-Drive and Roma stand-ins in between (Roma more centrally
concentrated than T-Drive).  Weights are uniform ``[0, 1000]`` as in
§7.1.
"""

from __future__ import annotations

import random

from repro.streams.mixture import (
    DriftingHotspotStream,
    Hotspot,
    HotspotMixtureStream,
)
from repro.streams.source import StreamSource
from repro.streams.synthetic import UniformStream
from repro.streams.trajectory import TrajectoryFleetStream

__all__ = [
    "DATASET_NAMES",
    "make_synthetic",
    "make_tdrive_like",
    "make_geolife_like",
    "make_roma_like",
    "make_hotspot_static",
    "make_hotspot_drift",
    "make_powerlaw_cities",
]

DATASET_NAMES = (
    "synthetic",
    "tdrive_like",
    "geolife_like",
    "roma_like",
    "hotspot_static",
    "hotspot_drift",
    "powerlaw_cities",
)


def make_synthetic(
    domain: float, seed: int = 0, weight_max: float = 1000.0
) -> StreamSource:
    """Uniform i.i.d. objects — the paper's Synthetic dataset."""
    return UniformStream(domain=domain, weight_max=weight_max, seed=seed)


def make_tdrive_like(
    domain: float, seed: int = 0, weight_max: float = 1000.0
) -> StreamSource:
    """Beijing-taxi stand-in: a vehicle fleet roaming a 3×3 grid of
    moderate attractors (arterial intersections), mild skew."""
    centres = [0.2, 0.5, 0.8]
    hotspots = [
        Hotspot(cx=cx, cy=cy, sigma=0.05, share=1.0)
        for cx in centres
        for cy in centres
    ]
    return TrajectoryFleetStream(
        vehicles=250,
        hotspots=hotspots,
        hotspot_bias=0.6,
        speed=0.012,
        domain=domain,
        weight_max=weight_max,
        seed=seed,
    )


def make_geolife_like(
    domain: float, seed: int = 0, weight_max: float = 1000.0
) -> StreamSource:
    """Geolife stand-in: extreme campus-style concentration — a couple
    of very tight hotspots hold most of the stream.  The paper's
    hardest dataset; almost every rectangle in a hotspot overlaps."""
    hotspots = [
        Hotspot(cx=0.42, cy=0.58, sigma=0.025, share=0.45),
        Hotspot(cx=0.46, cy=0.55, sigma=0.030, share=0.30),
        Hotspot(cx=0.70, cy=0.30, sigma=0.040, share=0.15),
    ]
    return HotspotMixtureStream(
        hotspots=hotspots,
        background_share=0.10,
        domain=domain,
        weight_max=weight_max,
        seed=seed,
    )


def make_roma_like(
    domain: float, seed: int = 0, weight_max: float = 1000.0
) -> StreamSource:
    """Rome-taxi stand-in: one dominant historic-centre cluster with a
    ring of secondary destinations; strong but not Geolife-extreme."""
    ring = [
        (0.35, 0.50),
        (0.50, 0.70),
        (0.65, 0.50),
        (0.50, 0.30),
        (0.62, 0.66),
        (0.38, 0.34),
    ]
    hotspots = [Hotspot(cx=0.5, cy=0.5, sigma=0.045, share=0.50)] + [
        Hotspot(cx=cx, cy=cy, sigma=0.030, share=0.06) for cx, cy in ring
    ]
    return HotspotMixtureStream(
        hotspots=hotspots,
        background_share=0.14,
        domain=domain,
        weight_max=weight_max,
        seed=seed,
    )


def make_hotspot_static(
    domain: float, seed: int = 0, weight_max: float = 1000.0
) -> StreamSource:
    """Single stationary Gaussian hotspot holding ~90% of the stream.

    The purest skew stress: a flat grid funnels nearly everything into
    a handful of cells, while an adaptive index can refine exactly the
    hotspot and answer from small leaves.
    """
    return HotspotMixtureStream(
        hotspots=[Hotspot(cx=0.5, cy=0.5, sigma=0.02, share=0.9)],
        background_share=0.10,
        domain=domain,
        weight_max=weight_max,
        seed=seed,
    )


def make_hotspot_drift(
    domain: float, seed: int = 0, weight_max: float = 1000.0
) -> StreamSource:
    """Two tight hotspots orbiting the domain centre.

    Exercises the merge half of an adaptive split/merge policy: the
    refined region must follow the mass, so structure built behind the
    hotspot has to be torn down (or it accumulates as dead resolution).
    """
    return DriftingHotspotStream(
        hotspots=[
            Hotspot(cx=0.35, cy=0.50, sigma=0.02, share=0.5),
            Hotspot(cx=0.65, cy=0.50, sigma=0.02, share=0.4),
        ],
        drift_radius=0.18,
        period=6_000,
        background_share=0.10,
        domain=domain,
        weight_max=weight_max,
        seed=seed,
    )


def make_powerlaw_cities(
    domain: float,
    seed: int = 0,
    weight_max: float = 1000.0,
    cities: int = 12,
    alpha: float = 1.2,
) -> StreamSource:
    """Zipf-distributed city system: many hotspots, power-law shares.

    City ``i`` (1-based by rank) receives share ``i**-alpha`` — a few
    dominant metros plus a long tail of small towns, the classic urban
    population law.  Positions are seeded-random, so different seeds
    give different maps but the same skew profile.  Unlike the
    single-hotspot workloads this one needs *several* refinement depths
    simultaneously: deep leaves in the metros, coarse tiles in the tail.
    """
    placer = random.Random(seed ^ 0x5EED)
    hotspots = [
        Hotspot(
            cx=placer.uniform(0.1, 0.9),
            cy=placer.uniform(0.1, 0.9),
            # bigger cities sprawl a little wider
            sigma=0.015 + 0.02 * (rank + 1) ** -0.5,
            share=(rank + 1) ** -alpha,
        )
        for rank in range(cities)
    ]
    return HotspotMixtureStream(
        hotspots=hotspots,
        background_share=0.05 * sum(h.share for h in hotspots),
        domain=domain,
        weight_max=weight_max,
        seed=seed,
    )
