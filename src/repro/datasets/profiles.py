"""Workload profiles standing in for the paper's evaluation datasets.

Each profile instantiates a generator whose *spatial skew* reproduces
the corresponding corpus' behaviour in the paper's figures (DESIGN.md
§3): uniform Synthetic is the easiest workload, the Geolife stand-in —
a few very tight campus-like hotspots — is by far the hardest, with the
taxi-fleet T-Drive and Roma stand-ins in between (Roma more centrally
concentrated than T-Drive).  Weights are uniform ``[0, 1000]`` as in
§7.1.
"""

from __future__ import annotations

from repro.streams.mixture import Hotspot, HotspotMixtureStream
from repro.streams.source import StreamSource
from repro.streams.synthetic import UniformStream
from repro.streams.trajectory import TrajectoryFleetStream

__all__ = [
    "DATASET_NAMES",
    "make_synthetic",
    "make_tdrive_like",
    "make_geolife_like",
    "make_roma_like",
]

DATASET_NAMES = ("synthetic", "tdrive_like", "geolife_like", "roma_like")


def make_synthetic(
    domain: float, seed: int = 0, weight_max: float = 1000.0
) -> StreamSource:
    """Uniform i.i.d. objects — the paper's Synthetic dataset."""
    return UniformStream(domain=domain, weight_max=weight_max, seed=seed)


def make_tdrive_like(
    domain: float, seed: int = 0, weight_max: float = 1000.0
) -> StreamSource:
    """Beijing-taxi stand-in: a vehicle fleet roaming a 3×3 grid of
    moderate attractors (arterial intersections), mild skew."""
    centres = [0.2, 0.5, 0.8]
    hotspots = [
        Hotspot(cx=cx, cy=cy, sigma=0.05, share=1.0)
        for cx in centres
        for cy in centres
    ]
    return TrajectoryFleetStream(
        vehicles=250,
        hotspots=hotspots,
        hotspot_bias=0.6,
        speed=0.012,
        domain=domain,
        weight_max=weight_max,
        seed=seed,
    )


def make_geolife_like(
    domain: float, seed: int = 0, weight_max: float = 1000.0
) -> StreamSource:
    """Geolife stand-in: extreme campus-style concentration — a couple
    of very tight hotspots hold most of the stream.  The paper's
    hardest dataset; almost every rectangle in a hotspot overlaps."""
    hotspots = [
        Hotspot(cx=0.42, cy=0.58, sigma=0.025, share=0.45),
        Hotspot(cx=0.46, cy=0.55, sigma=0.030, share=0.30),
        Hotspot(cx=0.70, cy=0.30, sigma=0.040, share=0.15),
    ]
    return HotspotMixtureStream(
        hotspots=hotspots,
        background_share=0.10,
        domain=domain,
        weight_max=weight_max,
        seed=seed,
    )


def make_roma_like(
    domain: float, seed: int = 0, weight_max: float = 1000.0
) -> StreamSource:
    """Rome-taxi stand-in: one dominant historic-centre cluster with a
    ring of secondary destinations; strong but not Geolife-extreme."""
    ring = [
        (0.35, 0.50),
        (0.50, 0.70),
        (0.65, 0.50),
        (0.50, 0.30),
        (0.62, 0.66),
        (0.38, 0.34),
    ]
    hotspots = [Hotspot(cx=0.5, cy=0.5, sigma=0.045, share=0.50)] + [
        Hotspot(cx=cx, cy=cy, sigma=0.030, share=0.06) for cx, cy in ring
    ]
    return HotspotMixtureStream(
        hotspots=hotspots,
        background_share=0.14,
        domain=domain,
        weight_max=weight_max,
        seed=seed,
    )
