"""Stream source abstraction.

A :class:`StreamSource` produces :class:`~repro.core.objects.SpatialObject`
instances in generation-time order — the contract every workload
generator and file replayer in this package satisfies.  Sources are
iterators over single objects; :func:`batches` turns any source into the
paper's arrival model of ``m`` objects generated at the same time.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator

from repro.core.objects import SpatialObject
from repro.errors import InvalidParameterError

__all__ = ["StreamSource", "batches"]


class StreamSource(ABC):
    """An ordered, possibly unbounded producer of stream objects."""

    @abstractmethod
    def __iter__(self) -> Iterator[SpatialObject]:
        """Yield objects in non-decreasing timestamp order."""

    def take(self, count: int) -> list[SpatialObject]:
        """The next ``count`` objects as a list (fewer if exhausted)."""
        if count < 0:
            raise InvalidParameterError(f"count must be >= 0, got {count}")
        out: list[SpatialObject] = []
        for obj in self:
            out.append(obj)
            if len(out) >= count:
                break
        return out


def batches(
    source: StreamSource | Iterator[SpatialObject], size: int
) -> Iterator[list[SpatialObject]]:
    """Group a stream into arrival batches of ``size`` objects.

    The last batch may be shorter when the source is finite.  This is
    the generation-rate parameter ``m`` of the paper's experiments.
    """
    if size <= 0:
        raise InvalidParameterError(f"batch size must be positive, got {size}")
    current: list[SpatialObject] = []
    for obj in source:
        current.append(obj)
        if len(current) >= size:
            yield current
            current = []
    if current:
        yield current
