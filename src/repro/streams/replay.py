"""Replay streams from files or in-memory sequences.

Real deployments feed monitors from logs or message queues;
:class:`ReplayStream` wraps any ordered sequence of objects, and
:class:`CsvStream` reads the simple ``x,y,weight[,timestamp]`` format
so the paper's real corpora can be dropped in verbatim when available
(normalise coordinates first, as §7.1 does).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterator, Sequence

from repro.core.objects import SpatialObject
from repro.errors import InvalidParameterError
from repro.streams.source import StreamSource

__all__ = ["ReplayStream", "CsvStream", "write_csv"]


class ReplayStream(StreamSource):
    """Stream over an in-memory sequence, in the given order."""

    def __init__(self, objects: Sequence[SpatialObject]) -> None:
        self._objects = tuple(objects)

    def __iter__(self) -> Iterator[SpatialObject]:
        return iter(self._objects)

    def __len__(self) -> int:
        return len(self._objects)


class CsvStream(StreamSource):
    """Stream over a CSV file of ``x,y,weight[,timestamp]`` rows.

    Rows starting with ``#`` and a ``x,y,...`` header line are skipped.
    Each full iteration re-reads the file, so a ``CsvStream`` can be
    replayed any number of times.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        if not self.path.exists():
            raise InvalidParameterError(f"no such stream file: {self.path}")

    def __iter__(self) -> Iterator[SpatialObject]:
        with self.path.open(newline="") as fh:
            for lineno, row in enumerate(csv.reader(fh), start=1):
                if not row or row[0].startswith("#"):
                    continue
                if lineno == 1 and not _is_number(row[0]):
                    continue  # header
                if len(row) < 3:
                    raise InvalidParameterError(
                        f"{self.path}:{lineno}: expected x,y,weight[,timestamp]"
                    )
                # malformed numerics and invalid objects (NaN coordinate,
                # negative weight) both surface as InvalidParameterError
                # carrying file:lineno, so a bad row is locatable and an
                # ingest guard can quarantine it like any other record
                try:
                    timestamp = float(row[3]) if len(row) > 3 else float(lineno)
                    yield SpatialObject(
                        x=float(row[0]),
                        y=float(row[1]),
                        weight=float(row[2]),
                        timestamp=timestamp,
                    )
                except InvalidParameterError as exc:
                    raise InvalidParameterError(
                        f"{self.path}:{lineno}: invalid object: {exc}"
                    ) from exc
                except ValueError as exc:
                    raise InvalidParameterError(
                        f"{self.path}:{lineno}: malformed numeric field "
                        f"in row {row!r}: {exc}"
                    ) from exc


def write_csv(path: str | Path, objects: Sequence[SpatialObject]) -> None:
    """Persist a stream prefix in the :class:`CsvStream` format."""
    with Path(path).open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["x", "y", "weight", "timestamp"])
        for obj in objects:
            writer.writerow([obj.x, obj.y, obj.weight, obj.timestamp])


def _is_number(token: str) -> bool:
    try:
        float(token)
    except ValueError:
        return False
    return True
