"""Synthetic uniform workload (the paper's Synthetic dataset, §7.1).

Objects are drawn i.i.d. uniformly over a square domain with weights
uniform in ``[0, weight_max]`` — exactly the paper's synthetic setup
(domain ``[0, 10^6]²``, weights ``[0, 1000]``), with the domain side
configurable so benchmarks can keep the paper's overlap *density* at a
Python-friendly window size (see DESIGN.md §3).
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.core.objects import SpatialObject
from repro.errors import InvalidParameterError
from repro.streams.source import StreamSource

__all__ = ["UniformStream"]


class UniformStream(StreamSource):
    """Unbounded i.i.d. uniform stream over ``[0, domain]²``.

    Args:
        domain: Side length of the square monitoring space.
        weight_max: Weights are uniform in ``[0, weight_max]``; pass 0
            for unit weights (every object weighs exactly 1).
        seed: Seed of the private RNG — streams are reproducible and
            independent of global random state.
        dt: Timestamp increment between consecutive objects.
    """

    def __init__(
        self,
        domain: float = 1_000_000.0,
        weight_max: float = 1000.0,
        seed: int = 0,
        dt: float = 1.0,
    ) -> None:
        if domain <= 0:
            raise InvalidParameterError(f"domain must be positive, got {domain}")
        if weight_max < 0:
            raise InvalidParameterError(
                f"weight_max must be >= 0, got {weight_max}"
            )
        self.domain = float(domain)
        self.weight_max = float(weight_max)
        self.seed = seed
        self.dt = dt

    def __iter__(self) -> Iterator[SpatialObject]:
        rng = random.Random(self.seed)
        domain = self.domain
        wmax = self.weight_max
        dt = self.dt
        t = 0.0
        while True:
            weight = rng.uniform(0.0, wmax) if wmax > 0 else 1.0
            yield SpatialObject(
                x=rng.uniform(0.0, domain),
                y=rng.uniform(0.0, domain),
                weight=weight,
                timestamp=t,
            )
            t += dt
