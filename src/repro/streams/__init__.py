"""Stream sources: synthetic workloads, trajectory simulators, replays."""

from repro.streams.mixture import (
    DriftingHotspotStream,
    Hotspot,
    HotspotMixtureStream,
)
from repro.streams.replay import CsvStream, ReplayStream, write_csv
from repro.streams.source import StreamSource, batches
from repro.streams.synthetic import UniformStream
from repro.streams.trajectory import TrajectoryFleetStream

__all__ = [
    "CsvStream",
    "DriftingHotspotStream",
    "Hotspot",
    "HotspotMixtureStream",
    "ReplayStream",
    "StreamSource",
    "TrajectoryFleetStream",
    "UniformStream",
    "batches",
    "write_csv",
]
