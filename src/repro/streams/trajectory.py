"""Trajectory fleet workloads — GPS-like streams with temporal locality.

The paper's T-Drive and Roma corpora are *taxi trajectories*: each
vehicle reports positions along a continuous path, so consecutive
stream objects are spatially correlated and hotspots emerge where many
vehicles converge.  :class:`TrajectoryFleetStream` simulates a fleet of
random-waypoint agents attracted to hotspots; objects are emitted
round-robin across vehicles in timestamp order, which reproduces both
the skew and the temporal locality of a real GPS feed (the properties
the paper's evaluation depends on — see DESIGN.md §3).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.core.objects import SpatialObject
from repro.errors import InvalidParameterError
from repro.streams.mixture import Hotspot
from repro.streams.source import StreamSource

__all__ = ["TrajectoryFleetStream"]


@dataclass
class _Vehicle:
    x: float
    y: float
    target_x: float
    target_y: float
    speed: float


class TrajectoryFleetStream(StreamSource):
    """Random-waypoint vehicle fleet with hotspot-biased destinations.

    Args:
        vehicles: Fleet size; one object is emitted per vehicle per
            round, round-robin.
        hotspots: Destination attractors.  With probability
            ``hotspot_bias`` a vehicle's next waypoint is drawn from a
            hotspot (share-weighted), otherwise uniformly.
        hotspot_bias: Probability of a hotspot-directed trip.
        speed: Distance travelled per time unit, as a fraction of the
            domain side (typical taxi: ~0.5–2% per tick).
        domain: Side length of the square monitoring space.
        weight_max: Weights uniform in ``[0, weight_max]`` (0 → unit).
        seed: Private RNG seed.
        dt: Time between consecutive *emissions* (a full fleet round
            advances time by ``vehicles * dt``).
    """

    def __init__(
        self,
        vehicles: int = 200,
        hotspots: Sequence[Hotspot] = (),
        hotspot_bias: float = 0.7,
        speed: float = 0.01,
        domain: float = 1_000_000.0,
        weight_max: float = 1000.0,
        seed: int = 0,
        dt: float = 1.0,
    ) -> None:
        if vehicles <= 0:
            raise InvalidParameterError(
                f"fleet needs at least one vehicle, got {vehicles}"
            )
        if not (0.0 <= hotspot_bias <= 1.0):
            raise InvalidParameterError(
                f"hotspot bias must be in [0,1], got {hotspot_bias}"
            )
        if speed <= 0:
            raise InvalidParameterError(f"speed must be positive, got {speed}")
        if domain <= 0:
            raise InvalidParameterError(f"domain must be positive, got {domain}")
        self.vehicles = vehicles
        self.hotspots = tuple(hotspots)
        self.hotspot_bias = hotspot_bias if hotspots else 0.0
        self.speed = speed
        self.domain = float(domain)
        self.weight_max = float(weight_max)
        self.seed = seed
        self.dt = dt

    def _pick_waypoint(self, rng: random.Random) -> tuple[float, float]:
        domain = self.domain
        if self.hotspots and rng.random() < self.hotspot_bias:
            shares = [h.share for h in self.hotspots]
            hotspot = rng.choices(self.hotspots, weights=shares, k=1)[0]
            x = rng.gauss(hotspot.cx * domain, hotspot.sigma * domain)
            y = rng.gauss(hotspot.cy * domain, hotspot.sigma * domain)
            return (min(max(x, 0.0), domain), min(max(y, 0.0), domain))
        return (rng.uniform(0.0, domain), rng.uniform(0.0, domain))

    def __iter__(self) -> Iterator[SpatialObject]:
        rng = random.Random(self.seed)
        domain = self.domain
        step = self.speed * domain
        fleet: list[_Vehicle] = []
        for _ in range(self.vehicles):
            x, y = self._pick_waypoint(rng)
            tx, ty = self._pick_waypoint(rng)
            fleet.append(
                _Vehicle(
                    x=x,
                    y=y,
                    target_x=tx,
                    target_y=ty,
                    speed=step * rng.uniform(0.5, 1.5),
                )
            )
        wmax = self.weight_max
        t = 0.0
        while True:
            for vehicle in fleet:
                dx = vehicle.target_x - vehicle.x
                dy = vehicle.target_y - vehicle.y
                dist = (dx * dx + dy * dy) ** 0.5
                if dist <= vehicle.speed:
                    # arrived: report from the destination, pick a new trip
                    vehicle.x = vehicle.target_x
                    vehicle.y = vehicle.target_y
                    vehicle.target_x, vehicle.target_y = self._pick_waypoint(rng)
                else:
                    scale = vehicle.speed / dist
                    vehicle.x += dx * scale
                    vehicle.y += dy * scale
                weight = rng.uniform(0.0, wmax) if wmax > 0 else 1.0
                yield SpatialObject(
                    x=vehicle.x, y=vehicle.y, weight=weight, timestamp=t
                )
                t += self.dt
