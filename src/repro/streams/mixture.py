"""Gaussian-mixture hotspot workloads.

The paper's real GPS corpora (T-Drive, Geolife, Roma) are heavily
skewed: most objects cluster around hotspots (campuses, city centres,
arterial roads).  The property the evaluation exercises is exactly that
skew — it controls how many dual rectangles overlap, hence how much
work ``Local-Plane-Sweep`` does and how well the aG2 bounds prune.
:class:`HotspotMixtureStream` reproduces configurable skew with a
mixture of Gaussian clusters over a uniform background; the dataset
registry instantiates it with per-dataset profiles (DESIGN.md §3).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.core.objects import SpatialObject
from repro.errors import InvalidParameterError
from repro.streams.source import StreamSource

__all__ = ["Hotspot", "HotspotMixtureStream", "DriftingHotspotStream"]


@dataclass(frozen=True, slots=True)
class Hotspot:
    """One Gaussian cluster: centre (as a fraction of the domain),
    standard deviation (fraction of the domain) and mixture share."""

    cx: float
    cy: float
    sigma: float
    share: float

    def __post_init__(self) -> None:
        if not (0.0 <= self.cx <= 1.0 and 0.0 <= self.cy <= 1.0):
            raise InvalidParameterError(
                f"hotspot centre must be in [0,1]², got ({self.cx}, {self.cy})"
            )
        if self.sigma <= 0:
            raise InvalidParameterError(
                f"hotspot sigma must be positive, got {self.sigma}"
            )
        if self.share <= 0:
            raise InvalidParameterError(
                f"hotspot share must be positive, got {self.share}"
            )


class HotspotMixtureStream(StreamSource):
    """Stream drawn from Gaussian hotspots plus a uniform background.

    Args:
        hotspots: Cluster definitions; shares are normalised together
            with ``background_share``.
        background_share: Relative share of uniform background objects.
        domain: Side length of the square monitoring space; samples are
            clamped into the domain (mass beyond 3-4σ is negligible and
            clamping mimics a city boundary).
        weight_max: Weights uniform in ``[0, weight_max]`` (0 → unit).
        seed: Private RNG seed.
        dt: Timestamp increment between objects.
    """

    def __init__(
        self,
        hotspots: Sequence[Hotspot],
        background_share: float = 0.1,
        domain: float = 1_000_000.0,
        weight_max: float = 1000.0,
        seed: int = 0,
        dt: float = 1.0,
    ) -> None:
        if not hotspots:
            raise InvalidParameterError("at least one hotspot is required")
        if background_share < 0:
            raise InvalidParameterError(
                f"background share must be >= 0, got {background_share}"
            )
        if domain <= 0:
            raise InvalidParameterError(f"domain must be positive, got {domain}")
        self.hotspots = tuple(hotspots)
        self.background_share = float(background_share)
        self.domain = float(domain)
        self.weight_max = float(weight_max)
        self.seed = seed
        self.dt = dt

    def __iter__(self) -> Iterator[SpatialObject]:
        rng = random.Random(self.seed)
        domain = self.domain
        wmax = self.weight_max
        total = self.background_share + sum(h.share for h in self.hotspots)
        # cumulative shares for roulette selection
        cumulative: list[tuple[float, Hotspot | None]] = []
        acc = 0.0
        for h in self.hotspots:
            acc += h.share / total
            cumulative.append((acc, h))
        cumulative.append((1.0, None))  # background
        t = 0.0
        while True:
            u = rng.random()
            chosen: Hotspot | None = None
            for bound, candidate in cumulative:
                if u <= bound:
                    chosen = candidate
                    break
            if chosen is None:
                x = rng.uniform(0.0, domain)
                y = rng.uniform(0.0, domain)
            else:
                x = rng.gauss(chosen.cx * domain, chosen.sigma * domain)
                y = rng.gauss(chosen.cy * domain, chosen.sigma * domain)
                x = min(max(x, 0.0), domain)
                y = min(max(y, 0.0), domain)
            weight = rng.uniform(0.0, wmax) if wmax > 0 else 1.0
            yield SpatialObject(x=x, y=y, weight=weight, timestamp=t)
            t += self.dt


class DriftingHotspotStream(StreamSource):
    """Hotspots whose centres orbit their base positions over time.

    This is the workload an *adaptive* spatial index must survive: the
    mass concentration does not sit still, so any structure refined
    around the current hotspot position must be torn down again as the
    hotspot leaves — a static refinement (or an index without merging)
    ends up paying for resolution where the data no longer is.

    Each hotspot's centre traces a circle of radius ``drift_radius``
    (a fraction of the domain) around its base position, completing one
    revolution every ``period`` objects; hotspots are phase-shifted so
    they do not move in lockstep.  Sampling is otherwise identical to
    :class:`HotspotMixtureStream` (roulette hotspot selection, Gaussian
    scatter, clamped to the domain, uniform background).

    Args:
        hotspots: Base cluster definitions (see :class:`Hotspot`).
        drift_radius: Orbit radius as a fraction of the domain.
        period: Objects per full revolution (must be positive).
        background_share: Relative share of uniform background objects.
        domain: Side length of the square monitoring space.
        weight_max: Weights uniform in ``[0, weight_max]`` (0 → unit).
        seed: Private RNG seed.
        dt: Timestamp increment between objects.
    """

    def __init__(
        self,
        hotspots: Sequence[Hotspot],
        drift_radius: float = 0.2,
        period: int = 10_000,
        background_share: float = 0.1,
        domain: float = 1_000_000.0,
        weight_max: float = 1000.0,
        seed: int = 0,
        dt: float = 1.0,
    ) -> None:
        if not hotspots:
            raise InvalidParameterError("at least one hotspot is required")
        if drift_radius < 0:
            raise InvalidParameterError(
                f"drift radius must be >= 0, got {drift_radius}"
            )
        if period <= 0:
            raise InvalidParameterError(
                f"drift period must be positive, got {period}"
            )
        if background_share < 0:
            raise InvalidParameterError(
                f"background share must be >= 0, got {background_share}"
            )
        if domain <= 0:
            raise InvalidParameterError(f"domain must be positive, got {domain}")
        self.hotspots = tuple(hotspots)
        self.drift_radius = float(drift_radius)
        self.period = int(period)
        self.background_share = float(background_share)
        self.domain = float(domain)
        self.weight_max = float(weight_max)
        self.seed = seed
        self.dt = dt

    def __iter__(self) -> Iterator[SpatialObject]:
        rng = random.Random(self.seed)
        domain = self.domain
        wmax = self.weight_max
        radius = self.drift_radius * domain
        omega = 2.0 * math.pi / self.period
        total = self.background_share + sum(h.share for h in self.hotspots)
        cumulative: list[tuple[float, int]] = []
        acc = 0.0
        for idx, h in enumerate(self.hotspots):
            acc += h.share / total
            cumulative.append((acc, idx))
        cumulative.append((1.0, -1))  # background
        # phase-shift hotspots evenly around the circle
        n = len(self.hotspots)
        phases = [2.0 * math.pi * i / n for i in range(n)]
        t = 0.0
        step = 0
        while True:
            u = rng.random()
            chosen = -1
            for bound, idx in cumulative:
                if u <= bound:
                    chosen = idx
                    break
            if chosen < 0:
                x = rng.uniform(0.0, domain)
                y = rng.uniform(0.0, domain)
            else:
                h = self.hotspots[chosen]
                angle = omega * step + phases[chosen]
                cx = h.cx * domain + radius * math.cos(angle)
                cy = h.cy * domain + radius * math.sin(angle)
                x = rng.gauss(cx, h.sigma * domain)
                y = rng.gauss(cy, h.sigma * domain)
                x = min(max(x, 0.0), domain)
                y = min(max(y, 0.0), domain)
            weight = rng.uniform(0.0, wmax) if wmax > 0 else 1.0
            yield SpatialObject(x=x, y=y, weight=weight, timestamp=t)
            t += self.dt
            step += 1
