"""Gaussian-mixture hotspot workloads.

The paper's real GPS corpora (T-Drive, Geolife, Roma) are heavily
skewed: most objects cluster around hotspots (campuses, city centres,
arterial roads).  The property the evaluation exercises is exactly that
skew — it controls how many dual rectangles overlap, hence how much
work ``Local-Plane-Sweep`` does and how well the aG2 bounds prune.
:class:`HotspotMixtureStream` reproduces configurable skew with a
mixture of Gaussian clusters over a uniform background; the dataset
registry instantiates it with per-dataset profiles (DESIGN.md §3).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.core.objects import SpatialObject
from repro.errors import InvalidParameterError
from repro.streams.source import StreamSource

__all__ = ["Hotspot", "HotspotMixtureStream"]


@dataclass(frozen=True, slots=True)
class Hotspot:
    """One Gaussian cluster: centre (as a fraction of the domain),
    standard deviation (fraction of the domain) and mixture share."""

    cx: float
    cy: float
    sigma: float
    share: float

    def __post_init__(self) -> None:
        if not (0.0 <= self.cx <= 1.0 and 0.0 <= self.cy <= 1.0):
            raise InvalidParameterError(
                f"hotspot centre must be in [0,1]², got ({self.cx}, {self.cy})"
            )
        if self.sigma <= 0:
            raise InvalidParameterError(
                f"hotspot sigma must be positive, got {self.sigma}"
            )
        if self.share <= 0:
            raise InvalidParameterError(
                f"hotspot share must be positive, got {self.share}"
            )


class HotspotMixtureStream(StreamSource):
    """Stream drawn from Gaussian hotspots plus a uniform background.

    Args:
        hotspots: Cluster definitions; shares are normalised together
            with ``background_share``.
        background_share: Relative share of uniform background objects.
        domain: Side length of the square monitoring space; samples are
            clamped into the domain (mass beyond 3-4σ is negligible and
            clamping mimics a city boundary).
        weight_max: Weights uniform in ``[0, weight_max]`` (0 → unit).
        seed: Private RNG seed.
        dt: Timestamp increment between objects.
    """

    def __init__(
        self,
        hotspots: Sequence[Hotspot],
        background_share: float = 0.1,
        domain: float = 1_000_000.0,
        weight_max: float = 1000.0,
        seed: int = 0,
        dt: float = 1.0,
    ) -> None:
        if not hotspots:
            raise InvalidParameterError("at least one hotspot is required")
        if background_share < 0:
            raise InvalidParameterError(
                f"background share must be >= 0, got {background_share}"
            )
        if domain <= 0:
            raise InvalidParameterError(f"domain must be positive, got {domain}")
        self.hotspots = tuple(hotspots)
        self.background_share = float(background_share)
        self.domain = float(domain)
        self.weight_max = float(weight_max)
        self.seed = seed
        self.dt = dt

    def __iter__(self) -> Iterator[SpatialObject]:
        rng = random.Random(self.seed)
        domain = self.domain
        wmax = self.weight_max
        total = self.background_share + sum(h.share for h in self.hotspots)
        # cumulative shares for roulette selection
        cumulative: list[tuple[float, Hotspot | None]] = []
        acc = 0.0
        for h in self.hotspots:
            acc += h.share / total
            cumulative.append((acc, h))
        cumulative.append((1.0, None))  # background
        t = 0.0
        while True:
            u = rng.random()
            chosen: Hotspot | None = None
            for bound, candidate in cumulative:
                if u <= bound:
                    chosen = candidate
                    break
            if chosen is None:
                x = rng.uniform(0.0, domain)
                y = rng.uniform(0.0, domain)
            else:
                x = rng.gauss(chosen.cx * domain, chosen.sigma * domain)
                y = rng.gauss(chosen.cy * domain, chosen.sigma * domain)
                x = min(max(x, 0.0), domain)
                y = min(max(y, 0.0), domain)
            weight = rng.uniform(0.0, wmax) if wmax > 0 else 1.0
            yield SpatialObject(x=x, y=y, weight=weight, timestamp=t)
            t += self.dt
