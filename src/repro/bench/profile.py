"""Profiling runner: internal operation counters for one workload.

The paper explains *why* aG2 wins through internal quantities — cells
visited, branch-and-bound prunings, upper-bound recomputations — not
only wall-clock means (§7).  ``run_profile`` executes the standard
measurement protocol (prime untimed, then timed batches) with a live
:class:`~repro.obs.metrics.Metrics` registry attached, and returns a
:class:`ProfileReport` whose tables/JSON/CSV expose those quantities
per monitor and per batch.  The CI perf-regression gate consumes the
JSON artefact (``scripts/perf_gate.py``).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, Sequence

from repro.bench.config import ExperimentConfig
from repro.bench.runners import ALGORITHMS, build_monitor
from repro.core import vector
from repro.datasets import make_stream
from repro.engine.engine import EngineReport, StreamEngine
from repro.obs.metrics import Metrics

__all__ = ["ProfileReport", "run_profile", "counter_columns"]

#: counter display order: paper-relevant quantities first
_PREFERRED = (
    "cells_visited",
    "cells_scanned",
    "cells_pruned",
    "vertices_pruned",
    "local_sweeps",
    "upper_bound_recomputes",
    "bound_tightenings",
    "edges_touched",
    "overlap_tests",
    "full_sweeps",
    "objects_swept",
    "nodes_expanded",
    "window.insertions",
    "window.evictions",
)


def counter_columns(report: EngineReport) -> list[str]:
    """Stable column order: preferred counters first, extras sorted."""
    present = set(report.counter_names())
    ordered = [name for name in _PREFERRED if name in present]
    ordered.extend(sorted(present - set(ordered)))
    return ordered


@dataclass
class ProfileReport:
    """One profiled run: configuration + metric-carrying engine report."""

    config: ExperimentConfig
    report: EngineReport
    primed: int
    #: monitor name -> sweep compute backend that produced its numbers
    backends: Dict[str, str] = field(default_factory=dict)
    #: monitor name -> spatial index that produced its numbers
    indexes: Dict[str, str] = field(default_factory=dict)
    #: resolved vector-backend environment (numpy/numba versions)
    vector_info: Dict[str, object] = field(default_factory=dict)

    def summary_rows(self) -> list[dict[str, object]]:
        """One row per monitor: mean update time + lifetime counters."""
        columns = counter_columns(self.report)
        rows: list[dict[str, object]] = []
        for name, snap in self.report.metrics.items():
            row: dict[str, object] = {
                "monitor": name,
                "backend": self.backends.get(name, "none"),
                "index": self.indexes.get(name, "none"),
                "mean_ms": self.report.mean_ms(name),
            }
            for column in columns:
                row[column] = snap.counters.get(column, 0.0)
            rows.append(row)
        return rows

    def per_batch_rows(self) -> list[dict[str, object]]:
        """One row per (batch, monitor) with that batch's counter deltas."""
        columns = counter_columns(self.report)
        rows: list[dict[str, object]] = []
        for index in range(self.report.batches):
            for name, deltas in self.report.batch_metrics.items():
                snap = deltas[index]
                row: dict[str, object] = {"batch": index + 1, "monitor": name}
                for column in columns:
                    row[column] = snap.counters.get(column, 0.0)
                rows.append(row)
        return rows

    def rate_rows(self) -> list[dict[str, object]]:
        """Per-(batch, monitor) *derived* rates, normalising raw counters
        by the work offered (see docs/PERFORMANCE.md):

        * ``prune_fraction`` — cells pruned over cells considered
          (visited + pruned); how much of the index branch-and-bound
          skipped this batch.
        * ``sweeps_per_arrival`` — Local-Plane-Sweep invocations per
          arriving object; the incrementality argument made measurable.
        * ``overlap_tests_per_arrival`` — pairwise rectangle tests per
          arriving object; the neighbour-discovery cost driver.
        """
        arrivals = float(self.config.batch_size)
        rows: list[dict[str, object]] = []
        for index in range(self.report.batches):
            for name, deltas in self.report.batch_metrics.items():
                c = deltas[index].counters
                visited = c.get("cells_visited", 0.0)
                pruned = c.get("cells_pruned", 0.0)
                considered = visited + pruned
                sweeps = c.get("local_sweeps", 0.0) + c.get("full_sweeps", 0.0)
                rows.append(
                    {
                        "batch": index + 1,
                        "monitor": name,
                        "prune_fraction": (
                            pruned / considered if considered else 0.0
                        ),
                        "sweeps_per_arrival": (
                            sweeps / arrivals if arrivals else 0.0
                        ),
                        "overlap_tests_per_arrival": (
                            c.get("overlap_tests", 0.0) / arrivals
                            if arrivals
                            else 0.0
                        ),
                    }
                )
        return rows

    def to_dict(self) -> dict[str, object]:
        """The JSON artefact shape (consumed by the CI perf gate)."""
        doc = self.report.to_dict()
        doc["config"] = asdict(self.config)
        doc["primed"] = self.primed
        doc["backends"] = dict(self.backends)
        doc["indexes"] = dict(self.indexes)
        doc["vector"] = dict(self.vector_info)
        doc["derived_rates"] = self.rate_rows()
        return doc


def run_profile(
    cfg: ExperimentConfig,
    algorithms: Sequence[str] = ALGORITHMS,
    tighten_mode: str = "off",
) -> ProfileReport:
    """Run one workload with metrics attached to every monitor."""
    monitors = {
        name: build_monitor(name, cfg, tighten_mode=tighten_mode)
        for name in algorithms
    }
    registry = Metrics()
    stream = make_stream(cfg.dataset, domain=cfg.domain, seed=cfg.seed)
    engine = StreamEngine(
        monitors, stream, batch_size=cfg.batch_size, metrics=registry
    )
    primed = engine.prime(cfg.window_size)
    report = engine.run(cfg.batches)
    return ProfileReport(
        config=cfg,
        report=report,
        primed=primed,
        backends={name: mon.backend for name, mon in monitors.items()},
        indexes={name: mon.index_backend for name, mon in monitors.items()},
        vector_info=vector.backend_info(cfg.backend),
    )
