"""Experiment configurations mirroring the paper's Table 4.

The paper's parameter grid (window ``n``, generation rate ``m``,
rectangle side ``l``, error rate ``ε``, result size ``k``) is kept
structurally identical; window sizes are scaled down by
:data:`SCALE_FACTOR` because this is pure Python rather than the
authors' C++ (DESIGN.md §3).  The domain side is chosen so the default
configuration has the same expected rectangle-overlap degree as the
paper's default (``n·(2l)²/D²`` equal on both sides), which is the
quantity the algorithms' work actually depends on.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import InvalidParameterError

__all__ = [
    "ExperimentConfig",
    "DEFAULT_CONFIG",
    "SCALE_FACTOR",
    "FIG7_WINDOWS",
    "FIG8_RATES",
    "FIG9_SIDES",
    "FIG10_EPSILONS",
    "FIG11_KS",
    "PAPER_DATASETS",
]

#: paper window sizes divided by ours (500K default → 10K default)
SCALE_FACTOR = 50

#: Figure 7 sweep — the paper's 100K..1000K windows, scaled
FIG7_WINDOWS = (2_000, 5_000, 10_000, 15_000, 20_000)

#: Figure 8 sweep — generation rates, exactly the paper's values
FIG8_RATES = (50, 100, 200, 500, 1000)

#: Figure 9 sweep — rectangle side lengths, exactly the paper's values
FIG9_SIDES = (100.0, 500.0, 1000.0, 1500.0, 2000.0)

#: Figure 10 sweep — error-tolerance values, exactly the paper's values
FIG10_EPSILONS = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5)

#: Figure 11 sweep — k values (paper: 1..50 step 5; trimmed grid)
FIG11_KS = (1, 10, 20, 30, 40, 50)

#: evaluation datasets, in the paper's presentation order
PAPER_DATASETS = ("synthetic", "tdrive_like", "geolife_like", "roma_like")


@dataclass(frozen=True, slots=True)
class ExperimentConfig:
    """One benchmark configuration (defaults = paper defaults, scaled)."""

    dataset: str = "synthetic"
    window_size: int = 10_000
    batch_size: int = 100
    rect_side: float = 1000.0
    domain: float = 140_000.0
    seed: int = 42
    batches: int = 5
    epsilon: float = 0.0
    k: int = 1
    cell_size: float | None = None
    #: spatial index backing aG2: "grid" (paper) or "quadtree" (adaptive)
    index: str = "grid"
    #: sweep compute backend: "python" (reference) or "numpy" (columnar);
    #: availability of numpy is checked at monitor construction, not here
    backend: str = "python"

    def __post_init__(self) -> None:
        if self.index not in ("grid", "quadtree"):
            raise InvalidParameterError(
                f"index must be 'grid' or 'quadtree', got {self.index!r}"
            )
        if self.backend not in ("python", "numpy"):
            raise InvalidParameterError(
                f"backend must be 'python' or 'numpy', got {self.backend!r}"
            )
        if self.window_size <= 0:
            raise InvalidParameterError("window_size must be positive")
        if self.batch_size <= 0:
            raise InvalidParameterError("batch_size must be positive")
        if self.rect_side <= 0:
            raise InvalidParameterError("rect_side must be positive")
        if self.batches <= 0:
            raise InvalidParameterError("batches must be positive")

    def with_(self, **changes: object) -> "ExperimentConfig":
        """A modified copy — convenience for sweep construction."""
        return replace(self, **changes)  # type: ignore[arg-type]


DEFAULT_CONFIG = ExperimentConfig()
