"""Fixed-seed benchmark suite with a committed baseline (``bench``).

``run_bench`` drives every monitor implementation over the two
canonical workloads (uniform = ``synthetic``, gaussian =
``geolife_like``) with a fixed stream seed and reports, per
(monitor, dataset) row:

* ``ops_per_s``   — arrival throughput (objects processed per second),
* ``mean_ms`` / ``p95_ms`` — per-batch update latency,
* ``speedup_vs_naive`` — naive mean over this monitor's mean on the
  *same* dataset in the *same* run.

``speedup_vs_naive`` is the number the CI gate compares across runs:
it is a ratio *within* one run on one machine, so it tracks algorithmic
regressions while staying insensitive to how fast the host happens to
be (absolute ``ops_per_s`` is recorded for humans, never gated).

A final *multi-query scaling* row times the same query set served by
:class:`~repro.engine.multi.MultiQueryGroup` (serial) and
:class:`~repro.engine.parallel.ParallelQueryGroup` (sharded across
worker processes).  ``scaling`` is serial-over-parallel wall time; the
row records ``cpu_count`` because the ratio only exceeds 1 when the
host actually has spare cores — on a single-CPU machine the honest
number is below 1 and the gate skips it (see docs/PERFORMANCE.md).

The committed baseline lives in ``BENCH_PR4.json`` at the repo root;
regenerate it with ``maxrs-stream bench --seed 42 --out BENCH_PR4.json``
and compare a fresh run against it with
``python scripts/perf_gate.py --bench new.json --baseline BENCH_PR4.json``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.core.ag2 import AG2Monitor
from repro.core.g2 import G2Monitor
from repro.core.monitor import MaxRSMonitor
from repro.core.naive import NaiveMonitor
from repro.core.rtree_monitor import RTreeMonitor
from repro.core.topk import TopKAG2Monitor
from repro.datasets import make_stream
from repro.engine.multi import MultiQueryGroup
from repro.engine.parallel import ParallelQueryGroup
from repro.errors import InvalidParameterError
from repro.window import CountWindow

__all__ = [
    "BENCH_DATASETS",
    "BENCH_MONITORS",
    "BENCH_SCHEMA",
    "BenchProfile",
    "PROFILES",
    "bench_rows",
    "run_bench",
    "run_profile_suite",
    "scaling_rows",
]

BENCH_SCHEMA = 1

#: benchmark dataset label -> repro.datasets workload name
BENCH_DATASETS = {"uniform": "synthetic", "gaussian": "geolife_like"}

MonitorFactory = Callable[[float, int], MaxRSMonitor]

#: label -> factory(side, window_size); ordering is the report ordering
BENCH_MONITORS: Dict[str, MonitorFactory] = {
    "naive": lambda side, w: NaiveMonitor(side, side, CountWindow(w)),
    "g2": lambda side, w: G2Monitor(side, side, CountWindow(w)),
    "ag2": lambda side, w: AG2Monitor(side, side, CountWindow(w)),
    "rtree": lambda side, w: RTreeMonitor(side, side, CountWindow(w)),
    "topk": lambda side, w: TopKAG2Monitor(
        side, side, CountWindow(w), k=10
    ),
}


@dataclass(frozen=True, slots=True)
class BenchProfile:
    """One benchmark sizing; ``full`` for the committed baseline,
    ``quick`` for the CI smoke job."""

    window_size: int
    batch_size: int
    batches: int
    rect_side: float = 1000.0
    domain: float = 140_000.0
    # multi-query scaling row sizing
    mq_queries: int = 4
    mq_workers: int = 2
    mq_window: int = 2_000
    mq_batch_size: int = 150
    mq_batches: int = 6


PROFILES: Dict[str, BenchProfile] = {
    "full": BenchProfile(window_size=4_000, batch_size=200, batches=12),
    "quick": BenchProfile(
        window_size=1_000,
        batch_size=100,
        batches=5,
        mq_window=800,
        mq_batch_size=80,
        mq_batches=4,
    ),
}


def _p95(samples: List[float]) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(0.95 * len(ordered)))
    return ordered[index]


def _time_monitor(
    monitor: MaxRSMonitor, profile: BenchProfile, dataset: str, seed: int
) -> List[float]:
    """Prime the window untimed, then time ``batches`` updates (s)."""
    stream = make_stream(dataset, domain=profile.domain, seed=seed)
    monitor.ingest(stream.take(profile.window_size))
    perf = time.perf_counter
    times: List[float] = []
    for _ in range(profile.batches):
        batch = stream.take(profile.batch_size)
        start = perf()
        monitor.update(batch)
        times.append(perf() - start)
    return times


def _mq_monitors(profile: BenchProfile) -> Dict[str, MaxRSMonitor]:
    """The multi-query set: aG2 queries of graduated rectangle sizes."""
    sides = [
        profile.rect_side * (0.6 + 0.2 * i) for i in range(profile.mq_queries)
    ]
    return {
        f"q{i}": AG2Monitor(side, side, CountWindow(profile.mq_window))
        for i, side in enumerate(sides)
    }


def _time_group(group, profile: BenchProfile, seed: int) -> float:
    """Total wall seconds to serve ``mq_batches`` through a group."""
    stream = make_stream(
        BENCH_DATASETS["uniform"], domain=profile.domain, seed=seed
    )
    prime = stream.take(profile.mq_window)
    batches = [stream.take(profile.mq_batch_size) for _ in range(profile.mq_batches)]
    group.update(prime)  # untimed warm-up fill
    perf = time.perf_counter
    start = perf()
    for batch in batches:
        group.update(batch)
    return perf() - start


def _run_scaling(profile: BenchProfile, seed: int) -> Dict[str, object]:
    serial = MultiQueryGroup()
    for name, monitor in _mq_monitors(profile).items():
        serial.add(name, monitor)
    serial_s = _time_group(serial, profile, seed)

    parallel = ParallelQueryGroup(workers=profile.mq_workers)
    try:
        for name, monitor in _mq_monitors(profile).items():
            parallel.add(name, monitor)
        parallel_s = _time_group(parallel, profile, seed)
    finally:
        parallel.close()

    return {
        "queries": profile.mq_queries,
        "workers": profile.mq_workers,
        "serial_ms": serial_s * 1000.0,
        "parallel_ms": parallel_s * 1000.0,
        "scaling": serial_s / parallel_s if parallel_s > 0 else 0.0,
    }


def run_profile_suite(
    name: str, seed: int, scaling: bool = True
) -> Dict[str, object]:
    """All rows of one named profile."""
    profile = PROFILES.get(name)
    if profile is None:
        raise InvalidParameterError(
            f"unknown bench profile {name!r}; expected one of {tuple(PROFILES)}"
        )
    rows: List[Dict[str, object]] = []
    naive_mean: Dict[str, float] = {}
    for ds_label, dataset in BENCH_DATASETS.items():
        for mon_label, factory in BENCH_MONITORS.items():
            monitor = factory(profile.rect_side, profile.window_size)
            times = _time_monitor(monitor, profile, dataset, seed)
            total = sum(times)
            mean_ms = total / len(times) * 1000.0
            if mon_label == "naive":
                naive_mean[ds_label] = mean_ms
            rows.append(
                {
                    "monitor": mon_label,
                    "dataset": ds_label,
                    "ops_per_s": (
                        profile.batch_size * len(times) / total
                        if total > 0
                        else 0.0
                    ),
                    "mean_ms": mean_ms,
                    "p95_ms": _p95(times) * 1000.0,
                    "speedup_vs_naive": (
                        naive_mean[ds_label] / mean_ms if mean_ms > 0 else 0.0
                    ),
                }
            )
    doc: Dict[str, object] = {
        "window_size": profile.window_size,
        "batch_size": profile.batch_size,
        "batches": profile.batches,
        "rows": rows,
    }
    if scaling:
        doc["multi_query"] = _run_scaling(profile, seed)
    return doc


def run_bench(
    seed: int = 42,
    profiles: tuple[str, ...] = ("full", "quick"),
    scaling: bool = True,
) -> Dict[str, object]:
    """The full benchmark document (see module docstring)."""
    return {
        "schema": BENCH_SCHEMA,
        "seed": seed,
        "cpu_count": os.cpu_count() or 1,
        "profiles": {
            name: run_profile_suite(name, seed, scaling=scaling)
            for name in profiles
        },
    }


def bench_rows(doc: Dict[str, object]) -> List[Dict[str, object]]:
    """Flatten a bench document's monitor rows for the table printer."""
    out: List[Dict[str, object]] = []
    for name, profile_doc in doc["profiles"].items():  # type: ignore[union-attr]
        for row in profile_doc["rows"]:
            flat = {"profile": name}
            flat.update(row)
            out.append(flat)
    return out


def scaling_rows(doc: Dict[str, object]) -> List[Dict[str, object]]:
    """Flatten a bench document's multi-query scaling rows."""
    out: List[Dict[str, object]] = []
    for name, profile_doc in doc["profiles"].items():  # type: ignore[union-attr]
        mq = profile_doc.get("multi_query")
        if mq:
            flat = {"profile": name}
            flat.update(mq)
            out.append(flat)
    return out
