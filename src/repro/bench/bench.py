"""Fixed-seed benchmark suite with a committed baseline (``bench``).

``run_bench`` drives every monitor implementation over the two
canonical workloads (uniform = ``synthetic``, gaussian =
``geolife_like``) with a fixed stream seed and reports, per
(monitor, dataset, backend) row:

* ``ops_per_s``   — arrival throughput (objects processed per second),
* ``mean_ms`` / ``p95_ms`` — per-batch update latency,
* ``speedup_vs_naive`` — naive mean over this monitor's mean on the
  *same* dataset with the *same* sweep backend in the *same* run,
* ``backend``     — the sweep compute backend (``python`` / ``numpy``),
* ``index``       — the spatial index that produced the row
  (``uniform-grid`` / ``quadtree`` / ``rtree`` / ``none``), so a gate
  failure names the offending index, not just the algorithm label.

When numpy is importable, the vector-capable monitors
(:data:`BENCH_VECTOR_MONITORS`) additionally run under the columnar
numpy backend on the two canonical workloads, interleaved in the same
measurement rounds as the python rows so backend-vs-backend ratios are
taken over the same span of host speed.  Each backend's
``speedup_vs_naive`` uses its own backend's naive denominator; the
cross-backend comparison the gate consumes is the ratio of ``mean_ms``
between the python and numpy rows of one (monitor, dataset).

Three *skewed* workloads (``gauss_static``, ``gauss_drift``,
``powerlaw``) additionally run the skew-relevant subset — naive,
uniform-grid aG2 and quadtree aG2 — to measure the adaptive index
exactly where the flat grid degrades (see docs/PERFORMANCE.md).

``speedup_vs_naive`` is the number the CI gate compares across runs:
it is a ratio *within* one run on one machine, so it tracks algorithmic
regressions while staying insensitive to how fast the host happens to
be (absolute ``ops_per_s`` is recorded for humans, never gated).  To
keep that ratio stable on a noisy runner, every dataset is measured as
``repeats`` interleaved *rounds* over the identical seeded stream and
each batch keeps its fastest observation — noise only ever adds time,
so per-batch minima converge on the true cost and the ratio of
denoised means survives a 15% tolerance (see ``run_profile_suite``).

A final *multi-query scaling* row times the same query set served by
:class:`~repro.engine.multi.MultiQueryGroup` (serial) and
:class:`~repro.engine.parallel.ParallelQueryGroup` (sharded across
worker processes).  ``scaling`` is serial-over-parallel wall time; the
row records ``cpu_count`` because the ratio only exceeds 1 when the
host actually has spare cores — on a single-CPU machine the honest
number is below 1 and the gate skips it (see docs/PERFORMANCE.md).

The committed baseline lives in ``BENCH_PR9.json`` at the repo root;
regenerate it with ``maxrs-stream bench --seed 42 --out BENCH_PR9.json``
and compare a fresh run against it with
``python scripts/perf_gate.py --bench new.json --baseline BENCH_PR9.json``.
"""

from __future__ import annotations

import gc
import os
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.core import vector
from repro.core.ag2 import AG2Monitor
from repro.core.g2 import G2Monitor
from repro.core.grid import _cell_keys_cached
from repro.core.monitor import MaxRSMonitor
from repro.core.naive import NaiveMonitor
from repro.core.objects import dual_rect
from repro.core.quadtree import QuadtreeAG2Monitor
from repro.core.rtree_monitor import RTreeMonitor
from repro.core.topk import TopKAG2Monitor
from repro.datasets import make_stream
from repro.engine.multi import MultiQueryGroup
from repro.engine.parallel import ParallelQueryGroup
from repro.errors import InvalidParameterError
from repro.window import CountWindow

__all__ = [
    "BENCH_DATASETS",
    "BENCH_MONITORS",
    "BENCH_SCHEMA",
    "BENCH_SKEW_DATASETS",
    "BENCH_SKEW_MONITORS",
    "BENCH_VECTOR_MONITORS",
    "BenchProfile",
    "PROFILES",
    "bench_rows",
    "run_bench",
    "run_profile_suite",
    "scaling_rows",
]

#: 3: ``backend`` now names the sweep compute backend (python/numpy) on
#: every row, the spatial index moved to the new ``index`` field, and
#: the canonical workloads gained numpy-backend rows (PR 9)
#: 2: added the skewed workload rows, the ag2_quadtree monitor and the
#: per-row ``backend`` field (PR 6)
BENCH_SCHEMA = 3

#: benchmark dataset label -> repro.datasets workload name
BENCH_DATASETS = {"uniform": "synthetic", "gaussian": "geolife_like"}

#: skewed workload label -> repro.datasets workload name; these rows
#: exist to measure the adaptive index where the flat grid degrades
BENCH_SKEW_DATASETS = {
    "gauss_static": "hotspot_static",
    "gauss_drift": "hotspot_drift",
    "powerlaw": "powerlaw_cities",
}

MonitorFactory = Callable[[float, int, str], MaxRSMonitor]

#: label -> factory(side, window_size, backend); ordering is the report
#: ordering.  The rtree factory ignores the backend argument: it is
#: never instantiated with anything but ``python`` because it is not in
#: :data:`BENCH_VECTOR_MONITORS`.
BENCH_MONITORS: Dict[str, MonitorFactory] = {
    "naive": lambda side, w, b: NaiveMonitor(
        side, side, CountWindow(w), backend=b
    ),
    "g2": lambda side, w, b: G2Monitor(side, side, CountWindow(w), backend=b),
    "ag2": lambda side, w, b: AG2Monitor(
        side, side, CountWindow(w), backend=b
    ),
    "ag2_quadtree": lambda side, w, b: QuadtreeAG2Monitor(
        side, side, CountWindow(w), backend=b
    ),
    "rtree": lambda side, w, b: RTreeMonitor(side, side, CountWindow(w)),
    "topk": lambda side, w, b: TopKAG2Monitor(
        side, side, CountWindow(w), k=10, backend=b
    ),
}

#: the subset run on the skewed workloads: the naive denominator plus
#: the two aG2 index backends under comparison (the full matrix would
#: triple the suite's runtime for rows no gate consumes)
BENCH_SKEW_MONITORS = ("naive", "ag2", "ag2_quadtree")

#: the subset that gets a second, numpy-backend row on the canonical
#: workloads when numpy is importable: the naive denominator plus the
#: two aG2 variants the speedup gates consume.  g2/topk accept the
#: backend too but adding their rows would grow the suite's runtime for
#: comparisons no gate reads; rtree has no numpy path at all.
BENCH_VECTOR_MONITORS = ("naive", "ag2", "ag2_quadtree")


@dataclass(frozen=True, slots=True)
class BenchProfile:
    """One benchmark sizing; ``full`` for the committed baseline,
    ``quick`` for the CI smoke job."""

    window_size: int
    batch_size: int
    batches: int
    rect_side: float = 1000.0
    domain: float = 140_000.0
    #: interleaved measurement rounds per dataset; every row's numbers
    #: come from per-batch minima across rounds (see
    #: ``run_profile_suite.run_dataset`` for the noise argument).
    repeats: int = 1
    # multi-query scaling row sizing
    mq_queries: int = 4
    mq_workers: int = 2
    mq_window: int = 2_000
    mq_batch_size: int = 150
    mq_batches: int = 6


PROFILES: Dict[str, BenchProfile] = {
    "full": BenchProfile(
        window_size=4_000, batch_size=200, batches=12, repeats=2
    ),
    "quick": BenchProfile(
        window_size=1_000,
        batch_size=100,
        batches=10,
        repeats=5,
        mq_window=800,
        mq_batch_size=80,
        mq_batches=4,
    ),
}


def _p95(samples: List[float]) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(0.95 * len(ordered)))
    return ordered[index]


def _time_once(
    monitor: MaxRSMonitor, profile: BenchProfile, dataset: str, seed: int
) -> List[float]:
    """Prime the window untimed, then time ``batches`` updates (s).

    Every row starts from the same heap state: the shared dual-rect
    cache is cleared, the previous row's garbage is collected up front,
    and the collector is paused while the clock runs.  Without this the
    rows are order-biased — later monitors inherit a bigger heap and
    pay the earlier rows' GC pauses inside their timed region, which
    showed up as ±30% swings when the suite order was shuffled.
    The module-level cell-cover cache is cleared for the same reason:
    rows share rectangle geometry, so without the reset later rows run
    against a warm cover cache (and the bigger heap behind it) that
    the first rows never saw.
    """
    dual_rect.cache_clear()
    _cell_keys_cached.cache_clear()
    stream = make_stream(dataset, domain=profile.domain, seed=seed)
    monitor.ingest(stream.take(profile.window_size))
    # One full window turnover untimed before the clock starts: the
    # one-shot priming ingest leaves every monitor in an atypical
    # state, and per-batch cost ramps to its steady plateau only once
    # the primed cohort has expired (G2's climbs ~20x over that span,
    # naive's falls ~2x).  Timing from the plateau measures what a
    # long-running monitor actually costs per batch.
    turnover = -(-profile.window_size // profile.batch_size)
    for _ in range(turnover):
        monitor.update(stream.take(profile.batch_size))
    batches = [stream.take(profile.batch_size) for _ in range(profile.batches)]
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        perf = time.perf_counter
        times: List[float] = []
        for batch in batches:
            start = perf()
            monitor.update(batch)
            times.append(perf() - start)
    finally:
        if was_enabled:
            gc.enable()
    return times




def _mq_monitors(profile: BenchProfile) -> Dict[str, MaxRSMonitor]:
    """The multi-query set: aG2 queries of graduated rectangle sizes."""
    sides = [
        profile.rect_side * (0.6 + 0.2 * i) for i in range(profile.mq_queries)
    ]
    return {
        f"q{i}": AG2Monitor(side, side, CountWindow(profile.mq_window))
        for i, side in enumerate(sides)
    }


def _time_group(group, profile: BenchProfile, seed: int) -> float:
    """Total wall seconds to serve ``mq_batches`` through a group."""
    stream = make_stream(
        BENCH_DATASETS["uniform"], domain=profile.domain, seed=seed
    )
    prime = stream.take(profile.mq_window)
    batches = [stream.take(profile.mq_batch_size) for _ in range(profile.mq_batches)]
    group.update(prime)  # untimed warm-up fill
    perf = time.perf_counter
    start = perf()
    for batch in batches:
        group.update(batch)
    return perf() - start


def _run_scaling(profile: BenchProfile, seed: int) -> Dict[str, object]:
    serial = MultiQueryGroup()
    for name, monitor in _mq_monitors(profile).items():
        serial.add(name, monitor)
    serial_s = _time_group(serial, profile, seed)

    parallel = ParallelQueryGroup(workers=profile.mq_workers)
    try:
        for name, monitor in _mq_monitors(profile).items():
            parallel.add(name, monitor)
        parallel_s = _time_group(parallel, profile, seed)
    finally:
        parallel.close()

    return {
        "queries": profile.mq_queries,
        "workers": profile.mq_workers,
        "serial_ms": serial_s * 1000.0,
        "parallel_ms": parallel_s * 1000.0,
        "scaling": serial_s / parallel_s if parallel_s > 0 else 0.0,
    }


def run_profile_suite(
    name: str, seed: int, scaling: bool = True
) -> Dict[str, object]:
    """All rows of one named profile."""
    profile = PROFILES.get(name)
    if profile is None:
        raise InvalidParameterError(
            f"unknown bench profile {name!r}; expected one of {tuple(PROFILES)}"
        )
    rows: List[Dict[str, object]] = []

    def run_dataset(
        ds_label: str,
        dataset: str,
        monitor_labels: Sequence[str],
        vector_rows: bool = False,
    ) -> None:
        """One dataset's rows, measured as interleaved rounds.

        Each round times *every* variant (naive included, numpy-backend
        variants too) back to back over the identical seeded stream, and
        each batch keeps its fastest observation across rounds.
        Scheduler preemption and page faults only ever *add* time, so
        the per-batch minimum converges on the true cost as rounds
        accumulate; interleaving the rounds means every variant's minima
        sample the same span of the host's speed history, so slow drift
        (frequency scaling, allocator layout, co-tenant load) cannot
        land on one side of a ratio only.  ``speedup_vs_naive`` — the
        number the CI gate compares — is the ratio of these denoised
        means.  Single-shot 5-batch means swung ±20–30% between runs on
        a busy 1-CPU host, tripping the 15% gate on pure noise; the
        minima hold rows steady within a few percent.
        """
        rounds = max(1, profile.repeats)
        variants: List[Tuple[str, str]] = [
            (label, "python") for label in monitor_labels
        ]
        if vector_rows and vector.HAVE_NUMPY:
            variants.extend(
                (label, "numpy")
                for label in monitor_labels
                if label in BENCH_VECTOR_MONITORS
            )
        best: Dict[Tuple[str, str], List[float]] = {}
        indexes: Dict[str, str] = {}
        for _ in range(rounds):
            for mon_label, backend in variants:
                monitor = BENCH_MONITORS[mon_label](
                    profile.rect_side, profile.window_size, backend
                )
                indexes[mon_label] = monitor.index_backend
                times = _time_once(monitor, profile, dataset, seed)
                key = (mon_label, backend)
                if key in best:
                    best[key] = [min(a, b) for a, b in zip(best[key], times)]
                else:
                    best[key] = times
        # per-backend naive denominators: a numpy row's speedup is taken
        # against the numpy naive baseline so the ratio isolates the
        # algorithm, not the backend.  (Every variant list includes
        # naive, so the fallback only ever covers a caller that trims
        # monitor_labels below the naive row.)
        naive_mean_ms: Dict[str, float] = {}
        for (mon_label, backend), times in best.items():
            if mon_label == "naive":
                naive_mean_ms[backend] = sum(times) / len(times) * 1000.0
        for mon_label, backend in variants:
            times = best[(mon_label, backend)]
            total = sum(times)
            mean_ms = total / len(times) * 1000.0
            denom = naive_mean_ms.get(backend, naive_mean_ms.get("python", 0.0))
            rows.append(
                {
                    "monitor": mon_label,
                    "dataset": ds_label,
                    "backend": backend,
                    "index": indexes[mon_label],
                    "ops_per_s": (
                        profile.batch_size * len(times) / total
                        if total > 0
                        else 0.0
                    ),
                    "mean_ms": mean_ms,
                    "p95_ms": _p95(times) * 1000.0,
                    "speedup_vs_naive": (
                        denom / mean_ms if mean_ms > 0 else 0.0
                    ),
                }
            )

    for ds_label, dataset in BENCH_DATASETS.items():
        run_dataset(ds_label, dataset, tuple(BENCH_MONITORS), vector_rows=True)
    for ds_label, dataset in BENCH_SKEW_DATASETS.items():
        run_dataset(ds_label, dataset, BENCH_SKEW_MONITORS)
    doc: Dict[str, object] = {
        "window_size": profile.window_size,
        "batch_size": profile.batch_size,
        "batches": profile.batches,
        "repeats": profile.repeats,
        "rows": rows,
    }
    if scaling:
        doc["multi_query"] = _run_scaling(profile, seed)
    return doc


def run_bench(
    seed: int = 42,
    profiles: tuple[str, ...] = ("full", "quick"),
    scaling: bool = True,
) -> Dict[str, object]:
    """The full benchmark document (see module docstring)."""
    return {
        "schema": BENCH_SCHEMA,
        "seed": seed,
        "cpu_count": os.cpu_count() or 1,
        # which sweep backends this host could actually run: the gate
        # uses this to skip numpy-row comparisons on numpy-less hosts
        # instead of failing them as missing rows
        "vector": {
            "available": vector.HAVE_NUMPY,
            "numpy": vector.numpy_version(),
            "numba": vector.numba_version(),
        },
        "profiles": {
            name: run_profile_suite(name, seed, scaling=scaling)
            for name in profiles
        },
    }


def bench_rows(doc: Dict[str, object]) -> List[Dict[str, object]]:
    """Flatten a bench document's monitor rows for the table printer."""
    out: List[Dict[str, object]] = []
    for name, profile_doc in doc["profiles"].items():  # type: ignore[union-attr]
        for row in profile_doc["rows"]:
            flat = {"profile": name}
            flat.update(row)
            out.append(flat)
    return out


def scaling_rows(doc: Dict[str, object]) -> List[Dict[str, object]]:
    """Flatten a bench document's multi-query scaling rows."""
    out: List[Dict[str, object]] = []
    for name, profile_doc in doc["profiles"].items():  # type: ignore[union-attr]
        mq = profile_doc.get("multi_query")
        if mq:
            flat = {"profile": name}
            flat.update(mq)
            out.append(flat)
    return out
