"""Experiment runners: regenerate each table/figure's data series.

Each function mirrors one artefact of the paper's §7 and returns plain
data (lists of dict rows) that the table formatter and the pytest
benchmarks consume.  All runners follow the measurement protocol of the
paper: prime the window to capacity untimed, then time ``cfg.batches``
arrival batches of ``cfg.batch_size`` objects.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.bench.config import ExperimentConfig
from repro.core.ag2 import AG2Monitor
from repro.core.approx import practical_error
from repro.core.g2 import G2Monitor
from repro.core.monitor import MaxRSMonitor
from repro.core.naive import NaiveMonitor
from repro.core.quadtree import QuadtreeAG2Monitor
from repro.core.topk import TopKAG2Monitor
from repro.core.upperbound import make_tightener
from repro.datasets import make_stream
from repro.engine import StreamEngine
from repro.errors import InvalidParameterError
from repro.window import CountWindow

__all__ = [
    "build_monitor",
    "run_config",
    "run_sweep",
    "run_approx_sweep",
    "run_topk_sweep",
    "run_ablation",
]

ALGORITHMS = ("naive", "g2", "ag2")


def build_monitor(
    algorithm: str,
    cfg: ExperimentConfig,
    tighten_mode: str = "off",
) -> MaxRSMonitor:
    """Instantiate one of the paper's algorithms for a configuration."""
    window = CountWindow(cfg.window_size)
    side = cfg.rect_side
    backend = cfg.backend
    if algorithm == "naive":
        # index-free baseline: the index selection does not apply
        return NaiveMonitor(side, side, window, k=cfg.k, backend=backend)
    if algorithm == "g2":
        if cfg.index == "quadtree":
            raise InvalidParameterError(
                "the quadtree index backs ag2 only; g2 is grid-only"
            )
        return G2Monitor(
            side, side, window, cell_size=cfg.cell_size, backend=backend
        )
    if algorithm == "ag2":
        if cfg.index == "quadtree":
            if cfg.k > 1:
                raise InvalidParameterError(
                    "the quadtree index does not support top-k (k > 1)"
                )
            return QuadtreeAG2Monitor(
                side,
                side,
                window,
                tile_size=cfg.cell_size,
                epsilon=cfg.epsilon,
                tighten=make_tightener(tighten_mode),
                backend=backend,
            )
        if cfg.k > 1:
            return TopKAG2Monitor(
                side,
                side,
                window,
                k=cfg.k,
                cell_size=cfg.cell_size,
                backend=backend,
            )
        return AG2Monitor(
            side,
            side,
            window,
            cell_size=cfg.cell_size,
            epsilon=cfg.epsilon,
            tighten=make_tightener(tighten_mode),
            backend=backend,
        )
    raise InvalidParameterError(
        f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}"
    )


def run_config(
    cfg: ExperimentConfig,
    algorithms: Sequence[str],
    tighten_mode: str = "off",
) -> Dict[str, float]:
    """Mean update time (ms) per algorithm for one configuration."""
    monitors = {
        name: build_monitor(name, cfg, tighten_mode=tighten_mode)
        for name in algorithms
    }
    stream = make_stream(cfg.dataset, domain=cfg.domain, seed=cfg.seed)
    engine = StreamEngine(monitors, stream, batch_size=cfg.batch_size)
    engine.prime(cfg.window_size)
    report = engine.run(cfg.batches)
    return {name: report.mean_ms(name) for name in monitors}


def run_sweep(
    base: ExperimentConfig,
    parameter: str,
    values: Sequence[object],
    algorithms: Sequence[str] = ALGORITHMS,
) -> list[dict[str, object]]:
    """Vary one parameter (Figures 7–9): one row per value with the
    mean update time of every algorithm."""
    rows: list[dict[str, object]] = []
    for value in values:
        cfg = base.with_(**{parameter: value})
        times = run_config(cfg, algorithms)
        row: dict[str, object] = {parameter: value}
        row.update(times)
        rows.append(row)
    return rows


def run_approx_sweep(
    base: ExperimentConfig, epsilons: Sequence[float]
) -> list[dict[str, object]]:
    """Figure 10: per ε, the approximate monitor's mean update time and
    its practical error measured against an exact companion fed the
    same batches."""
    rows: list[dict[str, object]] = []
    for eps in epsilons:
        cfg = base.with_(epsilon=eps)
        monitors = {
            "approx": build_monitor("ag2", cfg),
            "exact": build_monitor("ag2", cfg.with_(epsilon=0.0)),
        }
        stream = make_stream(cfg.dataset, domain=cfg.domain, seed=cfg.seed)
        engine = StreamEngine(monitors, stream, batch_size=cfg.batch_size)
        engine.prime(cfg.window_size)
        report = engine.run(cfg.batches, track_weights=True)
        errors = [
            practical_error(a, e)
            for a, e in zip(
                report.weight_history["approx"],
                report.weight_history["exact"],
            )
        ]
        rows.append(
            {
                "epsilon": eps,
                "ag2_ms": report.mean_ms("approx"),
                "exact_ms": report.mean_ms("exact"),
                "mean_error": sum(errors) / len(errors) if errors else 0.0,
                "max_error": max(errors, default=0.0),
            }
        )
    return rows


def run_topk_sweep(
    base: ExperimentConfig, ks: Sequence[int]
) -> list[dict[str, object]]:
    """Figure 11: per k, mean update time of naive vs aG2 top-k."""
    rows: list[dict[str, object]] = []
    for k in ks:
        cfg = base.with_(k=k)
        times = run_config(cfg, ("naive", "ag2"))
        rows.append({"k": k, "naive": times["naive"], "ag2": times["ag2"]})
    return rows


def run_ablation(
    base: ExperimentConfig,
    datasets: Sequence[str],
    modes: Sequence[str] = ("off", "conditional", "always"),
) -> list[dict[str, object]]:
    """Table 5: Algorithm 2 vs Algorithm 5 (conditional / always), mean
    update time per dataset.  ``off`` is plain Algorithm 2."""
    rows: list[dict[str, object]] = []
    for mode in modes:
        row: dict[str, object] = {"mode": mode}
        for dataset in datasets:
            cfg = base.with_(dataset=dataset)
            times = run_config(cfg, ("ag2",), tighten_mode=mode)
            row[dataset] = times["ag2"]
        rows.append(row)
    return rows
