"""Benchmark harness: configurations, runners and table formatting."""

from repro.bench.config import (
    DEFAULT_CONFIG,
    FIG7_WINDOWS,
    FIG8_RATES,
    FIG9_SIDES,
    FIG10_EPSILONS,
    FIG11_KS,
    PAPER_DATASETS,
    SCALE_FACTOR,
    ExperimentConfig,
)
from repro.bench.bench import (
    BENCH_DATASETS,
    BENCH_MONITORS,
    BenchProfile,
    bench_rows,
    run_bench,
    scaling_rows,
)
from repro.bench.profile import ProfileReport, run_profile
from repro.bench.runners import (
    ALGORITHMS,
    build_monitor,
    run_ablation,
    run_approx_sweep,
    run_config,
    run_sweep,
    run_topk_sweep,
)
from repro.bench.tables import format_rows, format_table, series_from_rows

__all__ = [
    "ALGORITHMS",
    "BENCH_DATASETS",
    "BENCH_MONITORS",
    "BenchProfile",
    "DEFAULT_CONFIG",
    "ExperimentConfig",
    "FIG7_WINDOWS",
    "FIG8_RATES",
    "FIG9_SIDES",
    "FIG10_EPSILONS",
    "FIG11_KS",
    "PAPER_DATASETS",
    "ProfileReport",
    "SCALE_FACTOR",
    "bench_rows",
    "build_monitor",
    "format_rows",
    "run_bench",
    "scaling_rows",
    "format_table",
    "run_ablation",
    "run_approx_sweep",
    "run_config",
    "run_profile",
    "run_sweep",
    "run_topk_sweep",
    "series_from_rows",
]
