"""Plain-text table/series formatting for experiment output.

The harness prints the same rows/series the paper reports; these
helpers keep the formatting in one place so the pytest benchmarks, the
standalone runner and the CLI all emit identical artefacts.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table", "format_rows", "series_from_rows"]


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) < 0.01 or abs(value) >= 100_000:
            return f"{value:.3e}"
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width table with a separator rule under the header."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in cells)) if cells else len(str(h))
        for i, h in enumerate(headers)
    ]
    def line(values: Sequence[str]) -> str:
        return "  ".join(v.rjust(w) for v, w in zip(values, widths))

    out: list[str] = []
    if title:
        out.append(title)
    out.append(line([str(h) for h in headers]))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(r) for r in cells)
    return "\n".join(out)


def format_rows(
    rows: Sequence[Mapping[str, object]], title: str = ""
) -> str:
    """Table from dict rows; columns follow the first row's key order."""
    if not rows:
        return title or "(no rows)"
    headers = list(rows[0].keys())
    body = [[row.get(h, "") for h in headers] for row in rows]
    return format_table(headers, body, title=title)


def series_from_rows(
    rows: Sequence[Mapping[str, object]], x: str, y: str
) -> list[tuple[object, object]]:
    """Extract one figure series (x, y) from dict rows."""
    return [(row[x], row[y]) for row in rows]
