"""Fault-tolerant streaming substrate.

The paper's algorithms assume a clean, ordered, uninterrupted stream;
production serving cannot.  This package wraps the existing pipeline
in the four layers a long-running deployment needs, without touching
the algorithms themselves:

* :class:`IngestGuard` + :class:`DeadLetterQueue` — validate records
  at the boundary under an :class:`ErrorPolicy`, quarantine rejects,
  and absorb bounded-lateness out-of-order arrivals through a
  :class:`ReorderBuffer` watermark buffer;
* :class:`MonitorSupervisor` / :class:`RetryingSource` — catch
  mid-update failures and invariant violations, self-heal by
  rebuilding the index from the surviving window, and retry transient
  source errors with backoff;
* :class:`CheckpointManager` — periodic atomic snapshots with
  load-last-checkpoint + replay-tail crash recovery;
* :class:`FaultInjectingSource` — a seeded chaos wrapper (drop,
  duplicate, corrupt, delay) powering the ``maxrs-stream chaos``
  CLI subcommand and the chaos test suite.

See ``docs/RESILIENCE.md`` for policies, watermark semantics, the
checkpoint format, and the recovery guarantees.
"""

from repro.resilience.chaos import FaultInjectingSource
from repro.resilience.checkpoint import CheckpointManager
from repro.resilience.dlq import DeadLetter, DeadLetterQueue, ErrorPolicy
from repro.resilience.guard import IngestGuard, coerce_record
from repro.resilience.harness import ChaosReport, run_chaos
from repro.resilience.reorder import ReorderBuffer
from repro.resilience.supervisor import MonitorSupervisor, RetryingSource

__all__ = [
    "ChaosReport",
    "CheckpointManager",
    "DeadLetter",
    "DeadLetterQueue",
    "ErrorPolicy",
    "FaultInjectingSource",
    "IngestGuard",
    "MonitorSupervisor",
    "ReorderBuffer",
    "RetryingSource",
    "coerce_record",
    "run_chaos",
]
