"""Watermark reorder buffer: bounded-lateness out-of-order absorption.

:class:`TimeWindow` requires non-decreasing timestamps (Property 3 —
expiry in arrival order — depends on it).  Real streams violate that:
network jitter and retried producers deliver records a little late.
The standard streaming answer is a *watermark*: track the maximum
timestamp seen, subtract an allowed lateness bound, and hold records
back in a small buffer until the watermark passes them, emitting in
timestamp order.  Records later than the bound cannot be re-sequenced
without stalling the stream and are handed back to the caller's error
policy instead.

The invariant this buffer guarantees: the emitted sequence has
non-decreasing timestamps, for any input sequence — which is exactly
the precondition :meth:`TimeWindow.push` enforces.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Iterable, List, Tuple

from repro.core.objects import SpatialObject
from repro.errors import InvalidParameterError
from repro.obs.metrics import NULL_METRICS, Metrics

__all__ = ["ReorderBuffer"]


class ReorderBuffer:
    """Min-heap buffer emitting records in timestamp order.

    Args:
        max_lateness: How far (in timestamp units) a record may lag the
            maximum timestamp seen and still be re-sequenced.  ``0``
            keeps in-order records flowing through unbuffered and
            classifies any out-of-order record as too late.
        metrics: Optional scope; emits ``late_reordered`` (absorbed
            out-of-order records) and ``reorder_depth`` (buffered count).
    """

    def __init__(
        self, max_lateness: float = 0.0, metrics: Metrics = NULL_METRICS
    ) -> None:
        if max_lateness < 0:
            raise InvalidParameterError(
                f"max_lateness must be >= 0, got {max_lateness}"
            )
        self.max_lateness = float(max_lateness)
        self.metrics = metrics
        self._heap: List[Tuple[float, int, SpatialObject]] = []
        self._seq = itertools.count()
        self._max_seen = float("-inf")
        self.reordered = 0  # records absorbed out of arrival order

    @property
    def watermark(self) -> float:
        """Completeness frontier: no record older than this is on time."""
        return self._max_seen - self.max_lateness

    @property
    def pending(self) -> int:
        """Records currently held back waiting for the watermark."""
        return len(self._heap)

    def offer(self, obj: SpatialObject) -> list[SpatialObject] | None:
        """Feed one record; return newly releasable records, in
        timestamp order — or ``None`` when the record is later than
        ``max_lateness`` allows (the caller decides drop vs raise).

        Emission rule: a record leaves the buffer once the watermark
        reaches its timestamp, so nothing emitted can ever be trailed
        by an admissible record with a smaller timestamp.
        """
        if obj.timestamp < self.watermark:
            return None
        if obj.timestamp < self._max_seen:
            self.reordered += 1
            self.metrics.inc("late_reordered")
        self._max_seen = max(self._max_seen, obj.timestamp)
        heapq.heappush(self._heap, (obj.timestamp, next(self._seq), obj))
        released = self._release(self.watermark)
        self.metrics.set_gauge("reorder_depth", len(self._heap))
        return released

    def offer_all(
        self, objects: Iterable[SpatialObject]
    ) -> tuple[list[SpatialObject], list[SpatialObject]]:
        """Feed many records; return ``(released, too_late)``."""
        released: list[SpatialObject] = []
        too_late: list[SpatialObject] = []
        for obj in objects:
            out = self.offer(obj)
            if out is None:
                too_late.append(obj)
            else:
                released.extend(out)
        return released, too_late

    def flush(self) -> list[SpatialObject]:
        """Drain everything still buffered, in timestamp order.

        Call at end-of-stream (or checkpoint barrier); afterwards the
        watermark is effectively the max timestamp seen.
        """
        out = self._release(float("inf"))
        self.metrics.set_gauge("reorder_depth", 0)
        return out

    def _release(self, frontier: float) -> list[SpatialObject]:
        out: list[SpatialObject] = []
        while self._heap and self._heap[0][0] <= frontier:
            out.append(heapq.heappop(self._heap)[2])
        return out
