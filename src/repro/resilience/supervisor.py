"""Self-healing supervision for monitors and flaky sources.

:class:`MonitorSupervisor` wraps any :class:`MaxRSMonitor` behind the
same ``update``/``ingest``/``result`` surface and adds the recovery
behaviour a long-running deployment needs:

* a mid-update exception no longer aborts the run — the supervisor
  rebuilds the index from the *surviving window contents* (via
  :func:`repro.persist.snapshot`/:func:`repro.persist.restore`, the
  same machinery checkpoints use) and re-answers over the restored
  window;
* an optional periodic ``check_invariants()`` probe catches silent
  index corruption before it surfaces as a wrong answer, triggering
  the same heal;
* a rejected batch (``WindowOrderError`` — the window refused it
  before any index state changed) is *not* corruption: the batch is
  dropped, counted, and the previous answer stands.

:class:`RetryingSource` is the companion for the other side of the
pipe: transient source failures (flaky file systems, network hiccups)
are retried with exponential backoff before giving up.
"""

from __future__ import annotations

import random
import time
import types
from typing import Callable, Iterator, Sequence, Type

from repro.core.monitor import MaxRSMonitor
from repro.core.objects import SpatialObject
from repro.core.spaces import MaxRSResult
from repro.errors import (
    InvalidParameterError,
    InvariantViolationError,
    SourceRetryExhaustedError,
    UnrecoverableMonitorError,
    WindowOrderError,
)
from repro.obs.metrics import NULL_METRICS, Metrics
from repro.streams.source import StreamSource
from repro.window.base import SlidingWindow

__all__ = ["MonitorSupervisor", "RetryingSource"]


class MonitorSupervisor:
    """Fault-isolating wrapper around one monitor.

    Drop-in for a :class:`MaxRSMonitor` anywhere the library consumes
    one structurally (``StreamEngine``, ``MultiQueryGroup``,
    ``CheckpointManager``): it forwards ``update``/``ingest``/
    ``attach_metrics`` and exposes ``window``/``result``/``stats`` from
    the supervised monitor.

    Args:
        monitor: The monitor to supervise.  Must be snapshotable by
            :mod:`repro.persist` unless ``rebuild`` is given.
        probe_every: Run ``check_invariants()`` after every N-th
            successful update (0 disables probing).  Monitors without
            the method are probed as no-ops.
        max_heals: Heal budget; one more failure past it raises
            :class:`UnrecoverableMonitorError` (None = unlimited).
        rebuild: Optional factory returning a *fresh, empty* monitor of
            the same configuration — used instead of the persist
            round-trip, e.g. for monitor types persist cannot snapshot.
        metrics: Observability scope; counters ``monitor_failures``,
            ``invariant_failures``, ``heals``, ``batches_rejected``,
            ``objects_resurrected``.
        on_heal: Optional callback invoked (with the triggering
            exception) after every successful heal.  This is how heal
            events feed an overload
            :class:`~repro.overload.breaker.CircuitBreaker`: repeated
            index rebuilds are a symptom that serving stale answers
            beats continuing to limp (pass ``breaker.note_heal``).
    """

    def __init__(
        self,
        monitor: MaxRSMonitor,
        *,
        probe_every: int = 0,
        max_heals: int | None = None,
        rebuild: Callable[[], MaxRSMonitor] | None = None,
        metrics: Metrics = NULL_METRICS,
        on_heal: Callable[[BaseException], None] | None = None,
    ) -> None:
        self._monitor = monitor
        self.probe_every = max(0, int(probe_every))
        self.max_heals = max_heals
        self._rebuild = rebuild
        self.on_heal = on_heal
        self.metrics = metrics
        self.failures = 0  # update/ingest raised mid-flight
        self.invariant_failures = 0  # probe caught corruption
        self.heals = 0  # successful index rebuilds
        self.batches_rejected = 0  # window refused the batch cleanly
        self._updates_since_probe = 0

    # -- monitor surface ---------------------------------------------------

    @property
    def monitor(self) -> MaxRSMonitor:
        """The currently live supervised monitor (changes on heal)."""
        return self._monitor

    @property
    def window(self) -> SlidingWindow:
        return self._monitor.window

    @property
    def result(self) -> MaxRSResult:
        return self._monitor.result

    @property
    def stats(self):
        return self._monitor.stats

    @property
    def rect_width(self) -> float:
        return self._monitor.rect_width

    @property
    def rect_height(self) -> float:
        return self._monitor.rect_height

    def attach_metrics(self, metrics: Metrics) -> None:
        """Engine attachment point: supervisor counters live alongside
        the monitor's own scope (under ``supervisor``)."""
        self.metrics = metrics.scope("supervisor")
        self._monitor.attach_metrics(metrics)

    def check_invariants(self) -> None:
        """Forward to the supervised monitor (no-op when unsupported)."""
        probe = getattr(self._monitor, "check_invariants", None)
        if probe is not None:
            probe()

    # -- supervised operations ---------------------------------------------

    def update(self, objects: Sequence[SpatialObject]) -> MaxRSResult:
        """Push a batch; heal and re-answer instead of propagating."""
        try:
            result = self._monitor.update(objects)
        except WindowOrderError:
            # the window rejected the batch before any state changed:
            # drop it and keep the previous answer (an IngestGuard
            # upstream makes this path unreachable in practice)
            self.batches_rejected += 1
            self.metrics.inc("batches_rejected")
            return self._monitor.result
        except Exception as exc:  # index corrupted mid-update
            self.failures += 1
            self.metrics.inc("monitor_failures")
            self._heal(exc)
            return self._monitor.update([])
        self._maybe_probe()
        return self._monitor.result if result is None else result

    def ingest(self, objects: Sequence[SpatialObject]) -> None:
        """Bulk-load without an answer, with the same healing."""
        try:
            self._monitor.ingest(objects)
        except WindowOrderError:
            self.batches_rejected += 1
            self.metrics.inc("batches_rejected")
        except Exception as exc:
            self.failures += 1
            self.metrics.inc("monitor_failures")
            self._heal(exc)

    # -- healing -----------------------------------------------------------

    def _maybe_probe(self) -> None:
        if not self.probe_every:
            return
        self._updates_since_probe += 1
        if self._updates_since_probe < self.probe_every:
            return
        self._updates_since_probe = 0
        try:
            self.check_invariants()
        except InvariantViolationError as exc:
            self.invariant_failures += 1
            self.metrics.inc("invariant_failures")
            self._heal(exc)

    def _heal(self, cause: BaseException) -> None:
        """Rebuild the index from the surviving window contents."""
        if self.max_heals is not None and self.heals >= self.max_heals:
            raise UnrecoverableMonitorError(
                f"heal budget exhausted after {self.heals} heals"
            ) from cause
        survivors = tuple(self._monitor.window.contents)
        try:
            if self._rebuild is not None:
                healed = self._rebuild()
                if survivors:
                    healed.ingest(list(survivors))
            else:
                from repro import persist

                healed = persist.restore(persist.snapshot(self._monitor))
        except Exception as heal_exc:
            raise UnrecoverableMonitorError(
                f"could not rebuild monitor from {len(survivors)} "
                f"surviving objects: {heal_exc}"
            ) from cause
        if self._monitor.metrics is not NULL_METRICS:
            healed.attach_metrics(self._monitor.metrics)
        self._monitor = healed
        self.heals += 1
        self._updates_since_probe = 0
        self.metrics.inc("heals")
        self.metrics.inc("objects_resurrected", len(survivors))
        if self.on_heal is not None:
            self.on_heal(cause)


class RetryingSource(StreamSource):
    """Retry-with-backoff wrapper for transiently failing sources.

    The wrapped source's iterator is re-polled after a failure, so it
    must tolerate ``__next__`` being called again after raising (custom
    iterator classes do; a plain generator is closed by its first
    exception — wrap the *source object*, and the iterator is recreated
    and fast-forwarded past the records already delivered).

    Args:
        source: The flaky upstream.
        retry_on: Exception types treated as transient (anything else
            propagates immediately).
        max_retries: Attempts per record beyond the first; exhausting
            them raises :class:`SourceRetryExhaustedError`.
        base_delay: First backoff sleep, seconds.
        backoff: Multiplier applied per consecutive failure.
        jitter: Fraction of each backoff sleep that is randomised, in
            ``[0, 1]``.  ``0`` keeps the classic deterministic ladder;
            ``1`` is *full jitter* — the sleep is uniform in
            ``[0, delay]`` — which de-synchronises a fleet of retriers
            hammering one recovering upstream.
        max_elapsed: Cap, in seconds, on the total time one record may
            spend in its retry loop; once exceeded the loop gives up
            with :class:`SourceRetryExhaustedError` even if attempts
            remain (None = attempts are the only budget).
        sleep: Injectable sleeper for tests (defaults to ``time.sleep``).
        rng: Injectable uniform-[0,1) generator for the jitter (defaults
            to :func:`random.random`); seed a ``random.Random`` and pass
            its ``.random`` for reproducible schedules.
        clock: Injectable monotonic clock for the ``max_elapsed``
            budget (defaults to :func:`time.monotonic`).
        metrics: Registry scope; retry behaviour is observable without
            timing sleeps — counters ``source_retries``,
            ``source_resets``, ``source_retry_gave_up`` and the
            ``source_retry_sleep_s`` histogram.
    """

    def __init__(
        self,
        source: StreamSource | Iterator[SpatialObject],
        *,
        retry_on: tuple[Type[BaseException], ...] = (OSError, TimeoutError),
        max_retries: int = 3,
        base_delay: float = 0.05,
        backoff: float = 2.0,
        jitter: float = 0.0,
        max_elapsed: float | None = None,
        sleep: Callable[[float], None] = time.sleep,
        rng: Callable[[], float] | None = None,
        clock: Callable[[], float] = time.monotonic,
        metrics: Metrics = NULL_METRICS,
    ) -> None:
        if not 0.0 <= jitter <= 1.0:
            raise InvalidParameterError(
                f"jitter must be in [0, 1], got {jitter}"
            )
        if max_elapsed is not None and max_elapsed <= 0:
            raise InvalidParameterError(
                f"max_elapsed must be positive, got {max_elapsed}"
            )
        self._source = source
        self.retry_on = retry_on
        self.max_retries = max(0, int(max_retries))
        self.base_delay = base_delay
        self.backoff = backoff
        self.jitter = float(jitter)
        self.max_elapsed = max_elapsed
        self._sleep = sleep
        self._rng = rng if rng is not None else random.random
        self._clock = clock
        self.metrics = metrics
        self.retries = 0  # transient failures retried
        self.resets = 0  # iterator rebuilds (generator sources)
        self.gave_up = 0  # retry loops that exhausted their budget

    def __iter__(self) -> Iterator[SpatialObject]:
        iterator = iter(self._source)
        delivered = 0
        while True:
            attempts = 0
            delay = self.base_delay
            started: float | None = None
            while True:
                try:
                    obj = next(iterator)
                    break
                except StopIteration:
                    return
                except self.retry_on as exc:
                    now = self._clock()
                    if started is None:
                        started = now
                    attempts += 1
                    self.retries += 1
                    self.metrics.inc("source_retries")
                    if attempts > self.max_retries:
                        self._give_up()
                        raise SourceRetryExhaustedError(
                            f"source still failing after {self.max_retries} "
                            f"retries: {exc}"
                        ) from exc
                    if (
                        self.max_elapsed is not None
                        and now - started >= self.max_elapsed
                    ):
                        self._give_up()
                        raise SourceRetryExhaustedError(
                            f"source still failing after "
                            f"{now - started:.3f}s, past the max_elapsed "
                            f"budget of {self.max_elapsed}s: {exc}"
                        ) from exc
                    pause = delay
                    if self.jitter:
                        # full jitter at 1.0: uniform in [0, delay]
                        pause = delay * (
                            (1.0 - self.jitter) + self.jitter * self._rng()
                        )
                    self.metrics.observe("source_retry_sleep_s", pause)
                    self._sleep(pause)
                    delay *= self.backoff
                    iterator = self._reset(iterator, delivered)
            delivered += 1
            yield obj

    def _give_up(self) -> None:
        self.gave_up += 1
        self.metrics.inc("source_retry_gave_up")

    def _reset(
        self, iterator: Iterator[SpatialObject], delivered: int
    ) -> Iterator[SpatialObject]:
        """Recreate a closed generator, skipping delivered records."""
        if not isinstance(iterator, types.GeneratorType):
            return iterator  # resumable iterator: keep polling it
        fresh = iter(self._source)
        for _ in range(delivered):
            next(fresh)
        self.resets += 1
        self.metrics.inc("source_resets")
        return fresh
