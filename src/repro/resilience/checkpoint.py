"""Atomic periodic checkpoints with load-last + replay-tail recovery.

A checkpoint is a :mod:`repro.persist` snapshot plus a *stream
position* (how many arrival batches had been consumed when it was
taken).  Recovery is then exactly two steps:

1. load the last complete checkpoint (:func:`CheckpointManager.load`) —
   atomic writes guarantee the file on disk is always a complete
   document, never a torn write;
2. replay the tail: re-feed the batches after the recorded position
   (stream sources in this library are deterministic and replayable),
   which reproduces the uninterrupted run bit-for-bit because the
   indexes are pure functions of the arrival sequence.

The manager also keeps a bounded history of previous checkpoints
(``keep``), so a checkpoint corrupted *after* being written (disk
fault) still leaves an older recovery point behind.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro import persist
from repro.core.monitor import MaxRSMonitor
from repro.errors import InvalidParameterError, SnapshotError
from repro.obs.metrics import NULL_METRICS, Metrics

__all__ = ["CheckpointManager"]

_CHECKPOINT_FORMAT = 1


def _snapshot_target(monitor: Any) -> MaxRSMonitor:
    """Unwrap a MonitorSupervisor (or anything exposing ``.monitor``)."""
    inner = getattr(monitor, "monitor", None)
    return inner if isinstance(inner, MaxRSMonitor) else monitor


class CheckpointManager:
    """Periodic atomic snapshots of one monitor (or its supervisor).

    Args:
        monitor: Monitor to checkpoint; a
            :class:`~repro.resilience.supervisor.MonitorSupervisor` is
            unwrapped automatically.
        path: Checkpoint file.  Rotated history lives next to it as
            ``<name>.1``, ``<name>.2``, … (most recent first).
        every: Take a checkpoint each time this many batches have been
            noted (0 disables automatic checkpointing; :meth:`checkpoint`
            still works on demand).
        keep: How many *previous* checkpoints to retain besides the
            current one.
        metrics: Scope for ``checkpoints_written`` / ``recoveries``
            counters and the ``checkpoint_batch_index`` gauge.
    """

    def __init__(
        self,
        monitor: Any,
        path: str | Path,
        *,
        every: int = 0,
        keep: int = 1,
        metrics: Metrics = NULL_METRICS,
    ) -> None:
        if every < 0:
            raise InvalidParameterError(f"every must be >= 0, got {every}")
        if keep < 0:
            raise InvalidParameterError(f"keep must be >= 0, got {keep}")
        self._monitor = monitor
        self.path = Path(path)
        self.every = every
        self.keep = keep
        self.metrics = metrics
        self.batch_index = 0  # arrival batches consumed so far
        self.checkpoints_written = 0

    # -- writing -----------------------------------------------------------

    def note_batch(self) -> bool:
        """Record one consumed batch; checkpoint when the period elapses.

        Returns True when a checkpoint was written for this batch —
        the engine calls this after every successfully applied batch.
        """
        self.batch_index += 1
        if self.every and self.batch_index % self.every == 0:
            self.checkpoint()
            return True
        return False

    def checkpoint(self) -> Path:
        """Write the current state atomically, rotating history."""
        document = {
            "format": _CHECKPOINT_FORMAT,
            "batch_index": self.batch_index,
            "state": persist.snapshot(_snapshot_target(self._monitor)),
        }
        self._rotate()
        persist.atomic_write_json(self.path, document)
        self.checkpoints_written += 1
        self.metrics.inc("checkpoints_written")
        self.metrics.set_gauge("checkpoint_batch_index", self.batch_index)
        return self.path

    def _rotate(self) -> None:
        if self.keep <= 0 or not self.path.exists():
            return
        # shift <name>.(keep-1) ... <name>.1 up one slot, then current → .1
        oldest = self.path.with_name(f"{self.path.name}.{self.keep}")
        if oldest.exists():
            oldest.unlink()
        for slot in range(self.keep - 1, 0, -1):
            src = self.path.with_name(f"{self.path.name}.{slot}")
            if src.exists():
                src.replace(self.path.with_name(f"{self.path.name}.{slot + 1}"))
        self.path.replace(self.path.with_name(f"{self.path.name}.1"))

    # -- recovery ----------------------------------------------------------

    @staticmethod
    def load(path: str | Path) -> tuple[MaxRSMonitor, int]:
        """Rebuild ``(monitor, batch_index)`` from one checkpoint file.

        Truncated files, non-JSON content, unknown format versions and
        missing fields all raise a :class:`~repro.errors.ReproError`
        subclass (:class:`SnapshotError` / ``InvalidParameterError``),
        never a bare ``KeyError``/``JSONDecodeError``.
        """
        document = persist.read_json(path)
        if not isinstance(document, dict):
            raise SnapshotError(f"checkpoint {path} is not a JSON object")
        if document.get("format") != _CHECKPOINT_FORMAT:
            raise SnapshotError(
                f"unsupported checkpoint format "
                f"{document.get('format')!r} in {path}"
            )
        if "state" not in document or "batch_index" not in document:
            raise SnapshotError(f"checkpoint {path} is missing fields")
        monitor = persist.restore(document["state"])
        return monitor, int(document["batch_index"])

    @classmethod
    def recover(
        cls, path: str | Path, *, metrics: Metrics = NULL_METRICS
    ) -> tuple[MaxRSMonitor, int]:
        """Load the newest readable checkpoint, falling back through
        the rotated history when the current file is damaged.

        Raises :class:`SnapshotError` when no retained checkpoint is
        readable.
        """
        primary = Path(path)
        candidates = [primary]
        slot = 1
        while True:
            rotated = primary.with_name(f"{primary.name}.{slot}")
            if not rotated.exists():
                break
            candidates.append(rotated)
            slot += 1
        last_error: Exception | None = None
        for candidate in candidates:
            if not candidate.exists():
                continue
            try:
                monitor, batch_index = cls.load(candidate)
            except (SnapshotError, InvalidParameterError) as exc:
                last_error = exc
                continue
            metrics.inc("recoveries")
            return monitor, batch_index
        raise SnapshotError(
            f"no readable checkpoint at {primary}"
            + (f" (last error: {last_error})" if last_error else "")
        )

    def resume(self, monitor: Any, batch_index: int) -> None:
        """Rebind the manager after recovery so periods keep aligning."""
        self._monitor = monitor
        self.batch_index = int(batch_index)
