"""Atomic periodic checkpoints with load-last + replay-tail recovery.

A checkpoint is a :mod:`repro.persist` snapshot plus a *stream
position* (how many arrival batches had been consumed when it was
taken).  Recovery is then exactly two steps:

1. load the last complete checkpoint (:func:`CheckpointManager.load`) —
   atomic writes guarantee the file on disk is always a complete
   document, never a torn write;
2. replay the tail: re-feed the batches after the recorded position,
   which reproduces the uninterrupted run bit-for-bit because the
   indexes are pure functions of the arrival sequence.

The replay tail can come from two places.  A deterministic, replayable
source can simply be re-read.  For live streams — the paper's actual
setting, where an arrival is gone once consumed — the tail comes from
the write-ahead log instead (:mod:`repro.durability`), which journals
every admitted batch before it reaches the compute tier.  The manager
exposes :attr:`CheckpointManager.retention_floor` so WAL compaction
never deletes a segment some retained checkpoint might still need.

The manager also keeps a bounded history of previous checkpoints
(``keep``), so a checkpoint corrupted *after* being written (disk
fault) still leaves an older recovery point behind.  The write order
makes ``ENOSPC`` safe: the new document is written and fsynced to a
temporary file *before* the history is rotated, so a full disk raises
:class:`~repro.errors.DiskFullError` with every previous checkpoint
still readable in place.
"""

from __future__ import annotations

import json
import os
import tempfile
import zlib
from pathlib import Path
from typing import Any

from repro import persist
from repro.core.monitor import MaxRSMonitor
from repro.errors import (
    CheckpointChecksumError,
    InvalidParameterError,
    SnapshotError,
    wrap_os_error,
)
from repro.obs.metrics import NULL_METRICS, Metrics

__all__ = ["CheckpointManager"]

_CHECKPOINT_FORMAT = 1


def _snapshot_target(monitor: Any) -> MaxRSMonitor:
    """Unwrap to the snapshotable monitor.

    A monitor exposing ``checkpoint_target()`` (the degradation ladder)
    nominates its own persistable view; otherwise a MonitorSupervisor
    (or anything exposing ``.monitor``) is unwrapped.
    """
    nominate = getattr(monitor, "checkpoint_target", None)
    if callable(nominate):
        target = nominate()
        if isinstance(target, MaxRSMonitor):
            return target
    inner = getattr(monitor, "monitor", None)
    return inner if isinstance(inner, MaxRSMonitor) else monitor


def _payload_crc(batch_index: int, state: Any) -> int:
    """CRC32 over the canonical JSON form of the checkpoint payload.

    Canonical = sorted keys, no whitespace — the same bytes regardless
    of envelope key order, so the stored checksum survives a parse +
    re-serialise round trip (floats repr-round-trip exactly in JSON).
    """
    blob = json.dumps(
        {"batch_index": batch_index, "state": state},
        sort_keys=True,
        separators=(",", ":"),
    ).encode()
    return zlib.crc32(blob) & 0xFFFFFFFF


class CheckpointManager:
    """Periodic atomic snapshots of one monitor (or its supervisor).

    Args:
        monitor: Monitor to checkpoint; a
            :class:`~repro.resilience.supervisor.MonitorSupervisor` is
            unwrapped automatically.
        path: Checkpoint file.  Rotated history lives next to it as
            ``<name>.1``, ``<name>.2``, … (most recent first).
        every: Take a checkpoint each time this many batches have been
            noted (0 disables automatic checkpointing; :meth:`checkpoint`
            still works on demand).
        keep: How many *previous* checkpoints to retain besides the
            current one.
        metrics: Scope for ``checkpoints_written`` / ``recoveries``
            counters and the ``checkpoint_batch_index`` gauge.
    """

    def __init__(
        self,
        monitor: Any,
        path: str | Path,
        *,
        every: int = 0,
        keep: int = 1,
        metrics: Metrics = NULL_METRICS,
    ) -> None:
        if every < 0:
            raise InvalidParameterError(f"every must be >= 0, got {every}")
        if keep < 0:
            raise InvalidParameterError(f"keep must be >= 0, got {keep}")
        self._monitor = monitor
        self.path = Path(path)
        self.every = every
        self.keep = keep
        self.metrics = metrics
        self.batch_index = 0  # arrival batches consumed so far
        self.checkpoints_written = 0
        self._fsync = os.fsync  # injectable for disk-fault tests
        # positions (batch indexes) of the retained checkpoints on
        # disk, newest first — scanned so a manager constructed over an
        # existing directory still knows what its rotations cover
        self.positions: list[int] = self._scan_positions()

    # -- writing -----------------------------------------------------------

    def note_batch(self) -> bool:
        """Record one consumed batch; checkpoint when the period elapses.

        Returns True when a checkpoint was written for this batch —
        the engine calls this after every successfully applied batch.
        """
        self.batch_index += 1
        if self.every and self.batch_index % self.every == 0:
            self.checkpoint()
            return True
        return False

    def checkpoint(self) -> Path:
        """Write the current state atomically, rotating history.

        The new document reaches stable storage (mkstemp + fsync in the
        target directory) *before* the rotation touches any existing
        file, so a disk failure mid-write — ``ENOSPC`` included —
        leaves every previously retained checkpoint readable in place
        and raises a typed :class:`~repro.errors.DurableWriteError`
        (:class:`~repro.errors.DiskFullError` for a full disk), never a
        bare ``OSError``.
        """
        state = persist.snapshot(_snapshot_target(self._monitor))
        document = {
            "format": _CHECKPOINT_FORMAT,
            "batch_index": self.batch_index,
            "state": state,
            "crc32": _payload_crc(self.batch_index, state),
        }
        fd, tmp_name = tempfile.mkstemp(
            dir=self.path.parent or Path("."),
            prefix=self.path.name,
            suffix=".tmp",
        )
        try:
            try:
                with os.fdopen(fd, "w") as fh:
                    json.dump(document, fh)
                    fh.flush()
                    self._fsync(fh.fileno())
                # the new checkpoint is durable; only now disturb history
                self._rotate()
                os.replace(tmp_name, self.path)
            except OSError as exc:
                raise wrap_os_error(exc, "checkpoint write") from exc
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.positions = ([self.batch_index] + self.positions)[
            : self.keep + 1
        ]
        self.checkpoints_written += 1
        self.metrics.inc("checkpoints_written")
        self.metrics.set_gauge("checkpoint_batch_index", self.batch_index)
        return self.path

    def _rotate(self) -> None:
        if self.keep <= 0 or not self.path.exists():
            return
        # shift <name>.(keep-1) ... <name>.1 up one slot, then current → .1
        oldest = self.path.with_name(f"{self.path.name}.{self.keep}")
        if oldest.exists():
            oldest.unlink()
        for slot in range(self.keep - 1, 0, -1):
            src = self.path.with_name(f"{self.path.name}.{slot}")
            if src.exists():
                src.replace(self.path.with_name(f"{self.path.name}.{slot + 1}"))
        self.path.replace(self.path.with_name(f"{self.path.name}.1"))

    # -- retention ---------------------------------------------------------

    def _scan_positions(self) -> list[int]:
        """Batch indexes of the checkpoints already on disk, newest first.

        Unreadable files are skipped — a checkpoint that cannot be
        parsed can never be a recovery target, so it does not constrain
        WAL retention either.
        """
        candidates = [self.path]
        slot = 1
        while True:
            rotated = self.path.with_name(f"{self.path.name}.{slot}")
            if not rotated.exists():
                break
            candidates.append(rotated)
            slot += 1
        found: list[int] = []
        for candidate in candidates:
            if not candidate.exists():
                continue
            try:
                document = persist.read_json(candidate)
                found.append(int(document["batch_index"]))
            except (SnapshotError, InvalidParameterError, KeyError,
                    TypeError, ValueError):
                continue
        return sorted(found, reverse=True)

    @property
    def retention_floor(self) -> int:
        """Oldest position any retained checkpoint could recover to.

        WAL compaction must use *this* — not the newest position —
        because :meth:`recover` falls back through the rotation history
        and the oldest readable rotation still needs its replay tail.
        Zero (retain everything) when no checkpoint exists yet.
        """
        return min(self.positions) if self.positions else 0

    @property
    def last_position(self) -> int:
        """Position of the newest checkpoint written or found on disk."""
        return max(self.positions) if self.positions else 0

    # -- recovery ----------------------------------------------------------

    @staticmethod
    def load(
        path: str | Path, *, verify_checksum: bool = True
    ) -> tuple[MaxRSMonitor, int]:
        """Rebuild ``(monitor, batch_index)`` from one checkpoint file.

        Truncated files, non-JSON content, unknown format versions and
        missing fields all raise a :class:`~repro.errors.ReproError`
        subclass (:class:`SnapshotError` / ``InvalidParameterError``),
        never a bare ``KeyError``/``JSONDecodeError``.  When the
        envelope carries a ``crc32`` and ``verify_checksum`` is on,
        silent payload corruption raises
        :class:`~repro.errors.CheckpointChecksumError`; checksum-less
        checkpoints from older versions still load.
        """
        document = persist.read_json(path)
        if not isinstance(document, dict):
            raise SnapshotError(f"checkpoint {path} is not a JSON object")
        if document.get("format") != _CHECKPOINT_FORMAT:
            raise SnapshotError(
                f"unsupported checkpoint format "
                f"{document.get('format')!r} in {path}"
            )
        if "state" not in document or "batch_index" not in document:
            raise SnapshotError(f"checkpoint {path} is missing fields")
        batch_index = int(document["batch_index"])
        stored_crc = document.get("crc32")
        if verify_checksum and stored_crc is not None:
            actual = _payload_crc(batch_index, document["state"])
            if actual != int(stored_crc):
                raise CheckpointChecksumError(
                    f"checkpoint {path} failed its checksum: stored "
                    f"crc32 {stored_crc}, payload hashes to {actual}"
                )
        monitor = persist.restore(document["state"])
        return monitor, batch_index

    @classmethod
    def recover(
        cls,
        path: str | Path,
        *,
        metrics: Metrics = NULL_METRICS,
        verify_checksum: bool = True,
    ) -> tuple[MaxRSMonitor, int]:
        """Load the newest readable checkpoint, falling back through
        the rotated history when the current file is damaged.

        Every damaged candidate skipped increments the
        ``checkpoint_fallbacks`` counter (``checkpoint_checksum_failures``
        additionally when the damage was a checksum mismatch), so silent
        corruption leaves an observable trace even though recovery
        succeeds.  Raises :class:`SnapshotError` when no retained
        checkpoint is readable.
        """
        primary = Path(path)
        candidates = [primary]
        slot = 1
        while True:
            rotated = primary.with_name(f"{primary.name}.{slot}")
            if not rotated.exists():
                break
            candidates.append(rotated)
            slot += 1
        last_error: Exception | None = None
        for candidate in candidates:
            if not candidate.exists():
                continue
            try:
                monitor, batch_index = cls.load(
                    candidate, verify_checksum=verify_checksum
                )
            except (SnapshotError, InvalidParameterError) as exc:
                if isinstance(exc, CheckpointChecksumError):
                    metrics.inc("checkpoint_checksum_failures")
                metrics.inc("checkpoint_fallbacks")
                last_error = exc
                continue
            metrics.inc("recoveries")
            return monitor, batch_index
        raise SnapshotError(
            f"no readable checkpoint at {primary}"
            + (f" (last error: {last_error})" if last_error else "")
        )

    def resume(self, monitor: Any, batch_index: int) -> None:
        """Rebind the manager after recovery so periods keep aligning."""
        self._monitor = monitor
        self.batch_index = int(batch_index)
