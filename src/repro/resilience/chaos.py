"""Deterministic fault injection for chaos-testing the pipeline.

:class:`FaultInjectingSource` wraps any stream source and perturbs it
with the four classic stream pathologies — **drop** (record lost),
**duplicate** (at-least-once delivery), **corrupt** (the record decays
into a malformed raw payload), and **delay** (the record is held back
and re-emitted later with its original timestamp, i.e. a bounded-
lateness out-of-order arrival).  Everything is driven by one private
seeded RNG, so a chaos run is exactly reproducible: same seed, same
faults, same positions.

The injected-fault tallies are public attributes, which is what lets
the chaos CLI (and the soak test) prove end-to-end accounting: every
corrupt record must reappear in the dead-letter queue, every delayed
record must be either re-sequenced or dead-lettered as late, and the
supervised answer must match a naive recompute over whatever survived.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Tuple

from repro.core.objects import SpatialObject
from repro.errors import InvalidParameterError
from repro.streams.source import StreamSource

__all__ = ["FaultInjectingSource"]

# ways a record can decay in flight; each produces a payload that fails
# IngestGuard validation for a *different* reason
_CORRUPTIONS = ("nan_x", "inf_y", "negative_weight", "garbage_field", "missing_y")


def _corrupt(obj: SpatialObject, kind: str) -> object:
    if kind == "nan_x":
        return {"x": float("nan"), "y": obj.y, "weight": obj.weight,
                "timestamp": obj.timestamp}
    if kind == "inf_y":
        return (obj.x, float("inf"), obj.weight, obj.timestamp)
    if kind == "negative_weight":
        return {"x": obj.x, "y": obj.y, "weight": -abs(obj.weight) - 1.0,
                "timestamp": obj.timestamp}
    if kind == "garbage_field":
        return (obj.x, obj.y, "garbage", obj.timestamp)
    return {"x": obj.x, "weight": obj.weight, "timestamp": obj.timestamp}


class FaultInjectingSource(StreamSource):
    """Seeded chaos wrapper: drop / duplicate / corrupt / delay.

    Fault probabilities are evaluated per record, mutually exclusively
    (one record suffers at most one fault).  A delayed record re-enters
    the stream after 1..``max_delay`` subsequent upstream records, out
    of timestamp order but by a bounded amount — sized to be absorbable
    by an :class:`~repro.resilience.guard.IngestGuard` whose
    ``max_lateness`` covers ``max_delay`` upstream timestamp steps.

    Args:
        source: The clean upstream.
        seed: Chaos RNG seed (independent of the stream's own RNG).
        p_drop / p_duplicate / p_corrupt / p_delay: Per-record fault
            probabilities; must sum to at most 1.
        max_delay: Maximum hold-back, in upstream record positions.
    """

    def __init__(
        self,
        source: StreamSource | Iterator[SpatialObject],
        *,
        seed: int = 0,
        p_drop: float = 0.0,
        p_duplicate: float = 0.0,
        p_corrupt: float = 0.0,
        p_delay: float = 0.0,
        max_delay: int = 3,
    ) -> None:
        for name, p in (
            ("p_drop", p_drop),
            ("p_duplicate", p_duplicate),
            ("p_corrupt", p_corrupt),
            ("p_delay", p_delay),
        ):
            if not 0.0 <= p <= 1.0:
                raise InvalidParameterError(
                    f"{name} must be in [0, 1], got {p}"
                )
        if p_drop + p_duplicate + p_corrupt + p_delay > 1.0:
            raise InvalidParameterError(
                "fault probabilities must sum to at most 1"
            )
        if max_delay <= 0:
            raise InvalidParameterError(
                f"max_delay must be positive, got {max_delay}"
            )
        self._source = source
        self.seed = seed
        self.p_drop = p_drop
        self.p_duplicate = p_duplicate
        self.p_corrupt = p_corrupt
        self.p_delay = p_delay
        self.max_delay = max_delay
        self.drops = 0
        self.duplicates = 0
        self.corrupted = 0
        self.delayed = 0
        self.emitted = 0  # records (incl. corrupt payloads) sent on

    @property
    def injected(self) -> int:
        """Total faults injected so far."""
        return self.drops + self.duplicates + self.corrupted + self.delayed

    def __iter__(self) -> Iterator[object]:
        rng = random.Random(self.seed)
        pending: List[Tuple[int, SpatialObject]] = []  # (due position, obj)
        position = 0
        for obj in self._source:
            position += 1
            # release held-back records that are now due: they come out
            # *after* newer records, with their original (older) stamp
            due = [p for p in pending if p[0] <= position]
            if due:
                pending = [p for p in pending if p[0] > position]
                for _, late in due:
                    self.emitted += 1
                    yield late
            roll = rng.random()
            if roll < self.p_drop:
                self.drops += 1
                continue
            roll -= self.p_drop
            if roll < self.p_duplicate:
                self.duplicates += 1
                self.emitted += 2
                yield obj
                yield obj
                continue
            roll -= self.p_duplicate
            if roll < self.p_corrupt:
                self.corrupted += 1
                self.emitted += 1
                yield _corrupt(obj, _CORRUPTIONS[rng.randrange(len(_CORRUPTIONS))])
                continue
            roll -= self.p_corrupt
            if roll < self.p_delay:
                self.delayed += 1
                pending.append((position + rng.randint(1, self.max_delay), obj))
                continue
            self.emitted += 1
            yield obj
        # end of stream: flush whatever is still held back, oldest due first
        for _, late in sorted(pending, key=lambda p: p[0]):
            self.emitted += 1
            yield late
