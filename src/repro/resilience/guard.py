"""IngestGuard: the validated, ordered boundary in front of every monitor.

Everything downstream of the guard — windows, indexes, monitors —
assumes clean, timestamp-ordered :class:`SpatialObject` instances.  The
guard is where dirty reality is converted into that contract:

* **validation** — raw payloads (CSV rows, dicts, tuples, or objects
  whose construction fails) are coerced to :class:`SpatialObject`;
  failures are handled per :class:`ErrorPolicy` (raise / skip /
  quarantine into the :class:`DeadLetterQueue`);
* **re-sequencing** — bounded-lateness out-of-order arrivals are
  absorbed by a :class:`ReorderBuffer` and re-emitted in timestamp
  order; records later than the bound are rejected (reason ``"late"``)
  instead of blowing up ``TimeWindow`` with ``WindowOrderError``;
* **accounting** — `records_admitted`, ``records_quarantined``,
  ``records_skipped``, ``late_dropped`` and ``late_reordered``
  counters flow through the :mod:`repro.obs` registry, so a chaos soak
  can prove that every injected fault is accounted for.

The guard works in both shapes the library uses: as a
:class:`StreamSource` wrapper (``StreamEngine(..., source=guard)``) and
as a batch filter (``MultiQueryGroup.update_guarded``).
"""

from __future__ import annotations

import math
from typing import Iterator, Mapping, Sequence

from repro.core.objects import SpatialObject
from repro.errors import QuarantineError, ReproError
from repro.obs.metrics import NULL_METRICS, Metrics
from repro.resilience.dlq import DeadLetter, DeadLetterQueue, ErrorPolicy
from repro.resilience.reorder import ReorderBuffer
from repro.streams.source import StreamSource

__all__ = ["IngestGuard", "coerce_record"]

_FIELD_NAMES = ("x", "y", "weight", "timestamp", "oid")


def coerce_record(record: object) -> SpatialObject:
    """Convert an arbitrary stream payload into a valid object.

    Accepts an already-valid :class:`SpatialObject`, a mapping with
    ``x``/``y`` (and optional ``weight``/``timestamp``/``oid``) keys,
    or a positional sequence ``(x, y[, weight[, timestamp]])``.
    Anything else — or any payload whose values fail
    :class:`SpatialObject` validation — raises a
    :class:`~repro.errors.ReproError` (or ``ValueError``/``TypeError``
    for hopeless payloads), which the guard maps to its error policy.
    """
    if isinstance(record, SpatialObject):
        # constructed objects are validated in __post_init__; re-check
        # the invariants cheaply in case the instance was forged around
        # the constructor (object.__new__, deserialisation, chaos)
        if not (
            math.isfinite(record.x)
            and math.isfinite(record.y)
            and record.weight >= 0.0
        ):
            raise ValueError(f"forged invalid object: {record!r}")
        return record
    if isinstance(record, Mapping):
        kwargs = {k: record[k] for k in _FIELD_NAMES if k in record}
        if "x" not in kwargs or "y" not in kwargs:
            raise ValueError(f"record mapping missing x/y: {record!r}")
        for key in ("x", "y", "weight", "timestamp"):
            if key in kwargs:
                kwargs[key] = float(kwargs[key])
        if "oid" in kwargs:
            kwargs["oid"] = int(kwargs["oid"])
        return SpatialObject(**kwargs)
    if isinstance(record, Sequence) and not isinstance(record, (str, bytes)):
        if not 2 <= len(record) <= 5:
            raise ValueError(
                f"record sequence must have 2-5 fields, got {record!r}"
            )
        values = [float(v) for v in record[:4]]
        return SpatialObject(*values)
    raise TypeError(f"cannot interpret stream record {record!r}")


class IngestGuard(StreamSource):
    """Validating, re-sequencing stream boundary with a dead-letter queue.

    Args:
        source: Optional upstream producer of records (raw payloads or
            objects).  Required for iterator use; the batch API
            (:meth:`filter` / :meth:`flush`) works without one.
        policy: What to do with rejected records (default QUARANTINE).
        max_lateness: Lateness bound for the reorder buffer; ``0``
            means strict order (any out-of-order record is late).
        dead_letters: Share an existing queue, or let the guard own one.
        dlq_capacity: Capacity of the owned queue when none is shared.
        metrics: Observability scope (also settable later through
            :meth:`attach_metrics`, which is what ``StreamEngine`` calls).
    """

    def __init__(
        self,
        source: StreamSource | Iterator[object] | None = None,
        *,
        policy: ErrorPolicy | str = ErrorPolicy.QUARANTINE,
        max_lateness: float = 0.0,
        dead_letters: DeadLetterQueue | None = None,
        dlq_capacity: int = 1024,
        metrics: Metrics = NULL_METRICS,
    ) -> None:
        self._source = source
        self.policy = ErrorPolicy.parse(policy)
        self.dead_letters = dead_letters or DeadLetterQueue(dlq_capacity)
        self.reorder = ReorderBuffer(max_lateness)
        self.metrics = NULL_METRICS
        self.admitted = 0
        self.quarantined = 0  # invalid records rejected
        self.skipped = 0  # invalid records dropped under SKIP
        self.late_dropped = 0  # orderable-no-more records rejected
        self._seq = 0  # arrival position, for dead-letter context
        self.attach_metrics(metrics)

    # -- observability -----------------------------------------------------

    def attach_metrics(self, metrics: Metrics) -> None:
        """Point the guard (and its queue/buffer) at a metrics scope."""
        self.metrics = metrics
        self.dead_letters.metrics = metrics
        self.reorder.metrics = metrics

    @property
    def late_reordered(self) -> int:
        """Out-of-order records absorbed and re-sequenced in bound."""
        return self.reorder.reordered

    @property
    def rejected(self) -> int:
        """Everything refused admission, for accounting checks."""
        return self.quarantined + self.skipped + self.late_dropped

    @property
    def offered(self) -> int:
        """Records presented to the guard so far.

        Conservation law (checked by the chaos soak)::

            offered == admitted + rejected + reorder.pending
        """
        return self._seq

    # -- core admission ----------------------------------------------------

    def admit(self, record: object) -> list[SpatialObject]:
        """Validate + re-sequence one record; return releasable objects.

        The returned list holds zero or more objects (buffered records
        released by an advancing watermark ride along with the record
        that advanced it), in non-decreasing timestamp order.
        """
        self._seq += 1
        try:
            obj = coerce_record(record)
        except (ReproError, ValueError, TypeError) as exc:
            self._reject(record, "invalid", str(exc))
            return []
        released = self.reorder.offer(obj)
        if released is None:
            self._reject(
                obj,
                "late",
                f"timestamp {obj.timestamp} behind watermark "
                f"{self.reorder.watermark} (max_lateness="
                f"{self.reorder.max_lateness})",
                late=True,
            )
            return []
        self.admitted += len(released)
        if released:
            self.metrics.inc("records_admitted", len(released))
        return released

    def filter(self, records: Sequence[object]) -> list[SpatialObject]:
        """Batch admission: guard a whole arrival batch at once."""
        out: list[SpatialObject] = []
        for record in records:
            out.extend(self.admit(record))
        return out

    def flush(self) -> list[SpatialObject]:
        """Release everything the reorder buffer still holds, in order."""
        released = self.reorder.flush()
        self.admitted += len(released)
        if released:
            self.metrics.inc("records_admitted", len(released))
        return released

    def __iter__(self) -> Iterator[SpatialObject]:
        """Stream mode: guard the wrapped source, flushing at the end."""
        if self._source is None:
            raise ReproError(
                "IngestGuard has no source; construct with one or use "
                "the batch API (filter/flush)"
            )
        for record in self._source:
            yield from self.admit(record)
        yield from self.flush()

    # -- rejection paths ---------------------------------------------------

    def _reject(
        self, record: object, reason: str, detail: str, late: bool = False
    ) -> None:
        if late:
            self.late_dropped += 1
            self.metrics.inc("late_dropped")
        if self.policy is ErrorPolicy.RAISE:
            raise QuarantineError(f"{reason}: {detail}", record=record)
        if self.policy is ErrorPolicy.SKIP:
            if not late:
                self.skipped += 1
                self.metrics.inc("records_skipped")
            return
        if not late:
            self.quarantined += 1
            self.metrics.inc("records_quarantined")
        self.dead_letters.put(
            DeadLetter(record=record, reason=reason, detail=detail, seq=self._seq)
        )
