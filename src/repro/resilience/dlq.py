"""Ingest error policy and the bounded dead-letter queue.

A long-running continuous query cannot treat every malformed record as
fatal: the stream boundary needs a *policy*.  :class:`ErrorPolicy`
names the three standard choices — fail fast, drop silently, or keep
the rejected record around for offline inspection — and
:class:`DeadLetterQueue` is the bounded buffer that the QUARANTINE
policy captures into.  Every entry records *why* it was rejected, so
operators can distinguish a corrupt producer (``invalid`` records)
from network reordering (``late`` records) at a glance.
"""

from __future__ import annotations

import json
import os
from collections import Counter as TallyCounter
from collections import deque
from dataclasses import dataclass
from enum import Enum
from pathlib import Path
from typing import Any, Deque, Iterator

from repro.errors import InvalidParameterError, wrap_os_error
from repro.obs.metrics import NULL_METRICS, Metrics

__all__ = ["ErrorPolicy", "DeadLetter", "DeadLetterQueue"]


def _letter_doc(letter: "DeadLetter") -> dict[str, Any]:
    """JSON-able view of one dead letter.

    The record field is arbitrary — a raw payload, a tuple, a
    :class:`~repro.core.objects.SpatialObject` — so anything JSON
    cannot carry verbatim is stored as its ``repr`` instead of failing
    the drain (the audit trail must be best-effort complete, not
    type-perfect).
    """
    record: Any = letter.record
    try:
        json.dumps(record)
    except (TypeError, ValueError):
        record = repr(record)
    return {
        "record": record,
        "reason": letter.reason,
        "detail": letter.detail,
        "seq": letter.seq,
    }


class ErrorPolicy(Enum):
    """What the ingest boundary does with a rejected record.

    * ``RAISE`` — re-raise as :class:`~repro.errors.QuarantineError`
      (strict mode; matches the library's historical fail-fast
      behaviour).
    * ``SKIP`` — count and drop; nothing is retained.
    * ``QUARANTINE`` — count and capture into the dead-letter queue.
    """

    RAISE = "raise"
    SKIP = "skip"
    QUARANTINE = "quarantine"

    @classmethod
    def parse(cls, name: "str | ErrorPolicy") -> "ErrorPolicy":
        """Accept an enum member or its case-insensitive string name."""
        if isinstance(name, cls):
            return name
        try:
            return cls(str(name).strip().lower())
        except ValueError:
            valid = ", ".join(p.value for p in cls)
            raise InvalidParameterError(
                f"unknown error policy {name!r}; expected one of: {valid}"
            ) from None


@dataclass(frozen=True, slots=True)
class DeadLetter:
    """One rejected record with its rejection context.

    Attributes:
        record: The offending record, verbatim (a raw payload for
            corrupt records, a valid :class:`SpatialObject` for late
            arrivals dropped past the watermark).
        reason: Short machine-matchable category (``"invalid"``,
            ``"late"``).
        detail: Human-readable explanation (the validation error text,
            or the watermark the record missed).
        seq: Arrival position at the guard, for correlating with logs.
    """

    record: object
    reason: str
    detail: str
    seq: int


class DeadLetterQueue:
    """Bounded FIFO of rejected records.

    When full, the *oldest* entry is evicted to admit the new one — the
    queue is a diagnostic surface, and recent rejections are worth more
    than ancient ones.  ``total_enqueued`` keeps global accounting
    intact even after evictions: every record ever rejected under
    QUARANTINE is counted exactly once.
    """

    def __init__(
        self, capacity: int = 1024, metrics: Metrics = NULL_METRICS
    ) -> None:
        if capacity <= 0:
            raise InvalidParameterError(
                f"dead-letter capacity must be positive, got {capacity}"
            )
        self.capacity = capacity
        self.metrics = metrics
        self._entries: Deque[DeadLetter] = deque()
        self.total_enqueued = 0
        self.total_evicted = 0
        self._by_reason: TallyCounter[str] = TallyCounter()

    def put(self, letter: DeadLetter) -> None:
        """Capture one rejection (evicting the oldest entry when full)."""
        if len(self._entries) >= self.capacity:
            self._entries.popleft()
            self.total_evicted += 1
            self.metrics.inc("dead_letters_evicted")
        self._entries.append(letter)
        self.total_enqueued += 1
        self._by_reason[letter.reason] += 1
        self.metrics.inc("dead_letters")
        self.metrics.set_gauge("dead_letter_depth", len(self._entries))

    def drain(self) -> list[DeadLetter]:
        """Remove and return all retained entries, oldest first."""
        out = list(self._entries)
        self._entries.clear()
        self.metrics.set_gauge("dead_letter_depth", 0)
        return out

    def drain_to_jsonl(self, path: "str | Path") -> int:
        """Drain retained entries, *appending* them to a JSONL file.

        Quarantine evidence survives a crash-restart this way: each
        drained entry becomes one JSON line (append-only, fsynced), so
        repeated drains across process incarnations accumulate into a
        single durable audit trail instead of replacing it.  Returns
        the number of entries written; an empty queue touches nothing.

        A disk failure mid-write raises a typed
        :class:`~repro.errors.DurableWriteError`
        (:class:`~repro.errors.DiskFullError` for ``ENOSPC``) and the
        entries stay queued — evidence is only dropped once it is on
        disk.
        """
        if not self._entries:
            return 0
        lines = [
            json.dumps(_letter_doc(letter), sort_keys=True)
            for letter in self._entries
        ]
        try:
            with open(path, "a") as fh:
                fh.write("\n".join(lines) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
        except OSError as exc:
            raise wrap_os_error(exc, "dead-letter drain") from exc
        count = len(lines)
        self._entries.clear()
        self.metrics.inc("dead_letters_persisted", count)
        self.metrics.set_gauge("dead_letter_depth", 0)
        return count

    def counts_by_reason(self) -> dict[str, int]:
        """Lifetime rejection tallies per reason (eviction-proof)."""
        return dict(self._by_reason)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[DeadLetter]:
        return iter(tuple(self._entries))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DeadLetterQueue(depth={len(self)}/{self.capacity}, "
            f"total={self.total_enqueued}, by_reason={dict(self._by_reason)})"
        )
