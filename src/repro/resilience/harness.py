"""Chaos soak harness: drive a supervised monitor through injected faults.

:func:`run_chaos` assembles the full fault-tolerant pipeline —

    dataset stream → FaultInjectingSource → IngestGuard → StreamEngine
                                                        → MonitorSupervisor(aG2)

— runs it for a configured number of batches, then closes the loop
with two independent checks:

* **correctness**: the supervised monitor's final answer must equal a
  fresh :class:`NaiveMonitor` plane-sweep recomputation over the
  surviving window contents (aG2 with ``ε = 0`` is exact, so the
  weights must agree to float tolerance);
* **accounting**: every record offered to the guard is either admitted,
  rejected (and, under QUARANTINE, present in the dead-letter totals),
  or still parked in the reorder buffer — nothing vanishes.

The CLI subcommand ``maxrs-stream chaos`` and the CI chaos smoke job
are thin wrappers over this function; its report is plain data so the
soak can also be asserted in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, List, Tuple

from repro.core.ag2 import AG2Monitor
from repro.core.naive import NaiveMonitor
from repro.datasets import make_stream
from repro.engine.engine import EngineReport, StreamEngine
from repro.obs.metrics import Metrics
from repro.resilience.chaos import FaultInjectingSource
from repro.resilience.checkpoint import CheckpointManager
from repro.resilience.dlq import ErrorPolicy
from repro.resilience.guard import IngestGuard
from repro.resilience.supervisor import MonitorSupervisor
from repro.soak.report import ReportBase
from repro.window import CountWindow

__all__ = ["ChaosReport", "run_chaos"]

_WEIGHT_TOL = 1e-6


@dataclass
class ChaosReport(ReportBase):
    """Everything a chaos soak observed, plus the two verdicts."""

    engine_report: EngineReport
    supervised_weight: float
    naive_weight: float
    window_size: int
    # fault injection tallies
    injected_drops: int
    injected_duplicates: int
    injected_corrupt: int
    injected_delayed: int
    # guard tallies
    offered: int
    admitted: int
    quarantined: int
    skipped: int
    late_dropped: int
    late_reordered: int
    reorder_pending: int
    dead_letters: int
    dead_letters_by_reason: dict[str, int] = field(default_factory=dict)
    # supervisor tallies
    monitor_failures: int = 0
    invariant_failures: int = 0
    heals: int = 0
    batches_rejected: int = 0
    checkpoints_written: int = 0
    policy: ErrorPolicy = ErrorPolicy.QUARANTINE

    @property
    def result_verified(self) -> bool:
        """Supervised answer equals the naive recompute over survivors."""
        scale = max(1.0, abs(self.naive_weight))
        return abs(self.supervised_weight - self.naive_weight) <= (
            _WEIGHT_TOL * scale
        )

    @property
    def accounted(self) -> bool:
        """No record unaccounted for at the boundary."""
        conserved = self.offered == (
            self.admitted
            + self.quarantined
            + self.skipped
            + self.late_dropped
            + self.reorder_pending
        )
        if self.policy is ErrorPolicy.QUARANTINE:
            # under QUARANTINE every reject must land in the DLQ totals
            dlq_complete = (
                self.dead_letters == self.quarantined + self.late_dropped
            )
        else:
            dlq_complete = self.dead_letters == 0
        return conserved and dlq_complete

    @property
    def ok(self) -> bool:
        return self.result_verified and self.accounted

    def failures(self) -> list[str]:
        lines = []
        if not self.result_verified:
            lines.append(
                f"supervised weight {self.supervised_weight:.6f} != naive "
                f"recompute {self.naive_weight:.6f}"
            )
        if not self.accounted:
            lines.append(
                "conservation accounting did not close at the ingest "
                "boundary"
            )
        return lines

    def _pairs(self) -> List[Tuple[str, object]]:
        return [
            ("batches run", self.engine_report.batches),
            ("final window size", self.window_size),
            ("supervised weight", f"{self.supervised_weight:.6f}"),
            ("naive recompute weight", f"{self.naive_weight:.6f}"),
            ("injected drops", self.injected_drops),
            ("injected duplicates", self.injected_duplicates),
            ("injected corrupt", self.injected_corrupt),
            ("injected delayed", self.injected_delayed),
            ("records offered", self.offered),
            ("records admitted", self.admitted),
            ("records quarantined", self.quarantined),
            ("records skipped", self.skipped),
            ("late dropped", self.late_dropped),
            ("late reordered", self.late_reordered),
            ("reorder pending", self.reorder_pending),
            ("dead letters", self.dead_letters),
            ("monitor failures", self.monitor_failures),
            ("invariant failures", self.invariant_failures),
            ("heals", self.heals),
            ("batches rejected", self.batches_rejected),
            ("checkpoints written", self.checkpoints_written),
            ("result verified", self.result_verified),
            ("accounting closed", self.accounted),
        ]

    def _extra(self) -> dict[str, Any]:
        return {
            "dead_letters_by_reason": dict(self.dead_letters_by_reason),
            "engine": self.engine_report.to_dict(),
        }


def naive_recompute(
    supervised: MonitorSupervisor | AG2Monitor,
) -> tuple[float, int]:
    """Exact plane-sweep answer over a monitor's surviving window."""
    contents = list(supervised.window.contents)
    if not contents:
        return 0.0, 0
    reference = NaiveMonitor(
        supervised.rect_width,
        supervised.rect_height,
        CountWindow(len(contents)),
    )
    result = reference.update(contents)
    return result.best_weight, len(contents)


def run_chaos(
    dataset: str = "synthetic",
    *,
    window: int = 2000,
    rate: int = 100,
    batches: int = 200,
    side: float = 1000.0,
    domain: float = 140_000.0,
    seed: int = 7,
    policy: ErrorPolicy | str = ErrorPolicy.QUARANTINE,
    p_drop: float = 0.02,
    p_duplicate: float = 0.02,
    p_corrupt: float = 0.02,
    p_delay: float = 0.05,
    max_delay: int = 3,
    max_lateness: float | None = None,
    probe_every: int = 50,
    checkpoint_path: str | Path | None = None,
    checkpoint_every: int = 0,
    epsilon: float = 0.0,
) -> ChaosReport:
    """Run the full chaos pipeline and verify the outcome.

    ``max_lateness`` defaults to ``2 * max_delay`` timestamp units —
    generous enough that every injected delay is re-sequenced rather
    than dropped when the upstream emits one record per time unit.
    """
    if max_lateness is None:
        max_lateness = 2.0 * max_delay
    stream = make_stream(dataset, domain=domain, seed=seed)
    chaos = FaultInjectingSource(
        stream,
        seed=seed + 1,
        p_drop=p_drop,
        p_duplicate=p_duplicate,
        p_corrupt=p_corrupt,
        p_delay=p_delay,
        max_delay=max_delay,
    )
    guard = IngestGuard(chaos, policy=policy, max_lateness=max_lateness)
    metrics = Metrics("chaos")
    supervised = MonitorSupervisor(
        AG2Monitor(side, side, CountWindow(window), epsilon=epsilon),
        probe_every=probe_every,
    )
    manager = None
    if checkpoint_path is not None:
        manager = CheckpointManager(
            supervised,
            checkpoint_path,
            every=checkpoint_every,
            metrics=metrics.scope("checkpoint"),
        )
    engine = StreamEngine(
        {"ag2": supervised},
        guard,
        batch_size=rate,
        metrics=metrics,
        checkpoint=manager,
    )
    engine.prime(window)
    report = engine.run(batches)
    naive_weight, window_size = naive_recompute(supervised)
    return ChaosReport(
        engine_report=report,
        supervised_weight=supervised.result.best_weight,
        naive_weight=naive_weight,
        window_size=window_size,
        injected_drops=chaos.drops,
        injected_duplicates=chaos.duplicates,
        injected_corrupt=chaos.corrupted,
        injected_delayed=chaos.delayed,
        offered=guard.offered,
        admitted=guard.admitted,
        quarantined=guard.quarantined,
        skipped=guard.skipped,
        late_dropped=guard.late_dropped,
        late_reordered=guard.late_reordered,
        reorder_pending=guard.reorder.pending,
        dead_letters=guard.dead_letters.total_enqueued,
        dead_letters_by_reason=guard.dead_letters.counts_by_reason(),
        monitor_failures=supervised.failures,
        invariant_failures=supervised.invariant_failures,
        heals=supervised.heals,
        batches_rejected=supervised.batches_rejected,
        checkpoints_written=(
            manager.checkpoints_written if manager is not None else 0
        ),
        policy=guard.policy,
    )
