"""Monitor state persistence: snapshot and restore.

Continuous queries run for days; process restarts must not lose the
window.  A snapshot captures the monitor's configuration and the alive
window contents as plain JSON-compatible data; restore rebuilds the
monitor and bulk-loads the objects through :meth:`ingest`, which
reconstructs the index deterministically (the indexes are pure
functions of the arrival sequence).

Only data is persisted — never code or derived index structures — so
snapshots are portable across library versions that keep the object
model stable.

Example::

    snap = snapshot(monitor)
    json.dump(snap, open("state.json", "w"))
    ...
    monitor = restore(json.load(open("state.json")))
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any

from repro.core.ag2 import AG2Monitor
from repro.core.g2 import G2Monitor
from repro.core.monitor import MaxRSMonitor
from repro.core.naive import NaiveMonitor
from repro.core.objects import SpatialObject
from repro.core.quadtree import QuadtreeAG2Monitor
from repro.core.topk import TopKAG2Monitor
from repro.errors import InvalidParameterError, SnapshotError
from repro.window import CountWindow, SlidingWindow, TimeWindow

__all__ = [
    "snapshot",
    "restore",
    "save_json",
    "load_json",
    "atomic_write_json",
    "read_json",
]

_FORMAT_VERSION = 1

_MONITOR_KINDS = {
    "naive": NaiveMonitor,
    "g2": G2Monitor,
    "ag2": AG2Monitor,
    "ag2_quadtree": QuadtreeAG2Monitor,
    "topk": TopKAG2Monitor,
}


def _monitor_kind(monitor: MaxRSMonitor) -> str:
    # subclass checks from most to least specific
    if isinstance(monitor, TopKAG2Monitor):
        return "topk"
    if isinstance(monitor, QuadtreeAG2Monitor):
        return "ag2_quadtree"
    if isinstance(monitor, AG2Monitor):
        return "ag2"
    if isinstance(monitor, G2Monitor):
        return "g2"
    if isinstance(monitor, NaiveMonitor):
        return "naive"
    raise InvalidParameterError(
        f"cannot snapshot monitor type {type(monitor).__name__}"
    )


def _window_spec(window: SlidingWindow) -> dict[str, Any]:
    if isinstance(window, CountWindow):
        return {"kind": "count", "capacity": window.capacity}
    if isinstance(window, TimeWindow):
        return {"kind": "time", "duration": window.duration}
    raise InvalidParameterError(
        f"cannot snapshot window type {type(window).__name__}"
    )


def _window_from_spec(spec: dict[str, Any]) -> SlidingWindow:
    kind = spec.get("kind")
    if kind == "count":
        return CountWindow(int(spec["capacity"]))
    if kind == "time":
        return TimeWindow(float(spec["duration"]))
    raise InvalidParameterError(f"unknown window kind {kind!r}")


def snapshot(monitor: MaxRSMonitor) -> dict[str, Any]:
    """Serialisable state of a monitor: configuration + alive objects."""
    kind = _monitor_kind(monitor)
    # every monitor kind accepts backend=; restoring a numpy snapshot on
    # a host without numpy raises the same typed InvalidParameterError
    # as constructing such a monitor directly (naming the [vector]
    # extra), rather than silently changing compute backends
    extra: dict[str, Any] = {"backend": monitor.backend}
    if isinstance(monitor, TopKAG2Monitor):
        extra["k"] = monitor.k
        extra["cell_size"] = monitor.grid.cell_size
    elif isinstance(monitor, QuadtreeAG2Monitor):
        # the adaptive structure itself is derived state — replaying
        # the window through ingest() regrows an equivalent tree
        extra["epsilon"] = monitor.epsilon
        extra["tile_size"] = monitor.tree.tile_size
        extra["min_leaf_size"] = monitor.tree.min_leaf_size
        extra["split_occupancy"] = monitor.split_occupancy
        extra["merge_occupancy"] = monitor.merge_occupancy
        extra["split_load"] = monitor.split_load
        extra["merge_load"] = monitor.merge_load
        extra["load_decay"] = monitor.load_decay
    elif isinstance(monitor, AG2Monitor):
        extra["epsilon"] = monitor.epsilon
        extra["cell_size"] = monitor.grid.cell_size
    elif isinstance(monitor, G2Monitor):
        extra["cell_size"] = monitor.grid.cell_size
    elif isinstance(monitor, NaiveMonitor):
        extra["k"] = monitor.k
    return {
        "format": _FORMAT_VERSION,
        "kind": kind,
        "rect_width": monitor.rect_width,
        "rect_height": monitor.rect_height,
        "window": _window_spec(monitor.window),
        "extra": extra,
        "objects": [
            {
                "oid": o.oid,
                "x": o.x,
                "y": o.y,
                "weight": o.weight,
                "timestamp": o.timestamp,
            }
            for o in monitor.window.contents
        ],
    }


def restore(state: dict[str, Any]) -> MaxRSMonitor:
    """Rebuild a monitor from a snapshot and replay its window.

    Unknown format versions and unknown monitor/window kinds raise
    :class:`InvalidParameterError`; a structurally damaged snapshot
    (missing fields, wrong field types) raises :class:`SnapshotError`
    rather than leaking ``KeyError``/``TypeError`` — both are
    :class:`~repro.errors.ReproError`, so recovery code has one thing
    to catch.
    """
    if not isinstance(state, dict):
        raise SnapshotError(
            f"snapshot must be a JSON object, got {type(state).__name__}"
        )
    if state.get("format") != _FORMAT_VERSION:
        raise InvalidParameterError(
            f"unsupported snapshot format {state.get('format')!r}"
        )
    kind = state.get("kind")
    cls = _MONITOR_KINDS.get(kind)  # type: ignore[arg-type]
    if cls is None:
        raise InvalidParameterError(f"unknown monitor kind {kind!r}")
    try:
        window = _window_from_spec(state["window"])
        extra = dict(state.get("extra", {}))
        monitor = cls(
            state["rect_width"], state["rect_height"], window, **extra
        )
        objects = [
            SpatialObject(
                x=rec["x"],
                y=rec["y"],
                weight=rec["weight"],
                timestamp=rec["timestamp"],
                oid=int(rec["oid"]),
            )
            for rec in state.get("objects", [])
        ]
    except (KeyError, TypeError) as exc:
        raise SnapshotError(f"snapshot is missing or malformed: {exc!r}") from exc
    if objects:
        monitor.ingest(objects)
    return monitor


def atomic_write_json(path: str | Path, document: Any) -> None:
    """Serialise ``document`` to ``path`` atomically.

    The JSON is written to a temporary file in the same directory,
    flushed and fsynced, then moved into place with :func:`os.replace`
    — readers (and crash recovery) see either the old complete file or
    the new complete file, never a truncated intermediate.
    """
    target = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=target.parent or Path("."), prefix=target.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(document, fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def read_json(path: str | Path) -> Any:
    """Load a JSON document, mapping corruption to :class:`SnapshotError`."""
    file = Path(path)
    if not file.exists():
        raise InvalidParameterError(f"no such snapshot file: {file}")
    try:
        with file.open() as fh:
            return json.load(fh)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise SnapshotError(
            f"snapshot file {file} is truncated or not valid JSON: {exc}"
        ) from exc


def save_json(monitor: MaxRSMonitor, path: str | Path) -> None:
    """Snapshot a monitor straight to a JSON file (atomically)."""
    atomic_write_json(path, snapshot(monitor))


def load_json(path: str | Path) -> MaxRSMonitor:
    """Restore a monitor from a JSON snapshot file."""
    return restore(read_json(path))
