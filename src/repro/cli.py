"""Command-line experiment runner: ``maxrs-stream``.

Subcommands mirror the paper's evaluation artefacts::

    maxrs-stream monitor --dataset geolife_like --window 5000 --batches 20
    maxrs-stream sweep --parameter window_size --values 2000,5000,10000
    maxrs-stream approx --epsilons 0,0.1,0.2
    maxrs-stream topk --ks 1,10,25
    maxrs-stream ablation
    maxrs-stream profile --window 2000 --batches 10 --json metrics.json
    maxrs-stream bench --seed 42 --out BENCH_PR9.json
    maxrs-stream chaos --batches 200 --policy quarantine
    maxrs-stream overload --pattern square --burst-factor 10
    maxrs-stream soak --scenario wal_recovery --wal-dir run.wal
    maxrs-stream wal inspect --dir run.wal

Every subcommand prints a plain-text table; ``--dataset`` accepts the
four built-in workload names (see ``repro.datasets``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.bench import (
    DEFAULT_CONFIG,
    PAPER_DATASETS,
    ExperimentConfig,
    format_rows,
    run_ablation,
    run_approx_sweep,
    run_config,
    run_profile,
    run_sweep,
    run_topk_sweep,
)
from repro.datasets import available_datasets
from repro.obs import write_metrics_csv, write_metrics_json

__all__ = ["main", "build_parser"]


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset",
        default=DEFAULT_CONFIG.dataset,
        choices=available_datasets(),
        help="workload to stream (default: %(default)s)",
    )
    parser.add_argument(
        "--window", type=int, default=DEFAULT_CONFIG.window_size,
        help="sliding-window size n (default: %(default)s)",
    )
    parser.add_argument(
        "--rate", type=int, default=DEFAULT_CONFIG.batch_size,
        help="generation rate m per batch (default: %(default)s)",
    )
    parser.add_argument(
        "--side", type=float, default=DEFAULT_CONFIG.rect_side,
        help="query rectangle side length l (default: %(default)s)",
    )
    parser.add_argument(
        "--domain", type=float, default=DEFAULT_CONFIG.domain,
        help="monitoring-space side length (default: %(default)s)",
    )
    parser.add_argument(
        "--batches", type=int, default=DEFAULT_CONFIG.batches,
        help="timed batches to run (default: %(default)s)",
    )
    parser.add_argument(
        "--seed", type=int, default=DEFAULT_CONFIG.seed,
        help="stream seed (default: %(default)s)",
    )
    parser.add_argument(
        "--index", default=DEFAULT_CONFIG.index,
        choices=("grid", "quadtree"),
        help="spatial index backing aG2: the paper's uniform grid or "
        "the skew-adaptive quadtree (default: %(default)s)",
    )
    parser.add_argument(
        "--backend", default=DEFAULT_CONFIG.backend,
        choices=("python", "numpy"),
        help="sweep compute backend: the pure-python reference or the "
        "columnar numpy kernels (requires the [vector] extra; "
        "default: %(default)s)",
    )


def _config(args: argparse.Namespace, **extra: object) -> ExperimentConfig:
    return ExperimentConfig(
        dataset=args.dataset,
        window_size=args.window,
        batch_size=args.rate,
        rect_side=args.side,
        domain=args.domain,
        batches=args.batches,
        seed=args.seed,
        index=getattr(args, "index", DEFAULT_CONFIG.index),
        backend=getattr(args, "backend", DEFAULT_CONFIG.backend),
    ).with_(**extra)


def _backend_line(info: dict) -> str:
    """One human line naming what actually ran (versions or 'absent')."""
    parts = [f"backend: {info.get('backend', 'python')}"]
    for lib in ("numpy", "numba"):
        version = info.get(lib)
        if version is not None:
            parts.append(f"{lib} {version}")
    return " | ".join(parts)


def _parse_list(text: str, cast: type) -> list:
    return [cast(token) for token in text.split(",") if token.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="maxrs-stream",
        description="Continuous MaxRS monitoring experiments "
        "(Amagata & Hara, EDBT 2016 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_monitor = sub.add_parser(
        "monitor", help="compare naive/G2/aG2 on one configuration"
    )
    _add_common(p_monitor)
    p_monitor.add_argument(
        "--algorithms", default="naive,g2,ag2",
        help="comma-separated subset of naive,g2,ag2",
    )

    p_sweep = sub.add_parser(
        "sweep", help="vary one parameter (Figures 7-9)"
    )
    _add_common(p_sweep)
    p_sweep.add_argument(
        "--parameter", required=True,
        choices=("window_size", "batch_size", "rect_side"),
    )
    p_sweep.add_argument(
        "--values", required=True, help="comma-separated parameter values"
    )

    p_approx = sub.add_parser(
        "approx", help="approximate monitoring sweep (Figure 10)"
    )
    _add_common(p_approx)
    p_approx.add_argument(
        "--epsilons", default="0,0.1,0.2,0.3,0.4,0.5",
        help="comma-separated error tolerances",
    )

    p_topk = sub.add_parser("topk", help="top-k sweep (Figure 11)")
    _add_common(p_topk)
    p_topk.add_argument(
        "--ks", default="1,10,20,30,40,50", help="comma-separated k values"
    )

    p_ablation = sub.add_parser(
        "ablation", help="Algorithm 5 upper-bound ablation (Table 5)"
    )
    _add_common(p_ablation)
    p_ablation.add_argument(
        "--datasets", default=",".join(PAPER_DATASETS),
        help="comma-separated dataset names",
    )

    p_profile = sub.add_parser(
        "profile",
        help="run a workload with metrics attached; print per-monitor "
        "operation counters (cells visited, prunings, sweeps, ...)",
    )
    _add_common(p_profile)
    p_profile.add_argument(
        "--algorithms", default="naive,g2,ag2",
        help="comma-separated subset of naive,g2,ag2",
    )
    p_profile.add_argument(
        "--per-batch", action="store_true",
        help="also print the per-batch counter-delta table",
    )
    p_profile.add_argument(
        "--rates", action="store_true",
        help="also print per-batch derived rates (prune fraction, "
        "sweeps/arrival, overlap tests/arrival)",
    )
    p_profile.add_argument(
        "--json", metavar="PATH",
        help="write the full metrics document (timings, counters, "
        "per-batch deltas) as JSON",
    )
    p_profile.add_argument(
        "--csv", metavar="PATH",
        help="write flat (monitor, kind, metric, value) rows as CSV",
    )

    p_chaos = sub.add_parser(
        "chaos",
        help="chaos soak: drive a supervised aG2 monitor through a "
        "fault-injecting stream (drops, duplicates, corruption, late "
        "arrivals) and verify the result against a naive recompute; "
        "exits non-zero on divergence or accounting mismatch",
    )
    _add_common(p_chaos)
    p_chaos.add_argument(
        "--policy", default="quarantine", choices=("raise", "skip", "quarantine"),
        help="ingest error policy (default: %(default)s)",
    )
    p_chaos.add_argument(
        "--p-drop", type=float, default=0.02,
        help="per-record drop probability (default: %(default)s)",
    )
    p_chaos.add_argument(
        "--p-duplicate", type=float, default=0.02,
        help="per-record duplication probability (default: %(default)s)",
    )
    p_chaos.add_argument(
        "--p-corrupt", type=float, default=0.02,
        help="per-record corruption probability (default: %(default)s)",
    )
    p_chaos.add_argument(
        "--p-delay", type=float, default=0.05,
        help="per-record delay probability (default: %(default)s)",
    )
    p_chaos.add_argument(
        "--max-delay", type=int, default=3,
        help="maximum hold-back in stream positions (default: %(default)s)",
    )
    p_chaos.add_argument(
        "--max-lateness", type=float, default=None,
        help="reorder-buffer lateness bound in timestamp units "
        "(default: 2 * max-delay)",
    )
    p_chaos.add_argument(
        "--probe-every", type=int, default=50,
        help="run check_invariants() every N updates; 0 disables "
        "(default: %(default)s)",
    )
    p_chaos.add_argument(
        "--checkpoint", metavar="PATH",
        help="also take atomic checkpoints to PATH during the soak",
    )
    p_chaos.add_argument(
        "--checkpoint-every", type=int, default=50,
        help="checkpoint period in batches (default: %(default)s)",
    )
    p_chaos.add_argument(
        "--json", metavar="PATH", help="write the chaos report as JSON"
    )

    p_overload = sub.add_parser(
        "overload",
        help="overload soak: drive a degradation-ladder monitor through "
        "a bursty arrival profile behind a backpressure queue; exits "
        "non-zero if p95 latency misses the budget, the shed ledger "
        "does not close, a degraded answer breaks its (1-eps) floor, "
        "or the ladder fails to return to exact",
    )
    _add_common(p_overload)
    p_overload.add_argument(
        "--ticks", type=int, default=160,
        help="arrival ticks to drive (default: %(default)s)",
    )
    p_overload.add_argument(
        "--pattern", default="square", choices=("square", "ramp", "spike"),
        help="burst shape of the load generator (default: %(default)s)",
    )
    p_overload.add_argument(
        "--burst-factor", type=float, default=10.0,
        help="peak rate as a multiple of --rate (default: %(default)s)",
    )
    p_overload.add_argument(
        "--period", type=int, default=80,
        help="ticks per burst period (default: %(default)s)",
    )
    p_overload.add_argument(
        "--burst-ticks", type=int, default=15,
        help="burst length within each period, square pattern "
        "(default: %(default)s)",
    )
    p_overload.add_argument(
        "--budget-ms", type=float, default=None,
        help="per-update latency budget; omitted = calibrated from "
        "this machine's exact update cost",
    )
    p_overload.add_argument(
        "--capacity", type=int, default=None,
        help="backpressure queue capacity (default: 20 * rate)",
    )
    p_overload.add_argument(
        "--max-batch", type=int, default=None,
        help="coalesced drain cap (default: 8 * rate)",
    )
    p_overload.add_argument(
        "--shed-policy", default="shed_oldest",
        choices=("block", "shed_oldest", "shed_newest"),
        help="policy when the queue is full (default: %(default)s)",
    )
    p_overload.add_argument(
        "--epsilons", default="0.2,0.4",
        help="comma-separated ladder tolerances, strictly increasing",
    )
    p_overload.add_argument(
        "--verify-every", type=int, default=10,
        help="exact-companion guarantee check period in batches; "
        "0 disables (default: %(default)s)",
    )
    p_overload.add_argument(
        "--json", metavar="PATH", help="write the overload report as JSON"
    )

    p_soak = sub.add_parser(
        "soak",
        help="end-to-end soak: drive the fully composed stack (ingest "
        "guard, backpressure queue, degradation ladder, checkpoints, "
        "optional worker shards) through a phased fault campaign with "
        "crash-restart recovery; exits non-zero on any cross-layer "
        "invariant breach",
    )
    p_soak.add_argument(
        "--scenario", default="smoke",
        help="committed scenario to run (default: %(default)s); "
        "see --list",
    )
    p_soak.add_argument(
        "--list", action="store_true",
        help="list the committed scenarios and exit",
    )
    p_soak.add_argument(
        "--seed", type=int, default=None,
        help="override the scenario's seed",
    )
    p_soak.add_argument(
        "--checkpoint-dir", metavar="PATH", default=None,
        help="directory for checkpoint files (default: a temporary "
        "directory, removed afterwards)",
    )
    p_soak.add_argument(
        "--no-verify-checksum", action="store_true",
        help="disable CRC32 checkpoint verification during recovery "
        "(silent corruption then restores bad state, which the "
        "re-convergence invariant catches)",
    )
    p_soak.add_argument(
        "--wal-dir", metavar="PATH", default=None,
        help="directory for write-ahead-log segments, for scenarios "
        "with the WAL enabled (default: <scenario>.wal beside the "
        "checkpoints); ignored by WAL-less scenarios",
    )
    p_soak.add_argument(
        "--json", metavar="PATH", help="write the soak report as JSON"
    )

    p_wal = sub.add_parser(
        "wal",
        help="write-ahead-log tooling: 'inspect' walks every segment "
        "of a log directory, verifies frame CRCs, and exits non-zero "
        "if any record is damaged or any tail is torn",
    )
    p_wal.add_argument("action", choices=("inspect",))
    p_wal.add_argument(
        "--dir", required=True, metavar="PATH",
        help="WAL directory (holds wal-*.seg files)",
    )
    p_wal.add_argument(
        "--json", metavar="PATH",
        help="write the full inspection report (per-record detail) as "
        "JSON",
    )

    p_bench = sub.add_parser(
        "bench",
        help="fixed-seed benchmark suite: every monitor x uniform/gaussian, "
        "skewed-workload rows (static/drifting hotspot, power-law cities) "
        "for the aG2 index backends, numpy-backend rows when numpy is "
        "importable, plus a multi-query scaling row; writes the JSON "
        "document the CI bench gate compares against the committed "
        "BENCH_PR9.json",
    )
    p_bench.add_argument(
        "--seed", type=int, default=42,
        help="stream seed (default: %(default)s)",
    )
    p_bench.add_argument(
        "--profile", default="both", choices=("full", "quick", "both"),
        help="suite sizing: full (baseline), quick (CI smoke), or both "
        "(default: %(default)s)",
    )
    p_bench.add_argument(
        "--out", metavar="PATH", help="write the bench document as JSON"
    )
    p_bench.add_argument(
        "--no-scaling", action="store_true",
        help="skip the multi-query serial-vs-parallel scaling row",
    )

    p_dataset = sub.add_parser(
        "dataset", help="dump a workload sample to CSV (x,y,weight,timestamp)"
    )
    _add_common(p_dataset)
    p_dataset.add_argument(
        "--count", type=int, default=10_000, help="objects to emit"
    )
    p_dataset.add_argument(
        "--output", required=True, help="CSV file to write"
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "monitor":
        cfg = _config(args)
        algorithms = _parse_list(args.algorithms, str)
        times = run_config(cfg, algorithms)
        rows = [{"algorithm": name, "mean_ms": ms} for name, ms in times.items()]
        print(format_rows(rows, title=f"dataset={cfg.dataset}"))
    elif args.command == "sweep":
        cfg = _config(args)
        cast = float if args.parameter == "rect_side" else int
        values = _parse_list(args.values, cast)
        rows = run_sweep(cfg, args.parameter, values)
        print(format_rows(rows, title=f"{args.parameter} sweep [{cfg.dataset}]"))
    elif args.command == "approx":
        cfg = _config(args)
        rows = run_approx_sweep(cfg, _parse_list(args.epsilons, float))
        print(format_rows(rows, title=f"epsilon sweep [{cfg.dataset}]"))
    elif args.command == "topk":
        cfg = _config(args)
        rows = run_topk_sweep(cfg, _parse_list(args.ks, int))
        print(format_rows(rows, title=f"k sweep [{cfg.dataset}]"))
    elif args.command == "ablation":
        cfg = _config(args)
        rows = run_ablation(cfg, _parse_list(args.datasets, str))
        print(format_rows(rows, title="Algorithm 5 ablation (mean ms)"))
    elif args.command == "profile":
        cfg = _config(args)
        profile = run_profile(cfg, _parse_list(args.algorithms, str))
        title = (
            f"profile [{cfg.dataset}] window={cfg.window_size} "
            f"rate={cfg.batch_size} batches={profile.report.batches} "
            f"seed={cfg.seed}"
        )
        print(format_rows(profile.summary_rows(), title=title))
        print(_backend_line(profile.vector_info))
        if args.per_batch:
            print()
            print(
                format_rows(
                    profile.per_batch_rows(), title="per-batch deltas"
                )
            )
        if args.rates:
            print()
            print(
                format_rows(
                    profile.rate_rows(), title="per-batch derived rates"
                )
            )
        if profile.report.source_exhausted:
            print(
                f"warning: source exhausted after {profile.report.batches} "
                f"of {profile.report.requested_batches} batches"
            )
        if args.json:
            write_metrics_json(args.json, profile.to_dict())
            print(f"wrote metrics JSON to {args.json}")
        if args.csv:
            write_metrics_csv(args.csv, profile.report.metrics)
            print(f"wrote metrics CSV to {args.csv}")
    elif args.command == "chaos":
        from repro.resilience import run_chaos

        chaos_report = run_chaos(
            args.dataset,
            window=args.window,
            rate=args.rate,
            batches=args.batches,
            side=args.side,
            domain=args.domain,
            seed=args.seed,
            policy=args.policy,
            p_drop=args.p_drop,
            p_duplicate=args.p_duplicate,
            p_corrupt=args.p_corrupt,
            p_delay=args.p_delay,
            max_delay=args.max_delay,
            max_lateness=args.max_lateness,
            probe_every=args.probe_every,
            checkpoint_path=args.checkpoint,
            checkpoint_every=args.checkpoint_every,
        )
        title = (
            f"chaos soak [{args.dataset}] window={args.window} "
            f"rate={args.rate} batches={chaos_report.engine_report.batches} "
            f"seed={args.seed} policy={args.policy}"
        )
        print(format_rows(chaos_report.rows(), title=title))
        if args.json:
            write_metrics_json(args.json, chaos_report.to_dict())
            print(f"wrote chaos report JSON to {args.json}")
        if not chaos_report.result_verified:
            print(
                "FAIL: supervised result diverges from naive recompute "
                f"({chaos_report.supervised_weight} != "
                f"{chaos_report.naive_weight})"
            )
            return 1
        if not chaos_report.accounted:
            print("FAIL: ingest accounting does not close")
            return 1
        print("OK: survived chaos; result verified, accounting closed")
    elif args.command == "overload":
        from repro.overload import run_overload

        overload_report = run_overload(
            args.dataset,
            window=args.window,
            rate=args.rate,
            ticks=args.ticks,
            pattern=args.pattern,
            burst_factor=args.burst_factor,
            period=args.period,
            burst_ticks=args.burst_ticks,
            side=args.side,
            domain=args.domain,
            seed=args.seed,
            budget_ms=args.budget_ms,
            capacity=args.capacity,
            max_batch=args.max_batch,
            shed_policy=args.shed_policy,
            epsilons=tuple(_parse_list(args.epsilons, float)),
            verify_every=args.verify_every,
        )
        title = (
            f"overload soak [{args.dataset}] window={args.window} "
            f"rate={args.rate} pattern={args.pattern} "
            f"burst_factor={args.burst_factor:g} seed={args.seed}"
        )
        print(format_rows(overload_report.rows(), title=title))
        if args.json:
            write_metrics_json(args.json, overload_report.to_dict())
            print(f"wrote overload report JSON to {args.json}")
        failed = False
        if not overload_report.within_budget:
            print(
                f"FAIL: p95 update latency {overload_report.p95_ms:.3f} ms "
                f"over budget {overload_report.budget_ms:.3f} ms"
            )
            failed = True
        if not overload_report.ledger_closed:
            print(
                "FAIL: backpressure ledger does not close "
                f"({overload_report.ledger})"
            )
            failed = True
        if not overload_report.guarantees_verified:
            print(
                "FAIL: degraded answers broke their guarantee "
                f"({overload_report.guarantee_failures} of "
                f"{overload_report.guarantee_checks} checks)"
            )
            failed = True
        if not overload_report.recovered:
            print(
                "FAIL: ladder did not return to exact "
                f"(final mode: {overload_report.final_mode})"
            )
            failed = True
        if failed:
            return 1
        print(
            "OK: p95 within budget, ledger closed, guarantees verified, "
            "ladder recovered to exact"
        )
    elif args.command == "soak":
        from repro.soak import get_scenario, list_scenarios, run_soak

        if args.list:
            rows = [
                {
                    "scenario": scn.name,
                    "phases": len(scn.phases),
                    "ticks": scn.total_ticks,
                    "workers": scn.workers,
                    "description": scn.description,
                }
                for scn in list_scenarios()
            ]
            print(format_rows(rows, title="committed soak scenarios"))
            return 0
        scenario = get_scenario(args.scenario)
        soak_report = run_soak(
            scenario,
            seed=args.seed,
            verify_checksum=not args.no_verify_checksum,
            checkpoint_dir=args.checkpoint_dir,
            wal_dir=args.wal_dir,
        )
        title = (
            f"soak [{scenario.name}] seed={soak_report.seed} "
            f"phases={len(scenario.phases)} ticks={soak_report.ticks}"
        )
        print(format_rows(soak_report.rows(), title=title))
        if args.json:
            write_metrics_json(args.json, soak_report.to_dict())
            print(f"wrote soak report JSON to {args.json}")
        if not soak_report.ok:
            for line in soak_report.failures():
                print(f"FAIL: {line}")
            return 1
        print(
            "OK: campaign survived; conservation closed, watermarks "
            "monotone, guarantees held, recoveries re-converged exactly"
        )
    elif args.command == "wal":
        from repro.durability import inspect_wal

        doc = inspect_wal(args.dir)
        rows = [
            {"quantity": "directory", "value": doc["directory"]},
            {"quantity": "segments", "value": doc["segments"]},
            {"quantity": "records", "value": doc["records"]},
            {"quantity": "damaged records", "value": doc["damaged_records"]},
            {"quantity": "torn segments", "value": doc["torn_segments"]},
            {"quantity": "clean", "value": doc["clean"]},
        ]
        print(format_rows(rows, title=f"wal inspect [{args.dir}]"))
        if args.json:
            write_metrics_json(args.json, doc)
            print(f"wrote inspection report JSON to {args.json}")
        if not doc["clean"]:
            print(
                f"FAIL: log is damaged ({doc['damaged_records']} bad "
                f"records, {doc['torn_segments']} torn segments)"
            )
            return 1
        print("OK: every record verified, no torn tails")
    elif args.command == "bench":
        from repro.bench.bench import bench_rows, run_bench, scaling_rows

        names = (
            ("full", "quick") if args.profile == "both" else (args.profile,)
        )
        doc = run_bench(
            seed=args.seed, profiles=names, scaling=not args.no_scaling
        )
        print(
            format_rows(
                bench_rows(doc),
                title=f"bench seed={args.seed} cpus={doc['cpu_count']}",
            )
        )
        vec = doc["vector"]
        print(
            "vector backend: "
            + (
                f"numpy {vec['numpy']}"
                + (f", numba {vec['numba']}" if vec["numba"] else ", no numba")
                if vec["available"]
                else "unavailable (python rows only)"
            )
        )
        mq_rows = scaling_rows(doc)
        if mq_rows:
            print()
            print(
                format_rows(
                    mq_rows, title="multi-query scaling (serial vs parallel)"
                )
            )
        if args.out:
            write_metrics_json(args.out, doc)
            print(f"wrote bench JSON to {args.out}")
    elif args.command == "dataset":
        from repro.datasets import make_stream
        from repro.streams import write_csv

        stream = make_stream(args.dataset, domain=args.domain, seed=args.seed)
        objects = stream.take(args.count)
        write_csv(args.output, objects)
        print(f"wrote {len(objects)} objects to {args.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
