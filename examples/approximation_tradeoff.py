#!/usr/bin/env python3
"""Approximation trade-off (paper §6.1 / Figure 10, hands on).

Runs the exact monitor and ε-approximate monitors side by side on the
same skewed stream and reports, per ε: the update-time speedup and the
*practical* error — which the paper observes (and Theorem 1 guarantees)
stays well below the tolerated ε.

Run:  python examples/approximation_tradeoff.py
"""

import time

from repro import AG2Monitor, CountWindow, practical_error
from repro.datasets import make_stream
from repro.streams import batches

SIDE = 1000.0
WINDOW = 3_000
BATCH = 100
ROUNDS = 20
EPSILONS = (0.0, 0.1, 0.3, 0.5)


def main() -> None:
    monitors = {
        eps: AG2Monitor(
            rect_width=SIDE,
            rect_height=SIDE,
            window=CountWindow(WINDOW),
            epsilon=eps,
        )
        for eps in EPSILONS
    }
    elapsed = {eps: 0.0 for eps in EPSILONS}
    worst_error = {eps: 0.0 for eps in EPSILONS}

    stream = make_stream("roma_like", domain=60_000.0, seed=5)
    for tick, batch in enumerate(batches(stream, size=BATCH)):
        exact_weight = 0.0
        for eps, monitor in monitors.items():
            start = time.perf_counter()
            result = monitor.update(batch)
            elapsed[eps] += time.perf_counter() - start
            if eps == 0.0:
                exact_weight = result.best_weight
            elif tick * BATCH > WINDOW:  # measure at steady state only
                err = practical_error(result.best_weight, exact_weight)
                worst_error[eps] = max(worst_error[eps], err)
        if tick >= ROUNDS + WINDOW // BATCH:
            break

    exact_time = elapsed[0.0]
    print(f"{'epsilon':>8}  {'time/update':>12}  {'speedup':>8}  {'worst error':>12}")
    for eps in EPSILONS:
        per_update = elapsed[eps] / (ROUNDS + WINDOW // BATCH + 1) * 1000
        speedup = exact_time / elapsed[eps] if elapsed[eps] else float("inf")
        guarantee = f"(≤ {eps:.1f} guaranteed)" if eps else "(exact)"
        print(
            f"{eps:>8.1f}  {per_update:>10.2f}ms  {speedup:>7.2f}x  "
            f"{worst_error[eps]:>12.4f} {guarantee}"
        )


if __name__ == "__main__":
    main()
