#!/usr/bin/env python3
"""Location-based game (paper Example 1.3): top-k competition hotspots.

Players of an Ingress-style game roam a city; each position report
carries the player's strength.  A continuous *top-k* MaxRS query tracks
the k areas where the strongest concentration of players is currently
competing, so a team can plan where to attack — or what to avoid.

Players are simulated as a trajectory fleet attracted to portal
clusters; the monitor reports the five hottest 500m × 500m zones after
every update and flags when the leaderboard of zones changes.

Run:  python examples/location_game.py
"""

from repro import TopKAG2Monitor, CountWindow
from repro.streams import Hotspot, TrajectoryFleetStream, batches

CITY = 20_000.0      # 20 km square
ZONE = 500.0         # contested zone size
K = 5

PORTALS = [
    Hotspot(cx=0.25, cy=0.25, sigma=0.015, share=1.0),
    Hotspot(cx=0.75, cy=0.30, sigma=0.015, share=0.8),
    Hotspot(cx=0.50, cy=0.75, sigma=0.020, share=1.2),
]


def zone_label(region) -> str:
    x, y = region.best_point
    return f"({x / 1000:.1f}km, {y / 1000:.1f}km)"


def main() -> None:
    monitor = TopKAG2Monitor(
        rect_width=ZONE,
        rect_height=ZONE,
        window=CountWindow(3_000),   # most recent 3,000 position reports
        k=K,
    )
    players = TrajectoryFleetStream(
        vehicles=150,
        hotspots=PORTALS,
        hotspot_bias=0.8,
        speed=0.01,
        domain=CITY,
        weight_max=100.0,   # player strength
        seed=11,
    )
    previous: list[int] = []
    for tick, batch in enumerate(batches(players, size=150)):
        result = monitor.update(batch)
        leaders = [r.anchor_oid for r in result.regions]
        if tick % 10 == 0 or leaders[:1] != previous[:1]:
            changed = "  << new #1" if leaders[:1] != previous[:1] else ""
            zones = ", ".join(
                f"{zone_label(r)}={r.weight:.0f}" for r in result.regions
            )
            print(f"round {tick:>3}: top-{K} zones {zones}{changed}")
        previous = leaders
        if tick >= 60:
            break
    print(
        f"\n{monitor.stats.local_sweeps} local sweeps over "
        f"{monitor.stats.updates} updates "
        f"({monitor.stats.vertices_pruned} vertex computations pruned)"
    )


if __name__ == "__main__":
    main()
