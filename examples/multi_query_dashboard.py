#!/usr/bin/env python3
"""Operations dashboard: several continuous queries, change alerts,
and crash recovery — the serving-layer features around the core paper.

One city-wide GPS stream feeds three continuous MaxRS queries at once
(the paper's §8 future-work scenario):

* ``district``  — where should a 5km mobile service hub go?
* ``block``     — which 500m block is hottest right now?
* ``top3``      — the three busiest distinct blocks (top-k).

A :class:`ResultRecorder` turns the block query into an alert feed
(only report when the hotspot actually moves), and the monitor state is
snapshotted to JSON and restored — simulating a process restart without
losing the window.

Run:  python examples/multi_query_dashboard.py
"""

import tempfile
from pathlib import Path

from repro import AG2Monitor, CountWindow, TopKAG2Monitor, load_json, save_json
from repro.engine import MultiQueryGroup, ResultRecorder
from repro.streams import Hotspot, HotspotMixtureStream, batches

CITY = 30_000.0

STREAM = HotspotMixtureStream(
    hotspots=[
        Hotspot(cx=0.3, cy=0.3, sigma=0.03, share=1.0),
        Hotspot(cx=0.7, cy=0.6, sigma=0.04, share=0.8),
    ],
    background_share=0.4,
    domain=CITY,
    weight_max=10.0,
    seed=17,
)


def main() -> None:
    group = MultiQueryGroup()
    group.add("district", AG2Monitor(5000.0, 5000.0, CountWindow(2000)))
    group.add("block", AG2Monitor(500.0, 500.0, CountWindow(2000)))
    group.add("top3", TopKAG2Monitor(500.0, 500.0, CountWindow(2000), k=3))

    alerts = ResultRecorder(move_threshold=1000.0, weight_threshold=0.5)
    def announce(change) -> None:
        if change.previous is None:
            print(f"  ALERT tick {change.tick}: first hot block detected")
        elif change.moved_distance > alerts.move_threshold:
            print(
                f"  ALERT tick {change.tick}: hot block moved "
                f"{change.moved_distance:,.0f} m"
            )
        else:
            print(
                f"  ALERT tick {change.tick}: hot block intensity changed "
                f"{change.weight_ratio:+.0%}"
            )

    alerts.on_change(announce)

    for tick, batch in enumerate(batches(STREAM, 100)):
        results = group.update(batch)
        alerts.record(results["block"])
        if tick % 10 == 0:
            district = results["district"].best
            blocks = results["top3"].regions
            print(
                f"tick {tick:>3}: district hub weight={district.weight:,.0f} "
                + "| top blocks: "
                + ", ".join(f"{r.weight:,.0f}" for r in blocks)
            )
        if tick == 20:
            # simulate a restart: persist the block query, drop it, restore
            path = Path(tempfile.gettempdir()) / "block_query.json"
            save_json(group.monitor("block"), path)
            group.remove("block")
            group.add("block", load_json(path))
            print(f"  (block query snapshotted to {path} and restored)")
        if tick >= 40:
            break

    print(
        f"\nblock hotspot stability: {alerts.stability():.0%} of updates "
        f"left the answer in place ({alerts.change_count} changes)"
    )


if __name__ == "__main__":
    main()
