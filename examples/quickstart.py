#!/usr/bin/env python3
"""Quickstart: continuous MaxRS monitoring in a dozen lines.

Streams uniformly distributed weighted objects through an aG2 monitor
with a count-based window and prints where a 1000×1000 rectangle should
be placed to cover the most weight — continuously, after every arrival
batch.

Run:  python examples/quickstart.py
"""

from repro import AG2Monitor, CountWindow
from repro.streams import UniformStream, batches


def main() -> None:
    # a window of the 2,000 most recent objects; the query rectangle
    # is 1000 x 1000 over a 100,000 x 100,000 monitoring space
    monitor = AG2Monitor(
        rect_width=1000.0,
        rect_height=1000.0,
        window=CountWindow(2_000),
    )

    stream = UniformStream(domain=100_000.0, weight_max=100.0, seed=7)
    print(f"{'batch':>5}  {'window':>6}  {'best weight':>11}  best placement")
    for tick, batch in enumerate(batches(stream, size=100)):
        result = monitor.update(batch)
        if tick % 5 == 0 and result.best is not None:
            x, y = result.best.best_point
            print(
                f"{tick:>5}  {result.window_size:>6}  "
                f"{result.best_weight:>11.1f}  ({x:>9.1f}, {y:>9.1f})"
            )
        if tick >= 50:
            break

    stats = monitor.stats
    print(
        f"\nprocessed {stats.objects_seen} objects in {stats.updates} updates; "
        f"{stats.local_sweeps} local plane sweeps, "
        f"{stats.cells_pruned} cell visits pruned"
    )


if __name__ == "__main__":
    main()
