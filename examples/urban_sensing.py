#!/usr/bin/env python3
"""Urban sensing (paper Example 1.2): monitor where traffic concentrates.

A base station collects ``<latitude, longitude, traffic>`` reports from
mobile devices in a city.  A continuous MaxRS query over a *time-based*
sliding window tracks the 2km × 2km area with the heaviest communication
traffic in the last half hour, so the operator can warn users about delays
(or decide where the next Wi-Fi access point pays off).

The city is simulated with a hotspot mixture: a dense business district
plus a stadium that fills up halfway through the run — watch the
monitored area jump to the stadium as the event starts.

Run:  python examples/urban_sensing.py
"""

from repro import AG2Monitor, TimeWindow
from repro.streams import Hotspot, HotspotMixtureStream, batches

CITY = 50_000.0          # 50 km square, metres
AREA = 2_000.0           # monitored rectangle: 2 km x 2 km
WINDOW_MINUTES = 30.0
REPORTS_PER_MINUTE = 30

BUSINESS = Hotspot(cx=0.30, cy=0.60, sigma=0.05, share=0.6)
STADIUM = Hotspot(cx=0.75, cy=0.25, sigma=0.02, share=2.5)


def city_stream(with_event: bool, seed: int) -> HotspotMixtureStream:
    hotspots = [BUSINESS, STADIUM] if with_event else [BUSINESS]
    return HotspotMixtureStream(
        hotspots=hotspots,
        background_share=0.3,
        domain=CITY,
        weight_max=50.0,       # traffic volume per report
        seed=seed,
        dt=60.0 / REPORTS_PER_MINUTE,   # seconds between reports
    )


def describe(minute: int, result) -> None:
    if result.best is None:
        return
    x, y = result.best.best_point
    stadium_x, stadium_y = STADIUM.cx * CITY, STADIUM.cy * CITY
    near_stadium = abs(x - stadium_x) < 2500 and abs(y - stadium_y) < 2500
    where = "STADIUM ⚠ event crowd" if near_stadium else "business district"
    print(
        f"t+{minute:>3} min  window={result.window_size:>5}  "
        f"traffic={result.best_weight:>8.0f}  hotspot at "
        f"({x:>8.0f}, {y:>8.0f})  [{where}]"
    )


def main() -> None:
    monitor = AG2Monitor(
        rect_width=AREA,
        rect_height=AREA,
        window=TimeWindow(WINDOW_MINUTES * 60.0),
    )
    # one batch per simulated minute
    per_minute = REPORTS_PER_MINUTE
    minute = 0
    print("-- normal traffic --")
    for batch in batches(city_stream(with_event=False, seed=3), per_minute):
        result = monitor.update(batch)
        minute += 1
        if minute % 9 == 0:
            describe(minute, result)
        if minute >= 45:
            break
    print("-- stadium event begins --")
    # the event stream continues the clock where the first one stopped
    offset = 45 * 60.0
    for batch in batches(city_stream(with_event=True, seed=4), per_minute):
        shifted = [
            type(o)(x=o.x, y=o.y, weight=o.weight, timestamp=o.timestamp + offset)
            for o in batch
        ]
        result = monitor.update(shifted)
        minute += 1
        if minute % 9 == 0:
            describe(minute, result)
        if minute >= 90:
            break


if __name__ == "__main__":
    main()
