"""BackpressureQueue: bounded depth, shed policies, conservation ledger."""

from __future__ import annotations

import random

import pytest

from conftest import make_objects
from repro.errors import InvalidParameterError
from repro.obs import Metrics
from repro.overload import BackpressureQueue, ShedPolicy


class TestShedPolicy:
    def test_coerce_strings(self):
        assert ShedPolicy.coerce("block") is ShedPolicy.BLOCK
        assert ShedPolicy.coerce("SHED_OLDEST") is ShedPolicy.SHED_OLDEST
        assert ShedPolicy.coerce("shed-newest") is ShedPolicy.SHED_NEWEST
        assert ShedPolicy.coerce(ShedPolicy.BLOCK) is ShedPolicy.BLOCK

    def test_coerce_unknown_rejected(self):
        with pytest.raises(InvalidParameterError):
            ShedPolicy.coerce("drop_everything")


class TestConstruction:
    def test_capacity_validated(self):
        with pytest.raises(InvalidParameterError):
            BackpressureQueue(0)
        with pytest.raises(InvalidParameterError):
            BackpressureQueue(-5)

    def test_max_batch_validated(self):
        with pytest.raises(InvalidParameterError):
            BackpressureQueue(10, max_batch=0)


class TestOfferAndTake:
    def test_fifo_order_preserved(self):
        queue = BackpressureQueue(10)
        objects = make_objects(6)
        assert queue.offer_all(objects) == []
        assert queue.take_batch() == objects

    def test_take_batch_respects_limit(self):
        queue = BackpressureQueue(10, max_batch=4)
        objects = make_objects(10)
        queue.offer_all(objects)
        first = queue.take_batch()
        assert first == objects[:4]
        assert queue.take_batch(2) == objects[4:6]
        assert queue.take_batch() == objects[6:10]
        assert queue.pending == 0

    def test_take_batch_limit_validated(self):
        queue = BackpressureQueue(10)
        with pytest.raises(InvalidParameterError):
            queue.take_batch(0)

    def test_drain_yields_until_empty(self):
        queue = BackpressureQueue(20)
        queue.offer_all(make_objects(10))
        batches = list(queue.drain(3))
        assert [len(b) for b in batches] == [3, 3, 3, 1]
        assert queue.pending == 0

    def test_high_water_tracks_deepest_point(self):
        queue = BackpressureQueue(100)
        queue.offer_all(make_objects(7))
        queue.take_batch(5)
        queue.offer_all(make_objects(2, seed=1))
        assert queue.high_water == 7


class TestBlockPolicy:
    def test_refuses_when_full(self):
        queue = BackpressureQueue(3, policy=ShedPolicy.BLOCK)
        objects = make_objects(5)
        refused = queue.offer_all(objects)
        assert refused == objects[3:]
        assert queue.pending == 3
        assert queue.refused == 2
        assert queue.ledger_closed

    def test_refused_can_reenter_after_drain(self):
        queue = BackpressureQueue(3, policy="block")
        objects = make_objects(5)
        refused = queue.offer_all(objects)
        queue.take_batch()
        assert queue.offer_all(refused) == []
        assert queue.take_batch() == objects[3:]
        assert queue.ledger_closed


class TestSheddingPolicies:
    def test_shed_oldest_keeps_freshest(self):
        queue = BackpressureQueue(3, policy=ShedPolicy.SHED_OLDEST)
        objects = make_objects(5)
        assert queue.offer_all(objects) == []  # shedding never refuses
        assert queue.take_batch() == objects[2:]  # oldest two gave way
        assert queue.shed_oldest == 2 and queue.shed_newest == 0
        assert queue.ledger_closed

    def test_shed_newest_keeps_backlog(self):
        queue = BackpressureQueue(3, policy=ShedPolicy.SHED_NEWEST)
        objects = make_objects(5)
        assert queue.offer_all(objects) == []
        assert queue.take_batch() == objects[:3]  # incoming were dropped
        assert queue.shed_newest == 2 and queue.shed_oldest == 0
        assert queue.ledger_closed

    def test_depth_never_exceeds_capacity(self):
        for policy in ShedPolicy:
            queue = BackpressureQueue(4, policy=policy)
            queue.offer_all(make_objects(25))
            assert queue.pending <= 4
            assert queue.high_water <= 4


class TestLedger:
    @pytest.mark.parametrize("policy", list(ShedPolicy))
    def test_ledger_closes_under_random_workload(self, policy):
        rng = random.Random(7)
        queue = BackpressureQueue(8, policy=policy, max_batch=5)
        offered_back: list = []
        for step in range(60):
            arrivals = make_objects(rng.randrange(0, 7), seed=step)
            offered_back = queue.offer_all(offered_back + arrivals)
            if rng.random() < 0.7:
                queue.take_batch()
            assert queue.ledger_closed
        ledger = queue.ledger
        assert ledger["offered"] == queue.offered
        assert ledger["pending"] == queue.pending

    def test_ledger_is_plain_data(self):
        queue = BackpressureQueue(4)
        queue.offer_all(make_objects(6))
        queue.take_batch(2)
        ledger = queue.ledger
        assert ledger == {
            "offered": 6,
            "processed": 2,
            "shed_oldest": 2,
            "shed_newest": 0,
            "refused": 0,
            "spilled": 0,
            "pending": 2,
            "high_water": 4,
        }


class TestMetrics:
    def test_counters_and_gauges_emitted(self):
        metrics = Metrics("bp")
        queue = BackpressureQueue(3, metrics=metrics, max_batch=2)
        queue.offer_all(make_objects(5))
        queue.take_batch()
        snap = metrics.snapshot()
        assert snap.counters["shed_objects"] == 2
        assert snap.counters["coalesced_batches"] == 1
        assert snap.counters["processed_objects"] == 2
        assert snap.gauges["queue_depth"] == 1
