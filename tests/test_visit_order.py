"""Tests for the branch-and-bound cell visit-order knob."""

from __future__ import annotations

import pytest

from conftest import make_objects
from repro.core.ag2 import AG2Monitor
from repro.core.naive import NaiveMonitor
from repro.errors import InvalidParameterError
from repro.window import CountWindow


class TestVisitOrder:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            AG2Monitor(5, 5, CountWindow(5), visit_order="random")

    def test_default_is_bound_order(self):
        assert AG2Monitor(5, 5, CountWindow(5)).visit_order == "bound"

    @pytest.mark.parametrize("order", ["bound", "arbitrary"])
    def test_both_orders_exact(self, order):
        """Visit order is a performance knob, never a semantics knob."""
        ag2 = AG2Monitor(10, 10, CountWindow(40), visit_order=order)
        naive = NaiveMonitor(10, 10, CountWindow(40))
        for i in range(10):
            batch = make_objects(10, seed=i, domain=90.0)
            a = ag2.update(batch)
            b = naive.update(batch)
            assert a.best_weight == pytest.approx(b.best_weight)
            ag2.check_invariants()

    @pytest.mark.parametrize("order", ["bound", "arbitrary"])
    def test_pruning_accounting_consistent(self, order):
        """Every batch, each candidate cell is either visited (overlap
        computed) or counted as pruned — nothing silently skipped."""
        m = AG2Monitor(8, 8, CountWindow(120), visit_order=order)
        visited_plus_pruned_prev = 0
        for i in range(6):
            m.update(make_objects(20, seed=300 + i, domain=200.0))
            total = m.stats.cells_visited + m.stats.cells_pruned
            # strictly grows once multiple cells exist
            assert total >= visited_plus_pruned_prev
            visited_plus_pruned_prev = total
        assert m.stats.cells_pruned > 0
