"""Unit tests for the time-based sliding window."""

from __future__ import annotations

import pytest

from repro.core.objects import SpatialObject
from repro.errors import InvalidParameterError, WindowOrderError
from repro.window import TimeWindow


def at(*timestamps: float) -> list[SpatialObject]:
    return [SpatialObject(x=0, y=0, timestamp=t) for t in timestamps]


class TestTimeWindow:
    def test_duration_validation(self):
        with pytest.raises(InvalidParameterError):
            TimeWindow(0)
        with pytest.raises(InvalidParameterError):
            TimeWindow(-1.0)

    def test_keeps_recent_objects(self):
        w = TimeWindow(10.0)
        batch = at(0, 3, 5)
        update = w.push(batch)
        assert update.arrived == tuple(batch)
        assert update.expired == ()
        assert w.now == 5.0

    def test_expires_by_age(self):
        w = TimeWindow(10.0)
        old = at(0, 2)
        w.push(old)
        update = w.push(at(11, 12))
        # cutoff is 12 - 10 = 2: timestamps <= 2 expire
        assert update.expired == tuple(old)
        assert len(w) == 2

    def test_boundary_timestamp_expires(self):
        w = TimeWindow(5.0)
        first = at(0)
        w.push(first)
        update = w.push(at(5.0))
        assert update.expired == tuple(first)

    def test_out_of_order_batch_rejected(self):
        w = TimeWindow(10.0)
        w.push(at(5))
        with pytest.raises(WindowOrderError):
            w.push(at(3))

    def test_out_of_order_within_batch_rejected(self):
        w = TimeWindow(10.0)
        with pytest.raises(WindowOrderError):
            w.push(at(4, 2))

    def test_equal_timestamps_allowed(self):
        w = TimeWindow(10.0)
        w.push(at(1, 1, 1))
        assert len(w) == 3

    def test_advance_to_expires_without_arrivals(self):
        w = TimeWindow(4.0)
        batch = at(0, 1, 3)
        w.push(batch)
        assert len(w) == 3
        update = w.advance_to(5.5)  # cutoff 1.5: expires t=0 and t=1
        assert update.arrived == ()
        assert update.expired == tuple(batch[:2])
        assert len(w) == 1

    def test_advance_backwards_rejected(self):
        w = TimeWindow(4.0)
        w.push(at(10))
        with pytest.raises(WindowOrderError):
            w.advance_to(5.0)

    def test_stale_batch_member_never_alive(self):
        """An object already out of range on arrival appears in neither
        delta list (it was never alive)."""
        w = TimeWindow(2.0)
        update = w.push(at(0, 10))
        assert update.arrived == at(0, 10)[1:] or len(update.arrived) == 1
        assert update.expired == ()
        assert len(w) == 1
        assert w.contents[0].timestamp == 10

    def test_expired_subset_of_arrived(self):
        """Delta contract: everything expired previously arrived."""
        w = TimeWindow(3.0)
        arrived: list[SpatialObject] = []
        expired: list[SpatialObject] = []
        t = 0.0
        for _ in range(20):
            batch = at(t, t + 0.5)
            update = w.push(batch)
            arrived.extend(update.arrived)
            expired.extend(update.expired)
            t += 1.0
        assert expired == arrived[: len(expired)]

    def test_drained_window_still_rejects_time_travel(self):
        """Regression: once the window drains empty, the order guard
        must still hold against ``now`` — a push older than the window
        clock is the same time-travel that advance_to rejects."""
        w = TimeWindow(2.0)
        w.push(at(10.0))
        w.advance_to(20.0)  # everything expires; window is empty
        assert len(w) == 0
        with pytest.raises(WindowOrderError):
            w.push(at(5.0))
        # at or after the clock is still fine
        w.push(at(20.0))
        assert len(w) == 1

    def test_drained_by_expiry_rejects_time_travel(self):
        """Same regression via push-driven expiry (no advance_to)."""
        w = TimeWindow(1.0)
        w.push(at(0.0))
        w.push(at(100.0))  # the first object expires; only t=100 alive
        w.advance_to(200.0)  # now empty again
        with pytest.raises(WindowOrderError):
            w.push(at(150.0))

    def test_clear_resets_clock(self):
        w = TimeWindow(5.0)
        w.push(at(100))
        w.clear()
        assert len(w) == 0
        w.push(at(0))  # clock reset: earlier timestamps accepted again
        assert len(w) == 1
