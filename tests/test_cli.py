"""Tests for the maxrs-stream command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main

TINY = [
    "--window", "120", "--rate", "30", "--side", "2000",
    "--domain", "20000", "--batches", "2",
]


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_monitor_defaults(self):
        args = build_parser().parse_args(["monitor"])
        assert args.dataset == "synthetic"
        assert args.window == 10_000

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["monitor", "--dataset", "nope"])

    def test_sweep_parameter_restricted(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["sweep", "--parameter", "epsilon", "--values", "1"]
            )


class TestMain:
    def test_monitor_command(self, capsys):
        assert main(["monitor", *TINY, "--algorithms", "ag2"]) == 0
        out = capsys.readouterr().out
        assert "ag2" in out and "mean_ms" in out

    def test_sweep_command(self, capsys):
        code = main(
            ["sweep", *TINY, "--parameter", "window_size", "--values", "60,120"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "window_size" in out and "60" in out

    def test_approx_command(self, capsys):
        assert main(["approx", *TINY, "--epsilons", "0,0.5"]) == 0
        out = capsys.readouterr().out
        assert "epsilon" in out and "mean_error" in out

    def test_topk_command(self, capsys):
        assert main(["topk", *TINY, "--ks", "1,2"]) == 0
        out = capsys.readouterr().out
        assert "k" in out and "naive" in out

    def test_ablation_command(self, capsys):
        assert main(["ablation", *TINY, "--datasets", "synthetic"]) == 0
        out = capsys.readouterr().out
        assert "mode" in out and "synthetic" in out

    def test_dataset_command_roundtrips(self, capsys, tmp_path):
        from repro.streams import CsvStream

        path = tmp_path / "sample.csv"
        code = main(
            [
                "dataset", "--dataset", "geolife_like", "--domain", "5000",
                "--count", "40", "--output", str(path),
            ]
        )
        assert code == 0
        assert "wrote 40 objects" in capsys.readouterr().out
        loaded = list(CsvStream(path))
        assert len(loaded) == 40
        assert all(0 <= o.x <= 5000 for o in loaded)
