"""Tests for the maxrs-stream command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main

TINY = [
    "--window", "120", "--rate", "30", "--side", "2000",
    "--domain", "20000", "--batches", "2",
]


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_monitor_defaults(self):
        args = build_parser().parse_args(["monitor"])
        assert args.dataset == "synthetic"
        assert args.window == 10_000

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["monitor", "--dataset", "nope"])

    def test_sweep_parameter_restricted(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["sweep", "--parameter", "epsilon", "--values", "1"]
            )


class TestMain:
    def test_monitor_command(self, capsys):
        assert main(["monitor", *TINY, "--algorithms", "ag2"]) == 0
        out = capsys.readouterr().out
        assert "ag2" in out and "mean_ms" in out

    def test_sweep_command(self, capsys):
        code = main(
            ["sweep", *TINY, "--parameter", "window_size", "--values", "60,120"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "window_size" in out and "60" in out

    def test_approx_command(self, capsys):
        assert main(["approx", *TINY, "--epsilons", "0,0.5"]) == 0
        out = capsys.readouterr().out
        assert "epsilon" in out and "mean_error" in out

    def test_topk_command(self, capsys):
        assert main(["topk", *TINY, "--ks", "1,2"]) == 0
        out = capsys.readouterr().out
        assert "k" in out and "naive" in out

    def test_ablation_command(self, capsys):
        assert main(["ablation", *TINY, "--datasets", "synthetic"]) == 0
        out = capsys.readouterr().out
        assert "mode" in out and "synthetic" in out

    def test_dataset_command_roundtrips(self, capsys, tmp_path):
        from repro.streams import CsvStream

        path = tmp_path / "sample.csv"
        code = main(
            [
                "dataset", "--dataset", "geolife_like", "--domain", "5000",
                "--count", "40", "--output", str(path),
            ]
        )
        assert code == 0
        assert "wrote 40 objects" in capsys.readouterr().out
        loaded = list(CsvStream(path))
        assert len(loaded) == 40
        assert all(0 <= o.x <= 5000 for o in loaded)


OVERLOAD_TINY = [
    "overload",
    "--window", "150", "--rate", "10", "--ticks", "12",
    "--period", "12", "--burst-ticks", "2", "--burst-factor", "2",
    "--side", "2000", "--domain", "20000", "--budget-ms", "10000",
    "--verify-every", "4", "--seed", "3",
]


class TestOverloadCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["overload"])
        assert args.pattern == "square"
        assert args.burst_factor == 10.0
        assert args.budget_ms is None
        assert args.shed_policy == "shed_oldest"

    def test_unknown_pattern_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["overload", "--pattern", "sawtooth"])

    def test_overload_command_passes_when_calm(self, capsys):
        # a huge explicit budget: the ladder never moves, all gates green
        assert main(OVERLOAD_TINY) == 0
        out = capsys.readouterr().out
        assert "overload soak" in out
        assert "OK:" in out
        assert "FAIL" not in out

    def test_overload_json_report(self, capsys, tmp_path):
        path = tmp_path / "overload.json"
        assert main(OVERLOAD_TINY + ["--json", str(path)]) == 0
        import json

        doc = json.loads(path.read_text())
        assert doc["ledger_closed"] is True
        assert doc["final_mode"] == "exact"
        assert "transitions" in doc and "engine" in doc


class TestSoakCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["soak"])
        assert args.scenario == "smoke"
        assert args.seed is None
        assert args.no_verify_checksum is False

    def test_list_scenarios(self, capsys):
        assert main(["soak", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("smoke", "dirty_overload", "crash_recovery",
                     "worker_churn"):
            assert name in out

    def test_smoke_scenario_passes(self, capsys, tmp_path):
        path = tmp_path / "soak.json"
        code = main(
            ["soak", "--scenario", "smoke",
             "--checkpoint-dir", str(tmp_path / "ckpts"),
             "--json", str(path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "soak [smoke]" in out
        assert "OK:" in out and "FAIL" not in out
        import json

        doc = json.loads(path.read_text())
        assert doc["soak_passed"] is True
        assert doc["scenario"] == "smoke"
        assert "phase_breakdown" in doc

    def test_corrupted_checkpoint_fails_without_checksums(self, capsys):
        code = main(
            ["soak", "--scenario", "crash_recovery", "--no-verify-checksum"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "FAIL:" in out
