"""Tests for the dataset registry and workload profiles."""

from __future__ import annotations

import pytest

from repro.datasets import (
    DATASET_NAMES,
    available_datasets,
    make_stream,
    register_dataset,
)
from repro.datasets.registry import _REGISTRY
from repro.errors import InvalidParameterError
from repro.streams import UniformStream


class TestRegistry:
    def test_all_paper_datasets_registered(self):
        names = available_datasets()
        for name in DATASET_NAMES:
            assert name in names

    def test_unknown_dataset_rejected(self):
        with pytest.raises(InvalidParameterError):
            make_stream("osm")

    def test_register_custom(self):
        def factory(domain, seed=0, weight_max=1000.0):
            return UniformStream(domain=domain, seed=seed, weight_max=weight_max)

        register_dataset("custom_uniform", factory)
        try:
            stream = make_stream("custom_uniform", domain=10.0, seed=1)
            assert all(0 <= o.x <= 10 for o in stream.take(20))
        finally:
            _REGISTRY.pop("custom_uniform", None)

    def test_register_empty_name_rejected(self):
        with pytest.raises(InvalidParameterError):
            register_dataset("", lambda domain, **kw: None)


class TestProfiles:
    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_streams_stay_in_domain(self, name):
        stream = make_stream(name, domain=1000.0, seed=2)
        for obj in stream.take(300):
            assert 0 <= obj.x <= 1000
            assert 0 <= obj.y <= 1000
            assert 0 <= obj.weight <= 1000

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_streams_reproducible(self, name):
        a = make_stream(name, domain=500.0, seed=7).take(50)
        b = make_stream(name, domain=500.0, seed=7).take(50)
        assert [(o.x, o.y, o.weight) for o in a] == [
            (o.x, o.y, o.weight) for o in b
        ]

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_timestamps_non_decreasing(self, name):
        ts = [o.timestamp for o in make_stream(name, seed=3).take(100)]
        assert all(a <= b for a, b in zip(ts, ts[1:]))

    def test_skew_ordering_matches_paper(self):
        """The stand-ins preserve the paper's difficulty ordering:
        geolife is the most concentrated, synthetic the least.

        Concentration proxy: objects falling in the most popular cell
        of a coarse histogram."""

        def peak_share(name: str) -> float:
            objs = make_stream(name, domain=1000.0, seed=11).take(2000)
            cells: dict[tuple[int, int], int] = {}
            for o in objs:
                key = (int(o.x // 50), int(o.y // 50))
                cells[key] = cells.get(key, 0) + 1
            return max(cells.values()) / len(objs)

        synthetic = peak_share("synthetic")
        tdrive = peak_share("tdrive_like")
        geolife = peak_share("geolife_like")
        roma = peak_share("roma_like")
        assert synthetic < tdrive
        assert synthetic < roma < geolife
