"""Tests for monitor snapshot/restore persistence."""

from __future__ import annotations

import json

import pytest

from conftest import make_objects
from repro.core.ag2 import AG2Monitor
from repro.core.g2 import G2Monitor
from repro.core.monitor import MaxRSMonitor
from repro.core.naive import NaiveMonitor
from repro.core.quadtree import QuadtreeAG2Monitor
from repro.core.topk import TopKAG2Monitor
from repro.errors import InvalidParameterError
from repro.persist import load_json, restore, save_json, snapshot
from repro.window import CountWindow, TimeWindow, WindowUpdate


def primed(monitor, count=25, seed=8):
    monitor.ingest(make_objects(count, seed=seed, domain=60.0))
    return monitor


class TestSnapshotRestore:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: NaiveMonitor(10, 10, CountWindow(30)),
            lambda: G2Monitor(10, 10, CountWindow(30)),
            lambda: AG2Monitor(10, 10, CountWindow(30), epsilon=0.2),
            lambda: QuadtreeAG2Monitor(10, 10, CountWindow(30)),
            lambda: TopKAG2Monitor(10, 10, CountWindow(30), k=4),
        ],
    )
    def test_roundtrip_preserves_answers(self, factory):
        original = primed(factory())
        clone = restore(snapshot(original))
        batch = make_objects(5, seed=99, domain=60.0)
        a = original.update(batch)
        b = clone.update(batch)
        assert [r.weight for r in a.regions] == pytest.approx(
            [r.weight for r in b.regions]
        )

    def test_snapshot_is_json_serialisable(self):
        monitor = primed(AG2Monitor(10, 10, CountWindow(20)))
        text = json.dumps(snapshot(monitor))
        assert "objects" in text

    def test_config_preserved(self):
        monitor = AG2Monitor(7, 9, CountWindow(15), epsilon=0.3, cell_size=42.0)
        clone = restore(snapshot(monitor))
        assert isinstance(clone, AG2Monitor)
        assert clone.rect_width == 7 and clone.rect_height == 9
        assert clone.epsilon == 0.3
        assert clone.grid.cell_size == 42.0
        assert clone.window.capacity == 15  # type: ignore[attr-defined]

    def test_quadtree_policy_preserved(self):
        monitor = QuadtreeAG2Monitor(
            6,
            6,
            CountWindow(12),
            tile_size=96.0,
            min_leaf_size=6.0,
            split_occupancy=11,
            merge_occupancy=3,
            split_load=50.0,
            merge_load=1.5,
            load_decay=0.25,
        )
        clone = restore(snapshot(monitor))
        assert isinstance(clone, QuadtreeAG2Monitor)
        assert clone.tree.tile_size == 96.0
        assert clone.tree.min_leaf_size == 6.0
        assert clone.split_occupancy == 11
        assert clone.merge_occupancy == 3
        assert clone.split_load == 50.0
        assert clone.merge_load == 1.5
        assert clone.load_decay == 0.25

    def test_topk_k_preserved(self):
        clone = restore(snapshot(TopKAG2Monitor(5, 5, CountWindow(9), k=7)))
        assert isinstance(clone, TopKAG2Monitor)
        assert clone.k == 7

    def test_time_window_preserved(self):
        monitor = NaiveMonitor(5, 5, TimeWindow(123.0))
        clone = restore(snapshot(monitor))
        assert isinstance(clone.window, TimeWindow)
        assert clone.window.duration == 123.0

    def test_object_identity_preserved(self):
        monitor = primed(G2Monitor(10, 10, CountWindow(10)), count=4)
        clone = restore(snapshot(monitor))
        assert [o.oid for o in clone.window.contents] == [
            o.oid for o in monitor.window.contents
        ]

    def test_unknown_format_rejected(self):
        with pytest.raises(InvalidParameterError):
            restore({"format": 999})

    def test_unknown_kind_rejected(self):
        with pytest.raises(InvalidParameterError):
            restore({"format": 1, "kind": "btree"})

    def test_unsupported_monitor_rejected(self):
        class Weird(MaxRSMonitor):
            def _on_delta(self, delta: WindowUpdate) -> None:
                pass

            def _compute_result(self, tick):
                raise NotImplementedError

        with pytest.raises(InvalidParameterError):
            snapshot(Weird(1, 1, CountWindow(1)))


class TestJsonFiles:
    def test_save_and_load(self, tmp_path):
        path = tmp_path / "state.json"
        monitor = primed(AG2Monitor(10, 10, CountWindow(20)))
        save_json(monitor, path)
        clone = load_json(path)
        batch = make_objects(3, seed=5, domain=60.0)
        assert clone.update(batch).best_weight == pytest.approx(
            monitor.update(batch).best_weight
        )

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            load_json(tmp_path / "missing.json")
