"""Property-based tests: the sweep solvers against brute-force oracles."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bruteforce import (
    brute_force_anchored_best,
    brute_force_max,
    cover_weight,
)
from repro.core.geometry import Rect
from repro.core.objects import SpatialObject, WeightedRect
from repro.core.planesweep import (
    local_plane_sweep,
    plane_sweep_max,
    plane_sweep_topk,
)

# Coordinates from a small grid so overlaps, shared edges and exact
# ties are common — the adversarial cases for sweep-line code.
coord = st.integers(min_value=0, max_value=12).map(float)
weight = st.sampled_from([0.0, 0.5, 1.0, 2.0, 3.5])


@st.composite
def weighted_rects(draw, min_size=0, max_size=12):
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    rects = []
    for i in range(n):
        x1 = draw(coord)
        y1 = draw(coord)
        w = draw(st.integers(min_value=1, max_value=6))
        h = draw(st.integers(min_value=1, max_value=6))
        wt = draw(weight)
        obj = SpatialObject(x=x1 + w / 2, y=y1 + h / 2, weight=wt)
        rects.append(
            WeightedRect(rect=Rect(x1, y1, x1 + w, y1 + h), weight=wt, obj=obj)
        )
    return rects


@settings(max_examples=150, deadline=None)
@given(rects=weighted_rects())
def test_sweep_weight_matches_brute_force(rects):
    """plane_sweep_max finds exactly the brute-force optimum weight."""
    expected = brute_force_max(rects)
    region = plane_sweep_max(rects)
    if expected is None:
        assert region is None
        return
    assert region is not None
    assert region.weight == pytest.approx(expected[0])


@settings(max_examples=150, deadline=None)
@given(rects=weighted_rects(min_size=1))
def test_sweep_region_is_achievable(rects):
    """The reported region's interior truly has the reported weight."""
    region = plane_sweep_max(rects)
    if region is None:
        return
    x, y = region.best_point
    assert cover_weight(rects, x, y) == pytest.approx(region.weight)


@settings(max_examples=100, deadline=None)
@given(rects=weighted_rects(min_size=1, max_size=10))
def test_local_sweep_matches_anchored_brute_force(rects):
    """local_plane_sweep(anchor, rest) equals the exhaustive best
    space on the anchor."""
    anchor, *rest = rects
    if anchor.rect.is_degenerate:
        return
    neighbors = [r for r in rest if r.rect.overlaps(anchor.rect)]
    expected = brute_force_anchored_best(anchor, neighbors)
    region = local_plane_sweep(anchor, neighbors)
    assert region.weight == pytest.approx(expected)
    assert region.anchor_oid == anchor.oid
    # the space is on the anchor
    assert anchor.rect.contains_rect(region.rect)


@settings(max_examples=100, deadline=None)
@given(rects=weighted_rects(min_size=1), k=st.integers(min_value=1, max_value=5))
def test_topk_top1_equals_max(rects, k):
    """The single-sweep top-k's first entry is always the exact s*."""
    best = plane_sweep_max(rects)
    top = plane_sweep_topk(rects, k)
    if best is None:
        assert top == []
        return
    assert top
    assert top[0].weight == pytest.approx(best.weight)


@settings(max_examples=100, deadline=None)
@given(rects=weighted_rects(min_size=1), k=st.integers(min_value=1, max_value=5))
def test_topk_is_sorted_and_achievable(rects, k):
    top = plane_sweep_topk(rects, k)
    weights = [r.weight for r in top]
    assert weights == sorted(weights, reverse=True)
    assert len(top) <= k
    for region in top:
        x, y = region.best_point
        assert cover_weight(rects, x, y) == pytest.approx(region.weight)


@settings(max_examples=60, deadline=None)
@given(rects=weighted_rects(min_size=2))
def test_sweep_invariant_under_input_order(rects):
    """The optimum weight cannot depend on input order."""
    a = plane_sweep_max(rects)
    b = plane_sweep_max(list(reversed(rects)))
    if a is None:
        assert b is None
    else:
        assert b is not None
        assert a.weight == pytest.approx(b.weight)
