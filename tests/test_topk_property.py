"""Property-based tests for top-k monitoring against the anchored oracle."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bruteforce import brute_force_topk_anchored
from repro.core.objects import SpatialObject, to_weighted_rects
from repro.core.topk import TopKAG2Monitor
from repro.window import CountWindow

coord = st.integers(min_value=0, max_value=40).map(float)

objects = st.lists(
    st.builds(
        SpatialObject,
        x=coord,
        y=coord,
        weight=st.sampled_from([0.5, 1.0, 2.0, 4.0]),
    ),
    min_size=0,
    max_size=40,
)


@settings(max_examples=50, deadline=None)
@given(
    objs=objects,
    k=st.integers(min_value=1, max_value=6),
    capacity=st.integers(min_value=2, max_value=25),
    side=st.sampled_from([6.0, 12.0]),
    cell_size=st.sampled_from([10.0, 25.0]),
)
def test_topk_weights_match_anchored_oracle(objs, k, capacity, side, cell_size):
    """After every batch the monitor's k weights equal the exhaustive
    anchored top-k over the window contents."""
    monitor = TopKAG2Monitor(
        side, side, CountWindow(capacity), k=k, cell_size=cell_size
    )
    for pos in range(0, len(objs), 4):
        result = monitor.update(objs[pos : pos + 4])
        alive = to_weighted_rects(monitor.window.contents, side, side)
        expected = [w for w, _oid in brute_force_topk_anchored(alive, k)]
        got = [r.weight for r in result.regions]
        assert got == pytest.approx(expected)


@settings(max_examples=40, deadline=None)
@given(
    objs=objects,
    k=st.integers(min_value=1, max_value=5),
    capacity=st.integers(min_value=2, max_value=20),
)
def test_topk_structural_invariants(objs, k, capacity):
    """Ranked, anchor-distinct, no more than k and never more than the
    alive object count."""
    monitor = TopKAG2Monitor(8.0, 8.0, CountWindow(capacity), k=k)
    for pos in range(0, len(objs), 3):
        result = monitor.update(objs[pos : pos + 3])
        weights = [r.weight for r in result.regions]
        assert weights == sorted(weights, reverse=True)
        assert len(result.regions) <= min(k, len(monitor.window))
        anchors = [r.anchor_oid for r in result.regions]
        assert len(anchors) == len(set(anchors))
        monitor.check_invariants()
