"""Unit tests for geometric primitives (strict-interior semantics)."""

from __future__ import annotations

import math

import pytest

from repro.core.geometry import Interval, Rect, bounding_box
from repro.errors import InvalidGeometryError


class TestInterval:
    def test_basic_properties(self):
        iv = Interval(2.0, 6.0)
        assert iv.length == 4.0
        assert iv.mid == 4.0

    def test_inverted_bounds_rejected(self):
        with pytest.raises(InvalidGeometryError):
            Interval(5.0, 1.0)

    def test_nan_bounds_rejected(self):
        with pytest.raises(InvalidGeometryError):
            Interval(float("nan"), 1.0)

    def test_degenerate_interval_allowed(self):
        iv = Interval(3.0, 3.0)
        assert iv.length == 0.0

    def test_overlap_strict_interior(self):
        assert Interval(0, 2).overlaps(Interval(1, 3))
        assert not Interval(0, 2).overlaps(Interval(2, 4))  # touching
        assert not Interval(0, 2).overlaps(Interval(3, 4))  # disjoint

    def test_overlap_containment(self):
        assert Interval(0, 10).overlaps(Interval(4, 5))
        assert Interval(4, 5).overlaps(Interval(0, 10))

    def test_degenerate_never_overlaps(self):
        assert not Interval(1, 1).overlaps(Interval(0, 2))

    def test_intersection(self):
        assert Interval(0, 5).intersection(Interval(3, 8)) == Interval(3, 5)
        assert Interval(0, 5).intersection(Interval(5, 8)) is None

    def test_contains_strict(self):
        iv = Interval(0, 2)
        assert iv.contains(1.0)
        assert not iv.contains(0.0)
        assert not iv.contains(2.0)


class TestRectConstruction:
    def test_valid(self):
        r = Rect(0, 0, 4, 2)
        assert r.width == 4 and r.height == 2 and r.area == 8

    def test_inverted_x_rejected(self):
        with pytest.raises(InvalidGeometryError):
            Rect(4, 0, 0, 2)

    def test_inverted_y_rejected(self):
        with pytest.raises(InvalidGeometryError):
            Rect(0, 2, 4, 0)

    def test_nan_rejected(self):
        with pytest.raises(InvalidGeometryError):
            Rect(float("nan"), 0, 1, 1)

    def test_infinite_rejected(self):
        with pytest.raises(InvalidGeometryError):
            Rect(0, 0, math.inf, 1)

    def test_from_center(self):
        r = Rect.from_center(10, 20, 4, 6)
        assert (r.x1, r.y1, r.x2, r.y2) == (8, 17, 12, 23)
        assert r.center == (10, 20)

    def test_from_center_negative_size_rejected(self):
        with pytest.raises(InvalidGeometryError):
            Rect.from_center(0, 0, -1, 1)

    def test_degenerate_flags(self):
        assert Rect(0, 0, 0, 5).is_degenerate
        assert Rect(0, 0, 5, 0).is_degenerate
        assert not Rect(0, 0, 1, 1).is_degenerate

    def test_value_equality(self):
        assert Rect(0, 0, 1, 1) == Rect(0.0, 0.0, 1.0, 1.0)
        assert hash(Rect(0, 0, 1, 1)) == hash(Rect(0, 0, 1, 1))


class TestRectPredicates:
    def test_overlap_positive_area(self):
        assert Rect(0, 0, 2, 2).overlaps(Rect(1, 1, 3, 3))

    def test_edge_touch_is_not_overlap(self):
        assert not Rect(0, 0, 2, 2).overlaps(Rect(2, 0, 4, 2))
        assert not Rect(0, 0, 2, 2).overlaps(Rect(0, 2, 2, 4))

    def test_corner_touch_is_not_overlap(self):
        assert not Rect(0, 0, 2, 2).overlaps(Rect(2, 2, 4, 4))

    def test_overlap_is_symmetric(self):
        a, b = Rect(0, 0, 3, 3), Rect(2, 2, 5, 5)
        assert a.overlaps(b) == b.overlaps(a) is True

    def test_containment_overlaps(self):
        assert Rect(0, 0, 10, 10).overlaps(Rect(4, 4, 5, 5))

    def test_degenerate_overlaps_nothing(self):
        assert not Rect(1, 0, 1, 5).overlaps(Rect(0, 0, 2, 2))

    def test_contains_point_strict(self):
        r = Rect(0, 0, 2, 2)
        assert r.contains_point(1, 1)
        assert not r.contains_point(0, 1)
        assert not r.contains_point(1, 2)

    def test_covers_point_closed(self):
        r = Rect(0, 0, 2, 2)
        assert r.covers_point(0, 0)
        assert r.covers_point(2, 2)
        assert not r.covers_point(2.1, 1)

    def test_contains_rect(self):
        assert Rect(0, 0, 10, 10).contains_rect(Rect(1, 1, 9, 9))
        assert Rect(0, 0, 10, 10).contains_rect(Rect(0, 0, 10, 10))
        assert not Rect(0, 0, 10, 10).contains_rect(Rect(5, 5, 11, 9))


class TestRectCombination:
    def test_intersection(self):
        got = Rect(0, 0, 4, 4).intersection(Rect(2, 1, 6, 3))
        assert got == Rect(2, 1, 4, 3)

    def test_intersection_disjoint_is_none(self):
        assert Rect(0, 0, 1, 1).intersection(Rect(5, 5, 6, 6)) is None

    def test_intersection_touching_is_none(self):
        assert Rect(0, 0, 1, 1).intersection(Rect(1, 0, 2, 1)) is None

    def test_clip_alias(self):
        a, b = Rect(0, 0, 4, 4), Rect(2, 2, 6, 6)
        assert a.clip(b) == a.intersection(b)

    def test_union_bounds(self):
        got = Rect(0, 0, 1, 1).union_bounds(Rect(5, -2, 6, 3))
        assert got == Rect(0, -2, 6, 3)

    def test_translate(self):
        assert Rect(0, 0, 1, 2).translate(5, -1) == Rect(5, -1, 6, 1)

    def test_intervals(self):
        r = Rect(1, 2, 3, 5)
        assert r.x_interval == Interval(1, 3)
        assert r.y_interval == Interval(2, 5)


class TestBoundingBox:
    def test_single(self):
        assert bounding_box([Rect(1, 2, 3, 4)]) == Rect(1, 2, 3, 4)

    def test_many(self):
        rects = [Rect(0, 0, 1, 1), Rect(-2, 3, 0, 5), Rect(4, -1, 6, 0)]
        assert bounding_box(rects) == Rect(-2, -1, 6, 5)

    def test_empty_raises(self):
        with pytest.raises(InvalidGeometryError):
            bounding_box([])
