"""Property-based differentials for the skew-adaptive quadtree.

Four properties pin the adaptive index to its uniform-grid ancestor:

1. an unsplit forest's covers are *identical* to a uniform grid of the
   tile geometry (the quadtree is a strict generalisation);
2. under arbitrary split/merge structures, ``cell_keys`` — fast path
   and cached descent alike — equals a brute-force scan of the current
   leaves (the mapping never depends on how the structure was reached);
3. the quadtree aG2 monitor returns the same best weight as the naive
   oracle *and* the uniform-grid aG2 at every batch of an arbitrary
   arrival/expiry interleaving, while splits and merges fire;
4. leaf occupancy stays bounded above the size floor no matter how
   concentrated a seeded hotspot stream is.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ag2 import AG2Monitor
from repro.core.geometry import Rect
from repro.core.grid import UniformGrid
from repro.core.naive import NaiveMonitor
from repro.core.objects import SpatialObject
from repro.core.quadtree import QuadtreeAG2Monitor, QuadtreeIndex
from repro.window import CountWindow

coord = st.floats(
    min_value=-40.0, max_value=40.0, allow_nan=False, allow_infinity=False
)


@st.composite
def rects(draw):
    x1 = draw(coord)
    y1 = draw(coord)
    x2 = x1 + draw(st.floats(min_value=0.0, max_value=30.0))
    y2 = y1 + draw(st.floats(min_value=0.0, max_value=30.0))
    return Rect(x1, y1, x2, y2)


@st.composite
def split_trees(draw):
    """A QuadtreeIndex with an arbitrary split structure (and some
    merges, so tile versions move) over the tiles near the origin."""
    tree = QuadtreeIndex(16.0, 2.0)
    candidates = [(0, i, j) for i in range(-3, 3) for j in range(-3, 3)]
    for _ in range(draw(st.integers(min_value=0, max_value=25))):
        index = draw(st.integers(min_value=0, max_value=len(candidates) - 1))
        key = candidates[index]
        if tree.is_split(key) or not tree.can_split(key):
            continue
        tree.split(key)
        candidates.extend(tree.children(key))
    mergeable = [
        key
        for key in list(tree._split)
        if not any(tree.is_split(c) for c in tree.children(key))
    ]
    for _ in range(draw(st.integers(min_value=0, max_value=4))):
        if not mergeable:
            break
        index = draw(st.integers(min_value=0, max_value=len(mergeable) - 1))
        key = mergeable.pop(index)
        if tree.is_split(key) and not any(
            tree.is_split(c) for c in tree.children(key)
        ):
            tree.merge(key)
    return tree


def _brute_cover(tree: QuadtreeIndex, rect: Rect):
    if rect.x1 == rect.x2 or rect.y1 == rect.y2:
        return []  # degenerate rectangles overlap nothing
    out = []
    for i in range(-6, 6):
        for j in range(-6, 6):
            for leaf in tree.leaves_under((0, i, j)):
                x1, y1, x2, y2 = tree.cell_bounds(leaf)
                if (
                    rect.x1 < x2
                    and x1 < rect.x2
                    and rect.y1 < y2
                    and y1 < rect.y2
                ):
                    out.append(leaf)
    return sorted(out)


@settings(max_examples=80, deadline=None)
@given(rect=rects(), tile=st.sampled_from([5.0, 16.0, 24.0]))
def test_unsplit_tree_cover_equals_uniform_grid(rect, tile):
    tree = QuadtreeIndex(tile, tile)
    grid = UniformGrid(cell_size=tile)
    assert tree.cell_keys(rect) == tuple(
        (0, i, j) for i, j in grid.cell_keys(rect)
    )


@settings(max_examples=80, deadline=None)
@given(tree=split_trees(), rect=rects())
def test_cover_matches_brute_force_under_random_splits(tree, rect):
    cover = tree.cell_keys(rect)
    assert len(set(cover)) == len(cover)
    assert sorted(cover) == _brute_cover(tree, rect)
    # ask again: the cached answer must be the same object set
    assert sorted(tree.cell_keys(rect)) == sorted(cover)


obj_coord = st.integers(min_value=0, max_value=50).map(float)
weight = st.sampled_from([0.0, 0.5, 1.0, 2.0, 5.0])
objects = st.lists(
    st.builds(SpatialObject, x=obj_coord, y=obj_coord, weight=weight),
    min_size=0,
    max_size=60,
)
batch_splits = st.lists(
    st.integers(min_value=1, max_value=8), min_size=1, max_size=12
)


def _batches(objs, splits):
    pos = 0
    for size in splits:
        if pos >= len(objs):
            return
        yield objs[pos : pos + size]
        pos += size
    if pos < len(objs):
        yield objs[pos:]


@settings(max_examples=50, deadline=None)
@given(
    objs=objects,
    splits=batch_splits,
    capacity=st.integers(min_value=1, max_value=30),
    side=st.sampled_from([4.0, 10.0]),
    split_occupancy=st.sampled_from([4, 12]),
)
def test_quadtree_equals_naive_and_grid_every_batch(
    objs, splits, capacity, side, split_occupancy
):
    """The differential the tentpole stands on: integer coordinates make
    collisions and shared edges common, the low split occupancy makes
    restructuring fire constantly, and the answers must never move."""
    quad = QuadtreeAG2Monitor(
        side,
        side,
        CountWindow(capacity),
        split_occupancy=split_occupancy,
        merge_occupancy=2,
        merge_load=4.0,
    )
    grid = AG2Monitor(side, side, CountWindow(capacity))
    naive = NaiveMonitor(side, side, CountWindow(capacity))
    for batch in _batches(objs, splits):
        a = quad.update(batch)
        b = grid.update(batch)
        c = naive.update(batch)
        assert a.best_weight == pytest.approx(b.best_weight)
        assert a.best_weight == pytest.approx(c.best_weight)
        assert a.is_empty == c.is_empty
        quad.check_invariants()


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    spread=st.sampled_from([2.0, 8.0]),
)
def test_split_merge_round_trip_restores_answers(seed, spread):
    """A hotspot forces splits, drifts away until the region expires and
    merges back, then returns: answers must match the naive oracle at
    every step of the round trip."""
    rng = random.Random(seed)
    quad = QuadtreeAG2Monitor(
        5.0,
        5.0,
        CountWindow(40),
        split_occupancy=6,
        merge_occupancy=2,
    )
    naive = NaiveMonitor(5.0, 5.0, CountWindow(40))
    centers = [(30.0, 30.0)] * 3 + [(3000.0, 3000.0)] * 5 + [(30.0, 30.0)] * 3
    for cx, cy in centers:
        batch = [
            SpatialObject(
                x=cx + rng.uniform(-spread, spread),
                y=cy + rng.uniform(-spread, spread),
                weight=rng.choice([0.5, 1.0, 2.0]),
            )
            for _ in range(10)
        ]
        a = quad.update(batch)
        b = naive.update(batch)
        assert a.best_weight == pytest.approx(b.best_weight)
        quad.check_invariants()


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    sigma=st.sampled_from([1.0, 5.0, 25.0]),
)
def test_leaf_occupancy_bounded_under_hotspot_stream(seed, sigma):
    """The "bounded under skew" guarantee: above the size floor no leaf
    exceeds split_occupancy, however concentrated the arrivals."""
    rng = random.Random(seed)
    monitor = QuadtreeAG2Monitor(
        4.0, 4.0, CountWindow(150), split_occupancy=12, merge_occupancy=4
    )
    for _ in range(8):
        batch = [
            SpatialObject(
                x=rng.gauss(100.0, sigma),
                y=rng.gauss(100.0, sigma),
                weight=1.0,
            )
            for _ in range(25)
        ]
        monitor.update(batch)
    tree = monitor.tree
    for key, cell in monitor._cells.items():
        if tree.can_split(key):
            occupancy = len(cell.graph) + len(cell.pending)
            assert occupancy <= monitor.split_occupancy
    monitor.check_invariants()
