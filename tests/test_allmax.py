"""Tests for AllMaxRS (all spaces tying the maximum)."""

from __future__ import annotations

import pytest

from conftest import make_objects
from repro.core.allmax import AllMaxRSMonitor, plane_sweep_all_max
from repro.core.geometry import Rect
from repro.core.naive import NaiveMonitor
from repro.core.objects import SpatialObject, WeightedRect
from repro.errors import InvalidParameterError
from repro.window import CountWindow


def wr(x1, y1, x2, y2, w=1.0) -> WeightedRect:
    obj = SpatialObject(x=(x1 + x2) / 2, y=(y1 + y2) / 2, weight=w)
    return WeightedRect(rect=Rect(x1, y1, x2, y2), weight=w, obj=obj)


class TestPlaneSweepAllMax:
    def test_empty(self):
        assert plane_sweep_all_max([]) == []

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            plane_sweep_all_max([wr(0, 0, 1, 1)], tolerance=-1)
        with pytest.raises(InvalidParameterError):
            plane_sweep_all_max([wr(0, 0, 1, 1)], limit=0)

    def test_unique_max_returns_one(self):
        rects = [wr(0, 0, 2, 2, w=1.0), wr(1, 1, 3, 3, w=2.0), wr(9, 9, 10, 10, w=0.5)]
        ties = plane_sweep_all_max(rects)
        assert len(ties) == 1
        assert ties[0].weight == 3.0

    def test_two_tied_optima(self):
        # two disjoint pairs, both summing to 2.0
        rects = [
            wr(0, 0, 2, 2), wr(1, 1, 3, 3),
            wr(10, 10, 12, 12), wr(11, 11, 13, 13),
        ]
        ties = plane_sweep_all_max(rects)
        assert len(ties) == 2
        assert all(t.weight == pytest.approx(2.0) for t in ties)
        # the tied regions are spatially distinct
        assert not ties[0].rect.overlaps(ties[1].rect)

    def test_all_weights_tie_the_best(self):
        rects = [wr(i * 5, 0, i * 5 + 2, 2, w=3.0) for i in range(4)]
        ties = plane_sweep_all_max(rects)
        assert len(ties) == 4
        assert {round(t.weight, 9) for t in ties} == {3.0}


class TestAllMaxRSMonitor:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            AllMaxRSMonitor(10, 10, CountWindow(5), tolerance=-0.1)

    def test_empty(self):
        m = AllMaxRSMonitor(10, 10, CountWindow(5))
        assert m.update([]).is_empty

    def test_reports_all_ties(self):
        m = AllMaxRSMonitor(4, 4, CountWindow(10))
        # two far-apart pairs with identical weights
        result = m.update(
            [
                SpatialObject(x=10, y=10, weight=2.0),
                SpatialObject(x=11, y=11, weight=2.0),
                SpatialObject(x=90, y=90, weight=2.0),
                SpatialObject(x=91, y=91, weight=2.0),
            ]
        )
        assert len(result.regions) == 2
        assert all(r.weight == pytest.approx(4.0) for r in result.regions)

    def test_single_winner_when_unique(self):
        m = AllMaxRSMonitor(10, 10, CountWindow(20))
        result = m.update(
            [
                SpatialObject(x=10, y=10, weight=5.0),
                SpatialObject(x=90, y=90, weight=1.0),
            ]
        )
        assert len(result.regions) == 1
        assert result.best_weight == 5.0

    def test_best_matches_naive_over_stream(self):
        allmax = AllMaxRSMonitor(10, 10, CountWindow(25))
        naive = NaiveMonitor(10, 10, CountWindow(25))
        for i in range(8):
            batch = make_objects(6, seed=60 + i, domain=50.0)
            a = allmax.update(batch)
            b = naive.update(batch)
            assert a.best_weight == pytest.approx(b.best_weight)
            # every reported region ties the maximum
            for region in a.regions:
                assert region.weight == pytest.approx(b.best_weight)

    def test_limit_caps_reported_ties(self):
        m = AllMaxRSMonitor(4, 4, CountWindow(50), limit=3)
        batch = [
            SpatialObject(x=20 * i, y=20 * i, weight=1.0) for i in range(10)
        ]
        result = m.update(batch)
        assert len(result.regions) <= 3
