"""Tests for the profiling runner, the profile CLI and the CI perf gate.

These pin the acceptance property of the observability layer: on a
fixed-seed workload the aG2 branch-and-bound monitor must visit fewer
cells than G2 and record nonzero prunings — the same check
``scripts/perf_gate.py`` enforces in CI.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

from repro.bench import ExperimentConfig, run_profile
from repro.cli import main
from repro.obs import MetricsSnapshot

#: small fixed-seed workload — seconds, not minutes
TINY = ExperimentConfig(
    dataset="synthetic", window_size=500, batch_size=50, batches=3, seed=7
)


def _load_perf_gate():
    path = Path(__file__).resolve().parent.parent / "scripts" / "perf_gate.py"
    spec = importlib.util.spec_from_file_location("perf_gate", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def profile():
    return run_profile(TINY, ("naive", "g2", "ag2"))


class TestRunProfile:
    def test_ag2_prunes_what_g2_pays_for(self, profile):
        g2 = profile.report.metrics["g2"].counters
        ag2 = profile.report.metrics["ag2"].counters
        assert ag2["cells_visited"] < g2["cells_visited"]
        assert ag2["cells_pruned"] > 0

    def test_summary_rows_one_per_monitor(self, profile):
        rows = profile.summary_rows()
        assert [row["monitor"] for row in rows] == ["naive", "g2", "ag2"]
        for row in rows:
            assert row["mean_ms"] > 0

    def test_naive_counters(self, profile):
        naive = profile.report.metrics["naive"].counters
        assert naive["full_sweeps"] == TINY.batches
        assert naive["objects_swept"] >= TINY.window_size * TINY.batches

    def test_per_batch_rows_cover_all_batches(self, profile):
        rows = profile.per_batch_rows()
        assert len(rows) == TINY.batches * 3
        first = [row for row in rows if row["batch"] == 1]
        assert {row["monitor"] for row in first} == {"naive", "g2", "ag2"}

    def test_update_ms_histogram_recorded(self, profile):
        hist = profile.report.metrics["ag2"].histograms["update_ms"]
        assert hist["count"] == TINY.batches

    def test_window_counters_flow_through_scope(self, profile):
        ag2 = profile.report.metrics["ag2"].counters
        expected = TINY.window_size + TINY.batch_size * TINY.batches
        assert ag2["window.insertions"] == expected

    def test_to_dict_json_round_trip(self, profile):
        doc = json.loads(json.dumps(profile.to_dict()))
        rebuilt = MetricsSnapshot.from_dict(doc["metrics"]["ag2"])
        assert rebuilt == profile.report.metrics["ag2"]
        assert doc["config"]["seed"] == TINY.seed
        assert doc["primed"] == TINY.window_size


class TestPerfGate:
    def test_gate_passes_on_real_profile(self, profile, tmp_path):
        gate = _load_perf_gate()
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(profile.to_dict()))
        assert gate.check(str(path)) == []
        assert gate.main(["perf_gate.py", str(path)]) == 0

    def test_gate_fails_on_pruning_regression(self, profile, tmp_path):
        gate = _load_perf_gate()
        doc = profile.to_dict()
        counters = doc["metrics"]["ag2"]["counters"]
        counters["cells_visited"] = (
            doc["metrics"]["g2"]["counters"]["cells_visited"] + 1
        )
        counters["cells_pruned"] = 0
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(doc))
        failures = gate.check(str(path))
        assert len(failures) == 2
        assert any("regression" in f for f in failures)

    def test_gate_fails_on_missing_monitor(self, tmp_path):
        gate = _load_perf_gate()
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps({"metrics": {}}))
        assert gate.check(str(path))


class TestProfileCLI:
    def test_prints_counters_and_exports(self, capsys, tmp_path):
        json_path = tmp_path / "m.json"
        csv_path = tmp_path / "m.csv"
        code = main(
            [
                "profile",
                "--window", "500",
                "--rate", "50",
                "--batches", "3",
                "--seed", "7",
                "--json", str(json_path),
                "--csv", str(csv_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cells_visited" in out
        assert "cells_pruned" in out
        data = json.loads(json_path.read_text())
        assert "ag2" in data["metrics"]
        assert csv_path.read_text().startswith("monitor,kind,metric,value")

    def test_per_batch_table(self, capsys):
        code = main(
            [
                "profile",
                "--window", "300",
                "--rate", "50",
                "--batches", "2",
                "--algorithms", "ag2",
                "--per-batch",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "per-batch deltas" in out


class TestDerivedRates:
    def test_rows_cover_every_batch_and_monitor(self, profile):
        rows = profile.rate_rows()
        assert len(rows) == TINY.batches * 3
        assert {row["monitor"] for row in rows} == {"naive", "g2", "ag2"}

    def test_rates_are_normalised_and_bounded(self, profile):
        for row in profile.rate_rows():
            assert 0.0 <= row["prune_fraction"] <= 1.0
            assert row["sweeps_per_arrival"] >= 0.0
            assert row["overlap_tests_per_arrival"] >= 0.0

    def test_naive_sweeps_once_per_batch(self, profile):
        naive = [r for r in profile.rate_rows() if r["monitor"] == "naive"]
        for row in naive:
            # one full sweep per update, whatever the batch size
            assert row["sweeps_per_arrival"] == 1.0 / TINY.batch_size
            assert row["prune_fraction"] == 0.0

    def test_ag2_prunes_a_positive_fraction(self, profile):
        ag2 = [r for r in profile.rate_rows() if r["monitor"] == "ag2"]
        assert any(row["prune_fraction"] > 0.0 for row in ag2)

    def test_rates_embedded_in_json_artifact(self, profile):
        doc = json.loads(json.dumps(profile.to_dict()))
        assert doc["derived_rates"] == profile.rate_rows()

    def test_cli_rates_table(self, capsys):
        code = main(
            [
                "profile",
                "--window", "300",
                "--rate", "50",
                "--batches", "2",
                "--algorithms", "ag2",
                "--rates",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "per-batch derived rates" in out
        assert "prune_fraction" in out
