"""Tests for Algorithm 5 upper-bound tightening (§5.3)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import make_objects
from repro.core.ag2 import AG2Monitor
from repro.core.bruteforce import brute_force_anchored_best
from repro.core.geometry import Rect
from repro.core.graph import Vertex
from repro.core.naive import NaiveMonitor
from repro.core.objects import SpatialObject, WeightedRect
from repro.core.planesweep import local_plane_sweep
from repro.core.upperbound import (
    conditional_tightener,
    make_tightener,
    tighten_upper_bound,
)
from repro.errors import InvalidParameterError
from repro.window import CountWindow


def wr(x1, y1, x2, y2, w=1.0) -> WeightedRect:
    obj = SpatialObject(x=(x1 + x2) / 2, y=(y1 + y2) / 2, weight=w)
    return WeightedRect(rect=Rect(x1, y1, x2, y2), weight=w, obj=obj)


def vertex_with_history(anchor, old_neighbors, new_neighbors) -> Vertex:
    """A vertex swept over ``old_neighbors``, then grown by
    ``new_neighbors`` via Equation (3)."""
    v = Vertex(anchor, seq=0)
    v.neighbors = list(old_neighbors)
    v.space = local_plane_sweep(anchor, v.neighbors)
    v.upper = v.space.weight
    v.swept_degree = len(v.neighbors)
    for nb in new_neighbors:
        v.neighbors.append(nb)
        v.upper += nb.weight
    return v


class TestTightenUpperBound:
    def test_no_fresh_neighbors_is_identity(self):
        v = vertex_with_history(wr(0, 0, 4, 4), [wr(2, 2, 6, 6)], [])
        assert tighten_upper_bound(v, threshold=100.0) == v.upper

    def test_distant_new_neighbor_tightens(self):
        """A new neighbour that misses si and overlaps nothing else is
        bounded by ri.w + r.w instead of being charged in full."""
        anchor = wr(0, 0, 10, 10, w=1.0)
        old = wr(0.5, 0.5, 3, 3, w=5.0)   # si is the corner, weight 6
        new = wr(8, 8, 12, 12, w=5.0)      # far from si
        v = vertex_with_history(anchor, [old], [new])
        assert v.upper == 11.0  # Equation (3) bound
        tightened = tighten_upper_bound(v, threshold=100.0)
        # spaces with the new rect are bounded by 1 + 5 = 6
        assert tightened == pytest.approx(6.0)

    def test_neighbor_overlapping_si_charged_fully(self):
        anchor = wr(0, 0, 10, 10, w=1.0)
        old = wr(0.5, 0.5, 3, 3, w=5.0)
        new = wr(1, 1, 2, 2, w=2.0)  # inside si's corner region
        v = vertex_with_history(anchor, [old], [new])
        tightened = tighten_upper_bound(v, threshold=100.0)
        assert tightened == pytest.approx(8.0)

    def test_early_exit_when_over_threshold(self):
        anchor = wr(0, 0, 10, 10, w=1.0)
        old = wr(0.5, 0.5, 3, 3, w=5.0)
        new = wr(1, 1, 2, 2, w=2.0)
        v = vertex_with_history(anchor, [old], [new])
        # threshold below si.w: tightening cannot help, bound unchanged
        assert tighten_upper_bound(v, threshold=3.0) == v.upper

    def test_conditional_gate_skips_large_fresh_sets(self):
        anchor = wr(0, 0, 20, 20, w=1.0)
        old = [wr(i, i, i + 2, i + 2) for i in range(2)]
        new = [wr(i, 0, i + 1, 1) for i in range(10)]  # |R| >> 2·log2|N|
        v = vertex_with_history(anchor, old, new)
        assert conditional_tightener(v, threshold=1e9) == v.upper

    def test_make_tightener_modes(self):
        assert make_tightener("off") is None
        assert make_tightener("always") is tighten_upper_bound
        assert make_tightener("conditional") is conditional_tightener
        with pytest.raises(InvalidParameterError):
            make_tightener("sometimes")


coord = st.integers(min_value=0, max_value=20).map(float)


@st.composite
def anchored_scenario(draw):
    anchor = wr(0, 0, 12, 12, w=draw(st.sampled_from([0.5, 1.0, 2.0])))
    def rect():
        x1 = draw(coord)
        y1 = draw(coord)
        w = draw(st.integers(min_value=1, max_value=5))
        h = draw(st.integers(min_value=1, max_value=5))
        return wr(x1, y1, x1 + w, y1 + h, w=draw(st.sampled_from([0.5, 1.0, 3.0])))
    old = [r for r in (rect() for _ in range(draw(st.integers(0, 4))))
           if r.rect.overlaps(anchor.rect)]
    new = [r for r in (rect() for _ in range(draw(st.integers(0, 4))))
           if r.rect.overlaps(anchor.rect)]
    return anchor, old, new


@settings(max_examples=80, deadline=None)
@given(scenario=anchored_scenario())
def test_tightened_bound_is_sound(scenario):
    """The crux of §5.3: the tightened τ is always ≥ the true si, so
    pruning with it can never discard the optimum."""
    anchor, old, new = scenario
    v = vertex_with_history(anchor, old, new)
    tightened = tighten_upper_bound(v, threshold=float("-inf"))
    true_si = brute_force_anchored_best(anchor, old + new)
    assert tightened >= true_si - 1e-9
    assert tightened <= v.upper + 1e-9  # never looser than Equation (3)


@pytest.mark.parametrize("mode", ["off", "conditional", "always"])
def test_monitor_results_identical_under_any_tightener(mode):
    """Algorithm 5 is a performance knob, never a semantics knob."""
    ag2 = AG2Monitor(
        10, 10, CountWindow(40), tighten=make_tightener(mode)
    )
    naive = NaiveMonitor(10, 10, CountWindow(40))
    for i in range(10):
        batch = make_objects(8, seed=700 + i, domain=60.0)
        a = ag2.update(batch)
        b = naive.update(batch)
        assert a.best_weight == pytest.approx(b.best_weight)
        ag2.check_invariants()
