"""Cross-window-model equivalence and persistence property tests.

The paper claims its algorithms handle count- and time-based windows
interchangeably (§2).  When timestamps tick uniformly, a count window
of ``n`` and a time window of ``n`` time units hold the same objects —
so every monitor must produce identical answers under both models.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ag2 import AG2Monitor
from repro.core.naive import NaiveMonitor
from repro.core.objects import SpatialObject
from repro.persist import restore, snapshot
from repro.window import CountWindow, TimeWindow

coord = st.integers(min_value=0, max_value=40).map(float)


def _uniform_tick_stream(points: list[tuple[float, float, float]]):
    """Objects timestamped 1, 2, 3, ... — one per time unit."""
    return [
        SpatialObject(x=x, y=y, weight=w, timestamp=float(i + 1))
        for i, (x, y, w) in enumerate(points)
    ]


@settings(max_examples=40, deadline=None)
@given(
    points=st.lists(
        st.tuples(coord, coord, st.sampled_from([0.5, 1.0, 2.0])),
        min_size=1,
        max_size=40,
    ),
    n=st.integers(min_value=1, max_value=15),
)
def test_count_and_time_windows_agree_on_uniform_ticks(points, n):
    """CountWindow(n) == TimeWindow(n) when one object arrives per
    time unit: the monitors must answer identically at every batch."""
    objs = _uniform_tick_stream(points)
    by_count = AG2Monitor(8, 8, CountWindow(n))
    by_time = AG2Monitor(8, 8, TimeWindow(float(n)))
    for pos in range(0, len(objs), 3):
        batch = objs[pos : pos + 3]
        a = by_count.update(batch)
        b = by_time.update(batch)
        assert set(o.oid for o in by_count.window.contents) == set(
            o.oid for o in by_time.window.contents
        )
        assert a.best_weight == pytest.approx(b.best_weight)


@settings(max_examples=30, deadline=None)
@given(
    points=st.lists(
        st.tuples(coord, coord, st.sampled_from([0.5, 1.0, 3.0])),
        min_size=0,
        max_size=30,
    ),
    capacity=st.integers(min_value=1, max_value=12),
    split=st.integers(min_value=0, max_value=30),
)
def test_snapshot_restore_is_transparent(points, capacity, split):
    """Property: snapshot/restore at an arbitrary stream position never
    changes any subsequent answer."""
    objs = _uniform_tick_stream(points)
    split = min(split, len(objs))
    straight = NaiveMonitor(8, 8, CountWindow(capacity))
    for pos in range(0, split, 4):
        straight.update(objs[pos : pos + 4])
    resumed = restore(snapshot(straight))
    for pos in range(split, len(objs), 4):
        batch = objs[pos : pos + 4]
        a = straight.update(batch)
        b = resumed.update(batch)
        assert a.best_weight == pytest.approx(b.best_weight)
        assert a.window_size == b.window_size
