"""CircuitBreaker: trip conditions, cooldown probing, stale accounting."""

from __future__ import annotations

import pytest

from repro.errors import InvalidParameterError
from repro.obs import Metrics
from repro.overload import BreakerState, CircuitBreaker


def trip(breaker: CircuitBreaker) -> None:
    """Drive a closed breaker open via consecutive deadline breaches."""
    for _ in range(breaker.trip_after):
        breaker.record_update(over_deadline=True)
    assert breaker.state is BreakerState.OPEN


class TestConstruction:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"trip_after": 0},
            {"cooldown": 0},
            {"heal_trip_after": -1},
        ],
    )
    def test_parameters_validated(self, kwargs):
        with pytest.raises(InvalidParameterError):
            CircuitBreaker(**kwargs)

    def test_starts_closed(self):
        breaker = CircuitBreaker()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow_update()


class TestTripping:
    def test_trips_after_consecutive_breaches(self):
        breaker = CircuitBreaker(trip_after=3)
        breaker.record_update(True)
        breaker.record_update(True)
        assert breaker.state is BreakerState.CLOSED
        breaker.record_update(True)
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 1

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(trip_after=2)
        breaker.record_update(True)
        breaker.record_update(False)  # streak broken
        breaker.record_update(True)
        assert breaker.state is BreakerState.CLOSED

    def test_heals_trip_when_repeated(self):
        breaker = CircuitBreaker(heal_trip_after=2)
        breaker.note_heal()
        assert breaker.state is BreakerState.CLOSED
        breaker.note_heal()
        assert breaker.state is BreakerState.OPEN

    def test_heal_tripping_disabled_with_zero(self):
        breaker = CircuitBreaker(heal_trip_after=0)
        for _ in range(10):
            breaker.note_heal()
        assert breaker.state is BreakerState.CLOSED


class TestCooldownAndProbe:
    def test_open_serves_stale_until_cooldown_expires(self):
        breaker = CircuitBreaker(trip_after=1, cooldown=3)
        trip(breaker)
        assert not breaker.allow_update()
        assert not breaker.allow_update()
        assert breaker.stale_served == 2
        # cooldown expired: one probe admitted
        assert breaker.allow_update()
        assert breaker.state is BreakerState.HALF_OPEN

    def test_probe_success_closes(self):
        breaker = CircuitBreaker(trip_after=1, cooldown=1)
        trip(breaker)
        assert breaker.allow_update()  # immediate probe (cooldown=1)
        breaker.record_update(over_deadline=False)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow_update()

    def test_probe_failure_reopens_with_fresh_cooldown(self):
        breaker = CircuitBreaker(trip_after=1, cooldown=2)
        trip(breaker)
        assert not breaker.allow_update()
        assert breaker.allow_update()  # probe
        breaker.record_update(over_deadline=True)
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 2
        assert not breaker.allow_update()  # cooldown restarted

    def test_close_resets_breach_and_heal_counters(self):
        breaker = CircuitBreaker(trip_after=2, cooldown=1, heal_trip_after=2)
        breaker.note_heal()  # one heal banked
        trip(breaker)
        assert breaker.allow_update()
        breaker.record_update(False)  # probe succeeds -> CLOSED, counters reset
        breaker.note_heal()  # banked heal forgotten: this is heal #1 again
        assert breaker.state is BreakerState.CLOSED


class TestMetrics:
    def test_counters_and_state_gauge(self):
        metrics = Metrics("breaker")
        breaker = CircuitBreaker(trip_after=1, cooldown=2, metrics=metrics)
        trip(breaker)
        breaker.allow_update()  # stale
        breaker.allow_update()  # probe
        breaker.record_update(False)
        snap = metrics.snapshot()
        assert snap.counters["breaker_trips"] == 1
        assert snap.counters["breaker_trips_consecutive_deadline_breaches"] == 1
        assert snap.counters["stale_served"] == 1
        assert snap.counters["breaker_probes"] == 1
        assert snap.counters["breaker_closes"] == 1
        assert snap.gauges["breaker_state"] == 0.0
