"""Unit tests for the stream object model and the dual transform."""

from __future__ import annotations

import pytest

from repro.core.objects import (
    SpatialObject,
    WeightedRect,
    object_ids,
    to_weighted_rects,
)
from repro.errors import InvalidParameterError


class TestSpatialObject:
    def test_fields(self):
        o = SpatialObject(x=1.0, y=2.0, weight=3.0, timestamp=4.0, oid=9)
        assert (o.x, o.y, o.weight, o.timestamp, o.oid) == (1, 2, 3, 4, 9)

    def test_auto_ids_are_unique_and_increasing(self):
        a = SpatialObject(x=0, y=0)
        b = SpatialObject(x=0, y=0)
        assert a.oid != b.oid
        assert b.oid > a.oid

    def test_default_weight_is_one(self):
        assert SpatialObject(x=0, y=0).weight == 1.0

    def test_negative_weight_rejected(self):
        with pytest.raises(InvalidParameterError):
            SpatialObject(x=0, y=0, weight=-0.5)

    def test_nan_weight_rejected(self):
        with pytest.raises(InvalidParameterError):
            SpatialObject(x=0, y=0, weight=float("nan"))

    def test_zero_weight_allowed(self):
        assert SpatialObject(x=0, y=0, weight=0.0).weight == 0.0

    def test_non_finite_location_rejected(self):
        with pytest.raises(InvalidParameterError):
            SpatialObject(x=float("inf"), y=0)
        with pytest.raises(InvalidParameterError):
            SpatialObject(x=0, y=float("nan"))

    def test_to_rect_centres_on_object(self):
        o = SpatialObject(x=10, y=20, weight=1)
        r = o.to_rect(4, 6)
        assert r.center == (10, 20)
        assert r.width == 4 and r.height == 6

    def test_frozen(self):
        o = SpatialObject(x=0, y=0)
        with pytest.raises(AttributeError):
            o.x = 5.0  # type: ignore[misc]


class TestWeightedRect:
    def test_from_object(self):
        o = SpatialObject(x=5, y=5, weight=7.5)
        wr = WeightedRect.from_object(o, 2, 2)
        assert wr.weight == 7.5
        assert wr.obj is o
        assert wr.oid == o.oid
        assert wr.rect.center == (5, 5)

    def test_to_weighted_rects_batch(self):
        objs = [SpatialObject(x=i, y=i, weight=i) for i in range(1, 4)]
        rects = to_weighted_rects(objs, 2, 2)
        assert [wr.weight for wr in rects] == [1, 2, 3]
        assert all(wr.rect.width == 2 for wr in rects)

    def test_to_weighted_rects_rejects_bad_size(self):
        with pytest.raises(InvalidParameterError):
            to_weighted_rects([], 0, 1)
        with pytest.raises(InvalidParameterError):
            to_weighted_rects([], 1, -2)

    def test_object_ids_order(self):
        objs = [SpatialObject(x=0, y=0, oid=i) for i in (5, 2, 9)]
        assert object_ids(objs) == [5, 2, 9]


class TestDualRectCache:
    """``dual_rect`` is the cached form of ``WeightedRect.from_object``
    shared by every monitor (PR 4 caching layer)."""

    def test_equals_uncached_transform(self):
        from repro.core.objects import dual_rect

        o = SpatialObject(x=3.5, y=-2.0, weight=4.0, oid=17)
        cached = dual_rect(o, 10.0, 6.0)
        reference = WeightedRect.from_object(o, 10.0, 6.0)
        assert cached.rect == reference.rect
        assert cached.weight == reference.weight
        assert cached.obj is o

    def test_repeat_call_returns_same_instance(self):
        from repro.core.objects import dual_rect

        o = SpatialObject(x=1.0, y=1.0, weight=2.0, oid=3)
        assert dual_rect(o, 4.0, 4.0) is dual_rect(o, 4.0, 4.0)
        # a different query size is a different cache entry
        assert dual_rect(o, 4.0, 4.0) is not dual_rect(o, 8.0, 8.0)
