"""Chaos tests: deterministic fault injection, the soak, and the CLI.

The acceptance bar: a seeded fault mix (drops + duplicates + corrupt
records + bounded late arrivals) driving 200+ batches through a
supervised aG2 monitor under QUARANTINE finishes with zero uncaught
exceptions, every rejected record accounted for in the dead-letter
queue, and the final answer equal to a naive recompute over the
surviving window — plus exact kill/restore reproduction mid-chaos.
"""

from __future__ import annotations

import pytest

from conftest import make_objects
from repro.cli import main
from repro.core.ag2 import AG2Monitor
from repro.engine import StreamEngine
from repro.errors import InvalidParameterError
from repro.resilience import (
    CheckpointManager,
    ErrorPolicy,
    FaultInjectingSource,
    IngestGuard,
    MonitorSupervisor,
    run_chaos,
)
from repro.resilience.harness import naive_recompute
from repro.streams import ReplayStream, UniformStream
from repro.window import CountWindow


class TestFaultInjectingSource:
    def test_no_faults_is_identity(self):
        objects = make_objects(50, seed=1, domain=60.0)
        chaos = FaultInjectingSource(ReplayStream(objects), seed=9)
        assert list(chaos) == objects
        assert chaos.injected == 0

    def test_deterministic_for_seed(self):
        objects = make_objects(300, seed=2, domain=60.0)
        make = lambda: FaultInjectingSource(  # noqa: E731
            ReplayStream(objects), seed=4,
            p_drop=0.1, p_duplicate=0.1, p_corrupt=0.1, p_delay=0.1,
        )
        a, b = make(), make()
        # repr-compare: corrupt payloads may contain NaN, which breaks
        # value equality but not textual identity
        assert list(map(repr, a)) == list(map(repr, b))
        assert (a.drops, a.duplicates, a.corrupted, a.delayed) == (
            b.drops, b.duplicates, b.corrupted, b.delayed
        )
        assert a.injected > 0

    def test_emission_conservation(self):
        objects = make_objects(400, seed=3, domain=60.0)
        chaos = FaultInjectingSource(
            ReplayStream(objects), seed=5,
            p_drop=0.05, p_duplicate=0.05, p_corrupt=0.05, p_delay=0.1,
        )
        emitted = list(chaos)
        # every record is dropped, duplicated, corrupted, delayed or clean;
        # delayed ones still come out (possibly at the end-of-stream flush)
        assert len(emitted) == len(objects) - chaos.drops + chaos.duplicates
        assert chaos.emitted == len(emitted)

    def test_delay_bounded_by_max_delay_positions(self):
        objects = make_objects(200, seed=4, domain=60.0)
        chaos = FaultInjectingSource(
            ReplayStream(objects), seed=6, p_delay=0.2, max_delay=4
        )
        stamps = [o.timestamp for o in chaos]
        # displacement is bounded: timestamp t may trail at most the
        # next max_delay upstream records
        max_lag = max(
            (max(stamps[:i + 1]) - t for i, t in enumerate(stamps)), default=0
        )
        assert 0 < max_lag <= 4 + 1
        assert chaos.delayed > 0

    def test_probabilities_validated(self):
        src = ReplayStream([])
        with pytest.raises(InvalidParameterError):
            FaultInjectingSource(src, p_drop=1.2)
        with pytest.raises(InvalidParameterError):
            FaultInjectingSource(src, p_drop=0.6, p_delay=0.6)
        with pytest.raises(InvalidParameterError):
            FaultInjectingSource(src, max_delay=0)


class TestChaosSoak:
    def test_soak_200_batches_verified_and_accounted(self):
        report = run_chaos(
            window=400,
            rate=10,
            batches=200,
            seed=11,
            p_drop=0.02,
            p_duplicate=0.02,
            p_corrupt=0.02,
            p_delay=0.05,
            probe_every=50,
        )
        assert report.engine_report.batches == 200
        assert report.result_verified, (
            report.supervised_weight, report.naive_weight
        )
        assert report.accounted
        # the fault mix actually exercised every pathology
        assert report.injected_corrupt > 0
        assert report.injected_drops > 0
        assert report.injected_duplicates > 0
        assert report.injected_delayed > 0
        assert report.late_reordered > 0
        # every rejected record is in the dead-letter totals
        assert report.dead_letters == report.quarantined + report.late_dropped
        assert report.dead_letters > 0

    def test_soak_skip_policy_keeps_dlq_empty(self):
        report = run_chaos(
            window=200, rate=10, batches=60, seed=12,
            policy="skip", p_corrupt=0.05,
        )
        assert report.result_verified and report.accounted
        assert report.dead_letters == 0
        assert report.skipped > 0

    def test_full_stream_corrupt_accounting_is_exact(self):
        """Over a finite, fully consumed stream, every corrupt record
        must land in the DLQ: injected == quarantined."""
        objects = make_objects(500, seed=13, domain=60.0)
        chaos = FaultInjectingSource(
            ReplayStream(objects), seed=14, p_corrupt=0.1
        )
        guard = IngestGuard(chaos, policy="quarantine")
        survivors = list(guard)
        assert chaos.corrupted > 0
        assert guard.quarantined == chaos.corrupted
        assert guard.dead_letters.total_enqueued == chaos.corrupted
        assert len(survivors) == len(objects) - chaos.corrupted

    def test_checkpoint_recovery_reproduces_chaos_run_exactly(self, tmp_path):
        """Kill mid-chaos, restore, replay the identical guarded stream
        tail: final result matches the uninterrupted chaos run."""

        def guarded_batches():
            stream = UniformStream(domain=500.0, seed=21, dt=1.0)
            chaos = FaultInjectingSource(
                stream, seed=22,
                p_drop=0.02, p_duplicate=0.02, p_corrupt=0.02, p_delay=0.05,
            )
            guard = IngestGuard(chaos, policy="quarantine", max_lateness=6.0)
            iterator = iter(guard)
            out = []
            for _ in range(80):
                batch = []
                for obj in iterator:
                    batch.append(obj)
                    if len(batch) == 10:
                        break
                out.append(batch)
            return out

        batches = guarded_batches()

        reference = AG2Monitor(40, 40, CountWindow(200))
        for batch in batches:
            reference.update(batch)

        victim = MonitorSupervisor(AG2Monitor(40, 40, CountWindow(200)))
        path = tmp_path / "chaos-ckpt.json"
        manager = CheckpointManager(victim, path, every=25)
        for batch in batches[:60]:
            victim.update(batch)
            manager.note_batch()
        del victim  # crash after batch 60; last checkpoint at 50

        recovered, resume_from = CheckpointManager.recover(path)
        assert resume_from == 50
        for batch in batches[resume_from:]:
            recovered.update(batch)

        assert recovered.result.best_weight == pytest.approx(
            reference.result.best_weight
        )
        assert [o.oid for o in recovered.window.contents] == [
            o.oid for o in reference.window.contents
        ]

    def test_supervised_survives_chaos_plus_monitor_failures(self):
        """Both fault axes at once: dirty stream AND a monitor that
        corrupts mid-run; the supervised answer still matches naive."""

        class FailingAG2(AG2Monitor):
            updates_seen = 0

            def _on_delta(self, delta):
                type(self).updates_seen += 1
                if type(self).updates_seen in (30, 70):
                    raise RuntimeError("injected corruption")
                super()._on_delta(delta)

        stream = UniformStream(domain=500.0, seed=31, dt=1.0)
        chaos = FaultInjectingSource(
            stream, seed=32, p_drop=0.03, p_corrupt=0.03, p_delay=0.04
        )
        guard = IngestGuard(chaos, policy=ErrorPolicy.QUARANTINE,
                            max_lateness=6.0)
        supervised = MonitorSupervisor(FailingAG2(40, 40, CountWindow(150)))
        engine = StreamEngine({"ag2": supervised}, guard, batch_size=10)
        report = engine.run(100)
        assert report.batches == 100
        assert supervised.heals >= 1
        naive_weight, _ = naive_recompute(supervised)
        assert supervised.result.best_weight == pytest.approx(naive_weight)


class TestChaosCli:
    def test_chaos_subcommand_ok(self, capsys):
        code = main([
            "chaos", "--window", "200", "--rate", "10", "--batches", "30",
            "--seed", "7",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "OK: survived chaos" in out
        assert "records quarantined" in out

    def test_chaos_subcommand_with_checkpoints(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt.json"
        code = main([
            "chaos", "--window", "150", "--rate", "10", "--batches", "20",
            "--seed", "8", "--checkpoint", str(ckpt),
            "--checkpoint-every", "10",
            "--json", str(tmp_path / "report.json"),
        ])
        assert code == 0
        assert ckpt.exists()
        _, index = CheckpointManager.load(ckpt)
        assert index == 20
        assert (tmp_path / "report.json").exists()
        out = capsys.readouterr().out
        assert "checkpoints written" in out
