"""Unit tests for the skew-adaptive quadtree index and its aG2 monitor.

The geometry and structure of :class:`QuadtreeIndex` are pinned here
(split/merge legality, leaf partition, stale-key resolution, the
uniform-depth cover fast path, cover-cache invalidation); the
behavioural split/merge policy of :class:`QuadtreeAG2Monitor` is
exercised with small deterministic streams.  The differential
correctness properties live in ``test_quadtree_property.py``.
"""

from __future__ import annotations

import random

import pytest

from repro.core.ag2 import AG2Monitor
from repro.core.geometry import Rect
from repro.core.grid import UniformGrid, default_cell_size
from repro.core.objects import SpatialObject
from repro.core.quadtree import (
    QuadtreeAG2Monitor,
    QuadtreeIndex,
    default_tile_size,
)
from repro.errors import InvalidParameterError
from repro.obs import Metrics
from repro.window import CountWindow


class TestIndexGeometry:
    def test_default_tile_size_is_four_grid_cells(self):
        assert default_tile_size(10.0, 10.0) == 4.0 * default_cell_size(
            10.0, 10.0
        )

    def test_parameter_validation(self):
        with pytest.raises(InvalidParameterError):
            QuadtreeIndex(tile_size=0.0, min_leaf_size=1.0)
        with pytest.raises(InvalidParameterError):
            QuadtreeIndex(tile_size=16.0, min_leaf_size=0.0)
        with pytest.raises(InvalidParameterError):
            QuadtreeIndex(tile_size=16.0, min_leaf_size=32.0)

    def test_max_level_from_leaf_floor(self):
        # 16 -> 8 -> 4 -> 2: three halvings stay >= 2, a fourth would not
        assert QuadtreeIndex(16.0, 2.0).max_level == 3
        assert QuadtreeIndex(16.0, 16.0).max_level == 0
        # a floor just above a power-of-two boundary loses a level
        assert QuadtreeIndex(16.0, 2.1).max_level == 2

    def test_children_partition_parent_exactly(self):
        tree = QuadtreeIndex(16.0, 1.0)
        for key in [(0, 0, 0), (0, -3, 7), (2, 5, -9)]:
            x1, y1, x2, y2 = tree.cell_bounds(key)
            kids = tree.children(key)
            assert all(tree.parent(k) == key for k in kids)
            xs = sorted({b for k in kids for b in tree.cell_bounds(k)[0::2]})
            ys = sorted({b for k in kids for b in tree.cell_bounds(k)[1::2]})
            assert xs[0] == x1 and xs[-1] == x2
            assert ys[0] == y1 and ys[-1] == y2

    def test_top_level_has_no_parent(self):
        with pytest.raises(InvalidParameterError):
            QuadtreeIndex(16.0, 1.0).parent((0, 0, 0))


class TestSplitMerge:
    def test_split_and_merge_legality(self):
        tree = QuadtreeIndex(16.0, 2.0)
        tree.split((0, 0, 0))
        assert tree.is_split((0, 0, 0))
        with pytest.raises(InvalidParameterError):
            tree.split((0, 0, 0))  # already split
        tree.split((1, 0, 0))
        with pytest.raises(InvalidParameterError):
            tree.merge((0, 0, 0))  # has a split child; merge bottom-up
        with pytest.raises(InvalidParameterError):
            tree.merge((1, 1, 1))  # never split
        tree.merge((1, 0, 0))
        tree.merge((0, 0, 0))
        assert tree.split_count == 0

    def test_split_stops_at_leaf_floor(self):
        tree = QuadtreeIndex(16.0, 8.0)  # one level only
        tree.split((0, 0, 0))
        assert not tree.can_split((1, 0, 0))
        with pytest.raises(InvalidParameterError):
            tree.split((1, 0, 0))

    def test_resolve_down_up_and_live(self):
        tree = QuadtreeIndex(16.0, 1.0)
        tree.split((0, 0, 0))
        tree.split((1, 1, 1))
        # a pre-split key resolves down to its subtree's current leaves
        assert tree.resolve((0, 0, 0)) == tree.leaves_under((0, 0, 0))
        assert len(tree.resolve((0, 0, 0))) == 7
        # a live leaf resolves to itself
        assert tree.resolve((1, 0, 0)) == ((1, 0, 0),)
        assert tree.is_leaf((1, 0, 0))
        assert not tree.is_leaf((0, 0, 0))
        # a key recorded below the current leaf resolves up to it
        tree.merge((1, 1, 1))
        assert tree.resolve((2, 2, 2)) == ((1, 1, 1),)
        tree.merge((0, 0, 0))
        assert tree.resolve((2, 2, 2)) == ((0, 0, 0),)


def _brute_cover(tree: QuadtreeIndex, rect: Rect):
    """Reference cover: every current leaf strictly overlapping rect,
    found by enumerating tiles and descending via leaves_under."""
    if rect.x1 == rect.x2 or rect.y1 == rect.y2:
        return []  # degenerate rectangles overlap nothing
    out = []
    span = 6  # test rects live well inside [-span, span] tiles
    for i in range(-span, span):
        for j in range(-span, span):
            for leaf in tree.leaves_under((0, i, j)):
                x1, y1, x2, y2 = tree.cell_bounds(leaf)
                if (
                    rect.x1 < x2
                    and x1 < rect.x2
                    and rect.y1 < y2
                    and y1 < rect.y2
                ):
                    out.append(leaf)
    return sorted(out)


class TestCovers:
    def test_unsplit_forest_matches_uniform_grid(self):
        tree = QuadtreeIndex(16.0, 2.0)
        grid = UniformGrid(cell_size=16.0)
        for rect in [
            Rect(1.0, 1.0, 5.0, 5.0),
            Rect(-3.0, 12.0, 20.0, 17.0),
            Rect(0.0, 0.0, 16.0, 16.0),  # edge-aligned
            Rect(4.0, 4.0, 4.0, 9.0),  # degenerate: covers nothing
        ]:
            quad = tree.cell_keys(rect)
            flat = grid.cell_keys(rect)
            assert quad == tuple((0, i, j) for i, j in flat)

    def test_mixed_depth_cover_matches_brute_force(self):
        tree = QuadtreeIndex(16.0, 2.0)
        tree.split((0, 0, 0))
        tree.split((1, 0, 0))
        tree.split((0, 1, 0))  # second tile, single level
        rect = Rect(2.0, 2.0, 30.0, 10.0)
        assert sorted(tree.cell_keys(rect)) == _brute_cover(tree, rect)

    def test_uniform_depth_fast_path_matches_descent(self):
        """A complete 4^d split resolves through grid arithmetic; the
        result must be identical to the cached-descent cover."""
        tree = QuadtreeIndex(16.0, 2.0)
        tree.split((0, 0, 0))
        for child in tree.children((0, 0, 0)):
            tree.split(child)
        assert tree._tile_uniform[(0, 0)] == 2
        for rect in [
            Rect(0.5, 0.5, 3.9, 3.9),
            Rect(-2.0, 7.0, 9.0, 22.0),
            Rect(0.0, 0.0, 16.0, 16.0),
            Rect(3.9999999, 0.1, 4.0000001, 0.2),  # float edge straddle
        ]:
            assert sorted(tree.cell_keys(rect)) == _brute_cover(tree, rect)

    def test_partial_split_disables_fast_path(self):
        tree = QuadtreeIndex(16.0, 2.0)
        tree.split((0, 0, 0))
        tree.split((1, 0, 0))  # mixed leaf depths: 1 and 2
        assert tree._tile_uniform[(0, 0)] == -1
        rect = Rect(1.0, 1.0, 15.0, 15.0)
        assert sorted(tree.cell_keys(rect)) == _brute_cover(tree, rect)
        # splitting the remaining children completes a 4^2 partition
        for child in tree.children((0, 0, 0))[1:]:
            tree.split(child)
        assert tree._tile_uniform[(0, 0)] == 2
        assert sorted(tree.cell_keys(rect)) == _brute_cover(tree, rect)
        # removing one level-2 block makes the depths mixed again
        tree.merge((1, 0, 0))
        assert tree._tile_uniform[(0, 0)] == -1
        assert sorted(tree.cell_keys(rect)) == _brute_cover(tree, rect)

    def test_cover_cache_invalidated_by_restructure(self):
        tree = QuadtreeIndex(16.0, 2.0)
        tree.split((0, 0, 0))
        tree.split((1, 0, 0))  # mixed depths: covers go through the cache
        rect = Rect(1.0, 1.0, 15.0, 15.0)
        before = tree.cell_keys(rect)
        assert tree.cell_keys(rect) == before  # cache hit, same cover
        tree.split((1, 1, 1))
        after = tree.cell_keys(rect)
        assert set(after) != set(before)
        assert sorted(after) == _brute_cover(tree, rect)

    def test_restructure_elsewhere_keeps_other_tiles_cached(self):
        tree = QuadtreeIndex(16.0, 2.0)
        tree.split((0, 0, 0))
        tree.split((1, 0, 0))
        tree.split((0, 3, 3))
        rect = Rect(1.0, 1.0, 7.0, 7.0)
        tree.cell_keys(rect)
        cached = dict(tree._cover_cache)
        tree.split((1, 7, 7))  # under tile (3, 3), far from rect
        assert all(key in tree._cover_cache for key in cached)


def _cluster(n: int, cx: float, cy: float, spread: float, rng):
    return [
        SpatialObject(
            x=cx + rng.uniform(-spread, spread),
            y=cy + rng.uniform(-spread, spread),
            weight=1.0,
        )
        for _ in range(n)
    ]


class TestMonitorPolicy:
    def test_parameter_validation(self):
        with pytest.raises(InvalidParameterError):
            QuadtreeAG2Monitor(4.0, 4.0, CountWindow(10), split_occupancy=0)
        with pytest.raises(InvalidParameterError):
            QuadtreeAG2Monitor(
                4.0, 4.0, CountWindow(10), split_occupancy=8, merge_occupancy=8
            )
        with pytest.raises(InvalidParameterError):
            QuadtreeAG2Monitor(4.0, 4.0, CountWindow(10), load_decay=1.0)
        with pytest.raises(InvalidParameterError):
            QuadtreeAG2Monitor(4.0, 4.0, CountWindow(10), split_load=0.0)

    def test_defaults_derive_from_query(self):
        monitor = QuadtreeAG2Monitor(10.0, 10.0, CountWindow(10))
        assert monitor.index_backend == "quadtree"
        assert monitor.backend == "python"
        assert monitor.tree.tile_size == default_tile_size(10.0, 10.0)
        assert monitor.tree.min_leaf_size == 10.0
        assert monitor.split_load == 4.0 * monitor.split_occupancy

    def test_hotspot_splits_and_answers_match_grid(self):
        rng = random.Random(7)
        monitor = QuadtreeAG2Monitor(
            4.0, 4.0, CountWindow(120), split_occupancy=10, merge_occupancy=4
        )
        monitor.attach_metrics(Metrics("quadtree"))
        grid = AG2Monitor(4.0, 4.0, CountWindow(120))
        for _ in range(6):
            batch = _cluster(20, 40.0, 40.0, 3.0, rng)
            a = monitor.update(batch)
            b = grid.update(batch)
            assert a.best_weight == pytest.approx(b.best_weight)
            monitor.check_invariants()
        assert monitor.max_depth > 0
        assert (
            monitor.metrics.snapshot().counters.get("quadtree_splits", 0) > 0
        )
        assert sum(monitor.leaf_depths.values()) == len(monitor._cells)

    def test_drifted_hotspot_merges_back(self):
        rng = random.Random(11)
        monitor = QuadtreeAG2Monitor(
            4.0,
            4.0,
            CountWindow(60),
            split_occupancy=10,
            merge_occupancy=4,
        )
        monitor.attach_metrics(Metrics("quadtree"))
        for _ in range(4):
            monitor.update(_cluster(20, 40.0, 40.0, 3.0, rng))
        assert monitor.tree.split_count > 0
        # the hotspot moves far away; the old region expires and cools
        for _ in range(12):
            monitor.update(_cluster(20, 4000.0, 4000.0, 3.0, rng))
            monitor.check_invariants()
        merges = monitor.metrics.snapshot().counters.get("quadtree_merges", 0)
        assert merges > 0

    @staticmethod
    def _drift_with_warm_trickle(merge_load: float) -> float:
        """Drive an identical seeded stream where the hotspot drifts
        away but one arrival per batch keeps the old region's load warm
        while its occupancy falls below the merge threshold."""
        rng = random.Random(13)
        monitor = QuadtreeAG2Monitor(
            4.0,
            4.0,
            CountWindow(60),
            split_occupancy=10,
            merge_occupancy=4,
            merge_load=merge_load,
        )
        monitor.attach_metrics(Metrics("quadtree"))
        for _ in range(4):
            monitor.update(_cluster(20, 40.0, 40.0, 3.0, rng))
        for _ in range(12):
            batch = _cluster(20, 4000.0, 4000.0, 3.0, rng)
            batch += _cluster(1, 40.0, 40.0, 1.0, rng)
            monitor.update(batch)
            monitor.check_invariants()
        return monitor.metrics.snapshot().counters.get("quadtree_merges", 0)

    def test_merge_load_hysteresis_blocks_hot_merges(self):
        """With merge_load=0 a still-warm region can never merge, so an
        identical stream must see strictly fewer merges than under a
        permissive load bound — the anti-thrash hysteresis at work."""
        permissive = self._drift_with_warm_trickle(merge_load=1e9)
        strict = self._drift_with_warm_trickle(merge_load=0.0)
        assert strict < permissive
