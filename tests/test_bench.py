"""Tests for the benchmark harness (configs, runners, tables)."""

from __future__ import annotations

import pytest

from repro.bench import (
    ExperimentConfig,
    build_monitor,
    format_rows,
    format_table,
    run_ablation,
    run_approx_sweep,
    run_config,
    run_sweep,
    run_topk_sweep,
    series_from_rows,
)
from repro.core.ag2 import AG2Monitor
from repro.core.g2 import G2Monitor
from repro.core.naive import NaiveMonitor
from repro.core.topk import TopKAG2Monitor
from repro.errors import InvalidParameterError

TINY = ExperimentConfig(
    window_size=150, batch_size=25, rect_side=2000.0,
    domain=20_000.0, batches=2, seed=1,
)


class TestConfig:
    def test_defaults_are_paper_scaled(self):
        cfg = ExperimentConfig()
        assert cfg.window_size == 10_000
        assert cfg.rect_side == 1000.0

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            ExperimentConfig(window_size=0)
        with pytest.raises(InvalidParameterError):
            ExperimentConfig(batches=0)

    def test_with_copies(self):
        cfg = TINY.with_(window_size=99)
        assert cfg.window_size == 99
        assert TINY.window_size == 150


class TestBuildMonitor:
    def test_algorithm_types(self):
        assert isinstance(build_monitor("naive", TINY), NaiveMonitor)
        assert isinstance(build_monitor("g2", TINY), G2Monitor)
        assert isinstance(build_monitor("ag2", TINY), AG2Monitor)

    def test_topk_variant(self):
        monitor = build_monitor("ag2", TINY.with_(k=5))
        assert isinstance(monitor, TopKAG2Monitor)
        assert monitor.k == 5

    def test_epsilon_passthrough(self):
        monitor = build_monitor("ag2", TINY.with_(epsilon=0.25))
        assert monitor.epsilon == 0.25

    def test_unknown_algorithm(self):
        with pytest.raises(InvalidParameterError):
            build_monitor("quadtree", TINY)


class TestRunners:
    def test_run_config(self):
        times = run_config(TINY, ("naive", "ag2"))
        assert set(times) == {"naive", "ag2"}
        assert all(v >= 0 for v in times.values())

    def test_run_sweep_rows(self):
        rows = run_sweep(
            TINY, "window_size", (80, 160), algorithms=("ag2",)
        )
        assert [row["window_size"] for row in rows] == [80, 160]
        assert all("ag2" in row for row in rows)

    def test_run_approx_sweep(self):
        rows = run_approx_sweep(TINY, (0.0, 0.5))
        assert len(rows) == 2
        for row in rows:
            assert row["mean_error"] <= row["epsilon"] + 1e-9
            assert row["max_error"] <= row["epsilon"] + 1e-9

    def test_run_topk_sweep(self):
        rows = run_topk_sweep(TINY, (1, 3))
        assert [row["k"] for row in rows] == [1, 3]
        assert all(row["naive"] >= 0 and row["ag2"] >= 0 for row in rows)

    def test_run_ablation(self):
        rows = run_ablation(TINY, ("synthetic",), modes=("off", "always"))
        assert [row["mode"] for row in rows] == ["off", "always"]
        assert all("synthetic" in row for row in rows)


class TestTables:
    def test_format_table(self):
        text = format_table(["a", "b"], [[1, 2.5], [10, 0.001]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        # title + header + rule + 2 data rows
        assert len(lines) == 5

    def test_format_rows(self):
        text = format_rows([{"x": 1, "y": 2}, {"x": 3, "y": 4}])
        assert "x" in text and "3" in text

    def test_format_rows_empty(self):
        assert format_rows([], title="empty") == "empty"

    def test_series_from_rows(self):
        rows = [{"n": 1, "ms": 5.0}, {"n": 2, "ms": 7.0}]
        assert series_from_rows(rows, "n", "ms") == [(1, 5.0), (2, 7.0)]
