"""ParallelQueryGroup vs MultiQueryGroup equivalence and recovery.

The parallel serving layer must be observationally identical to the
serial one: same registry semantics, same per-query answers on the same
fixed-seed stream — including queries added, removed and backfilled
mid-stream — and a killed worker process must be recovered without the
caller seeing an error or a wrong answer.
"""

from __future__ import annotations

import random

import pytest

from repro.core.ag2 import AG2Monitor
from repro.core.g2 import G2Monitor
from repro.engine.multi import MultiQueryGroup
from repro.engine.parallel import ParallelQueryGroup
from repro.errors import InvalidParameterError, UnrecoverableMonitorError
from repro.window import CountWindow


def _batches(count: int, size: int = 25, seed: int = 42):
    rng = random.Random(seed)
    from repro.core.objects import SpatialObject

    out = []
    oid = 0
    for _ in range(count):
        batch = []
        for _ in range(size):
            batch.append(
                SpatialObject(
                    x=rng.uniform(0, 2_000),
                    y=rng.uniform(0, 2_000),
                    weight=rng.uniform(0.5, 5.0),
                    oid=oid,
                )
            )
            oid += 1
        out.append(batch)
    return out


def _monitor(index: int):
    if index == 0:
        return AG2Monitor(300, 300, CountWindow(150))
    if index == 1:
        return G2Monitor(200, 200, CountWindow(100))
    return AG2Monitor(120, 120, CountWindow(120), epsilon=0.1)


def _same_results(a, b):
    assert list(a) == list(b)
    for name in a:
        assert a[name].regions == b[name].regions, name
        assert a[name].mode == b[name].mode


@pytest.fixture
def parallel():
    group = ParallelQueryGroup(workers=2, snapshot_every=3)
    yield group
    group.close()


class TestEquivalence:
    def test_fixed_seed_three_query_stream(self, parallel):
        serial = MultiQueryGroup()
        for i in range(3):
            serial.add(f"q{i}", _monitor(i))
            parallel.add(f"q{i}", _monitor(i))
        for batch in _batches(8):
            _same_results(serial.update(batch), parallel.update(batch))
        _same_results(serial.results(), parallel.results())

    def test_add_remove_backfill_mid_stream(self, parallel):
        serial = MultiQueryGroup()
        for i in range(2):
            serial.add(f"q{i}", _monitor(i))
            parallel.add(f"q{i}", _monitor(i))
        batches = _batches(9, seed=7)
        for tick, batch in enumerate(batches):
            if tick == 3:
                # late-added query, backfilled from q0's window
                serial.add_backfilled("late", _monitor(2), source="q0")
                parallel.add_backfilled("late", _monitor(2), source="q0")
            if tick == 6:
                serial.remove("q1")
                removed = parallel.remove("q1")
                assert removed.rect_width == 200
                assert "q1" not in parallel
            _same_results(serial.update(batch), parallel.update(batch))
        assert parallel.names == ("q0", "late")

    def test_inline_fallback_matches_serial(self):
        serial = MultiQueryGroup()
        inline = ParallelQueryGroup(workers=0)
        serial.add("q", _monitor(0))
        inline.add("q", _monitor(0))
        for batch in _batches(4, seed=3):
            _same_results(serial.update(batch), inline.update(batch))
        assert len(inline) == 1
        inline.close()  # no-op without workers


class TestRecovery:
    def test_killed_worker_recovers_with_correct_answers(self, parallel):
        serial = MultiQueryGroup()
        for i in range(3):
            serial.add(f"q{i}", _monitor(i))
            parallel.add(f"q{i}", _monitor(i))
        batches = _batches(10, seed=11)
        for tick, batch in enumerate(batches):
            if tick in (4, 7):
                parallel.kill_worker(tick % 2)
            _same_results(serial.update(batch), parallel.update(batch))
        assert parallel.recoveries >= 2

    def test_kill_before_registry_ops_still_consistent(self, parallel):
        serial = MultiQueryGroup()
        for i in range(2):
            serial.add(f"q{i}", _monitor(i))
            parallel.add(f"q{i}", _monitor(i))
        batches = _batches(4, seed=19)
        _same_results(serial.update(batches[0]), parallel.update(batches[0]))
        parallel.kill_worker(0)
        # registry op on the dead shard triggers recovery transparently
        serial.add("q2", _monitor(2))
        parallel.add("q2", _monitor(2))
        for batch in batches[1:]:
            _same_results(serial.update(batch), parallel.update(batch))
        assert parallel.recoveries >= 1


class TestRegistry:
    def test_validation(self, parallel):
        with pytest.raises(InvalidParameterError):
            parallel.update([])
        parallel.add("q", _monitor(0))
        with pytest.raises(InvalidParameterError):
            parallel.add("q", _monitor(1))
        with pytest.raises(InvalidParameterError):
            parallel.add("", _monitor(1))
        with pytest.raises(InvalidParameterError):
            parallel.remove("missing")
        with pytest.raises(InvalidParameterError):
            parallel.add_backfilled("x", _monitor(1), source="missing")
        with pytest.raises(InvalidParameterError):
            ParallelQueryGroup(workers=-1)
        with pytest.raises(InvalidParameterError):
            ParallelQueryGroup(snapshot_every=0)

    def test_context_manager_closes(self):
        with ParallelQueryGroup(workers=1) as group:
            group.add("q", _monitor(0))
            group.update(_batches(1)[0])
        assert group._shards == {}


class TestRespawnBudget:
    def test_budget_validation(self):
        with pytest.raises(InvalidParameterError):
            ParallelQueryGroup(workers=1, max_respawns=0)
        with pytest.raises(InvalidParameterError):
            ParallelQueryGroup(workers=1, backoff=0.5)
        with pytest.raises(InvalidParameterError):
            ParallelQueryGroup(workers=1, backoff_base=-1.0)

    def test_exhausted_budget_raises_and_sticks(self):
        sleeps = []
        group = ParallelQueryGroup(
            workers=1,
            max_respawns=3,
            backoff_base=0.01,
            backoff=2.0,
            sleep=sleeps.append,
        )
        try:
            group.add("q", _monitor(0))
            group.update(_batches(1, seed=5)[0])
            shard = group._shards[0]
            for _ in range(3):  # burn the whole consecutive budget
                group._recover(shard)
            # first respawn is immediate, then base * factor**(n-1)
            assert sleeps == pytest.approx([0.01, 0.02])
            with pytest.raises(UnrecoverableMonitorError, match="giving up"):
                group._recover(shard)
            assert shard.gave_up
            # sticky: no further respawns attempted, no further sleeps
            with pytest.raises(UnrecoverableMonitorError):
                group._recover(shard)
            assert len(sleeps) == 2
            stats = group.stats()
            assert stats["gave_up"] is True
            assert stats["respawn_count"] == 3
            assert stats["shards"][0]["gave_up"] is True
        finally:
            group.close()

    def test_successful_call_resets_the_streak(self):
        group = ParallelQueryGroup(
            workers=1, max_respawns=2, backoff_base=0.0
        )
        try:
            group.add("q", _monitor(0))
            batches = _batches(3, seed=23)
            group.update(batches[0])
            group.kill_worker(0)
            group.update(batches[1])  # transparent recovery resets streak
            group.kill_worker(0)
            group.update(batches[2])  # second kill fits a budget of 2
            stats = group.stats()
            assert stats["recoveries"] == 2
            assert stats["shards"][0]["consecutive_failures"] == 0
            assert not stats["gave_up"]
        finally:
            group.close()
