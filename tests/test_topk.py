"""Tests for continuous top-k monitoring (§6.2, Algorithm 6)."""

from __future__ import annotations

import pytest

from conftest import make_objects
from repro.core.bruteforce import brute_force_topk_anchored
from repro.core.naive import NaiveMonitor
from repro.core.objects import SpatialObject, to_weighted_rects
from repro.core.topk import TopKAG2Monitor
from repro.errors import InvalidParameterError
from repro.window import CountWindow


def mk(k, capacity=40, side=10.0, **kw) -> TopKAG2Monitor:
    return TopKAG2Monitor(side, side, CountWindow(capacity), k=k, **kw)


def anchored_reference(monitor: TopKAG2Monitor, side: float, k: int):
    """Exact anchored top-k over the monitor's current window."""
    alive = to_weighted_rects(monitor.window.contents, side, side)
    return brute_force_topk_anchored(alive, k)


class TestTopKBasics:
    def test_k_validation(self):
        with pytest.raises(InvalidParameterError):
            mk(0)

    def test_empty(self):
        assert mk(3).update([]).is_empty

    def test_k1_matches_naive_top1(self):
        topk = mk(1, capacity=25)
        naive = NaiveMonitor(10, 10, CountWindow(25))
        for i in range(10):
            batch = make_objects(5, seed=i, domain=60.0)
            a = topk.update(batch)
            b = naive.update(batch)
            assert a.best_weight == pytest.approx(b.best_weight)

    def test_fewer_objects_than_k(self):
        m = mk(5)
        result = m.update(make_objects(2, domain=200.0))
        assert len(result.regions) == 2

    def test_results_sorted_and_distinct_anchors(self):
        m = mk(4, capacity=30)
        for i in range(6):
            m.update(make_objects(5, seed=40 + i, domain=50.0))
        regions = m.result.regions
        weights = [r.weight for r in regions]
        assert weights == sorted(weights, reverse=True)
        anchors = [r.anchor_oid for r in regions]
        assert len(anchors) == len(set(anchors))

    @pytest.mark.parametrize("k", [1, 2, 3, 5, 8])
    def test_matches_anchored_brute_force(self, k):
        m = mk(k, capacity=25, side=12.0)
        for i in range(8):
            batch = make_objects(5, seed=900 + i, domain=60.0)
            result = m.update(batch)
            expected = anchored_reference(m, 12.0, k)
            got = [r.weight for r in result.regions]
            want = [w for w, _ in expected]
            assert got == pytest.approx(want), f"k={k} batch {i}"

    def test_recovers_after_member_expiry(self):
        m = mk(2, capacity=3)
        m.update(
            [
                SpatialObject(x=5, y=5, weight=9),
                SpatialObject(x=6, y=6, weight=9),
                SpatialObject(x=80, y=80, weight=4),
            ]
        )
        top = [r.weight for r in m.result.regions]
        assert top == pytest.approx([18.0, 9.0])
        # push out the heavy pair
        m.update(
            [
                SpatialObject(x=40, y=40, weight=1),
                SpatialObject(x=60, y=60, weight=2),
            ]
        )
        expected = anchored_reference(m, 10.0, 2)
        assert [r.weight for r in m.result.regions] == pytest.approx(
            [w for w, _ in expected]
        )

    def test_k_larger_than_window(self):
        m = mk(50, capacity=5)
        result = m.update(make_objects(10, domain=200.0))
        assert len(result.regions) == 5

    def test_duplicate_anchor_across_cells_deduped(self):
        # object on a grid corner appears in 4 cells; must appear once
        m = mk(4, capacity=10, cell_size=10.0)
        result = m.update([SpatialObject(x=10, y=10, weight=2.0)])
        assert len(result.regions) == 1
        assert result.best_weight == 2.0

    def test_naive_topk_top1_matches(self):
        topk = mk(5, capacity=30)
        naive = NaiveMonitor(10, 10, CountWindow(30), k=5)
        for i in range(8):
            batch = make_objects(6, seed=70 + i, domain=50.0)
            a = topk.update(batch)
            b = naive.update(batch)
            assert a.best_weight == pytest.approx(b.best_weight)
