"""Regression tests for tricky paths not covered by the main suites."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import make_objects, make_rects
from repro.core.ag2 import AG2Monitor
from repro.core.allmax import plane_sweep_all_max
from repro.core.g2 import G2Monitor
from repro.core.naive import NaiveMonitor
from repro.core.planesweep import plane_sweep_max
from repro.core.sampling import SamplingMonitor
from repro.core.topk import TopKAG2Monitor
from repro.window import CountWindow


class TestOversizedBatches:
    """A batch larger than the window: only its tail becomes alive, and
    every monitor must account identically (arrived ≠ pushed)."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: NaiveMonitor(10, 10, CountWindow(7)),
            lambda: G2Monitor(10, 10, CountWindow(7)),
            lambda: AG2Monitor(10, 10, CountWindow(7)),
            lambda: TopKAG2Monitor(10, 10, CountWindow(7), k=3),
        ],
    )
    def test_batch_three_times_capacity(self, factory):
        reference = NaiveMonitor(10, 10, CountWindow(7))
        monitor = factory()
        big = make_objects(21, seed=5, domain=60.0)
        a = monitor.update(big)
        b = reference.update(big)
        assert a.window_size == 7
        assert a.best_weight == pytest.approx(b.best_weight)

    def test_oversized_batch_after_steady_state(self):
        ag2 = AG2Monitor(10, 10, CountWindow(5))
        naive = NaiveMonitor(10, 10, CountWindow(5))
        for i in range(4):
            batch = make_objects(3, seed=i, domain=50.0)
            ag2.update(batch)
            naive.update(batch)
        big = make_objects(17, seed=99, domain=50.0)
        a = ag2.update(big)
        b = naive.update(big)
        assert a.best_weight == pytest.approx(b.best_weight)
        ag2.check_invariants()


class TestAllMaxDifferential:
    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=5000),
           count=st.integers(min_value=0, max_value=25))
    def test_allmax_contains_the_max_and_only_ties(self, seed, count):
        rects = make_rects(count, seed=seed, domain=40.0, side=8.0,
                           weight_max=0.0)  # unit weights force ties
        ties = plane_sweep_all_max(rects)
        best = plane_sweep_max(rects)
        if best is None:
            assert ties == []
            return
        assert ties
        assert ties[0].weight == pytest.approx(best.weight)
        for region in ties:
            assert region.weight == pytest.approx(best.weight)


class TestSamplingReproducibility:
    def test_same_seed_same_answers(self):
        def run(seed: int) -> list[float]:
            # window and ε chosen so the sample is a strict subset
            # (with a full sample the solver is exact and seed-blind)
            monitor = SamplingMonitor(
                10, 10, CountWindow(200), epsilon=0.6, seed=seed
            )
            weights = []
            for i in range(5):
                result = monitor.update(make_objects(60, seed=i, domain=60.0))
                weights.append(result.best_weight)
            return weights

        assert run(42) == run(42)
        # and a different seed genuinely changes the sampling
        assert run(42) != run(43)


class TestStatsSemantics:
    def test_objects_seen_counts_admitted_not_pushed(self):
        """With an oversized batch, objects that never became alive are
        not counted as seen."""
        monitor = AG2Monitor(10, 10, CountWindow(4))
        monitor.update(make_objects(10, seed=1, domain=50.0))
        assert monitor.stats.objects_seen == 4

    def test_ingest_then_update_tick_metadata(self):
        monitor = NaiveMonitor(10, 10, CountWindow(10))
        monitor.ingest(make_objects(3, seed=1))
        result = monitor.update(make_objects(2, seed=2))
        # window ticked twice: once for ingest, once for update
        assert result.tick == 2
        assert result.window_size == 5
