"""Unit tests for the naive recompute-from-scratch monitor."""

from __future__ import annotations

import pytest

from conftest import make_objects
from repro.core.naive import NaiveMonitor
from repro.core.objects import SpatialObject
from repro.errors import InvalidParameterError
from repro.window import CountWindow, TimeWindow


class TestNaiveMonitor:
    def test_k_validation(self):
        with pytest.raises(InvalidParameterError):
            NaiveMonitor(10, 10, CountWindow(5), k=0)

    def test_rect_size_validation(self):
        with pytest.raises(InvalidParameterError):
            NaiveMonitor(0, 10, CountWindow(5))

    def test_empty_window_result(self):
        m = NaiveMonitor(10, 10, CountWindow(5))
        result = m.update([])
        assert result.is_empty
        assert result.best is None

    def test_single_object(self):
        m = NaiveMonitor(10, 10, CountWindow(5))
        result = m.update([SpatialObject(x=50, y=50, weight=2.5)])
        assert result.best_weight == 2.5
        # the region is the object's dual rectangle
        assert result.best.rect.center == (50, 50)

    def test_two_close_objects_stack(self):
        m = NaiveMonitor(10, 10, CountWindow(5))
        result = m.update(
            [SpatialObject(x=50, y=50), SpatialObject(x=52, y=52)]
        )
        assert result.best_weight == 2.0

    def test_expiry_shrinks_answer(self):
        m = NaiveMonitor(10, 10, CountWindow(2))
        m.update([SpatialObject(x=0, y=0, weight=5), SpatialObject(x=1, y=1, weight=5)])
        assert m.result.best_weight == 10.0
        # two distant arrivals evict the heavy pair
        result = m.update(
            [SpatialObject(x=500, y=500), SpatialObject(x=900, y=900)]
        )
        assert result.best_weight == 1.0

    def test_full_sweep_every_update(self):
        m = NaiveMonitor(10, 10, CountWindow(100))
        for i in range(4):
            m.update([SpatialObject(x=i, y=i)])
        assert m.stats.full_sweeps == 4

    def test_ingest_skips_sweep(self):
        m = NaiveMonitor(10, 10, CountWindow(100))
        m.ingest(make_objects(10))
        assert m.stats.full_sweeps == 0
        result = m.update([])
        assert m.stats.full_sweeps == 1
        assert result.window_size == 10

    def test_topk_mode_returns_ranked(self):
        m = NaiveMonitor(10, 10, CountWindow(50), k=3)
        objs = [
            SpatialObject(x=0, y=0, weight=1),
            SpatialObject(x=2, y=2, weight=1),
            SpatialObject(x=500, y=500, weight=5),
        ]
        result = m.update(objs)
        weights = [r.weight for r in result.regions]
        assert weights[0] == 5.0
        assert weights == sorted(weights, reverse=True)
        assert len(result.regions) <= 3

    def test_works_with_time_window(self):
        m = NaiveMonitor(10, 10, TimeWindow(5.0))
        m.update([SpatialObject(x=0, y=0, weight=9, timestamp=0.0)])
        result = m.update([SpatialObject(x=100, y=100, weight=1, timestamp=10.0)])
        # the heavy object expired
        assert result.best_weight == 1.0

    def test_result_metadata(self):
        m = NaiveMonitor(10, 10, CountWindow(5))
        result = m.update(make_objects(3))
        assert result.window_size == 3
        assert result.tick == 1
