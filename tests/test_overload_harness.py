"""LoadGenerator shapes and the run_overload soak acceptance."""

from __future__ import annotations

import pytest

from repro.errors import InvalidParameterError
from repro.overload import LoadGenerator, run_overload
from repro.overload.harness import exact_weight_over


class TestLoadGenerator:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"base_rate": 0},
            {"pattern": "sawtooth"},
            {"burst_factor": 0.5},
            {"period": 0},
            {"burst_ticks": 0},
            {"burst_ticks": 90, "period": 80},
            {"jitter": 1.0},
            {"jitter": -0.1},
        ],
    )
    def test_parameters_validated(self, kwargs):
        defaults = dict(base_rate=10)
        defaults.update(kwargs)
        with pytest.raises(InvalidParameterError):
            LoadGenerator(**defaults)

    def test_ticks_validated(self):
        with pytest.raises(InvalidParameterError):
            LoadGenerator(10).arrivals(0)

    def test_same_seed_reproduces_exactly(self):
        a = LoadGenerator(10, seed=4).arrivals(50)
        b = LoadGenerator(10, seed=4).arrivals(50)
        c = LoadGenerator(10, seed=5).arrivals(50)
        assert a == b
        assert a != c

    def test_square_wave_shape(self):
        gen = LoadGenerator(
            10, pattern="square", burst_factor=5.0, period=10,
            burst_ticks=3, jitter=0.0,
        )
        counts = gen.arrivals(20)
        assert counts[:3] == [50, 50, 50]
        assert counts[3:10] == [10] * 7
        assert counts[10:13] == [50, 50, 50]  # second period bursts again

    def test_spike_is_one_tick_per_period(self):
        gen = LoadGenerator(
            10, pattern="spike", burst_factor=8.0, period=5, jitter=0.0,
            burst_ticks=1,
        )
        counts = gen.arrivals(10)
        assert counts == [80, 10, 10, 10, 10, 80, 10, 10, 10, 10]

    def test_ramp_is_a_triangle(self):
        gen = LoadGenerator(
            10, pattern="ramp", burst_factor=5.0, period=8, burst_ticks=4,
            jitter=0.0,
        )
        counts = gen.arrivals(8)
        assert counts[0] == 10
        assert max(counts) == counts[4] == 50  # crest at the half period
        assert counts[1:5] == sorted(counts[1:5])  # monotone climb
        assert counts[4:] == sorted(counts[4:], reverse=True)

    def test_jitter_stays_within_band(self):
        gen = LoadGenerator(100, pattern="square", burst_factor=1.0,
                            burst_ticks=1, jitter=0.2, seed=9)
        for count in gen.arrivals(200):
            assert 80 <= count <= 120


class TestExactCompanion:
    def test_empty_window_scores_zero(self):
        assert exact_weight_over([], 10.0) == 0.0


class TestRunOverloadValidation:
    def test_ticks_validated(self):
        with pytest.raises(InvalidParameterError):
            run_overload(ticks=0)

    def test_verify_every_validated(self):
        with pytest.raises(InvalidParameterError):
            run_overload(verify_every=-1)

    def test_calibration_needs_batches(self):
        with pytest.raises(InvalidParameterError):
            run_overload(budget_ms=None, calibration_batches=0)


class TestSoak:
    def test_seeded_burst_soak_meets_acceptance(self):
        """The ISSUE acceptance scenario: a seeded 10x square-wave burst
        against a calibrated budget must keep p95 within budget, close
        the shed ledger exactly, verify every degraded answer's floor
        against the exact companion, and recover to the exact rung."""
        rep = run_overload(
            window=800,
            rate=30,
            ticks=80,
            period=40,
            burst_ticks=8,
            burst_factor=10.0,
            seed=11,
            verify_every=5,
        )
        assert rep.ledger_closed, rep.ledger
        assert rep.within_budget, (rep.p95_ms, rep.budget_ms)
        assert rep.recovered, rep.final_mode
        assert rep.guarantees_verified, rep.guarantee_details
        assert rep.ok
        # the burst actually forced the ladder down and back
        assert rep.transitions, "soak never left the exact rung"
        reasons = {t["reason"] for t in rep.transitions}
        assert reasons & {"panic", "deadline_pressure"}
        assert "headroom" in reasons
        # bounded depth: the queue never outgrew its capacity
        assert rep.queue_high_water <= 20 * 30
        assert rep.queue_pending == 0

    def test_explicit_budget_skips_calibration(self):
        rep = run_overload(
            window=300,
            rate=10,
            ticks=20,
            period=20,
            burst_ticks=2,
            burst_factor=2.0,
            budget_ms=10_000.0,  # everything fits: ladder never moves
            seed=3,
            verify_every=4,
        )
        assert not rep.calibrated
        assert rep.budget_ms == 10_000.0
        assert rep.transitions == []
        assert rep.final_mode == "exact"
        assert rep.final_guarantee == 1.0
        assert rep.ledger_closed
        assert rep.guarantee_checks > 0
        assert rep.guarantee_failures == 0

    def test_report_round_trips_to_plain_data(self):
        rep = run_overload(
            window=200,
            rate=10,
            ticks=10,
            period=10,
            burst_ticks=2,
            burst_factor=2.0,
            budget_ms=10_000.0,
            seed=5,
            verify_every=0,  # verification disabled entirely
        )
        assert rep.guarantee_checks == 0
        assert not rep.guarantees_verified  # no checks = not verified
        doc = rep.to_dict()
        assert doc["budget_ms"] == "10000.000"
        assert doc["ledger"]["offered"] == doc["ledger"]["processed"] + (
            doc["ledger"]["refused"]
            + doc["ledger"]["shed_oldest"]
            + doc["ledger"]["shed_newest"]
            + doc["ledger"]["pending"]
        )
        assert {"engine", "residency", "transitions"} <= set(doc)
        quantities = [row["quantity"] for row in rep.rows()]
        assert "p95 within budget" in quantities
        assert "guarantees verified" in quantities
