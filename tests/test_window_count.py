"""Unit tests for the count-based sliding window."""

from __future__ import annotations

import pytest

from repro.core.objects import SpatialObject
from repro.errors import InvalidParameterError
from repro.window import CountWindow


def objs(n: int, start: int = 0) -> list[SpatialObject]:
    return [SpatialObject(x=i, y=i, timestamp=i) for i in range(start, start + n)]


class TestCountWindow:
    def test_capacity_validation(self):
        with pytest.raises(InvalidParameterError):
            CountWindow(0)
        with pytest.raises(InvalidParameterError):
            CountWindow(-5)

    def test_fill_below_capacity(self):
        w = CountWindow(5)
        batch = objs(3)
        update = w.push(batch)
        assert update.arrived == tuple(batch)
        assert update.expired == ()
        assert len(w) == 3
        assert not w.is_full

    def test_eviction_is_fifo(self):
        w = CountWindow(3)
        first = objs(3)
        w.push(first)
        second = objs(2, start=3)
        update = w.push(second)
        assert update.expired == tuple(first[:2])
        assert w.contents == (first[2], *second)

    def test_exact_fill_no_eviction(self):
        w = CountWindow(4)
        update = w.push(objs(4))
        assert update.expired == ()
        assert w.is_full

    def test_oversized_batch_admits_tail_only(self):
        w = CountWindow(3)
        old = objs(2)
        w.push(old)
        big = objs(5, start=2)
        update = w.push(big)
        # previous contents expired; only the newest 3 of the batch enter
        assert update.expired == tuple(old)
        assert update.arrived == tuple(big[-3:])
        assert w.contents == tuple(big[-3:])

    def test_oversized_batch_on_empty_window(self):
        w = CountWindow(2)
        big = objs(5)
        update = w.push(big)
        assert update.expired == ()
        assert update.arrived == tuple(big[-2:])

    def test_empty_push_is_noop(self):
        w = CountWindow(3)
        w.push(objs(2))
        update = w.push([])
        assert update.is_noop
        assert len(w) == 2

    def test_tick_increments_every_push(self):
        w = CountWindow(3)
        assert w.tick == 0
        w.push(objs(1))
        w.push([])
        assert w.tick == 2

    def test_clear(self):
        w = CountWindow(3)
        w.push(objs(3))
        w.clear()
        assert len(w) == 0
        assert w.contents == ()

    def test_expiry_in_arrival_order_across_batches(self):
        """Indexes rely on expiration strictly following arrival order."""
        w = CountWindow(4)
        seen: list[SpatialObject] = []
        expired: list[SpatialObject] = []
        for i in range(10):
            batch = objs(2, start=i * 2)
            seen.extend(batch)
            expired.extend(w.push(batch).expired)
        assert expired == seen[: len(expired)]

    def test_contents_oldest_first(self):
        w = CountWindow(10)
        batch = objs(6)
        w.push(batch[:3])
        w.push(batch[3:])
        assert list(w.contents) == batch
