"""Property-based tests of window semantics (hypothesis)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.objects import SpatialObject
from repro.window import CountWindow, TimeWindow

batch_sizes = st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=20)


def _mk(n: int, start: int) -> list[SpatialObject]:
    return [
        SpatialObject(x=float(i), y=0.0, timestamp=float(i))
        for i in range(start, start + n)
    ]


@settings(max_examples=80, deadline=None)
@given(capacity=st.integers(min_value=1, max_value=10), sizes=batch_sizes)
def test_count_window_semantics(capacity: int, sizes: list[int]):
    """The window always equals the newest min(capacity, seen) objects,
    expiry follows arrival order, and delta lists are consistent."""
    w = CountWindow(capacity)
    alive: list[SpatialObject] = []
    next_id = 0
    for size in sizes:
        batch = _mk(size, next_id)
        next_id += size
        update = w.push(batch)
        # simulate: append admitted, drop oldest beyond capacity
        alive.extend(update.arrived)
        dropped = alive[: max(0, len(alive) - capacity)]
        alive = alive[len(dropped):]
        assert list(update.expired) == dropped
        assert list(w.contents) == alive
        assert len(w) <= capacity
        # arrived must be a suffix of the pushed batch
        assert list(update.arrived) == batch[len(batch) - len(update.arrived):]


@settings(max_examples=80, deadline=None)
@given(
    duration=st.integers(min_value=1, max_value=15),
    gaps=st.lists(st.floats(min_value=0.0, max_value=5.0), min_size=1, max_size=25),
)
def test_time_window_semantics(duration: int, gaps: list[float]):
    """All and only objects with timestamp > now - duration are alive."""
    w = TimeWindow(float(duration))
    t = 0.0
    pushed: list[SpatialObject] = []
    for gap in gaps:
        t += gap
        obj = SpatialObject(x=0.0, y=0.0, timestamp=t)
        pushed.append(obj)
        w.push([obj])
        cutoff = t - duration
        expected = [o for o in pushed if o.timestamp > cutoff]
        assert list(w.contents) == expected
        assert w.now == t


@settings(max_examples=60, deadline=None)
@given(capacity=st.integers(min_value=1, max_value=8), sizes=batch_sizes)
def test_count_window_expired_is_prefix_of_arrived(capacity, sizes):
    """Global ordering contract used by the indexes: concatenated
    expirations are exactly a prefix of concatenated arrivals."""
    w = CountWindow(capacity)
    arrived: list[int] = []
    expired: list[int] = []
    next_id = 0
    for size in sizes:
        batch = _mk(size, next_id)
        next_id += size
        update = w.push(batch)
        arrived.extend(o.oid for o in update.arrived)
        expired.extend(o.oid for o in update.expired)
    assert expired == arrived[: len(expired)]
