"""Recovery-path tests: WAL scan + reconcile, offline inspection, the
checkpoint ENOSPC contract, and the engine's inline disk-full recovery.
"""

from __future__ import annotations

import errno

import pytest

from conftest import make_objects
from repro.core.ag2 import AG2Monitor
from repro.durability import (
    WriteAheadLog,
    inspect_wal,
    reconcile,
    scan_wal,
)
from repro.engine.engine import StreamEngine
from repro.errors import (
    DiskFullError,
    InvalidParameterError,
    WalCorruptionError,
    WalSequenceError,
)
from repro.resilience.checkpoint import CheckpointManager
from repro.soak.injectors import corrupt_wal
from repro.window import CountWindow


def _filled_log(tmp_path, batches=6, segment_records=2):
    wal = WriteAheadLog(tmp_path, segment_records=segment_records)
    written = []
    for i in range(batches):
        objects = make_objects(3, seed=100 + i, domain=60.0)
        wal.append_batch(objects)
        written.append(objects)
    wal.close()
    return written


class TestScanWal:
    def test_clean_scan_reads_everything(self, tmp_path):
        written = _filled_log(tmp_path)
        scan = scan_wal(tmp_path)
        assert [i for i, _ in scan.batches] == [1, 2, 3, 4, 5, 6]
        assert [objs for _, objs in scan.batches] == written
        assert scan.last_seq == 6 and scan.last_index == 6
        assert not scan.skipped and not scan.truncated_segments

    def test_bitflip_skipped_within_budget(self, tmp_path):
        _filled_log(tmp_path)
        corrupt_wal(tmp_path, "bitflip")  # first record, oldest segment
        scan = scan_wal(tmp_path)
        assert scan.skipped == [1]
        assert [i for i, _ in scan.batches] == [2, 3, 4, 5, 6]
        # a leading hole cannot be pinned by gap inference (nothing
        # readable precedes it); reconcile refuses it via the expected
        # index range instead — see TestReconcile
        assert scan.skipped_indexes == []

    def test_interior_damage_pinned_by_gap_inference(self, tmp_path):
        from repro.durability.record import MAGIC
        from repro.durability.segment import list_segments

        _filled_log(tmp_path)
        # flip a payload byte of the second segment's first record
        # (batch index 3): readable indexes on both sides pin the hole
        path = list_segments(tmp_path)[1][1]
        data = bytearray(path.read_bytes())
        data[len(MAGIC) + 16 + 4] ^= 0x20
        path.write_bytes(bytes(data))
        scan = scan_wal(tmp_path)
        assert scan.skipped == [3]
        assert scan.skipped_indexes == [3]

    def test_skip_budget_exhaustion_raises(self, tmp_path):
        _filled_log(tmp_path)
        corrupt_wal(tmp_path, "bitflip")
        with pytest.raises(WalCorruptionError, match="skip budget"):
            scan_wal(tmp_path, max_skips=0)

    def test_torn_tail_tolerated(self, tmp_path):
        _filled_log(tmp_path)
        corrupt_wal(tmp_path, "torn_tail")
        scan = scan_wal(tmp_path)
        assert len(scan.truncated_segments) == 1
        assert scan.last_index == 5  # the torn final record is gone

    def test_partial_append_tolerated(self, tmp_path):
        _filled_log(tmp_path)
        corrupt_wal(tmp_path, "partial_append")
        scan = scan_wal(tmp_path)
        assert scan.last_index == 6  # garbage after the last real frame
        assert len(scan.truncated_segments) == 1


class TestReconcile:
    def test_tail_is_exactly_past_position(self, tmp_path):
        written = _filled_log(tmp_path)
        tail = reconcile(scan_wal(tmp_path), position=4)
        assert tail.replayed_indexes == (5, 6)
        assert [objs for _, objs in tail.batches] == written[4:]

    def test_damage_below_position_forgiven(self, tmp_path):
        _filled_log(tmp_path)
        corrupt_wal(tmp_path, "bitflip")  # kills index 1
        tail = reconcile(scan_wal(tmp_path), position=4)
        assert tail.replayed_indexes == (5, 6)

    def test_damage_above_position_refused(self, tmp_path):
        _filled_log(tmp_path)
        corrupt_wal(tmp_path, "bitflip")
        with pytest.raises(WalSequenceError, match="missing batch"):
            reconcile(scan_wal(tmp_path), position=0)

    def test_interior_damage_above_position_refused(self, tmp_path):
        from repro.durability.record import MAGIC
        from repro.durability.segment import list_segments

        _filled_log(tmp_path)
        path = list_segments(tmp_path)[1][1]
        data = bytearray(path.read_bytes())
        data[len(MAGIC) + 16 + 4] ^= 0x20
        path.write_bytes(bytes(data))
        with pytest.raises(WalSequenceError, match="lost batch"):
            reconcile(scan_wal(tmp_path), position=2)
        # ...but forgiven when a checkpoint already covers index 3
        tail = reconcile(scan_wal(tmp_path), position=4)
        assert tail.replayed_indexes == (5, 6)

    def test_position_beyond_log_refused(self, tmp_path):
        _filled_log(tmp_path)
        with pytest.raises(WalSequenceError, match="diverged"):
            reconcile(scan_wal(tmp_path), position=9)

    def test_spill_restored_only_when_final_record(self, tmp_path):
        written = _filled_log(tmp_path)
        with WriteAheadLog(tmp_path, segment_records=2) as wal:
            wal.log_spill(written[0], index=wal.last_index)
        tail = reconcile(scan_wal(tmp_path), position=4)
        assert tail.spill == written[0]

    def test_stale_spill_not_restored(self, tmp_path):
        written = _filled_log(tmp_path)
        with WriteAheadLog(tmp_path, segment_records=2) as wal:
            wal.log_spill(written[0], index=wal.last_index)
            # a later incarnation appended after the spill: the buffer
            # was already dealt with, restoring it would duplicate
            wal.append_batch(written[1])
        tail = reconcile(scan_wal(tmp_path), position=4)
        assert tail.spill == []

    def test_negative_position_rejected(self, tmp_path):
        _filled_log(tmp_path)
        with pytest.raises(InvalidParameterError):
            reconcile(scan_wal(tmp_path), position=-1)


class TestInspectWal:
    def test_clean_log_reports_clean(self, tmp_path):
        _filled_log(tmp_path)
        doc = inspect_wal(tmp_path)
        assert doc["clean"] and doc["records"] == 6
        assert doc["damaged_records"] == 0 and doc["torn_segments"] == 0
        kinds = [
            record["kind"]
            for segment in doc["detail"]
            for record in segment["records"]
        ]
        assert kinds == ["batch"] * 6

    def test_damage_reported_not_raised(self, tmp_path):
        _filled_log(tmp_path)
        corrupt_wal(tmp_path, "bitflip")
        corrupt_wal(tmp_path, "torn_tail")
        doc = inspect_wal(tmp_path)
        assert not doc["clean"]
        assert doc["damaged_records"] == 1
        assert doc["torn_segments"] == 1


class TestCheckpointEnospc:
    """Satellite: ``CheckpointManager.save`` under a full disk must
    leave every previous checkpoint readable and raise a typed error,
    never a bare ``OSError``."""

    def _manager(self, tmp_path, **kwargs):
        monitor = AG2Monitor(10.0, 10.0, CountWindow(30))
        monitor.ingest(make_objects(30, seed=21, domain=50.0))
        return monitor, CheckpointManager(
            monitor, tmp_path / "state.ckpt.json", every=1, keep=2, **kwargs
        )

    def test_enospc_is_typed_and_previous_checkpoint_survives(self, tmp_path):
        monitor, manager = self._manager(tmp_path)
        manager.checkpoint()
        before = (tmp_path / "state.ckpt.json").read_bytes()

        def full_disk(fd):
            raise OSError(errno.ENOSPC, "No space left on device")

        manager._fsync = full_disk
        with pytest.raises(DiskFullError) as exc_info:
            manager.checkpoint()
        assert exc_info.value.errno == errno.ENOSPC
        # the failed write touched neither the live file nor a rotation
        assert (tmp_path / "state.ckpt.json").read_bytes() == before
        snapshot, position = CheckpointManager.recover(
            tmp_path / "state.ckpt.json"
        )
        assert position == 0
        assert sorted(o.oid for o in snapshot.window.contents) == sorted(
            o.oid for o in monitor.window.contents
        )

    def test_no_temp_file_litter_after_enospc(self, tmp_path):
        _monitor, manager = self._manager(tmp_path)
        manager._fsync = lambda fd: (_ for _ in ()).throw(
            OSError(errno.ENOSPC, "full")
        )
        with pytest.raises(DiskFullError):
            manager.checkpoint()
        leftovers = [
            p.name
            for p in tmp_path.iterdir()
            if not p.name.startswith("state.ckpt.json")
        ]
        assert leftovers == []

    def test_positions_history_feeds_retention_floor(self, tmp_path):
        _monitor, manager = self._manager(tmp_path)
        for index in (3, 7, 11):
            manager.batch_index = index
            manager.checkpoint()
        # keep=2 retains keep+1 positions; the floor is the oldest
        assert manager.positions == [11, 7, 3]
        assert manager.retention_floor == 3
        assert manager.last_position == 11


class TestEngineInlineEnospcRecovery:
    def test_disk_full_append_recovers_via_checkpoint_and_compaction(
        self, tmp_path
    ):
        window = CountWindow(40)
        monitor = AG2Monitor(10.0, 10.0, window)
        monitor.ingest(make_objects(40, seed=31, domain=50.0))
        wal = WriteAheadLog(tmp_path / "log", segment_records=2)
        manager = CheckpointManager(
            monitor, tmp_path / "ckpt.json", every=1000, keep=2
        )
        engine = StreamEngine(
            {"m": monitor},
            iter(()),
            batch_size=8,
            checkpoint=manager,
            wal=wal,
        )
        for i in range(4):
            engine.process(make_objects(8, seed=40 + i, domain=50.0))
        segments_before = len(wal.segments)

        fired = []

        def hook(op):
            if op == "append" and not fired:
                fired.append(op)
                raise OSError(errno.ENOSPC, "No space left on device")

        wal.fault_hook = hook
        engine.process(make_objects(8, seed=50, domain=50.0))
        # the append was retried after an emergency checkpoint+compact:
        # the batch is journalled, segments were reclaimed, and the
        # engine kept running
        assert fired == ["append"]
        assert wal.last_index == 5
        assert manager.checkpoints_written == 1
        assert len(wal.segments) < segments_before

    def test_disk_full_without_checkpointing_propagates(self, tmp_path):
        monitor = AG2Monitor(10.0, 10.0, CountWindow(40))
        wal = WriteAheadLog(tmp_path / "log")
        engine = StreamEngine({"m": monitor}, iter(()), batch_size=8, wal=wal)
        wal.fault_hook = lambda op: op == "append" and (
            (_ for _ in ()).throw(OSError(errno.ENOSPC, "full"))
        )
        with pytest.raises(DiskFullError):
            engine.process(make_objects(8, seed=60, domain=50.0))
