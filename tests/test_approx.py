"""Tests for approximate monitoring (§6.1): the Theorem 1 guarantee."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import make_objects
from repro.core.ag2 import AG2Monitor
from repro.core.approx import ApproxAG2Monitor, practical_error
from repro.core.naive import NaiveMonitor
from repro.core.objects import SpatialObject
from repro.errors import InvalidParameterError
from repro.window import CountWindow


class TestPracticalError:
    def test_zero_when_equal(self):
        assert practical_error(10.0, 10.0) == 0.0

    def test_fraction(self):
        assert practical_error(8.0, 10.0) == pytest.approx(0.2)

    def test_empty_window_is_zero(self):
        assert practical_error(0.0, 0.0) == 0.0

    def test_float_noise_clamped(self):
        assert practical_error(10.0 + 1e-12, 10.0) == 0.0


class TestApproxMonitor:
    def test_epsilon_required_positive(self):
        with pytest.raises(InvalidParameterError):
            ApproxAG2Monitor(10, 10, CountWindow(5), epsilon=0.0)
        with pytest.raises(InvalidParameterError):
            ApproxAG2Monitor(10, 10, CountWindow(5), epsilon=1.0)

    @pytest.mark.parametrize(
        "epsilon", [1.5, -0.1, float("inf"), float("-inf"), float("nan")]
    )
    def test_out_of_range_epsilon_rejected(self, epsilon):
        """Regression: out-of-range and non-finite tolerances must fail
        fast at construction — a nan epsilon would silently disable the
        (1-ε) floor the monitor advertises."""
        with pytest.raises(InvalidParameterError):
            ApproxAG2Monitor(10, 10, CountWindow(5), epsilon=epsilon)

    @pytest.mark.parametrize("epsilon", [1.0, 1.5, -0.1, float("nan")])
    def test_base_monitor_rejects_vacuous_epsilon(self, epsilon):
        with pytest.raises(InvalidParameterError):
            AG2Monitor(10, 10, CountWindow(5), epsilon=epsilon)

    def test_result_carries_quality_contract(self):
        approx = ApproxAG2Monitor(10, 10, CountWindow(30), epsilon=0.25)
        exact = AG2Monitor(10, 10, CountWindow(30), epsilon=0.0)
        batch = make_objects(12, seed=3, domain=60.0)
        a = approx.update(batch)
        assert a.mode == "approx"
        assert a.guarantee == pytest.approx(0.75)
        b = exact.update(batch)
        assert b.mode == "exact"
        assert b.guarantee == 1.0

    def test_epsilon_zero_on_base_is_exact(self):
        exact = AG2Monitor(10, 10, CountWindow(30), epsilon=0.0)
        naive = NaiveMonitor(10, 10, CountWindow(30))
        for i in range(8):
            batch = make_objects(8, seed=i, domain=60.0)
            a = exact.update(batch)
            b = naive.update(batch)
            assert a.best_weight == pytest.approx(b.best_weight)

    @pytest.mark.parametrize("epsilon", [0.1, 0.3, 0.5, 0.9])
    def test_error_bound_holds_on_stream(self, epsilon):
        approx = ApproxAG2Monitor(10, 10, CountWindow(40), epsilon=epsilon)
        naive = NaiveMonitor(10, 10, CountWindow(40))
        for i in range(15):
            batch = make_objects(8, seed=50 + i, domain=60.0)
            a = approx.update(batch)
            b = naive.update(batch)
            if b.best_weight > 0:
                assert a.best_weight >= (1 - epsilon) * b.best_weight - 1e-9
            approx.check_invariants()

    def test_never_exceeds_exact(self):
        """The approximate answer is a real space: never above s*."""
        approx = ApproxAG2Monitor(10, 10, CountWindow(30), epsilon=0.4)
        naive = NaiveMonitor(10, 10, CountWindow(30))
        for i in range(10):
            batch = make_objects(6, seed=80 + i, domain=50.0)
            a = approx.update(batch)
            b = naive.update(batch)
            assert a.best_weight <= b.best_weight + 1e-9

    def test_bound_survives_star_expiry(self):
        approx = ApproxAG2Monitor(10, 10, CountWindow(4), epsilon=0.3)
        naive = NaiveMonitor(10, 10, CountWindow(4))
        streams = [
            [SpatialObject(x=5, y=5, weight=9), SpatialObject(x=6, y=6, weight=9)],
            [SpatialObject(x=80, y=80, weight=2), SpatialObject(x=81, y=81, weight=2)],
            [SpatialObject(x=40, y=40, weight=3), SpatialObject(x=41, y=41, weight=3)],
            [SpatialObject(x=10, y=80, weight=1)],
        ]
        for batch in streams:
            a = approx.update(batch)
            b = naive.update(batch)
            if b.best_weight > 0:
                assert a.best_weight >= 0.7 * b.best_weight - 1e-9

    def test_prunes_at_least_as_much_as_exact(self):
        exact = AG2Monitor(5, 5, CountWindow(150), epsilon=0.0)
        approx = AG2Monitor(5, 5, CountWindow(150), epsilon=0.5)
        for i in range(8):
            batch = make_objects(20, seed=500 + i, domain=100.0)
            exact.update(batch)
            approx.update(batch)
        assert approx.stats.local_sweeps <= exact.stats.local_sweeps


coord = st.integers(min_value=0, max_value=40).map(float)


@settings(max_examples=40, deadline=None)
@given(
    objs=st.lists(
        st.builds(
            SpatialObject,
            x=coord,
            y=coord,
            weight=st.sampled_from([0.5, 1.0, 3.0]),
        ),
        min_size=1,
        max_size=40,
    ),
    epsilon=st.sampled_from([0.1, 0.25, 0.5, 0.75]),
    capacity=st.integers(min_value=2, max_value=20),
)
def test_error_bound_property(objs, epsilon, capacity):
    """Hypothesis: the Theorem 1 bound holds for arbitrary streams,
    window sizes and tolerances."""
    approx = AG2Monitor(8, 8, CountWindow(capacity), epsilon=epsilon)
    naive = NaiveMonitor(8, 8, CountWindow(capacity))
    for pos in range(0, len(objs), 5):
        batch = objs[pos : pos + 5]
        a = approx.update(batch)
        b = naive.update(batch)
        assert a.best_weight >= (1 - epsilon) * b.best_weight - 1e-9
        assert a.best_weight <= b.best_weight + 1e-9
