"""Property-based differential tests: aG2 / G2 vs the naive monitor.

These are the strongest correctness tests in the suite: random object
streams (clustered so overlaps are common) flow through all monitors
and the exact answers must agree at every batch, while the aG2 bound
invariants (Property 4) hold throughout.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ag2 import AG2Monitor
from repro.core.g2 import G2Monitor
from repro.core.naive import NaiveMonitor
from repro.core.objects import SpatialObject
from repro.window import CountWindow

coord = st.integers(min_value=0, max_value=50).map(float)
weight = st.sampled_from([0.0, 0.5, 1.0, 2.0, 5.0])

objects = st.lists(
    st.builds(
        SpatialObject,
        x=coord,
        y=coord,
        weight=weight,
    ),
    min_size=0,
    max_size=60,
)

batch_splits = st.lists(st.integers(min_value=1, max_value=8), min_size=1, max_size=12)


def _batches(objs, splits):
    pos = 0
    for size in splits:
        if pos >= len(objs):
            return
        yield objs[pos : pos + size]
        pos += size
    if pos < len(objs):
        yield objs[pos:]


@settings(max_examples=60, deadline=None)
@given(
    objs=objects,
    splits=batch_splits,
    capacity=st.integers(min_value=1, max_value=30),
    side=st.sampled_from([4.0, 10.0, 25.0]),
    cell_size=st.sampled_from([8.0, 20.0, 60.0]),
)
def test_ag2_equals_naive_every_batch(objs, splits, capacity, side, cell_size):
    window = lambda: CountWindow(capacity)  # noqa: E731
    ag2 = AG2Monitor(side, side, window(), cell_size=cell_size)
    naive = NaiveMonitor(side, side, window())
    for batch in _batches(objs, splits):
        a = ag2.update(batch)
        b = naive.update(batch)
        assert a.best_weight == pytest.approx(b.best_weight)
        assert a.is_empty == b.is_empty
        ag2.check_invariants()


@settings(max_examples=40, deadline=None)
@given(
    objs=objects,
    splits=batch_splits,
    capacity=st.integers(min_value=1, max_value=30),
    side=st.sampled_from([6.0, 15.0]),
)
def test_g2_equals_naive_every_batch(objs, splits, capacity, side):
    g2 = G2Monitor(side, side, CountWindow(capacity))
    naive = NaiveMonitor(side, side, CountWindow(capacity))
    for batch in _batches(objs, splits):
        a = g2.update(batch)
        b = naive.update(batch)
        assert a.best_weight == pytest.approx(b.best_weight)


@settings(max_examples=40, deadline=None)
@given(
    objs=objects,
    splits=batch_splits,
    side=st.sampled_from([6.0, 15.0]),
    cell_size=st.sampled_from([10.0, 30.0]),
)
def test_ag2_reported_region_weight_is_truthful(objs, splits, side, cell_size):
    """The reported region's interior point really is covered by the
    reported total weight (cross-check against raw geometry)."""
    from repro.core.bruteforce import cover_weight
    from repro.core.objects import to_weighted_rects

    ag2 = AG2Monitor(side, side, CountWindow(25), cell_size=cell_size)
    for batch in _batches(objs, splits):
        result = ag2.update(batch)
        if result.best is None:
            continue
        alive = to_weighted_rects(ag2.window.contents, side, side)
        x, y = result.best.best_point
        assert cover_weight(alive, x, y) == pytest.approx(result.best_weight)
