"""Supervision tests: self-healing monitors and retrying sources.

The supervised contract: a mid-update failure (raised exception or a
failed invariant probe) is absorbed by rebuilding the index from the
surviving window contents, and the healed monitor answers exactly like
a never-failed one — because the indexes are pure functions of the
arrival sequence.
"""

from __future__ import annotations

import pytest

from conftest import make_objects
from repro.core.ag2 import AG2Monitor
from repro.core.naive import NaiveMonitor
from repro.errors import (
    InvariantViolationError,
    SourceRetryExhaustedError,
    UnrecoverableMonitorError,
)
from repro.obs import Metrics
from repro.resilience import MonitorSupervisor, RetryingSource
from repro.streams import ReplayStream
from repro.window import CountWindow, TimeWindow


class FailingAG2(AG2Monitor):
    """AG2 monitor that raises mid-update on command (after the window
    has admitted the batch — exactly the corruption scenario)."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.fail_next = 0

    def _on_delta(self, delta):
        if self.fail_next > 0:
            self.fail_next -= 1
            raise RuntimeError("injected index corruption")
        super()._on_delta(delta)


class BadInvariantsAG2(AG2Monitor):
    """AG2 monitor whose invariant probe can be forced to fail once."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.pretend_corrupt = False

    def check_invariants(self):
        if self.pretend_corrupt:
            self.pretend_corrupt = False
            raise InvariantViolationError("injected invariant violation")
        super().check_invariants()


class TestMonitorSupervisorHealing:
    def test_mid_update_failure_healed_and_equivalent(self):
        monitor = FailingAG2(10, 10, CountWindow(40))
        supervised = MonitorSupervisor(monitor)
        reference = NaiveMonitor(10, 10, CountWindow(40))
        batches = [make_objects(10, seed=s, domain=60.0, start_t=s * 10.0)
                   for s in range(6)]
        for i, batch in enumerate(batches):
            if i == 3:
                monitor.fail_next = 1
            got = supervised.update(batch)
            want = reference.update(batch)
            assert got.best_weight == pytest.approx(want.best_weight)
        assert supervised.failures == 1
        assert supervised.heals == 1
        # the healed instance replaced the failing one
        assert supervised.monitor is not monitor
        supervised.check_invariants()

    def test_heal_preserves_time_window_clock(self):
        monitor = FailingAG2(10, 10, TimeWindow(50.0))
        supervised = MonitorSupervisor(monitor)
        supervised.update(make_objects(5, seed=1, domain=40.0, start_t=0.0))
        monitor.fail_next = 1
        supervised.update(make_objects(5, seed=2, domain=40.0, start_t=10.0))
        assert supervised.heals == 1
        # post-heal pushes continue from the restored clock
        result = supervised.update(
            make_objects(5, seed=3, domain=40.0, start_t=20.0)
        )
        assert result.window_size == 15

    def test_invariant_probe_triggers_heal(self):
        monitor = BadInvariantsAG2(10, 10, CountWindow(30))
        supervised = MonitorSupervisor(monitor, probe_every=2)
        supervised.update(make_objects(5, seed=4, domain=50.0, start_t=0.0))
        monitor.pretend_corrupt = True
        supervised.update(make_objects(5, seed=5, domain=50.0, start_t=10.0))
        assert supervised.invariant_failures == 1
        assert supervised.heals == 1

    def test_rejected_batch_is_not_corruption(self):
        supervised = MonitorSupervisor(AG2Monitor(10, 10, TimeWindow(100.0)))
        supervised.update(make_objects(5, seed=6, domain=40.0, start_t=50.0))
        before = supervised.result
        stale = make_objects(3, seed=7, domain=40.0, start_t=0.0)
        after = supervised.update(stale)  # WindowOrderError inside
        assert supervised.batches_rejected == 1
        assert supervised.heals == 0
        assert after.best_weight == pytest.approx(before.best_weight)

    def test_heal_budget_exhaustion_raises(self):
        monitor = FailingAG2(10, 10, CountWindow(20))
        supervised = MonitorSupervisor(monitor, max_heals=0)
        monitor.fail_next = 1
        with pytest.raises(UnrecoverableMonitorError):
            supervised.update(make_objects(3, seed=8, domain=40.0))

    def test_custom_rebuild_factory(self):
        monitor = FailingAG2(10, 10, CountWindow(20))
        fresh = AG2Monitor(10, 10, CountWindow(20))
        supervised = MonitorSupervisor(monitor, rebuild=lambda: fresh)
        supervised.update(make_objects(5, seed=9, domain=40.0, start_t=0.0))
        monitor.fail_next = 1
        supervised.update(make_objects(5, seed=10, domain=40.0, start_t=10.0))
        assert supervised.monitor is fresh
        assert len(fresh.window) == 10

    def test_supervisor_metrics_counters(self):
        monitor = FailingAG2(10, 10, CountWindow(20))
        supervised = MonitorSupervisor(monitor)
        metrics = Metrics()
        supervised.attach_metrics(metrics)
        supervised.update(make_objects(4, seed=11, domain=40.0, start_t=0.0))
        monitor.fail_next = 1
        supervised.update(make_objects(4, seed=12, domain=40.0, start_t=10.0))
        snap = metrics.snapshot()
        assert snap.counters["supervisor.monitor_failures"] == 1
        assert snap.counters["supervisor.heals"] == 1
        # the monitor's own counters keep accumulating after the heal
        assert snap.counters["updates"] >= 2

    def test_ingest_failure_healed(self):
        monitor = FailingAG2(10, 10, CountWindow(30))
        supervised = MonitorSupervisor(monitor)
        monitor.fail_next = 1
        supervised.ingest(make_objects(5, seed=13, domain=40.0))
        assert supervised.heals == 1
        assert len(supervised.window) == 5


class FlakyIterator:
    """Resumable iterator raising a transient error at given positions."""

    def __init__(self, objects, fail_at, exc=OSError):
        self._objects = list(objects)
        self._fail_at = set(fail_at)
        self._exc = exc
        self._pos = 0

    def __iter__(self):
        return self

    def __next__(self):
        if self._pos in self._fail_at:
            self._fail_at.discard(self._pos)
            raise self._exc("transient")
        if self._pos >= len(self._objects):
            raise StopIteration
        obj = self._objects[self._pos]
        self._pos += 1
        return obj


class TestRetryingSource:
    def test_transient_failures_retried(self):
        objects = make_objects(10, seed=14, domain=40.0)
        sleeps: list[float] = []
        source = RetryingSource(
            FlakyIterator(objects, fail_at=[3, 7]),
            base_delay=0.01,
            sleep=sleeps.append,
        )
        assert list(source) == objects
        assert source.retries == 2
        assert sleeps == [0.01, 0.01]

    def test_backoff_grows_per_consecutive_failure(self):
        objects = make_objects(4, seed=15, domain=40.0)

        class TripleFail(FlakyIterator):
            def __init__(self, objs):
                super().__init__(objs, fail_at=[])
                self.remaining = 3

            def __next__(self):
                if self.remaining and self._pos == 2:
                    self.remaining -= 1
                    raise OSError("transient burst")
                return super().__next__()

        sleeps: list[float] = []
        source = RetryingSource(
            TripleFail(objects),
            max_retries=5,
            base_delay=0.01,
            backoff=2.0,
            sleep=sleeps.append,
        )
        assert list(source) == objects
        assert sleeps == [0.01, 0.02, 0.04]

    def test_exhaustion_raises_with_cause(self):
        class AlwaysBroken:
            def __iter__(self):
                return self

            def __next__(self):
                raise OSError("dead disk")

        source = RetryingSource(
            AlwaysBroken(), max_retries=2, sleep=lambda _: None
        )
        with pytest.raises(SourceRetryExhaustedError) as exc_info:
            list(source)
        assert isinstance(exc_info.value.__cause__, OSError)

    def test_non_transient_errors_propagate(self):
        source = RetryingSource(
            FlakyIterator([], fail_at=[0], exc=KeyError),
            sleep=lambda _: None,
        )
        with pytest.raises(KeyError):
            list(source)

    def test_generator_source_restarted_and_fastforwarded(self):
        objects = make_objects(6, seed=16, domain=40.0)

        class FlakyOnceStream(ReplayStream):
            """Generator-backed source that dies once mid-iteration."""

            def __init__(self, objs):
                super().__init__(objs)
                self.failed = False

            def __iter__(self):
                for i, o in enumerate(super().__iter__()):
                    if i == 3 and not self.failed:
                        self.failed = True
                        raise OSError("transient")
                    yield o

        source = RetryingSource(FlakyOnceStream(objects), sleep=lambda _: None)
        assert list(source) == objects
        assert source.resets == 1


class TestRetryJitterAndBudget:
    def test_full_jitter_spreads_sleeps(self):
        objects = make_objects(6, seed=17, domain=40.0)
        sleeps: list[float] = []
        rolls = iter([0.5, 0.25])
        source = RetryingSource(
            FlakyIterator(objects, fail_at=[1, 4]),
            base_delay=0.1,
            jitter=1.0,  # full jitter: sleep uniform in [0, delay]
            rng=lambda: next(rolls),
            sleep=sleeps.append,
        )
        assert list(source) == objects
        assert sleeps == [0.05, 0.025]

    def test_partial_jitter_keeps_floor(self):
        objects = make_objects(4, seed=18, domain=40.0)
        sleeps: list[float] = []
        source = RetryingSource(
            FlakyIterator(objects, fail_at=[2]),
            base_delay=0.1,
            jitter=0.5,
            rng=lambda: 0.0,  # worst roll still sleeps half the delay
            sleep=sleeps.append,
        )
        assert list(source) == objects
        assert sleeps == [pytest.approx(0.05)]

    def test_zero_jitter_is_the_deterministic_ladder(self):
        objects = make_objects(4, seed=18, domain=40.0)
        sleeps: list[float] = []
        source = RetryingSource(
            FlakyIterator(objects, fail_at=[2]),
            base_delay=0.1,
            rng=lambda: pytest.fail("rng must not be consulted"),
            sleep=sleeps.append,
        )
        assert list(source) == objects
        assert sleeps == [0.1]

    def test_jitter_validated(self):
        with pytest.raises(Exception, match="jitter"):
            RetryingSource(iter([]), jitter=1.5)

    def test_max_elapsed_gives_up_before_attempts_run_out(self):
        class AlwaysBroken:
            def __iter__(self):
                return self

            def __next__(self):
                raise OSError("dead disk")

        clock_values = iter([0.0, 3.0, 11.0])
        source = RetryingSource(
            AlwaysBroken(),
            max_retries=50,
            sleep=lambda _: None,
            max_elapsed=10.0,
            clock=lambda: next(clock_values),
        )
        with pytest.raises(SourceRetryExhaustedError, match="max_elapsed"):
            list(source)
        assert source.gave_up == 1
        assert source.retries == 3  # attempts were not the limit

    def test_retry_counters_in_metrics_registry(self):
        objects = make_objects(6, seed=19, domain=40.0)
        metrics = Metrics("test")
        source = RetryingSource(
            FlakyIterator(objects, fail_at=[1, 3]),
            base_delay=0.01,
            sleep=lambda _: None,
            metrics=metrics,
        )
        assert list(source) == objects
        assert metrics.counter("source_retries").value == 2
        assert metrics.counter("source_retry_gave_up").value == 0
        assert metrics.histogram("source_retry_sleep_s").count == 2

    def test_gave_up_counter_in_registry(self):
        class AlwaysBroken:
            def __iter__(self):
                return self

            def __next__(self):
                raise OSError("dead disk")

        metrics = Metrics("test")
        source = RetryingSource(
            AlwaysBroken(),
            max_retries=1,
            sleep=lambda _: None,
            metrics=metrics,
        )
        with pytest.raises(SourceRetryExhaustedError):
            list(source)
        assert metrics.counter("source_retry_gave_up").value == 1
