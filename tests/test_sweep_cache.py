"""Tests for the sweep-input caching layer (PR 4 tentpole, layer b).

``local_plane_sweep_cached`` keeps the clipped (rect, weight) items of
already-seen neighbours on the vertex, re-clipping only the suffix
appended since the last sweep (valid because neighbour lists are
append-only while a vertex is alive — Property 3).  These tests pin the
contract: byte-identical results to the uncached reference sweep, under
any interleaving of appends and sweeps.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import vector
from repro.core.geometry import Rect
from repro.core.graph import Vertex
from repro.core.objects import SpatialObject, WeightedRect
from repro.core.planesweep import (
    _TREE_POOL,
    local_plane_sweep,
    local_plane_sweep_cached,
)


def _wrect(rng: random.Random, near: WeightedRect | None = None) -> WeightedRect:
    if near is None:
        x1, y1 = rng.uniform(0, 10), rng.uniform(0, 10)
    else:
        # bias toward overlap with the anchor
        x1 = near.rect.x1 + rng.uniform(-3, 3)
        y1 = near.rect.y1 + rng.uniform(-3, 3)
    w = rng.uniform(0.5, 4)
    h = rng.uniform(0.5, 4)
    wt = rng.choice([0.0, 0.5, 1.0, 2.0, 3.5])
    obj = SpatialObject(x=x1 + w / 2, y=y1 + h / 2, weight=wt)
    return WeightedRect(rect=Rect(x1, y1, x1 + w, y1 + h), weight=wt, obj=obj)


class TestCachedSweep:
    def test_first_sweep_matches_reference(self):
        rng = random.Random(7)
        anchor = _wrect(rng)
        v = Vertex(anchor, seq=0)
        v.neighbors = [_wrect(rng, anchor) for _ in range(8)]
        cached = local_plane_sweep_cached(v)
        reference = local_plane_sweep(anchor, v.neighbors)
        assert cached == reference

    def test_incremental_resweep_matches_reference(self):
        rng = random.Random(11)
        anchor = _wrect(rng)
        v = Vertex(anchor, seq=0)
        for round_ in range(6):
            v.neighbors.extend(
                _wrect(rng, anchor) for _ in range(rng.randrange(0, 4))
            )
            cached = local_plane_sweep_cached(v)
            reference = local_plane_sweep(anchor, v.neighbors)
            assert cached == reference, f"diverged at round {round_}"
        assert v.clip_upto == len(v.neighbors)

    def test_cache_state_lazy_until_first_sweep(self):
        rng = random.Random(3)
        v = Vertex(_wrect(rng), seq=0)
        assert v.clip_items is None  # pruned vertices pay nothing
        local_plane_sweep_cached(v)
        assert v.clip_items is not None

    def test_pool_bounded_and_reused(self):
        rng = random.Random(5)
        anchor = _wrect(rng)
        v = Vertex(anchor, seq=0)
        v.neighbors = [_wrect(rng, anchor) for _ in range(4)]
        for _ in range(10):
            local_plane_sweep(anchor, v.neighbors)
            local_plane_sweep_cached(v)
        assert 1 <= len(_TREE_POOL) <= 4


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    rounds=st.integers(min_value=1, max_value=6),
)
def test_cached_equals_uncached_under_interleaving(seed: int, rounds: int):
    """Property: any append/sweep interleaving yields byte-identical
    regions from the cached and uncached sweeps."""
    rng = random.Random(seed)
    anchor = _wrect(rng)
    v = Vertex(anchor, seq=0)
    for _ in range(rounds):
        v.neighbors.extend(
            _wrect(rng, anchor) for _ in range(rng.randrange(0, 5))
        )
        if rng.random() < 0.7:  # sometimes skip sweeping this round
            assert local_plane_sweep_cached(v) == local_plane_sweep(
                anchor, v.neighbors
            )
    assert local_plane_sweep_cached(v) == local_plane_sweep(
        anchor, v.neighbors
    )


@pytest.mark.skipif(
    not vector.HAVE_NUMPY, reason="numpy not installed ([vector] extra)"
)
@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_cached_sweep_backend_equivalence(seed: int):
    """The numpy-backed cached sweep is byte-identical to the python
    one over the same vertex (thresholds forced tiny so the columnar
    kernel actually engages on these small neighbour lists)."""
    old = vector.VECTOR_SWEEP_MIN
    vector.VECTOR_SWEEP_MIN = 4
    try:
        rng = random.Random(seed)
        anchor = _wrect(rng)
        vp = Vertex(anchor, seq=0)
        vn = Vertex(anchor, seq=0)
        for _ in range(4):
            fresh = [_wrect(rng, anchor) for _ in range(rng.randrange(0, 5))]
            vp.neighbors.extend(fresh)
            vn.neighbors.extend(fresh)
            assert local_plane_sweep_cached(
                vp, backend="python"
            ) == local_plane_sweep_cached(vn, backend="numpy")
    finally:
        vector.VECTOR_SWEEP_MIN = old
