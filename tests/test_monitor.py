"""Tests for the monitor base class contract and statistics."""

from __future__ import annotations

import pytest

from conftest import make_objects
from repro.core.ag2 import AG2Monitor
from repro.core.monitor import MonitorStats
from repro.core.naive import NaiveMonitor
from repro.errors import InvalidParameterError
from repro.window import CountWindow


class TestMonitorContract:
    def test_rect_validation(self):
        with pytest.raises(InvalidParameterError):
            AG2Monitor(0, 10, CountWindow(5))
        with pytest.raises(InvalidParameterError):
            AG2Monitor(10, -1, CountWindow(5))

    def test_result_property_tracks_last_update(self):
        m = NaiveMonitor(10, 10, CountWindow(5))
        assert m.result.is_empty
        r1 = m.update(make_objects(2))
        assert m.result is r1
        r2 = m.update(make_objects(2, seed=1))
        assert m.result is r2

    def test_update_counts(self):
        m = AG2Monitor(10, 10, CountWindow(100))
        m.update(make_objects(5))
        m.update(make_objects(3, seed=2))
        assert m.stats.updates == 2
        assert m.stats.objects_seen == 8

    def test_ingest_equivalent_to_update_for_state(self):
        """After ingest, the next update answers as if everything had
        gone through update()."""
        objs = make_objects(20, seed=4, domain=50.0)
        a = AG2Monitor(10, 10, CountWindow(50))
        a.ingest(objs[:15])
        ra = a.update(objs[15:])
        b = AG2Monitor(10, 10, CountWindow(50))
        for pos in range(0, 20, 5):
            rb = b.update(objs[pos : pos + 5])
        assert ra.best_weight == pytest.approx(rb.best_weight)

    def test_apply_external_delta(self):
        m = NaiveMonitor(10, 10, CountWindow(5))
        window = m.window
        delta = window.push(make_objects(3))
        result = m.apply(delta)
        assert result.window_size == 3

    def test_rect_dimensions_can_differ(self):
        m = NaiveMonitor(4, 20, CountWindow(5))
        objs = make_objects(1, domain=50.0)
        result = m.update(objs)
        assert result.best.rect.width <= 4
        assert result.best.rect.height <= 20


class TestMonitorStats:
    def test_snapshot_is_independent(self):
        s = MonitorStats(local_sweeps=3)
        snap = s.snapshot()
        s.local_sweeps = 10
        assert snap.local_sweeps == 3

    def test_reset(self):
        s = MonitorStats(updates=5, overlap_tests=7, cells_pruned=2)
        s.reset()
        assert s.updates == 0
        assert s.overlap_tests == 0
        assert s.cells_pruned == 0
