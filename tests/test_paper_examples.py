"""The paper's own worked examples, reproduced against this library.

The paper illustrates its structures with a running example — six
rectangles r1..r6 (Figures 3-4), their edge and neighbour sets
(Table 2), the incremental insertion of r6 (Example 4.2) and the aG2
bound arithmetic (Example 5.2 / Equations 3-5).  These tests build a
configuration realising exactly the paper's overlap graph and assert
that our structures produce the paper's tables.

Overlap graph from Figure 4 / Table 2 (edges old → new)::

    r1 → r2, r1 → r3, r2 → r3, r3 → r4, r4 → r5, r5 → r6
"""

from __future__ import annotations

import pytest

from repro.core.ag2 import AG2Monitor
from repro.core.g2 import G2Monitor
from repro.core.geometry import Rect
from repro.core.graph import CellGraph
from repro.core.naive import NaiveMonitor
from repro.core.objects import SpatialObject, WeightedRect
from repro.window import CountWindow

# A concrete placement realising Figure 4's graph: a left-to-right
# chain where r1 overlaps r2 and r3; r2 overlaps r3; then r3-r4, r4-r5,
# r5-r6 overlap pairwise only.  All rectangles are 4 wide x 2 tall.
_PLACEMENT = {
    # name: (x1, y1)
    "r1": (0.0, 0.0),
    "r2": (1.0, 1.0),    # overlaps r1
    "r3": (2.0, 0.5),    # overlaps r1 and r2
    "r4": (5.5, 0.0),    # overlaps r3 only ([5.5,6) x [0.5,2))
    "r5": (9.0, 0.5),    # overlaps r4 only
    "r6": (12.5, 0.0),   # overlaps r5 only
}
_W, _H = 4.0, 2.0


def paper_rects(weights: dict[str, float] | None = None) -> dict[str, WeightedRect]:
    weights = weights or {}
    rects = {}
    for name, (x1, y1) in _PLACEMENT.items():
        w = weights.get(name, 1.0)
        obj = SpatialObject(x=x1 + _W / 2, y=y1 + _H / 2, weight=w)
        rects[name] = WeightedRect(
            rect=Rect(x1, y1, x1 + _W, y1 + _H), weight=w, obj=obj
        )
    return rects


def test_placement_realises_figure_4_overlaps():
    """Sanity: the placement's overlap relation is exactly Figure 4's."""
    rects = paper_rects()
    expected_pairs = {
        ("r1", "r2"), ("r1", "r3"), ("r2", "r3"),
        ("r3", "r4"), ("r4", "r5"), ("r5", "r6"),
    }
    names = list(rects)
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            should = (a, b) in expected_pairs
            assert rects[a].rect.overlaps(rects[b].rect) == should, (a, b)


def test_table_2_edge_and_neighbor_sets():
    """Table 2: edges are held by the older endpoint; N(ri) follows."""
    rects = paper_rects()
    graph = CellGraph()
    vertices = {}
    for seq, name in enumerate(_PLACEMENT):
        vertices[name], _ = graph.connect(rects[name], seq)
    neighbor_names = {
        name: {nb.oid for nb in vertices[name].neighbors}
        for name in _PLACEMENT
    }
    oid = {name: rects[name].oid for name in _PLACEMENT}
    assert neighbor_names["r1"] == {oid["r2"], oid["r3"]}
    assert neighbor_names["r2"] == {oid["r3"]}
    assert neighbor_names["r3"] == {oid["r4"]}
    assert neighbor_names["r4"] == {oid["r5"]}
    assert neighbor_names["r5"] == {oid["r6"]}
    assert neighbor_names["r6"] == set()


def test_example_4_2_incremental_insertion_of_r6():
    """Example 4.2: when r6 arrives, only (r5, r6) is inserted and only
    s5 is recomputed — one local sweep, nothing else touched."""
    monitor = G2Monitor(_W, _H, CountWindow(10), cell_size=100.0)
    objs = {name: wr.obj for name, wr in paper_rects().items()}
    for name in ("r1", "r2", "r3", "r4", "r5"):
        monitor.update([objs[name]])
    before = monitor.stats.local_sweeps
    monitor.update([objs["r6"]])
    assert monitor.stats.local_sweeps == before + 1


def test_figure_3_interval_weights_via_sweep():
    """§3's sweep illustration: with unit weights, the best space of
    the r1-r2-r3 cluster stacks weight 3 (intervals AB=1, BC=2, CD=3)."""
    rects = paper_rects()
    cluster = [rects["r1"], rects["r2"], rects["r3"]]
    from repro.core.planesweep import plane_sweep_max

    region = plane_sweep_max(cluster)
    assert region.weight == 3.0
    # the triple-overlap is [2,4) x [1,2): the region lies inside it
    assert Rect(2.0, 1.0, 4.0, 2.0).contains_rect(region.rect)


def test_example_5_2_equation_5_cell_bound_arithmetic():
    """Example 5.2 / Figure 6: mapping new rectangles to a cell raises
    c.w by their weights (Equation 5); the overlap computation then
    tightens it back to the max vertex bound (Equation 4)."""
    monitor = AG2Monitor(_W, _H, CountWindow(20), cell_size=1000.0)
    rects = paper_rects()
    # establish the cluster: best space weight 3 anchored at r1
    monitor.update([rects[n].obj for n in ("r1", "r2", "r3")])
    assert monitor.result.best_weight == 3.0
    (cell,) = monitor._cells.values()
    settled_cw = cell.cw
    assert settled_cw == pytest.approx(3.0)
    # Equation (5): three unit-weight arrivals mapped (pending) to the
    # same huge cell raise its bound by exactly their total weight —
    # Figure 6(b)'s c.w = 4 → 7 step, with our numbers 3 → 6
    far = [
        SpatialObject(x=100.0 + 10 * i, y=100.0, weight=1.0) for i in range(3)
    ]
    monitor._map_arrivals(  # the pending phase, before any pruning
        type("D", (), {"arrived": far, "expired": ()})()
    )
    (cell,) = monitor._cells.values()
    assert cell.cw == pytest.approx(settled_cw + 3.0)
    assert len(cell.pending) == 3
    # ...and a full update settles every bound back to Property 4 form
    monitor.update([])
    monitor.check_invariants()


def test_table_3_style_si_weights():
    """Table 3's structure: si is anchored at ri over NEWER neighbours
    only — verify with the weighted variant of the running example."""
    weights = {"r1": 10.0, "r2": 30.0, "r3": 15.0, "r4": 25.0, "r5": 20.0, "r6": 5.0}
    rects = paper_rects(weights)
    graph = CellGraph()
    vertices = {}
    for seq, name in enumerate(_PLACEMENT):
        vertices[name], _ = graph.connect(rects[name], seq)
    from repro.core.planesweep import local_plane_sweep

    si = {
        name: local_plane_sweep(rects[name], vertices[name].neighbors).weight
        for name in _PLACEMENT
    }
    # r1's anchored space can stack r1+r2+r3 = 55, exactly Table 3's s1
    assert si["r1"] == pytest.approx(55.0)
    # r2's space stacks r2+r3 = 45 (r1 is OLDER: not in N(r2))
    assert si["r2"] == pytest.approx(45.0)
    # r3 only reaches the newer r4: 15 + 25 = 40
    assert si["r3"] == pytest.approx(40.0)
    # r4+r5 = 45, r5+r6 = 25, r6 alone = 5 — all as in Table 3
    assert si["r4"] == pytest.approx(45.0)
    assert si["r5"] == pytest.approx(25.0)
    assert si["r6"] == pytest.approx(5.0)


def test_running_example_monitors_agree_end_to_end():
    """Stream the whole running example through all monitors."""
    weights = {"r1": 10.0, "r2": 30.0, "r3": 15.0, "r4": 25.0, "r5": 20.0, "r6": 5.0}
    rects = paper_rects(weights)
    monitors = [
        NaiveMonitor(_W, _H, CountWindow(6)),
        G2Monitor(_W, _H, CountWindow(6)),
        AG2Monitor(_W, _H, CountWindow(6)),
    ]
    for name in _PLACEMENT:
        results = [m.update([rects[name].obj]) for m in monitors]
        best = results[0].best_weight
        assert all(r.best_weight == pytest.approx(best) for r in results)
    # final answer: s1 = r1+r2+r3 = 55 (Table 3's maximum)
    assert monitors[0].result.best_weight == pytest.approx(55.0)
