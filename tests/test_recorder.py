"""Tests for result recording and hotspot-change detection."""

from __future__ import annotations

import math

import pytest

from repro.core.geometry import Rect
from repro.core.spaces import MaxRSResult, Region
from repro.engine import ResultChange, ResultRecorder
from repro.errors import InvalidParameterError


def result_at(x, y, weight, tick=0) -> MaxRSResult:
    region = Region(rect=Rect(x - 1, y - 1, x + 1, y + 1), weight=weight)
    return MaxRSResult.single(region, tick=tick)


class TestValidation:
    def test_thresholds_non_negative(self):
        with pytest.raises(InvalidParameterError):
            ResultRecorder(move_threshold=-1)
        with pytest.raises(InvalidParameterError):
            ResultRecorder(weight_threshold=-0.1)
        with pytest.raises(InvalidParameterError):
            ResultRecorder(history=0)


class TestChangeDetection:
    def test_first_result_is_appearance(self):
        rec = ResultRecorder()
        change = rec.record(result_at(5, 5, 10.0, tick=1))
        assert change is not None
        assert change.appeared
        assert not change.disappeared

    def test_no_change_when_stable(self):
        rec = ResultRecorder(move_threshold=1.0, weight_threshold=0.5)
        rec.record(result_at(5, 5, 10.0))
        change = rec.record(result_at(5.2, 5.0, 10.4))  # tiny drift
        assert change is None

    def test_move_detected(self):
        rec = ResultRecorder(move_threshold=2.0, weight_threshold=math.inf)
        rec.record(result_at(0, 0, 10.0))
        change = rec.record(result_at(10, 0, 10.0, tick=2))
        assert change is not None
        assert change.moved_distance == pytest.approx(10.0)
        assert change.tick == 2

    def test_weight_change_detected(self):
        rec = ResultRecorder(move_threshold=math.inf, weight_threshold=0.2)
        rec.record(result_at(0, 0, 10.0))
        change = rec.record(result_at(0, 0, 15.0))
        assert change is not None
        assert change.weight_ratio == pytest.approx(0.5)

    def test_disappearance(self):
        rec = ResultRecorder()
        rec.record(result_at(0, 0, 10.0))
        change = rec.record(MaxRSResult(tick=3))
        assert change is not None
        assert change.disappeared

    def test_empty_to_empty_is_no_change(self):
        rec = ResultRecorder()
        assert rec.record(MaxRSResult()) is None

    def test_zero_thresholds_flag_everything(self):
        rec = ResultRecorder()
        rec.record(result_at(0, 0, 10.0))
        assert rec.record(result_at(0.001, 0, 10.0)) is not None


class TestListeners:
    def test_listener_fired_on_change(self):
        rec = ResultRecorder()
        seen: list[ResultChange] = []
        rec.on_change(seen.append)
        rec.record(result_at(0, 0, 5.0))
        rec.record(result_at(50, 50, 5.0))
        assert len(seen) == 2
        assert seen[1].moved_distance > 0

    def test_listener_not_fired_when_stable(self):
        rec = ResultRecorder(move_threshold=100.0, weight_threshold=10.0)
        count = [0]
        rec.on_change(lambda _c: count.__setitem__(0, count[0] + 1))
        rec.record(result_at(0, 0, 5.0))  # appearance fires
        rec.record(result_at(1, 1, 5.0))
        rec.record(result_at(2, 2, 5.0))
        assert count[0] == 1


class TestHistory:
    def test_bounded_history(self):
        rec = ResultRecorder(history=3)
        for i in range(10):
            rec.record(result_at(i, 0, 1.0, tick=i))
        assert len(rec.history) == 3
        assert rec.latest.tick == 9

    def test_weight_series(self):
        rec = ResultRecorder()
        for w in (1.0, 2.0, 3.0):
            rec.record(result_at(0, 0, w))
        assert rec.weight_series() == [1.0, 2.0, 3.0]

    def test_stability_metric(self):
        rec = ResultRecorder(move_threshold=1000.0, weight_threshold=1000.0)
        rec.record(result_at(0, 0, 1.0))  # appearance counts as change
        for _ in range(9):
            rec.record(result_at(0, 0, 1.0))
        assert rec.stability() == pytest.approx(0.9)

    def test_latest_none_when_empty(self):
        assert ResultRecorder().latest is None
        assert ResultRecorder().stability() == 1.0
