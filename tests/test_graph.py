"""Unit tests for the per-cell dynamic overlap graph."""

from __future__ import annotations

from repro.core.geometry import Rect
from repro.core.graph import CellGraph, Vertex
from repro.core.objects import SpatialObject, WeightedRect


def wr(x1, y1, x2, y2, w=1.0) -> WeightedRect:
    obj = SpatialObject(x=(x1 + x2) / 2, y=(y1 + y2) / 2, weight=w)
    return WeightedRect(rect=Rect(x1, y1, x2, y2), weight=w, obj=obj)


class TestVertex:
    def test_initial_state(self):
        rect = wr(0, 0, 4, 4, w=2.0)
        v = Vertex(rect, seq=7)
        assert v.seq == 7
        assert v.neighbors == []
        assert v.space.weight == 2.0
        assert v.space.rect == rect.rect
        assert v.space.anchor_oid == rect.oid
        assert v.upper == 2.0
        assert not v.dirty
        assert v.swept_degree == 0


class TestCellGraph:
    def test_connect_builds_edges_old_to_new(self):
        g = CellGraph()
        a = wr(0, 0, 4, 4, w=1.0)
        b = wr(2, 2, 6, 6, w=2.0)
        va, _ = g.connect(a, 0)
        vb, touched = g.connect(b, 1)
        # edge held by the OLDER vertex (Definition 5)
        assert touched == [va]
        assert va.neighbors == [b]
        assert vb.neighbors == []
        assert va.dirty
        assert va.upper == 3.0  # Equation (3)

    def test_connect_skips_non_overlapping(self):
        g = CellGraph()
        g.connect(wr(0, 0, 2, 2), 0)
        _, touched = g.connect(wr(10, 10, 12, 12), 1)
        assert touched == []

    def test_connect_touching_is_no_edge(self):
        g = CellGraph()
        va, _ = g.connect(wr(0, 0, 2, 2), 0)
        g.connect(wr(2, 0, 4, 2), 1)
        assert va.neighbors == []

    def test_multiple_older_vertices_gain_edges(self):
        g = CellGraph()
        va, _ = g.connect(wr(0, 0, 4, 4), 0)
        vb, _ = g.connect(wr(1, 1, 5, 5), 1)
        _, touched = g.connect(wr(2, 2, 3, 3, w=5.0), 2)
        assert set(id(v) for v in touched) == {id(va), id(vb)}
        assert va.upper == 1.0 + 1.0 + 5.0
        assert vb.upper == 1.0 + 5.0

    def test_expire_upto_pops_front_only(self):
        g = CellGraph()
        for i in range(5):
            g.connect(wr(i * 10, 0, i * 10 + 2, 2), i)
        removed = g.expire_upto(2)
        assert [v.seq for v in removed] == [0, 1, 2]
        assert [v.seq for v in g.iter_vertices()] == [3, 4]

    def test_expire_nothing(self):
        g = CellGraph()
        g.connect(wr(0, 0, 1, 1), 5)
        assert g.expire_upto(4) == []
        assert len(g) == 1

    def test_expired_vertices_not_referenced_by_survivors(self):
        """Property 3: edges point old→new, so removing the oldest
        leaves every survivor's neighbour list untouched and valid."""
        g = CellGraph()
        g.connect(wr(0, 0, 4, 4), 0)
        vb, _ = g.connect(wr(2, 2, 6, 6), 1)
        vc, _ = g.connect(wr(3, 3, 7, 7), 2)
        g.expire_upto(0)
        survivors = list(g.iter_vertices())
        assert [v.seq for v in survivors] == [1, 2]
        # vb's neighbours reference only NEWER rectangles, never seq 0
        assert all(nb.oid == vc.wr.oid for nb in vb.neighbors)

    def test_append_raw(self):
        g = CellGraph()
        v = Vertex(wr(0, 0, 1, 1), seq=3)
        g.append_raw(v)
        assert list(g.iter_vertices()) == [v]

    def test_len(self):
        g = CellGraph()
        assert len(g) == 0
        g.connect(wr(0, 0, 1, 1), 0)
        assert len(g) == 1
