"""Sanity tests for the brute-force oracles themselves."""

from __future__ import annotations

import pytest

from repro.core.bruteforce import (
    brute_force_anchored_best,
    brute_force_max,
    brute_force_topk_anchored,
    cover_weight,
)
from repro.core.geometry import Rect
from repro.core.objects import SpatialObject, WeightedRect
from repro.errors import InvalidParameterError


def wr(x1, y1, x2, y2, w=1.0) -> WeightedRect:
    obj = SpatialObject(x=(x1 + x2) / 2, y=(y1 + y2) / 2, weight=w)
    return WeightedRect(rect=Rect(x1, y1, x2, y2), weight=w, obj=obj)


class TestCoverWeight:
    def test_counts_strict_interior(self):
        rects = [wr(0, 0, 2, 2, w=1.0), wr(1, 1, 3, 3, w=2.0)]
        assert cover_weight(rects, 1.5, 1.5) == 3.0
        assert cover_weight(rects, 0.5, 0.5) == 1.0
        assert cover_weight(rects, 2.0, 1.5) == 2.0  # boundary of first
        assert cover_weight(rects, 5, 5) == 0.0


class TestBruteForceMax:
    def test_empty(self):
        assert brute_force_max([]) is None

    def test_degenerate_only(self):
        assert brute_force_max([wr(0, 0, 0, 3)]) is None

    def test_single(self):
        weight, (x, y) = brute_force_max([wr(0, 0, 2, 2, w=4.0)])
        assert weight == 4.0
        assert Rect(0, 0, 2, 2).contains_point(x, y)

    def test_pair_overlap(self):
        weight, point = brute_force_max([wr(0, 0, 4, 4), wr(2, 2, 6, 6)])
        assert weight == 2.0
        assert Rect(2, 2, 4, 4).contains_point(*point)

    def test_point_achieves_weight(self):
        rects = [wr(0, 0, 4, 4, w=1.5), wr(1, 2, 5, 6, w=2.5), wr(3, 3, 7, 7, w=1)]
        weight, (x, y) = brute_force_max(rects)
        assert cover_weight(rects, x, y) == pytest.approx(weight)


class TestAnchoredOracles:
    def test_anchored_best_no_neighbors(self):
        assert brute_force_anchored_best(wr(0, 0, 2, 2, w=3.0), []) == 3.0

    def test_anchored_best_clips(self):
        anchor = wr(0, 0, 4, 4, w=1.0)
        neighbors = [wr(3, 3, 10, 10, w=5.0)]
        assert brute_force_anchored_best(anchor, neighbors) == 6.0

    def test_topk_anchored_order_and_ids(self):
        rects = [
            wr(0, 0, 4, 4, w=1.0),    # oldest: anchors the pair below
            wr(2, 2, 6, 6, w=2.0),
            wr(20, 0, 24, 4, w=5.0),  # lone heavy rect
        ]
        top = brute_force_topk_anchored(rects, 3)
        weights = [w for w, _oid in top]
        assert weights == [5.0, 3.0, 2.0]
        assert top[0][1] == rects[2].oid
        assert top[1][1] == rects[0].oid

    def test_topk_anchored_k_validation(self):
        with pytest.raises(InvalidParameterError):
            brute_force_topk_anchored([], 0)

    def test_topk_respects_age_direction(self):
        # the NEWER rect of an overlapping pair anchors only itself
        old = wr(0, 0, 4, 4, w=1.0)
        new = wr(2, 2, 6, 6, w=2.0)
        top = brute_force_topk_anchored([old, new], 2)
        assert top == [(3.0, old.oid), (2.0, new.oid)]
