"""Tests for the observability subsystem (repro.obs)."""

from __future__ import annotations

import io
import json

import pytest

from repro.errors import InvalidParameterError
from repro.obs import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    Metrics,
    MetricsSnapshot,
    NullMetrics,
    snapshot_rows,
    snapshots_from_dict,
    snapshots_to_dict,
    write_metrics_csv,
    write_metrics_json,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("hits")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)

    def test_negative_increment_rejected(self):
        c = Counter("hits")
        with pytest.raises(InvalidParameterError):
            c.inc(-1)

    def test_reset(self):
        c = Counter("hits")
        c.inc(7)
        c.reset()
        assert c.value == 0.0


class TestGauge:
    def test_set_and_move(self):
        g = Gauge("level")
        g.set(5)
        g.inc(2)
        g.dec(3)
        assert g.value == pytest.approx(4.0)

    def test_reset(self):
        g = Gauge("level")
        g.set(9)
        g.reset()
        assert g.value == 0.0


class TestHistogram:
    def test_streaming_summary(self):
        h = Histogram("ms")
        for v in (1.0, 2.0, 3.0, 10.0):
            h.observe(v)
        assert h.count == 4
        assert h.total == pytest.approx(16.0)
        assert h.minimum == 1.0
        assert h.maximum == 10.0
        assert h.mean == pytest.approx(4.0)

    def test_empty_summary_is_zeroed(self):
        h = Histogram("ms")
        assert h.count == 0
        assert h.mean == 0.0
        assert h.minimum == 0.0
        assert h.maximum == 0.0

    def test_buckets_are_cumulative(self):
        h = Histogram("ms", buckets=(1.0, 5.0, 10.0))
        for v in (0.5, 1.0, 2.0, 7.0, 50.0):
            h.observe(v)
        s = h.summary()
        assert s["le_1"] == 2.0  # 0.5, 1.0 (upper bound inclusive)
        assert s["le_5"] == 3.0
        assert s["le_10"] == 4.0
        assert s["le_inf"] == 5.0

    def test_bucket_validation(self):
        with pytest.raises(InvalidParameterError):
            Histogram("ms", buckets=(5.0, 1.0))
        with pytest.raises(InvalidParameterError):
            Histogram("ms", buckets=(1.0, 1.0))

    def test_reset(self):
        h = Histogram("ms", buckets=(1.0,))
        h.observe(0.5)
        h.reset()
        assert h.count == 0
        assert h.summary()["le_1"] == 0.0


class TestMetricsRegistry:
    def test_instruments_are_get_or_create(self):
        m = Metrics()
        assert m.counter("a") is m.counter("a")
        assert m.gauge("g") is m.gauge("g")
        assert m.histogram("h") is m.histogram("h")

    def test_scopes_nest_and_flatten(self):
        m = Metrics()
        m.scope("g2").inc("cells_visited", 3)
        m.scope("g2").scope("window").inc("insertions", 10)
        snap = m.snapshot()
        assert snap.counters["g2.cells_visited"] == 3.0
        assert snap.counters["g2.window.insertions"] == 10.0
        assert m.scope("g2") is m.scope("g2")

    def test_conveniences(self):
        m = Metrics()
        m.inc("n")
        m.set_gauge("level", 4.0)
        m.observe("ms", 2.0)
        snap = m.snapshot()
        assert snap.counters["n"] == 1.0
        assert snap.gauges["level"] == 4.0
        assert snap.histograms["ms"]["count"] == 1.0

    def test_reset_zeroes_but_keeps_structure(self):
        m = Metrics()
        m.scope("a").inc("x", 5)
        m.observe("h", 1.0)
        m.reset()
        snap = m.snapshot()
        assert snap.counters["a.x"] == 0.0
        assert snap.histograms["h"]["count"] == 0.0
        assert "a" in m.scopes()

    def test_enabled_flag(self):
        assert Metrics().enabled
        assert not NULL_METRICS.enabled


class TestSnapshotDelta:
    def test_counter_and_histogram_delta(self):
        m = Metrics()
        m.inc("c", 5)
        m.observe("h", 2.0)
        before = m.snapshot()
        m.inc("c", 3)
        m.observe("h", 4.0)
        delta = m.snapshot().delta(before)
        assert delta.counters["c"] == 3.0
        assert delta.histograms["h"]["count"] == 1.0
        assert delta.histograms["h"]["sum"] == pytest.approx(4.0)
        # min/max/mean are not delta-recoverable and must be omitted
        assert "mean" not in delta.histograms["h"]

    def test_gauges_keep_latest_level(self):
        m = Metrics()
        m.set_gauge("size", 10)
        before = m.snapshot()
        m.set_gauge("size", 7)
        delta = m.snapshot().delta(before)
        assert delta.gauges["size"] == 7.0

    def test_new_counter_delta_from_zero(self):
        m = Metrics()
        before = m.snapshot()
        m.inc("fresh", 2)
        delta = m.snapshot().delta(before)
        assert delta.counters["fresh"] == 2.0


class TestNullMetrics:
    def test_all_operations_are_noops(self):
        n = NullMetrics()
        n.inc("x", 100)
        n.set_gauge("g", 5)
        n.observe("h", 1.0)
        n.counter("x").inc(10)
        n.gauge("g").set(3)
        n.histogram("h").observe(2.0)
        snap = n.snapshot()
        assert snap.counters == {}
        assert snap.gauges == {}
        assert snap.histograms == {}

    def test_scope_returns_self(self):
        assert NULL_METRICS.scope("anything") is NULL_METRICS

    def test_shared_null_instruments_hold_no_state(self):
        a = NULL_METRICS.counter("a")
        b = NULL_METRICS.counter("b")
        assert a is b
        a.inc(1000)
        assert a.value == 0.0


class TestSnapshotRoundTrip:
    def test_json_round_trip(self):
        m = Metrics()
        m.scope("mon").inc("c", 4)
        m.scope("mon").observe("h", 1.5)
        m.set_gauge("size", 3)
        snap = m.snapshot()
        rebuilt = MetricsSnapshot.from_dict(
            json.loads(json.dumps(snap.to_dict()))
        )
        assert rebuilt == snap

    def test_snapshots_mapping_round_trip(self):
        m1, m2 = Metrics(), Metrics()
        m1.inc("a", 1)
        m2.inc("b", 2)
        snaps = {"x": m1.snapshot(), "y": m2.snapshot()}
        doc = json.loads(json.dumps(snapshots_to_dict(snaps)))
        assert snapshots_from_dict(doc) == snaps


class TestExport:
    def _snaps(self):
        m = Metrics()
        m.inc("c", 2)
        m.set_gauge("g", 1)
        m.observe("h", 3.0)
        return {"mon": m.snapshot()}

    def test_snapshot_rows_flatten_everything(self):
        rows = snapshot_rows(self._snaps())
        kinds = {(r["kind"], r["metric"]) for r in rows}
        assert ("counter", "c") in kinds
        assert ("gauge", "g") in kinds
        assert ("histogram", "h.count") in kinds

    def test_write_json(self, tmp_path):
        path = tmp_path / "m.json"
        write_metrics_json(str(path), snapshots_to_dict(self._snaps()))
        data = json.loads(path.read_text())
        assert data["mon"]["counters"]["c"] == 2.0

    def test_write_json_to_stream(self):
        buf = io.StringIO()
        write_metrics_json(buf, {"k": 1})
        assert json.loads(buf.getvalue()) == {"k": 1}

    def test_write_csv(self, tmp_path):
        path = tmp_path / "m.csv"
        write_metrics_csv(str(path), self._snaps())
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "monitor,kind,metric,value"
        assert any(line.startswith("mon,counter,c,") for line in lines)
