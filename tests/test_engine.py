"""Tests for the continuous-query engine and timing statistics."""

from __future__ import annotations

import json
import warnings

import pytest

from conftest import make_objects
from repro.core.ag2 import AG2Monitor
from repro.core.naive import NaiveMonitor
from repro.engine import StreamEngine, TimingStats
from repro.overload import BackpressureQueue
from repro.errors import (
    EmptyWindowError,
    InvalidParameterError,
    StreamExhaustedWarning,
)
from repro.obs import Metrics, snapshots_from_dict
from repro.streams import UniformStream
from repro.window import CountWindow


def engine(batch_size=10, capacity=50, monitors=None) -> StreamEngine:
    monitors = monitors or {
        "ag2": AG2Monitor(20, 20, CountWindow(capacity)),
    }
    return StreamEngine(
        monitors, UniformStream(domain=200.0, seed=1), batch_size=batch_size
    )


class TestTimingStats:
    def test_empty_raises(self):
        stats = TimingStats()
        with pytest.raises(EmptyWindowError):
            _ = stats.mean

    def test_basic_statistics(self):
        stats = TimingStats()
        for s in (0.010, 0.020, 0.030, 0.040):
            stats.record(s)
        assert stats.mean == pytest.approx(0.025)
        assert stats.mean_ms == pytest.approx(25.0)
        assert stats.median == pytest.approx(0.025)
        assert stats.minimum == 0.010
        assert stats.maximum == 0.040
        assert stats.total == pytest.approx(0.100)
        assert len(stats) == 4

    def test_median_odd(self):
        stats = TimingStats(samples=[0.3, 0.1, 0.2])
        assert stats.median == pytest.approx(0.2)

    def test_percentiles(self):
        stats = TimingStats(samples=[float(i) for i in range(1, 101)])
        assert stats.percentile(0) == 1.0
        assert stats.percentile(100) == 100.0
        assert stats.percentile(50) == pytest.approx(50.5)

    def test_percentile_validation(self):
        stats = TimingStats(samples=[1.0])
        with pytest.raises(ValueError):
            stats.percentile(101)

    def test_stdev(self):
        stats = TimingStats(samples=[1.0, 3.0])
        assert stats.stdev == pytest.approx(2.0 ** 0.5)
        assert TimingStats(samples=[1.0]).stdev == 0.0

    def test_summary_keys(self):
        stats = TimingStats(samples=[0.001, 0.002])
        summary = stats.summary()
        assert set(summary) == {
            "updates", "mean_ms", "median_ms", "p95_ms",
            "min_ms", "max_ms", "total_ms",
        }


class TestStreamEngine:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            StreamEngine({}, UniformStream(seed=1), 10)
        with pytest.raises(InvalidParameterError):
            engine(batch_size=0)

    def test_prime_fills_window_untimed(self):
        e = engine(capacity=30)
        e.prime(30)
        monitor = e.monitors["ag2"]
        assert len(monitor.window) == 30

    def test_run_produces_timings(self):
        e = engine()
        e.prime(20)
        report = e.run(4)
        assert report.batches == 4
        assert len(report.timings["ag2"]) == 4
        assert report.mean_ms("ag2") > 0
        assert not report.final_results["ag2"].is_empty

    def test_monitors_see_identical_batches(self):
        mons = {
            "a": AG2Monitor(20, 20, CountWindow(40)),
            "b": NaiveMonitor(20, 20, CountWindow(40)),
        }
        e = engine(monitors=mons)
        e.prime(40)
        report = e.run(5)
        wa = report.final_results["a"].best_weight
        wb = report.final_results["b"].best_weight
        assert wa == pytest.approx(wb)

    def test_track_weights(self):
        e = engine()
        report = e.run(3, track_weights=True)
        assert len(report.weight_history["ag2"]) == 3

    def test_run_stops_on_exhausted_source(self):
        mons = {"m": NaiveMonitor(5, 5, CountWindow(10))}
        finite = iter(UniformStream(domain=50.0, seed=2).take(15))
        e = StreamEngine(mons, finite, batch_size=10)
        with pytest.warns(StreamExhaustedWarning):
            report = e.run(5)
        assert report.batches == 2  # 10 + 5, then exhausted

    def test_report_table_renders(self):
        e = engine()
        report = e.run(2)
        text = report.table()
        assert "ag2" in text and "mean ms" in text

    def test_run_validation(self):
        with pytest.raises(InvalidParameterError):
            engine().run(0)

    def test_prime_validation(self):
        with pytest.raises(InvalidParameterError):
            engine().prime(-1)


class TestSourceExhaustion:
    """A dry source must be surfaced, not silently absorbed (both paths)."""

    def _finite_engine(self, objects, batch_size=10):
        mons = {"m": NaiveMonitor(5, 5, CountWindow(50))}
        finite = iter(UniformStream(domain=50.0, seed=2).take(objects))
        return StreamEngine(mons, finite, batch_size=batch_size)

    def test_prime_short_fill_warns_and_reports_count(self):
        e = self._finite_engine(12)
        with pytest.warns(StreamExhaustedWarning, match="12 of 40"):
            primed = e.prime(40)
        assert primed == 12
        assert len(e.monitors["m"].window) == 12

    def test_prime_full_fill_is_silent(self):
        e = self._finite_engine(30)
        with warnings.catch_warnings():
            warnings.simplefilter("error", StreamExhaustedWarning)
            assert e.prime(20) == 20

    def test_run_exhaustion_sets_flag_and_warns(self):
        e = self._finite_engine(25)
        # 10 + 10 + a final partial batch of 5, then the source is dry
        with pytest.warns(StreamExhaustedWarning, match="3 of 5"):
            report = e.run(5)
        assert report.source_exhausted
        assert report.batches == 3
        assert report.requested_batches == 5

    def test_full_run_is_not_flagged(self):
        e = self._finite_engine(100)
        with warnings.catch_warnings():
            warnings.simplefilter("error", StreamExhaustedWarning)
            report = e.run(3)
        assert not report.source_exhausted
        assert report.batches == report.requested_batches == 3


class TestEngineMetrics:
    """Metrics wiring: scopes, per-batch deltas, export round-trip."""

    def _observed_engine(self):
        mons = {
            "ag2": AG2Monitor(20, 20, CountWindow(40)),
            "naive": NaiveMonitor(20, 20, CountWindow(40)),
        }
        registry = Metrics()
        e = StreamEngine(
            mons, UniformStream(domain=200.0, seed=3), 10, metrics=registry
        )
        return e, registry

    def test_report_carries_snapshots_per_monitor(self):
        e, _ = self._observed_engine()
        e.prime(40)
        report = e.run(3)
        assert set(report.metrics) == {"ag2", "naive"}
        # priming is one (untimed) ingest, then 3 timed updates
        assert report.metrics["ag2"].counters["updates"] == 4
        assert report.metrics["ag2"].counters["window.insertions"] == 70

    def test_update_ms_histogram_matches_batches(self):
        e, _ = self._observed_engine()
        report = e.run(4)
        for name in ("ag2", "naive"):
            assert report.metrics[name].histograms["update_ms"]["count"] == 4

    def test_batch_metrics_are_deltas(self):
        e, _ = self._observed_engine()
        e.prime(40)
        report = e.run(3)
        deltas = report.batch_metrics["naive"]
        assert len(deltas) == 3
        for snap in deltas:
            assert snap.counters["updates"] == 1
            assert snap.counters["full_sweeps"] == 1
        total = sum(s.counters["objects_swept"] for s in deltas)
        assert total == report.metrics["naive"].counters["objects_swept"]

    def test_without_registry_report_has_no_metrics(self):
        report = engine().run(2)
        assert report.metrics == {}
        assert report.batch_metrics == {}
        assert "no metrics recorded" in report.metrics_table()

    def test_to_dict_round_trip(self):
        e, _ = self._observed_engine()
        report = e.run(2)
        doc = json.loads(json.dumps(report.to_dict()))
        assert doc["batches"] == 2
        assert not doc["source_exhausted"]
        rebuilt = snapshots_from_dict(doc["metrics"])
        assert rebuilt == report.metrics
        assert len(doc["batch_metrics"]["ag2"]) == 2

    def test_metrics_table_renders_counters(self):
        e, _ = self._observed_engine()
        report = e.run(2)
        text = report.metrics_table(["updates", "cells_visited"])
        assert "updates" in text and "ag2" in text and "naive" in text
        assert "cells_visited" in report.counter_names()


class TestReportErrors:
    def test_unknown_monitor_names_the_attached_ones(self):
        report = engine().run(2)
        with pytest.raises(InvalidParameterError, match="report covers: ag2"):
            report.mean_ms("gg2")
        with pytest.raises(InvalidParameterError, match="'gg2'"):
            report.p95_ms("gg2")

    def test_empty_report_says_none(self):
        from repro.engine.engine import EngineReport

        report = EngineReport(
            batches=0, batch_size=1, timings={}, final_results={}
        )
        with pytest.raises(InvalidParameterError, match="<none>"):
            report.mean_ms("ag2")


class TestRunOffered:
    def offered_engine(self, policy="shed_oldest", capacity=40, max_batch=20):
        queue = BackpressureQueue(capacity, policy=policy, max_batch=max_batch)
        e = StreamEngine(
            {"ag2": AG2Monitor(20, 20, CountWindow(100))},
            UniformStream(domain=200.0, seed=1),
            batch_size=10,
            backpressure=queue,
        )
        return e, queue

    def test_requires_backpressure_queue(self):
        with pytest.raises(InvalidParameterError, match="BackpressureQueue"):
            engine().run_offered([5, 5])

    def test_negative_arrivals_rejected(self):
        e, _ = self.offered_engine()
        with pytest.raises(InvalidParameterError):
            e.run_offered([5, -1])

    def test_report_carries_the_ledger(self):
        e, _ = self.offered_engine()
        report = e.run_offered([10, 10, 10])
        assert report.batches == 3
        overload = report.overload
        assert overload["policy"] == "shed_oldest"
        assert overload["ledger_closed"]
        assert overload["ledger"]["offered"] == 30
        assert overload["ledger"]["processed"] == 30
        doc = json.loads(json.dumps(report.to_dict()))
        assert doc["overload"]["ledger"]["offered"] == 30

    def test_burst_sheds_and_stays_bounded(self):
        e, queue = self.offered_engine(capacity=15, max_batch=10)
        report = e.run_offered([40, 1, 1])
        assert report.overload["shed"] > 0
        assert report.overload["queue_high_water"] <= 15
        assert report.overload["ledger_closed"]
        assert queue.pending == report.overload["queue_pending"]

    def test_block_policy_holds_over_and_reoffers(self):
        e, queue = self.offered_engine(
            policy="block", capacity=10, max_batch=10
        )
        report = e.run_offered([25, 0, 0, 0])
        # refused objects wait upstream and re-enter on later ticks:
        # nothing is lost, the answer is just later
        assert queue.processed == 25
        assert queue.shed == 0
        assert report.batches == 3
        assert report.overload["ledger_closed"]

    def test_on_batch_hook_sees_results(self):
        e, _ = self.offered_engine()
        seen = []
        e.run_offered(
            [10, 10],
            on_batch=lambda i, batch, results: seen.append(
                (i, len(batch), results["ag2"].best_weight)
            ),
        )
        assert [s[0] for s in seen] == [0, 1]
        assert all(s[1] == 10 for s in seen)
        assert all(s[2] >= 0 for s in seen)

    def test_note_pressure_receives_the_backlog(self):
        class SpyMonitor(NaiveMonitor):
            backlogs: list

            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self.backlogs = []

            def note_pressure(self, backlog):
                self.backlogs.append(backlog)

        spy = SpyMonitor(20, 20, CountWindow(100))
        queue = BackpressureQueue(40, max_batch=10)
        e = StreamEngine(
            {"spy": spy},
            UniformStream(domain=200.0, seed=1),
            batch_size=10,
            backpressure=queue,
        )
        e.run_offered([25, 0, 0])
        assert spy.backlogs == [15, 5, 0]

    def test_exhaustion_drains_backlog_then_warns(self):
        queue = BackpressureQueue(100)
        e = StreamEngine(
            {"naive": NaiveMonitor(20, 20, CountWindow(100))},
            iter(make_objects(30, domain=200.0)),
            batch_size=10,
            backpressure=queue,
        )
        with pytest.warns(StreamExhaustedWarning):
            report = e.run_offered([20, 20, 20])
        assert report.source_exhausted
        assert queue.processed == 30
        assert report.overload["ledger_closed"]
