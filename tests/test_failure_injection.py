"""Failure-injection tests: bad input must not corrupt monitor state.

A long-running monitor will eventually be fed garbage — a NaN
coordinate from a broken GPS, a negative weight from an overflow, an
out-of-order timestamp from a delayed packet.  The contract: invalid
input raises a :class:`ReproError` at the boundary (object
construction or window push) and the monitor keeps answering exactly
as if the bad batch had never been offered.
"""

from __future__ import annotations

import pytest

from conftest import make_objects
from repro.core.ag2 import AG2Monitor
from repro.core.naive import NaiveMonitor
from repro.core.objects import SpatialObject
from repro.errors import InvalidParameterError, ReproError, WindowOrderError
from repro.window import CountWindow, TimeWindow


class TestInputValidationBoundary:
    def test_nan_coordinates_rejected_at_construction(self):
        with pytest.raises(InvalidParameterError):
            SpatialObject(x=float("nan"), y=0.0)

    def test_negative_weight_rejected_at_construction(self):
        with pytest.raises(InvalidParameterError):
            SpatialObject(x=0.0, y=0.0, weight=-1.0)

    def test_infinite_coordinate_rejected(self):
        with pytest.raises(InvalidParameterError):
            SpatialObject(x=0.0, y=float("-inf"))


class TestMonitorSurvivesRejectedBatches:
    def test_out_of_order_batch_leaves_monitor_consistent(self):
        """A rejected push must not half-apply: the window rejects the
        batch before the monitor sees any delta."""
        ag2 = AG2Monitor(10, 10, TimeWindow(100.0))
        naive = NaiveMonitor(10, 10, TimeWindow(100.0))
        good = [SpatialObject(x=5, y=5, weight=2, timestamp=10.0)]
        for m in (ag2, naive):
            m.update(good)
        bad = [SpatialObject(x=6, y=6, weight=9, timestamp=1.0)]  # stale ts
        for m in (ag2, naive):
            with pytest.raises(WindowOrderError):
                m.update(bad)
        # both monitors still answer, and still agree
        late = [SpatialObject(x=5.5, y=5.5, weight=3, timestamp=20.0)]
        a = ag2.update(late)
        b = naive.update(late)
        assert a.best_weight == pytest.approx(b.best_weight)
        assert a.best_weight == pytest.approx(5.0)
        ag2.check_invariants()

    def test_monitor_usable_after_any_repro_error(self):
        """Catch-all recovery pattern users will write: except
        ReproError, drop the batch, carry on."""
        monitor = AG2Monitor(10, 10, CountWindow(20))
        batches = [
            make_objects(5, seed=1, domain=50.0),
            None,  # simulated producer failure
            make_objects(5, seed=2, domain=50.0),
        ]
        reference = NaiveMonitor(10, 10, CountWindow(20))
        for batch in batches:
            if batch is None:
                # the boundary rejects construction of a bad object
                with pytest.raises(ReproError):
                    monitor.update([SpatialObject(x=0, y=0, weight=-5)])
                continue
            a = monitor.update(batch)
            b = reference.update(batch)
            assert a.best_weight == pytest.approx(b.best_weight)

    def test_empty_batches_forever_are_harmless(self):
        monitor = AG2Monitor(10, 10, CountWindow(10))
        monitor.update(make_objects(5, seed=3, domain=40.0))
        weight = monitor.result.best_weight
        for _ in range(50):
            result = monitor.update([])
            assert result.best_weight == pytest.approx(weight)
        monitor.check_invariants()


class TestWindowMisuse:
    def test_double_apply_of_same_delta_is_detectable_discipline(self):
        """apply() consumes window deltas exactly once; the docs say so
        and the seq accounting makes a duplicate arrival produce a
        DIFFERENT answer than the window holds — this test pins the
        single-apply discipline the API requires."""
        monitor = AG2Monitor(10, 10, CountWindow(10))
        delta = monitor.window.push(make_objects(3, seed=4, domain=40.0))
        monitor.apply(delta)
        size_once = monitor.result.window_size
        assert size_once == 3
        assert len(monitor.window) == 3
