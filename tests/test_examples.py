"""Smoke test: the quickstart example runs and produces sane output.

The heavier examples (urban sensing, location game, approximation
trade-off, dashboard) take tens of seconds and are exercised manually /
in CI nightly; the quickstart is fast enough to gate every test run so
the README's first command never rots.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def test_quickstart_runs_and_reports_progress():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    assert "best weight" in proc.stdout
    assert "local plane sweeps" in proc.stdout
    # the monitoring loop actually advanced
    assert proc.stdout.count("\n") > 10


def test_all_examples_compile():
    """Every example at least parses — catches API drift immediately."""
    for script in sorted(EXAMPLES.glob("*.py")):
        source = script.read_text()
        compile(source, str(script), "exec")
