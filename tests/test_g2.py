"""Unit tests for the G2 index monitor (Algorithm 1)."""

from __future__ import annotations

import pytest

from conftest import make_objects
from repro.core.g2 import G2Monitor
from repro.core.naive import NaiveMonitor
from repro.core.objects import SpatialObject
from repro.window import CountWindow


def mk(cell_size=None, capacity=50, side=10.0) -> G2Monitor:
    return G2Monitor(side, side, CountWindow(capacity), cell_size=cell_size)


class TestG2Basics:
    def test_empty(self):
        m = mk()
        assert m.update([]).is_empty
        assert m.cell_count == 0

    def test_single_object(self):
        m = mk()
        result = m.update([SpatialObject(x=5, y=5, weight=3.0)])
        assert result.best_weight == 3.0
        assert result.best.anchor_oid is not None

    def test_anchor_is_oldest_of_pair(self):
        m = mk()
        a = SpatialObject(x=5, y=5, weight=1.0)
        b = SpatialObject(x=7, y=7, weight=1.0)
        m.update([a])
        result = m.update([b])
        assert result.best_weight == 2.0
        assert result.best.anchor_oid == a.oid

    def test_incremental_matches_batch(self):
        """Feeding objects one at a time equals feeding them at once."""
        objs = make_objects(30, seed=5, domain=60.0)
        one = mk(capacity=100)
        for o in objs:
            one.update([o])
        whole = mk(capacity=100)
        whole.update(objs)
        assert one.result.best_weight == pytest.approx(whole.result.best_weight)

    def test_matches_naive_over_stream(self):
        g2 = mk(capacity=25)
        naive = NaiveMonitor(10, 10, CountWindow(25))
        for i in range(12):
            batch = make_objects(5, seed=100 + i, domain=80.0)
            a = g2.update(batch)
            b = naive.update(batch)
            assert a.best_weight == pytest.approx(b.best_weight)

    def test_expiration_releases_cells(self):
        m = mk(capacity=4)
        m.update(make_objects(4, seed=1, domain=400.0))
        m.update(make_objects(4, seed=2, domain=400.0))
        m.update([])
        # only the alive objects' cells remain materialised
        assert m.vertex_count >= 4  # copies across cells
        assert len(m.window) == 4

    def test_expired_best_recovers(self):
        """When the best space's anchor expires the monitor must find
        the next best one."""
        m = mk(capacity=2)
        heavy = [SpatialObject(x=5, y=5, weight=9), SpatialObject(x=6, y=6, weight=9)]
        m.update(heavy)
        assert m.result.best_weight == 18.0
        light = [
            SpatialObject(x=80, y=80, weight=1),
            SpatialObject(x=81, y=81, weight=1),
        ]
        result = m.update(light)
        assert result.best_weight == 2.0

    def test_local_sweeps_only_on_dirty_vertices(self):
        m = mk(capacity=50)
        # two isolated objects: no edges, no sweeps
        m.update([SpatialObject(x=5, y=5)])
        m.update([SpatialObject(x=500, y=500)])
        assert m.stats.local_sweeps == 0
        # a third overlapping the first: exactly the touched vertex re-sweeps
        m.update([SpatialObject(x=7, y=7)])
        assert m.stats.local_sweeps >= 1

    def test_duplicate_locations(self):
        m = mk()
        objs = [SpatialObject(x=5, y=5, weight=2.0) for _ in range(4)]
        result = m.update(objs)
        assert result.best_weight == 8.0

    def test_cell_size_respected(self):
        m = mk(cell_size=100.0, capacity=10)
        # all dual rects (side 10) stay inside cell (0, 0)'s [0,100]²
        m.update([SpatialObject(x=20 + i * 6, y=50, weight=1) for i in range(10)])
        assert m.cell_count == 1

    def test_vertex_copies_across_cells(self):
        m = mk(cell_size=10.0, capacity=10)
        # a rect centred on a grid corner spans 4 cells
        m.update([SpatialObject(x=10, y=10)])
        assert m.cell_count == 4
        assert m.vertex_count == 4

    def test_window_size_reported(self):
        m = mk(capacity=7)
        result = m.update(make_objects(10))
        assert result.window_size == 7
