"""End-to-end soak subsystem tests: scenarios, injectors, invariants,
crash-restart recovery, and the determinism contract.

The headline guarantees under test:

* every committed scenario passes (no cross-layer invariant breach);
* two runs of the same scenario + seed serialise to identical reports;
* a bit-flipped checkpoint fails the campaign when checksum
  verification is disabled and passes (via rotation fallback) when it
  is enabled;
* the externally driven engine session (process/teardown/restore)
  behaves like a crash of the compute tier only.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from conftest import make_objects
from repro.core.naive import NaiveMonitor
from repro.core.objects import SpatialObject
from repro.errors import InvalidParameterError, ReproError
from repro.obs import Metrics
from repro.resilience.checkpoint import CheckpointManager
from repro.engine.engine import StreamEngine
from repro.soak import (
    ClockSkewSource,
    Phase,
    Scenario,
    corrupt_checkpoint,
    get_scenario,
    list_scenarios,
    run_soak,
)
from repro.soak.report import ReportBase
from repro.window import CountWindow


class TestScenarioValidation:
    def test_committed_suite_is_valid(self):
        scenarios = list_scenarios()
        assert [s.name for s in scenarios] == [
            "smoke",
            "dirty_overload",
            "crash_recovery",
            "worker_churn",
            "wal_recovery",
        ]

    def test_unknown_scenario_rejected(self):
        with pytest.raises(InvalidParameterError, match="unknown scenario"):
            get_scenario("nope")

    def test_phase_rejects_bad_fields(self):
        with pytest.raises(InvalidParameterError, match="ticks"):
            Phase(name="p", ticks=0)
        with pytest.raises(InvalidParameterError, match="p_drop"):
            Phase(name="p", p_drop=1.5)
        with pytest.raises(InvalidParameterError, match="crash_at"):
            Phase(name="p", ticks=5, crash_at=5)
        with pytest.raises(InvalidParameterError, match="needs"):
            Phase(name="p", corrupt="torn")  # corrupt without crash_at
        with pytest.raises(InvalidParameterError, match="corruption mode"):
            Phase(name="p", crash_at=0, corrupt="gamma-ray")
        with pytest.raises(InvalidParameterError, match="worker kill"):
            Phase(name="p", ticks=5, worker_kills=((9, 0),))

    def test_scenario_rejects_inconsistencies(self):
        clean = Phase(name="a")
        with pytest.raises(InvalidParameterError, match="at least one"):
            Scenario(name="s", description="d", phases=())
        with pytest.raises(InvalidParameterError, match="unique"):
            Scenario(name="s", description="d", phases=(clean, clean))
        with pytest.raises(InvalidParameterError, match="workers"):
            Scenario(
                name="s",
                description="d",
                phases=(Phase(name="k", ticks=5, worker_kills=((0, 0),)),),
                workers=0,
            )


class TestInjectors:
    def test_clock_skew_validation(self):
        with pytest.raises(InvalidParameterError, match="skew"):
            ClockSkewSource([], skew=0, period=10)
        with pytest.raises(InvalidParameterError, match="period"):
            ClockSkewSource([], skew=1.0, period=0)
        with pytest.raises(InvalidParameterError, match="burst"):
            ClockSkewSource([], skew=1.0, period=4, burst=5)

    def test_skew_schedule_is_positional(self):
        objects = make_objects(10, seed=3, start_t=100.0)
        source = ClockSkewSource(objects, skew=50.0, period=5, burst=2)
        out = list(source)
        assert source.skewed == 4  # positions 0,1 and 5,6
        for i, (original, seen) in enumerate(zip(objects, out)):
            if i % 5 < 2:
                assert seen.timestamp == original.timestamp - 50.0
            else:
                assert seen.timestamp == original.timestamp

    def test_non_objects_pass_through_but_advance_position(self):
        objects = make_objects(4, seed=1)
        mixed = [objects[0], "garbage", objects[1], objects[2]]
        source = ClockSkewSource(mixed, skew=5.0, period=2, burst=1)
        out = list(source)
        assert out[1] == "garbage"  # untouched, but burnt position 1
        assert source.skewed == 2  # positions 0 and 2

    def test_corrupt_checkpoint_validation(self, tmp_path):
        missing = tmp_path / "none.json"
        with pytest.raises(InvalidParameterError, match="no checkpoint"):
            corrupt_checkpoint(missing, "torn")
        target = tmp_path / "ckpt.json"
        target.write_text('{"format": 1}')
        with pytest.raises(InvalidParameterError, match="unknown corruption"):
            corrupt_checkpoint(target, "cosmic")

    def test_torn_truncates_and_bitflip_keeps_envelope(self, tmp_path):
        monitor = NaiveMonitor(12, 12, CountWindow(30))
        monitor.update(make_objects(20, seed=5))
        path = tmp_path / "ckpt.json"
        CheckpointManager(monitor, path).checkpoint()
        pristine = json.loads(path.read_text())

        bitflip = tmp_path / "flip.json"
        bitflip.write_text(path.read_text())
        corrupt_checkpoint(bitflip, "bitflip")
        flipped = json.loads(bitflip.read_text())
        assert flipped["crc32"] == pristine["crc32"]  # silent damage
        assert flipped["state"] != pristine["state"]

        corrupt_checkpoint(path, "torn")
        with pytest.raises(json.JSONDecodeError):
            json.loads(path.read_text())


class TestRunSoak:
    def test_smoke_passes_with_full_invariant_coverage(self):
        report = run_soak("smoke")
        assert report.ok and not report.failures()
        assert report.ledger_checks > 0
        assert report.watermark_checks > 0
        assert report.guarantee_checks > 0
        assert report.convergence_checks > 0
        assert report.offered == (
            report.admitted
            + report.quarantined
            + report.skipped
            + report.late_dropped
            + report.reorder_pending
        )
        # faults of every configured family were actually injected
        assert report.drops > 0
        assert report.duplicates > 0
        assert report.corrupt_payloads > 0
        assert report.delayed > 0
        assert report.skewed > 0

    def test_same_seed_reports_are_identical(self):
        first = run_soak("smoke").to_dict()
        second = run_soak("smoke").to_dict()
        assert first == second

    def test_different_seed_changes_the_run(self):
        base = run_soak("smoke").to_dict()
        other = run_soak("smoke", seed=1234).to_dict()
        assert base != other

    def test_dirty_overload_forces_the_ladder_and_sheds(self):
        report = run_soak("dirty_overload")
        assert report.ok, report.failures()
        assert report.shed > 0
        assert report.ladder_transitions > 0
        assert report.final_mode == "exact"

    def test_crash_recovery_survives_all_three_corruptions(self):
        report = run_soak("crash_recovery")
        assert report.ok, report.failures()
        assert report.crashes == 3
        assert report.recoveries == 3
        assert report.cold_starts == 0
        assert report.replayed_batches > 0
        assert report.spilled > 0  # the queue's in-flight buffer died too
        # torn latest -> fallback; bitflipped rotation -> checksum catch
        assert report.checkpoint_fallbacks >= 2
        assert report.checksum_failures >= 1

    def test_bitflip_fails_without_checksum_verification(self):
        report = run_soak("crash_recovery", verify_checksum=False)
        assert not report.ok
        kinds = {v["kind"] for v in report.violations}
        assert "convergence_contents" in kinds
        phases = {v["phase"] for v in report.violations}
        assert "crash_bitflip" in phases
        assert any("crash_bitflip" in line for line in report.failures())

    def test_worker_churn_recovers_every_kill(self):
        report = run_soak("worker_churn")
        assert report.ok, report.failures()
        assert report.worker_kills == 4
        assert report.worker_respawns == 4
        assert not report.worker_gave_up

    def test_checkpoint_dir_is_honoured(self, tmp_path):
        workdir = tmp_path / "ckpts"
        report = run_soak("smoke", checkpoint_dir=workdir)
        assert report.ok
        assert (workdir / "smoke.ckpt.json").exists()


class TestSoakReportProtocol:
    def test_all_harness_reports_share_the_protocol(self):
        from repro.overload.harness import OverloadReport
        from repro.resilience.harness import ChaosReport
        from repro.soak.harness import SoakReport

        for cls in (ChaosReport, OverloadReport, SoakReport):
            assert issubclass(cls, ReportBase)

    def test_rows_and_dict_stay_aligned(self):
        report = run_soak("smoke")
        rows = report.rows()
        doc = report.to_dict()
        for row in rows:
            key = str(row["quantity"]).replace(" ", "_")
            assert doc[key] == row["value"]
        assert "violation_details" in doc
        assert "phase_breakdown" in doc

    def test_failures_capped_and_counted(self):
        report = run_soak("smoke")
        many = dataclasses.replace(
            report,
            violations=[
                {"phase": "p", "kind": "k", "detail": str(i)}
                for i in range(25)
            ],
        )
        lines = many.failures()
        assert len(lines) == 21
        assert lines[-1] == "... and 5 more violations"
        assert not many.ok


class TestEngineSession:
    def _engine(self):
        monitor = NaiveMonitor(12, 12, CountWindow(40))
        return StreamEngine({"m": monitor}, iter(()), batch_size=10), monitor

    def test_process_accumulates_one_session(self):
        engine, monitor = self._engine()
        batches = [make_objects(10, seed=i, start_t=i * 10.0) for i in range(3)]
        for batch in batches:
            results = engine.process(batch)
        assert results["m"].window_size == 30
        report = engine.collect_report()
        assert report.batches == 3
        with pytest.raises(ReproError, match="no process"):
            engine.collect_report()

    def test_process_rejects_empty_batches(self):
        engine, _ = self._engine()
        with pytest.raises(InvalidParameterError, match="non-empty"):
            engine.process([])

    def test_teardown_blocks_processing_until_restore(self):
        engine, monitor = self._engine()
        engine.process(make_objects(10, seed=1))
        engine.teardown()
        assert engine.monitors == {}
        with pytest.raises(ReproError, match="torn down"):
            engine.process(make_objects(10, seed=2))
        with pytest.raises(InvalidParameterError):
            engine.restore({})
        replacement = NaiveMonitor(12, 12, CountWindow(40))
        engine.restore({"m": replacement})
        results = engine.process(make_objects(10, seed=3))
        assert results["m"].window_size == 10

    def test_restore_reattaches_metrics_scopes(self):
        metrics = Metrics("t")
        monitor = NaiveMonitor(12, 12, CountWindow(40))
        engine = StreamEngine(
            {"m": monitor}, iter(()), batch_size=10, metrics=metrics
        )
        engine.process(make_objects(10, seed=1))
        engine.teardown()
        replacement = NaiveMonitor(12, 12, CountWindow(40))
        engine.restore({"m": replacement})
        engine.process(make_objects(10, seed=2))
        snap = metrics.snapshot()
        # both incarnations observed under the same scope
        assert snap.counters["m.objects_seen"] == 20


class TestCustomScenario:
    def test_tiny_custom_scenario_runs(self, tmp_path):
        scenario = Scenario(
            name="tiny",
            description="two clean phases with a plain crash",
            window=80,
            rate=20,
            checkpoint_every=2,
            stride=2,
            phases=(
                Phase(name="warm", ticks=6),
                Phase(
                    name="crash",
                    kind="crash",
                    ticks=6,
                    crash_at=2,
                    verify_convergence=True,
                ),
            ),
        )
        report = run_soak(scenario, checkpoint_dir=tmp_path)
        assert report.ok, report.failures()
        assert report.crashes == 1
        assert report.recoveries == 1
        assert report.scenario == "tiny"

    def test_cold_start_when_no_checkpoint_exists(self, tmp_path):
        scenario = Scenario(
            name="cold",
            description="crash before the first checkpoint period",
            window=60,
            rate=20,
            checkpoint_every=50,  # never reached before the crash
            stride=0,
            phases=(
                Phase(
                    name="early_crash",
                    kind="crash",
                    ticks=5,
                    crash_at=2,
                    verify_convergence=True,
                ),
            ),
        )
        report = run_soak(scenario, checkpoint_dir=tmp_path)
        assert report.ok, report.failures()
        assert report.cold_starts == 1
        assert report.recoveries == 0
        # replay covered everything applied before the crash
        assert report.replayed_batches > 0
