"""Cross-backend equivalence gate for the columnar sweep backend.

The numpy backend's contract is *byte identity*: for any stream, every
monitor must produce exactly the answers — and the same operation
counters — that the pure-Python reference produces.  The columnar code
only vectorises exact operations (the dual transform, integer cell
ranges, comparison masks) and replays every float accumulation in the
reference order, so equality here is ``==`` on coordinates and weights,
never ``pytest.approx``.

The hypothesis suites drive randomly sized batch interleavings (empty
batches included), expiry-heavy streams, duplicate coordinates and zero
weights through both backends of every monitor.  The batching
thresholds are forced to tiny values so the vector paths actually
engage on hypothesis-sized inputs; separate tests exercise the
production thresholds with large batches.

When numpy is absent the differential tests skip cleanly and the
degradation tests assert the typed :class:`InvalidParameterError`
contract instead (simulated via monkeypatching when numpy is present).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import vector
from repro.core.ag2 import AG2Monitor
from repro.core.g2 import G2Monitor
from repro.core.geometry import Rect
from repro.core.naive import NaiveMonitor
from repro.core.objects import SpatialObject
from repro.core.planesweep import sweep_items_max
from repro.core.quadtree import QuadtreeAG2Monitor
from repro.core.topk import TopKAG2Monitor
from repro.errors import InvalidParameterError
from repro.window import CountWindow

requires_numpy = pytest.mark.skipif(
    not vector.HAVE_NUMPY, reason="numpy not installed ([vector] extra)"
)

#: the tiny_thresholds fixture only pins two module constants to the
#: same values on every example, so reusing it across generated
#: examples is sound — suppress the function-scoped-fixture check
_FIXTURE_OK = (HealthCheck.function_scoped_fixture,)

#: monitor label -> factory(backend); every monitor that accepts backend=
FACTORIES = {
    "naive": lambda b: NaiveMonitor(8.0, 6.0, CountWindow(60), backend=b),
    "g2": lambda b: G2Monitor(8.0, 6.0, CountWindow(60), backend=b),
    "ag2": lambda b: AG2Monitor(8.0, 6.0, CountWindow(60), backend=b),
    "ag2_quadtree": lambda b: QuadtreeAG2Monitor(
        8.0,
        6.0,
        CountWindow(60),
        split_occupancy=6,
        merge_occupancy=2,
        backend=b,
    ),
    "topk": lambda b: TopKAG2Monitor(
        8.0, 6.0, CountWindow(60), k=5, backend=b
    ),
}


@pytest.fixture()
def tiny_thresholds(monkeypatch):
    """Force the vector paths onto hypothesis-sized inputs."""
    monkeypatch.setattr(vector, "VECTOR_SWEEP_MIN", 4)
    monkeypatch.setattr(vector, "CONNECT_BATCH_MIN", 4)


def _result_key(result):
    return tuple(
        (reg.rect.x1, reg.rect.y1, reg.rect.x2, reg.rect.y2, reg.weight)
        for reg in result.regions
    )


def _assert_equivalent(label, batches):
    """Both backends over the same batches: identical answers + stats."""
    factory = FACTORIES[label]
    py = factory("python")
    np_ = factory("numpy")
    for i, batch in enumerate(batches):
        a = py.update(batch)
        b = np_.update(batch)
        assert _result_key(a) == _result_key(b), (label, i)
    assert py.stats.overlap_tests == np_.stats.overlap_tests, label
    assert py.stats.local_sweeps == np_.stats.local_sweeps, label
    assert py.stats.cells_visited == np_.stats.cells_visited, label
    if hasattr(np_, "check_invariants"):
        np_.check_invariants()


# -- strategies ------------------------------------------------------------

# A small integer grid makes duplicate coordinates, shared edges and
# exact weight ties common — the adversarial cases for tie-breaking.
coord = st.one_of(
    st.integers(min_value=0, max_value=30).map(float),
    st.floats(
        min_value=0.0, max_value=30.0, allow_nan=False, allow_infinity=False
    ),
)
weight = st.sampled_from([0.0, 0.5, 1.0, 1.0, 2.0, 3.25])


@st.composite
def object_batches(draw, max_batches=6, max_batch=10):
    """Random interleavings: batch sizes vary and include empty ones."""
    n_batches = draw(st.integers(min_value=1, max_value=max_batches))
    batches = []
    oid = 0
    for _ in range(n_batches):
        size = draw(st.integers(min_value=0, max_value=max_batch))
        batch = []
        for _ in range(size):
            batch.append(
                SpatialObject(
                    oid=oid, x=draw(coord), y=draw(coord), weight=draw(weight)
                )
            )
            oid += 1
        batches.append(batch)
    return batches


@st.composite
def sweep_item_lists(draw, min_size=0, max_size=24):
    """``(rect, weight)`` pairs for the planesweep seam."""
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    items = []
    for _ in range(n):
        x1 = draw(coord)
        y1 = draw(coord)
        w = draw(st.integers(min_value=0, max_value=6))
        h = draw(st.integers(min_value=0, max_value=6))
        wt = draw(weight)
        items.append((Rect(x1, y1, x1 + w, y1 + h), wt))
    return items


def _seeded_stream(seed, n_batches=30, batch=16, span=60.0):
    """Deterministic mixed stream: grid-aligned and continuous coords,
    zero weights, occasional empty/short batches."""
    rng = random.Random(seed)
    oid = 0
    out = []
    for _ in range(n_batches):
        objs = []
        for _ in range(rng.choice([0, 1, batch // 2, batch])):
            x = rng.choice(
                [rng.uniform(0, span), float(round(rng.uniform(0, span)))]
            )
            y = rng.choice(
                [rng.uniform(0, span), float(round(rng.uniform(0, span)))]
            )
            objs.append(
                SpatialObject(
                    oid=oid,
                    x=x,
                    y=y,
                    weight=rng.choice([1.0, 2.0, 0.0, 1.0, 3.25]),
                )
            )
            oid += 1
        out.append(objs)
    return out


# -- differential suites ---------------------------------------------------


@requires_numpy
@pytest.mark.parametrize("label", sorted(FACTORIES))
class TestBackendEquivalence:
    @settings(
        max_examples=20, deadline=None, suppress_health_check=_FIXTURE_OK
    )
    @given(batches=object_batches())
    def test_random_interleavings(self, label, tiny_thresholds, batches):
        _assert_equivalent(label, batches)

    @settings(
        max_examples=10, deadline=None, suppress_health_check=_FIXTURE_OK
    )
    @given(data=st.data())
    def test_expiry_heavy_streams(self, label, tiny_thresholds, data):
        """Far more arrivals than the window holds: every batch both
        connects and expires, exercising purge/trim on each backend."""
        n = data.draw(st.integers(min_value=8, max_value=14))
        batches = [
            [
                SpatialObject(
                    oid=i * 20 + j,
                    x=data.draw(coord),
                    y=data.draw(coord),
                    weight=data.draw(weight),
                )
                for j in range(20)
            ]
            for i in range(n)
        ]
        _assert_equivalent(label, batches)

    def test_seeded_streams(self, label, tiny_thresholds):
        for seed in range(4):
            _assert_equivalent(label, _seeded_stream(seed))

    def test_duplicate_coordinates(self, label, tiny_thresholds):
        """Many objects stacked on identical points: maximal ties."""
        batches = [
            [
                SpatialObject(oid=i * 12 + j, x=5.0, y=5.0, weight=1.0)
                for j in range(12)
            ]
            for i in range(4)
        ]
        _assert_equivalent(label, batches)

    def test_zero_weights_and_empty_batches(self, label, tiny_thresholds):
        batches = [
            [],
            [
                SpatialObject(oid=j, x=float(j % 5), y=float(j % 3), weight=0.0)
                for j in range(15)
            ],
            [],
            [SpatialObject(oid=20, x=2.0, y=2.0, weight=1.5)],
            [],
        ]
        _assert_equivalent(label, batches)


@requires_numpy
class TestProductionThresholds:
    """Large batches engage the vector paths at the shipped thresholds."""

    def test_naive_columnar_sweep_engages(self):
        rng = random.Random(3)
        batches = [
            [
                SpatialObject(
                    oid=i * 200 + j,
                    x=rng.uniform(0, 80),
                    y=rng.uniform(0, 80),
                    weight=rng.choice([1.0, 2.0]),
                )
                for j in range(200)
            ]
            for i in range(3)
        ]
        _assert_equivalent("naive", batches)

    def test_ag2_connect_batch_engages(self):
        # a dense cluster inside one grid cell so V*P + P*P crosses
        # CONNECT_BATCH_MIN on the second update
        rng = random.Random(4)
        batches = [
            [
                SpatialObject(
                    oid=i * 40 + j,
                    x=rng.uniform(0, 2.0),
                    y=rng.uniform(0, 1.5),
                    weight=1.0,
                )
                for j in range(40)
            ]
            for i in range(3)
        ]
        _assert_equivalent("ag2", batches)


@requires_numpy
class TestSweepKernel:
    @settings(
        max_examples=60, deadline=None, suppress_health_check=_FIXTURE_OK
    )
    @given(items=sweep_item_lists())
    def test_columnar_sweep_is_byte_identical(
        self, tiny_thresholds, items
    ):
        ref = sweep_items_max(items, backend="python")
        col = sweep_items_max(items, backend="numpy")
        if ref is None:
            assert col is None
            return
        assert col is not None
        ref_w, ref_rect = ref
        col_w, col_rect = col
        assert col_w == ref_w  # exact, not approx
        assert (col_rect.x1, col_rect.y1, col_rect.x2, col_rect.y2) == (
            ref_rect.x1,
            ref_rect.y1,
            ref_rect.x2,
            ref_rect.y2,
        )


# -- degradation contract --------------------------------------------------


class TestBackendResolution:
    def test_unknown_backend_is_typed_error(self):
        with pytest.raises(InvalidParameterError, match="unknown sweep"):
            AG2Monitor(8.0, 6.0, CountWindow(10), backend="cuda")

    def test_numpy_absent_is_typed_error(self, monkeypatch):
        monkeypatch.setattr(vector, "HAVE_NUMPY", False)
        with pytest.raises(InvalidParameterError, match=r"\[vector\]"):
            NaiveMonitor(8.0, 6.0, CountWindow(10), backend="numpy")

    def test_python_backend_works_without_numpy(self, monkeypatch):
        monkeypatch.setattr(vector, "HAVE_NUMPY", False)
        monitor = G2Monitor(8.0, 6.0, CountWindow(10), backend="python")
        result = monitor.update(
            [SpatialObject(oid=0, x=1.0, y=1.0, weight=2.0)]
        )
        assert result.regions[0].weight == 2.0

    def test_backend_info_shape(self):
        info = vector.backend_info("python")
        assert info == {"backend": "python", "numpy": None, "numba": None}
        if vector.HAVE_NUMPY:
            info = vector.backend_info("numpy")
            assert info["backend"] == "numpy"
            assert isinstance(info["numpy"], str)

    def test_version_helpers_without_numpy(self, monkeypatch):
        monkeypatch.setattr(vector, "HAVE_NUMPY", False)
        monkeypatch.setattr(vector, "HAVE_NUMBA", False)
        assert vector.numpy_version() is None
        assert vector.numba_version() is None
